"""Legacy setup shim.

This environment has no ``wheel`` package and no network, so PEP 517
editable installs (which require building a wheel) fail.  Keeping the
packaging metadata in ``setup.cfg``/``setup.py`` lets
``pip install -e . --no-use-pep517 --no-build-isolation`` and plain
``pip install -e .`` (with older pip) work fully offline.
"""

from setuptools import setup

setup()
