"""Legacy setup shim.

All packaging metadata lives in ``pyproject.toml`` (PEP 621), which
setuptools reads in both PEP 517 and legacy modes.  This shim exists so
offline environments without the ``wheel`` package can still install
editable via ``pip install -e . --no-use-pep517 --no-build-isolation``;
modern environments just run ``pip install -e .``.
"""

from setuptools import setup

setup()
