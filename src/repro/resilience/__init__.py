"""``repro.resilience`` — failure engineering for the mapping system.

The paper's methodology is a long-running compiler service in spirit:
minutes-scale symbolic work per cold block, milliseconds warm.  That
cold/warm asymmetry is exactly where overload and partial failure must
degrade gracefully — a corrupt cache tier, a crashed pool worker or a
queue pile-up should cost throughput, never correctness or hung
connections.  This package holds the shared mechanisms; the policies
live where the failures do:

* :mod:`repro.resilience.faults` — the deterministic fault-injection
  registry (:class:`FaultPlan` / :func:`inject` at named sites), so
  every failure path below has a reproducible chaos test.
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, wrapped
  around the sqlite disk tier by :class:`~repro.mapping.cache.DiskCache`.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, driving
  :class:`~repro.service.client.ServiceClient`'s capped, jittered
  backoff.
* :mod:`repro.resilience.admission` — :class:`AdmissionController`,
  the service front-end's bounded in-flight gate (429 + ``Retry-After``
  past ``max_inflight``).

Stdlib-only and dependency-free within the repo: every other layer may
import it, it imports none of them.
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    inject,
)
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "inject",
]
