"""A circuit breaker: stop hammering a failing dependency, probe back.

The mapping layer's disk tier is an *optional* accelerator: a corrupt
or locked sqlite store must degrade throughput, never correctness.
Before this layer, the tier had exactly two states — working, or
permanently "broken" until a manual :meth:`~repro.mapping.cache.DiskCache.clear`.
The breaker replaces that cliff with the classic three-state machine:

::

            failure >= threshold, or trip()
    CLOSED ────────────────────────────────► OPEN
      ▲                                        │ cooldown elapsed
      │ record_success()                       ▼
      └─────────────────────────────────── HALF_OPEN
                      record_failure() ────► OPEN (re-stamped)

* **closed** — normal operation; consecutive failures are counted and
  any success resets the count.
* **open** — every :meth:`allow` is refused (callers serve from their
  other tiers) until ``cooldown`` seconds pass.
* **half-open** — after the cooldown, calls are allowed through as
  probes; the first success closes the breaker, the first failure
  re-opens it and restarts the cooldown.

The clock is injectable so the state machine is unit-testable without
sleeping, and every transition is counted for the stats surfaces
(``CacheTiers.stats()["disk"]["breaker"]``, ``/v1/stats``).
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls (with no intervening
        success) that open the circuit.
    cooldown:
        Seconds the circuit stays open before a probe is allowed.
    clock:
        Monotonic time source (injectable for tests).
    name:
        Label carried in :meth:`stats` for multi-breaker surfaces.

    >>> now = [0.0]
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
    ...                          clock=lambda: now[0])
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.allow(), breaker.state
    (False, 'open')
    >>> now[0] = 11.0
    >>> breaker.allow(), breaker.state        # cooldown over: probe
    (True, 'half_open')
    >>> breaker.record_success(); breaker.state
    'closed'
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock=time.monotonic,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0
        self.probes = 0

    # -- the gate ---------------------------------------------------------
    def allow(self) -> bool:
        """May the caller touch the dependency right now?

        Open circuits refuse until the cooldown elapses, then flip to
        half-open and let calls through as probes.  The caller promises
        to report the outcome via :meth:`record_success` /
        :meth:`record_failure` — that report is what resolves the
        probe.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return False
                self._state = self.HALF_OPEN
                self.probes += 1
            return True  # half-open: probing

    # -- outcome reports --------------------------------------------------
    def record_success(self) -> None:
        """A dependency call worked: close and reset the failure run."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        """A dependency call failed: count it; open on the threshold.

        In half-open state a single failure re-opens immediately — the
        probe answered "still down".
        """
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or self._failures >= self.failure_threshold:
                self._open()

    def trip(self) -> None:
        """Force the circuit open now (e.g. on detected corruption —
        there is no point counting to the threshold against a store
        that cannot even be opened)."""
        with self._lock:
            self._open()

    def reset(self) -> None:
        """Back to closed with a clean failure run (a repaired store)."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def _open(self) -> None:
        # Caller holds the lock.  Re-stamping an already-open breaker
        # restarts the cooldown but is not a new trip.
        if self._state != self.OPEN:
            self.trips += 1
        self._state = self.OPEN
        self._opened_at = self._clock()

    # -- observability ----------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half_open"`` (raw, as last
        transitioned — an elapsed cooldown shows up on the next
        :meth:`allow`)."""
        with self._lock:
            return self._state

    def stats(self) -> dict:
        """The breaker's observable state, for stats surfaces."""
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
                "trips": self.trips,
                "probes": self.probes,
            }

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"CircuitBreaker({self.state}{label}, failures={self._failures})"
