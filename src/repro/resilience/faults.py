"""Deterministic fault injection: reproducible chaos for every tier.

The resilience policies this package carries (circuit breaker, admission
control, retries, graceful degradation) are only trustworthy if their
failure paths are *exercised* — and real failures (a corrupt sqlite
file, a crashed pool worker, a stalled dispatch) are rare and flaky to
stage.  This module turns them into first-class test inputs: code that
can fail declares a **named fault site** and calls :func:`inject` at
it; a chaos test activates a :class:`FaultPlan` describing which sites
fail, how, and how often — seeded, so a failing chaos run replays
bit-for-bit from its seed.

The compiled-in sites (one per failure domain the resilience layer
defends):

======================  ================================================
``disk_cache.read``     a :meth:`~repro.mapping.cache.DiskCache.get`
                        about to touch sqlite
``disk_cache.write``    a :meth:`~repro.mapping.cache.DiskCache.put`
                        about to touch sqlite
``batch.worker``        a batch work item executing in a pool worker
``service.dispatch``    the service's heavy work, on its executor thread
``service.accept``      a service connection handler, before reading
``fleet.worker``        a fleet worker about to serve a public request;
                        any raise here kills the worker process
                        (``os._exit``), exercising crashed-worker
                        respawn and shard-router fallback
======================  ================================================

With no plan active, :func:`inject` is one module-global read and a
``None`` check — the warm path pays nothing measurable (benchmarked in
``benchmarks/bench_resilience.py``).

>>> plan = FaultPlan([FaultRule("batch.worker", error=RuntimeError,
...                             times=1)], seed=7)
>>> with plan.activate():
...     try:
...         inject("batch.worker")
...     except RuntimeError:
...         print("fault fired")
...     inject("batch.worker")          # times=1: second hit passes
fault fired
>>> plan.counts()["fired"]["batch.worker"]
1
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["FAULT_SITES", "FaultRule", "FaultPlan", "inject", "active_plan"]

#: The compiled-in fault sites.  A rule naming any other site is a bug
#: in the plan (rejected at construction), and so is an ``inject`` call
#: from an unregistered site (rejected at fire time) — chaos coverage
#: must not silently rot when code moves.
FAULT_SITES = (
    "disk_cache.read",
    "disk_cache.write",
    "batch.worker",
    "service.dispatch",
    "service.accept",
    "fleet.worker",
)


@dataclass(frozen=True)
class FaultRule:
    """One site's failure behaviour inside a :class:`FaultPlan`.

    Parameters
    ----------
    site:
        The fault site this rule arms (one of :data:`FAULT_SITES`).
    error:
        What to raise when the rule fires: an exception class, a
        zero-argument factory, or a pre-built instance.  ``None`` means
        the rule only delays.
    delay:
        Seconds to sleep when the rule fires, before raising (if
        ``error`` is also set).  This is how slow-dispatch faults are
        staged.
    probability:
        Chance a hit fires, drawn from the plan's seeded stream —
        deterministic for a given ``(seed, rule index)``.
    after:
        Let the first ``after`` hits pass untouched (arm the fault
        mid-run).
    times:
        Fire at most this many times (``None`` = unbounded); a
        transient fault is ``times=1``.
    """

    site: str
    error: object = None
    delay: float = 0.0
    probability: float = 1.0
    after: int = 0
    times: "int | None" = None

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; sites are {FAULT_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.error is None and not self.delay:
            raise ValueError("a rule must raise, delay, or both")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s, activatable as *the*
    process-wide plan.

    Determinism contract: two plans built from equal rules and the same
    seed fire identically for identical sequences of :func:`inject`
    calls — each rule draws from a private ``random.Random`` seeded
    with ``(seed, rule index)``, so sites cannot perturb each other's
    streams.  All bookkeeping is lock-protected: service worker
    threads, the event loop, and batch fallbacks may all hit sites
    concurrently.
    """

    def __init__(self, rules, *, seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._rngs = [
            random.Random(f"{seed}/{index}") for index in range(len(self.rules))
        ]
        self._rule_hits = [0] * len(self.rules)
        self._rule_fired = [0] * len(self.rules)
        self._hits = dict.fromkeys(FAULT_SITES, 0)
        self._fired = dict.fromkeys(FAULT_SITES, 0)

    def fire(self, site: str) -> None:
        """One hit on ``site``: sleep and/or raise per the first armed
        rule that fires; silently pass otherwise."""
        if site not in self._hits:
            raise ValueError(
                f"unknown fault site {site!r}; sites are {FAULT_SITES}"
            )
        delay, error = 0.0, None
        with self._lock:
            self._hits[site] += 1
            for index, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                self._rule_hits[index] += 1
                if self._rule_hits[index] <= rule.after:
                    continue
                if rule.times is not None and self._rule_fired[index] >= rule.times:
                    continue
                if (
                    rule.probability < 1.0
                    and self._rngs[index].random() >= rule.probability
                ):
                    continue
                self._rule_fired[index] += 1
                self._fired[site] += 1
                delay, error = rule.delay, rule.error
                break  # first firing rule wins; later rules stay armed
        if delay:
            time.sleep(delay)  # outside the lock: a slow fault must not
            # serialize every other site behind it
        if error is not None:
            if isinstance(error, BaseException):
                raise error
            raise error()

    def counts(self) -> dict:
        """``{"hits": {site: n}, "fired": {site: n}}`` so far."""
        with self._lock:
            return {"hits": dict(self._hits), "fired": dict(self._fired)}

    @contextmanager
    def activate(self):
        """Install this plan process-wide for the ``with`` body.

        Nestable: the previous plan (usually ``None``) is restored on
        exit, so chaos fixtures compose without leaking state into
        later tests.
        """
        global _ACTIVE
        with _ACTIVE_LOCK:
            previous, _ACTIVE = _ACTIVE, self
        try:
            yield self
        finally:
            with _ACTIVE_LOCK:
                _ACTIVE = previous


_ACTIVE: "FaultPlan | None" = None
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> "FaultPlan | None":
    """The currently installed plan, or ``None`` (the normal state)."""
    return _ACTIVE


def inject(site: str) -> None:
    """Fire ``site`` against the active plan; a no-op without one.

    This is the hook production code compiles in.  The inactive path is
    deliberately just a global load and a ``None`` test — cheap enough
    for the warmest loops the mapping layer has.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site)
