"""Retry policy: capped exponential backoff with jitter.

One frozen dataclass owns every retry knob the client tier uses, so
the backoff schedule is a value (comparable, documentable, pinnable in
tests) rather than a scatter of constants.  The jitter draw comes from
a caller-supplied ``random.Random``, which keeps chaos tests
deterministic: a seeded client produces a byte-stable attempt history.

The schedule is the textbook one: ``base_delay * multiplier**attempt``
capped at ``max_delay``, then spread by ``±jitter`` (a fraction) so a
thundering herd of clients retrying a shedding service decorrelates
instead of re-arriving in lockstep.  A server-supplied ``Retry-After``
hint is honored as a *floor* — the server knows its drain/overload
horizon better than the client's geometry does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries transient failures.

    ``attempts`` is the *total* number of tries (1 = no retries).
    ``retry_statuses`` are the HTTP answers worth retrying — the
    shedding statuses the service emits under overload (429) and drain
    or timeout (503).  Connection-level errors (refused, reset, DNS)
    are always considered transient.

    >>> policy = RetryPolicy(attempts=4, base_delay=0.1, max_delay=1.0,
    ...                      jitter=0.0)
    >>> [policy.backoff(n) for n in range(4)]
    [0.1, 0.2, 0.4, 0.8]
    >>> policy.backoff(10)                    # capped
    1.0
    >>> policy.backoff(0, retry_after=0.5)    # server hint is a floor
    0.5
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    retry_statuses: tuple = (429, 503)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(
        self,
        attempt: int,
        rng: "random.Random | None" = None,
        *,
        retry_after: "float | None" = None,
    ) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based).

        ``rng`` supplies the jitter draw (omit it — or set
        ``jitter=0`` — for the deterministic midpoint schedule);
        ``retry_after`` is the server's hint, honored as a floor.
        """
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        if retry_after is not None and retry_after > delay:
            delay = float(retry_after)
        return delay

    def retryable_status(self, status: int) -> bool:
        """Is ``status`` a shed the caller should wait out and retry?"""
        return status in self.retry_statuses


#: The client tier's default: 3 tries, 50ms/100ms backoff (capped 2s),
#: ±25% jitter.  Small on purpose — the service's single-flight and
#: cache tiers make repeats cheap, so patience beyond a few tries
#: belongs to the caller, not the transport.
DEFAULT_RETRY_POLICY = RetryPolicy()
