"""Admission control: bounded in-flight work with shed accounting.

The service's request executor is a fixed-size pool; without a bound
on *admitted* work, an overload burst queues behind it unboundedly and
every client times out at once (the worst failure mode: maximum work,
zero answers).  :class:`AdmissionController` is the counter that turns
that into load shedding: requests beyond ``max_inflight`` are refused
immediately with a retryable status, so the service keeps answering
the work it has already accepted at full speed.

Per-endpoint admitted/shed counters feed the ``/v1/stats`` surface —
the numbers an operator watches to size ``max_inflight`` and that the
overload benchmark (``benchmarks/bench_resilience.py``) records.
"""

from __future__ import annotations

import threading

__all__ = ["AdmissionController"]


class AdmissionController:
    """A bounded in-flight gate with per-endpoint accounting.

    ``max_inflight=None`` disables the bound (every request admits)
    while still counting, so the stats surface is shaped identically
    with and without admission control configured.

    >>> gate = AdmissionController(max_inflight=1)
    >>> gate.try_acquire("/v1/map")
    True
    >>> gate.try_acquire("/v1/map")           # over the bound: shed
    False
    >>> gate.release("/v1/map")
    >>> stats = gate.stats()
    >>> stats["admitted"], stats["shed"], stats["inflight"]
    (1, 1, 0)
    """

    def __init__(self, max_inflight: "int | None" = None):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        self._endpoints: "dict[str, dict[str, int]]" = {}

    def _entry(self, endpoint: str) -> dict:
        entry = self._endpoints.get(endpoint)
        if entry is None:
            entry = self._endpoints[endpoint] = {"admitted": 0, "shed": 0}
        return entry

    @property
    def inflight(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._inflight

    def try_acquire(self, endpoint: str) -> bool:
        """Admit one request for ``endpoint``, or refuse (``False``)
        when the in-flight bound is reached.  An admitted request must
        be paired with exactly one :meth:`release`."""
        with self._lock:
            entry = self._entry(endpoint)
            if self.max_inflight is not None and self._inflight >= self.max_inflight:
                entry["shed"] += 1
                return False
            self._inflight += 1
            entry["admitted"] += 1
            return True

    def release(self, endpoint: str) -> None:
        """Return an admitted request's slot."""
        with self._lock:
            self._inflight -= 1

    def shed(self, endpoint: str) -> None:
        """Count a shed that bypassed :meth:`try_acquire` (the drain
        path refuses before consulting the bound)."""
        with self._lock:
            self._entry(endpoint)["shed"] += 1

    def stats(self) -> dict:
        """Totals plus the per-endpoint breakdown, canonically sorted."""
        with self._lock:
            endpoints = {
                name: dict(entry) for name, entry in sorted(self._endpoints.items())
            }
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "admitted": sum(e["admitted"] for e in endpoints.values()),
                "shed": sum(e["shed"] for e in endpoints.values()),
                "endpoints": endpoints,
            }
