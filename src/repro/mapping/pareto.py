"""Multi-objective candidate scoring: Pareto fronts over
(cycles, energy, accuracy).

The paper's ``map_block`` picks one winner — the cheapest-in-cycles
adequate element.  Across many processors and objectives there is no
single winner: a hand-optimized fixed-point element may cost the
fewest cycles while the double-precision reference element is three
orders of magnitude more accurate, and on a memory-hungry platform a
third element may burn the least energy.  This module keeps *every*
non-dominated candidate:

* :class:`Objectives` — one candidate's (cycles, energy_j, accuracy)
  vector, all minimized, with the standard dominance relation;
* :func:`score_match` — price a block match on a platform: cycles via
  the cycle model, Joules via the board's energy model, accuracy from
  the element's characterized error label;
* :func:`pareto_front` — the non-dominated subset, deterministically
  ordered (ascending cycles, ties by energy, accuracy, element name),
  so serial and parallel sweeps emit byte-identical fronts.

Fronts are *derived*, never cached: the cached ``map_block`` value is
the platform-priced match list, which depends only on the processor
spec; energy scoring happens in the calling process on demand, so a
changed energy model can never be served stale.

>>> a = Objectives(cycles=100.0, energy_j=1e-6, accuracy=1e-3)
>>> b = Objectives(cycles=200.0, energy_j=2e-6, accuracy=1e-3)
>>> c = Objectives(cycles=300.0, energy_j=3e-6, accuracy=1e-9)
>>> a.dominates(b), a.dominates(c), c.dominates(a)
(True, False, False)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from repro.library.element import LibraryElement
from repro.mapping.match import BlockMatch
from repro.platform.badge4 import Badge4

__all__ = [
    "Objectives",
    "ParetoPoint",
    "BlockParetoResult",
    "score_match",
    "score_element",
    "pareto_front",
]


@dataclass(frozen=True)
class Objectives:
    """One candidate's objective vector; every component is minimized.

    ``accuracy`` is the element's characterized maximum absolute error,
    so *smaller is better* there too — the vector is uniformly
    minimizing and dominance needs no per-axis direction flags.

    ``measured_accuracy`` and ``snr_db`` are filled only by measured
    mappings (``measure=True``): max absolute error and SNR of the
    block's *generated kernel* against the exact float64 reference
    (see :mod:`repro.codegen.verify`).  They are observations, not
    optimization axes — dominance and :meth:`as_tuple` ignore them, so
    measurement can never reorder a front.
    """

    cycles: float
    energy_j: float
    accuracy: float
    measured_accuracy: "float | None" = None
    snr_db: "float | None" = None

    def dominates(self, other: "Objectives") -> bool:
        """Weak dominance with at least one strict improvement."""
        return (
            self.cycles <= other.cycles
            and self.energy_j <= other.energy_j
            and self.accuracy <= other.accuracy
            and (
                self.cycles < other.cycles
                or self.energy_j < other.energy_j
                or self.accuracy < other.accuracy
            )
        )

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.cycles, self.energy_j, self.accuracy)


@dataclass(frozen=True)
class ParetoPoint:
    """A non-dominated candidate: the match plus its scored objectives."""

    match: BlockMatch
    objectives: Objectives

    @property
    def element_name(self) -> str:
        return self.match.element.name

    @property
    def library(self) -> str:
        return self.match.element.library

    def __str__(self) -> str:
        o = self.objectives
        return (
            f"{self.element_name}: {o.cycles:.0f} cyc, "
            f"{o.energy_j:.3g} J, err {o.accuracy:.2g}"
        )


@dataclass(frozen=True)
class BlockParetoResult:
    """A block's full multi-objective mapping outcome on one platform.

    ``front`` holds the non-dominated points (see :func:`pareto_front`
    for the ordering guarantee); ``matches`` every adequate match in
    ``map_block``'s cycles-ascending order, so :attr:`cycles_winner` —
    the projection the paper's flow uses — reproduces ``map_block``'s
    scalar winner exactly, tie-breaks included.
    """

    block_name: str
    platform_name: str
    front: tuple[ParetoPoint, ...]
    matches: tuple[BlockMatch, ...]

    @classmethod
    def from_matches(
        cls,
        block_name: str,
        platform: Badge4,
        matches: Sequence[BlockMatch],
        measure: "Callable[[BlockMatch], tuple[float, float]] | None" = None,
    ) -> "BlockParetoResult":
        """Derive the front from a platform-priced match list.

        The single construction point for the derived-front contract:
        both ``map_block_pareto`` and ``MethodologyFlow.sweep`` build
        their results here, so their fronts cannot drift apart.

        ``measure``, when given, maps each match to its measured
        ``(max_error, snr_db)`` (see
        :func:`repro.codegen.verify.match_measurer`); every scored
        point then carries the observation alongside the static
        estimate.  Measurement happens after scoring and never touches
        the dominance axes, so measured and unmeasured fronts hold the
        same points in the same order.
        """
        scored = [ParetoPoint(m, score_match(m, platform)) for m in matches]
        if measure is not None:
            observed = []
            for point in scored:
                error, snr = measure(point.match)
                objectives = replace(
                    point.objectives, measured_accuracy=error, snr_db=snr
                )
                observed.append(ParetoPoint(point.match, objectives))
            scored = observed
        return cls(
            block_name=block_name,
            platform_name=platform.processor.name,
            front=pareto_front(scored),
            matches=tuple(matches),
        )

    @property
    def cycles_winner(self) -> BlockMatch | None:
        """The scalar (cycles-only) winner, identical to ``map_block``'s."""
        return self.matches[0] if self.matches else None

    def point_for(self, element_name: str) -> ParetoPoint:
        """The front point of ``element_name`` (raises if dominated/absent)."""
        for point in self.front:
            if point.element_name == element_name:
                return point
        raise KeyError(element_name)


def score_element(element: LibraryElement, platform: Badge4) -> Objectives:
    """Price one element's per-call cost as an objective vector.

    Delegates to the characterization harness — the one pricing
    convention in the codebase — so Pareto scores can never drift from
    the tables :func:`repro.library.platform_cost_labels` reports.
    """
    from repro.library.characterize import characterize

    ch = characterize(element, platform)
    return Objectives(
        cycles=ch.cycles_per_call,
        energy_j=ch.energy_per_call_j,
        accuracy=element.accuracy,
    )


def score_match(match: BlockMatch, platform: Badge4) -> Objectives:
    """Objective vector of a block match (the matched element's prices)."""
    return score_element(match.element, platform)


def pareto_front(scored: Iterable[ParetoPoint]) -> tuple[ParetoPoint, ...]:
    """The non-dominated subset of ``scored``, canonically ordered.

    Duplicated objective vectors are both kept (neither strictly
    dominates); ordering is ascending (cycles, energy, accuracy,
    element name), so the front's first entry is the fewest-cycles
    *non-dominated* candidate and the whole tuple is independent of
    input order — the byte-parity guarantee the sweep tests pin down.
    Note the scalar projection is a separate contract: on an exact
    (cycles, energy) tie the scalar winner — map_block's name-tiebreak
    choice — can itself be dominated by a more accurate twin and drop
    off the front; :attr:`BlockParetoResult.cycles_winner` preserves
    the scalar answer regardless.
    """
    points = sorted(scored, key=lambda p: (*p.objectives.as_tuple(), p.element_name))
    front = [
        p
        for p in points
        if not any(q.objectives.dominates(p.objectives) for q in points if q is not p)
    ]
    return tuple(front)
