"""The batch-mapping engine: many (block × library × platform) work
items, deduplicated and fanned out across processes.

The methodology re-runs library mapping over many critical blocks and
a ladder of libraries (the paper's Tables 4–6).  Each individual
``decompose``/``map_block`` call is already memoized; what was missing
is how the calls are *driven*: a pass that maps its blocks one at a
time in a single process pays every cold search sequentially.  This
module accepts a whole batch of work items, resolves what it can from
the in-memory LRU and the persistent disk tier, and fans only the
genuinely cold remainder out across a ``ProcessPoolExecutor`` —
merging every result back into both cache tiers so later direct calls
(and later processes) hit.

Work items must cross a process boundary, which is why the engine
leans on the serialization contract: ``Polynomial`` pickles its
canonical core, ``LibraryElement`` drops unpicklable kernels (matching
never executes them), and a platform travels as its ``ProcessorSpec``
(the only part the mapper reads — see ``fingerprint_platform``).

Degradation is graceful by design:

* ``workers`` absent/0/1 — everything runs serially in-process;
* an item that fails to pickle — runs serially, counted in
  ``stats.pickle_fallbacks``;
* a failed job (worker raised, unpicklable result) — the affected item
  is recomputed serially in the parent (``stats.worker_retries``);
* a *dead pool* (a worker OOM-killed or crashed hard, breaking the
  whole ``ProcessPoolExecutor``) — the items that never ran get one
  fresh pool (``stats.pool_respawns``) before the serial fallback, so
  a single crashed worker does not serialize the entire remainder.
  Caller-owned executors are never respawned; their broken items go
  straight to the serial path.

Parallel and serial runs produce identical results: the work functions
are pure, and every value is derived from the same fingerprinted
inputs (asserted in ``tests/mapping/test_batch.py``).

Cache ownership: ``run_batch(tiers=...)`` resolves and merges against
an explicit :class:`~repro.mapping.cache.CacheTiers` — the session
facade passes its own — and defaults to the process-wide
:data:`~repro.mapping.cache.DEFAULT_TIERS`, so legacy callers keep the
exact pre-session behaviour.
"""

from __future__ import annotations

import inspect
import pickle
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.frontend.extract import TargetBlock
from repro.library.catalog import Library
from repro.mapping.cache import DEFAULT_TIERS, CacheTiers, stable_digest
from repro.mapping.decompose import (
    _decompose_key,
    _decompose_uncached,
    _map_block_key,
    _map_block_uncached,
    decompose,
    map_block,
)
from repro.platform.badge4 import Badge4
from repro.resilience import inject
from repro.symalg.polynomial import Polynomial

__all__ = ["BatchItem", "BatchStats", "BatchReport", "run_batch"]


def _kw_defaults(fn) -> dict:
    """Keyword-only defaults of a mapping entry point (minus cache_dir).

    Read from the live signature so the batch engine can never drift
    from the functions it prewarms — identical knobs mean identical
    cache keys.
    """
    return {
        name: p.default
        for name, p in inspect.signature(fn).parameters.items()
        if p.kind is inspect.Parameter.KEYWORD_ONLY and name != "cache_dir"
    }


_MAP_BLOCK_DEFAULTS = _kw_defaults(map_block)
_DECOMPOSE_DEFAULTS = _kw_defaults(decompose)


@dataclass(frozen=True, eq=False)
class BatchItem:
    """One unit of mapping work: a payload against a library.

    Build via :meth:`for_block` (multi-output block matching) or
    :meth:`for_target` (scalar Decompose search); both normalize the
    knobs with the entry points' own defaults so batch submissions and
    direct calls share cache lines.
    """

    kind: str  # "map_block" | "decompose"
    payload: object  # TargetBlock | Polynomial
    library: Library
    platform: Badge4 | None
    knobs: tuple[tuple[str, object], ...]

    @classmethod
    def for_block(
        cls,
        block: TargetBlock,
        library: Library,
        platform: Badge4 | None = None,
        **knobs,
    ) -> "BatchItem":
        """A block-matching item (the ``map_block`` work unit)."""
        return cls(
            "map_block",
            block,
            library,
            platform,
            _normalize(knobs, _MAP_BLOCK_DEFAULTS, "map_block"),
        )

    @classmethod
    def for_target(
        cls,
        target: Polynomial,
        library: Library,
        platform: Badge4 | None = None,
        **knobs,
    ) -> "BatchItem":
        """A Decompose-search item (the ``decompose`` work unit)."""
        return cls(
            "decompose",
            target,
            library,
            platform,
            _normalize(knobs, _DECOMPOSE_DEFAULTS, "decompose"),
        )


def _normalize(
    knobs: dict, defaults: dict, kind: str
) -> tuple[tuple[str, object], ...]:
    unknown = set(knobs) - set(defaults)
    if unknown:
        raise TypeError(f"unknown {kind} knob(s): {sorted(unknown)}")
    merged = dict(defaults)
    merged.update(knobs)
    return tuple(sorted(merged.items()))


@dataclass
class BatchStats:
    """What one :func:`run_batch` call did, for observability/benches."""

    submitted: int = 0  # items passed in
    unique: int = 0  # after fingerprint dedup
    memory_hits: int = 0  # resolved from the LRU tier
    disk_hits: int = 0  # resolved from the persistent tier
    computed: int = 0  # actually searched (cold)
    parallel_jobs: int = 0  # cold items executed in worker processes
    serial_jobs: int = 0  # cold items executed in-process
    pickle_fallbacks: int = 0  # items that could not cross the boundary
    worker_retries: int = 0  # worker failures recomputed serially
    pool_respawns: int = 0  # dead pools replaced with a fresh one
    workers: int = 1  # effective worker count


@dataclass
class BatchReport:
    """Results (in submission order) plus the run's statistics.

    ``map_block`` items yield ``(winner_or_None, [matches...])``;
    ``decompose`` items yield a ``DecomposeResult``.
    """

    results: list = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)


def _item_key(item: BatchItem, default_platform: Badge4) -> tuple:
    platform = item.platform or default_platform
    knobs = dict(item.knobs)
    if item.kind == "map_block":
        return _map_block_key(
            item.payload,
            item.library,
            platform,
            knobs["tolerance"],
            knobs["accuracy_budget"],
        )
    return _decompose_key(
        item.payload,
        item.library,
        platform,
        knobs["tolerance"],
        knobs["accuracy_budget"],
        knobs["max_depth"],
        knobs["max_nodes"],
        knobs["use_hints"],
        knobs["use_bounding"],
    )


def _pack_job(item: BatchItem, lib_blobs: dict[int, bytes]) -> bytes:
    """Serialize one work item for a worker process.

    Pre-pickling (instead of letting the executor do it) makes
    unpicklable corner cases catchable per item, so one bad item can
    never poison the pool.  ``lib_blobs`` memoizes the pickled element
    tuple per library *object* (items hold the references, so ids are
    stable for the duration): a batch over one shared ladder serializes
    each library once, not once per item.
    """
    blob = lib_blobs.get(id(item.library))
    if blob is None:
        blob = pickle.dumps(tuple(item.library), protocol=pickle.HIGHEST_PROTOCOL)
        lib_blobs[id(item.library)] = blob
    spec = item.platform.processor if item.platform is not None else None
    return pickle.dumps(
        (item.kind, item.payload, item.library.name, blob, spec, dict(item.knobs)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _execute_job(blob: bytes):
    """Worker-side execution: rebuild the inputs, run the cold search.

    Goes straight to the uncached internals: the parent only ships
    items that already missed both cache tiers, so worker-side lookups
    could only miss too, and the parent merges every returned value
    into the LRU *and* the disk tier exactly once (a worker-side
    write-through would store the same payload twice).  The return
    value is the LRU-shaped cache value for the item's kind.

    The ``batch.worker`` fault site fires here — in the worker, never
    on the serial fallback path — so chaos tests can kill or fail
    workers while the parent-side recovery always has a clean retry.
    """
    inject("batch.worker")
    kind, payload, lib_name, lib_blob, spec, knobs = pickle.loads(blob)
    library = Library(lib_name, pickle.loads(lib_blob))
    platform = Badge4(processor=spec) if spec is not None else Badge4()
    if kind == "map_block":
        return _map_block_uncached(
            payload, library, platform, knobs["tolerance"], knobs["accuracy_budget"]
        )
    return _decompose_uncached(payload, library, platform, **knobs)


def _compute_cold(
    item: BatchItem,
    key: tuple,
    digest,
    tier,
    tiers: CacheTiers,
    default_platform: Badge4,
) -> object:
    """In-process cold execution, merging straight into the tiers.

    The caller has already keyed the item and missed both tiers, so
    this goes directly to the uncached search — re-entering the public
    entry points would redo the key/digest/lookup work and double-count
    the misses in :meth:`~repro.mapping.cache.CacheTiers.stats`.
    """
    platform = item.platform or default_platform
    knobs = dict(item.knobs)
    if item.kind == "map_block":
        value = _map_block_uncached(
            item.payload,
            item.library,
            platform,
            knobs["tolerance"],
            knobs["accuracy_budget"],
        )
    else:
        value = _decompose_uncached(item.payload, item.library, platform, **knobs)
    _merge(item.kind, key, digest, value, tier, tiers)
    return value


def _merge(kind: str, key: tuple, digest, value, tier, tiers: CacheTiers) -> None:
    """Install a computed value into both cache tiers.

    ``digest`` is the key's :func:`~repro.mapping.cache.stable_digest`,
    computed once during cold detection and threaded through so the
    store never re-canonicalizes the key.
    """
    cache = tiers.map_block if kind == "map_block" else tiers.decompose
    cache.put(key, value)
    if tier is not None:
        tier.put(digest, value)


def _present(kind: str, value):
    """The caller-facing shape of one result (fresh list per caller)."""
    if kind == "map_block":
        winner, matches = value
        return winner, list(matches)
    return value


def run_batch(
    items: Iterable[BatchItem],
    *,
    workers: int | None = None,
    cache_dir: "str | None" = None,
    executor: "Executor | None" = None,
    tiers: "CacheTiers | None" = None,
) -> BatchReport:
    """Resolve a batch of mapping work items, fanning cold ones out.

    Parameters
    ----------
    items:
        Any iterable of :class:`BatchItem` (duplicates welcome — they
        are deduplicated by content fingerprint, not identity).
    workers:
        Worker processes for the cold remainder.  ``None``/0/1 runs
        serially in-process; higher values use a process pool.
    cache_dir:
        Per-call override of the persistent tier directory (same
        semantics as ``decompose``/``map_block``).
    executor:
        An injectable :class:`concurrent.futures.Executor` for the
        cold fan-out.  When given, it is used instead of forking a
        fresh ``ProcessPoolExecutor`` per call and is *never* shut
        down here — the owner (a long-running service, a test
        harness) controls its lifetime.  Jobs still cross the
        executor boundary pre-pickled, so process and thread pools
        behave identically.
    tiers:
        The :class:`~repro.mapping.cache.CacheTiers` to resolve and
        merge against.  ``None`` uses the process-wide default tiers;
        sessions pass their own, which is how concurrent sessions with
        different cache directories stay isolated.

    Returns a :class:`BatchReport` whose ``results`` align with the
    submission order.  Every computed value is merged back into the
    in-memory LRU and (when configured) the disk tier, so subsequent
    direct ``map_block``/``decompose`` calls against the same tiers
    hit.
    """
    items = list(items)
    stats = BatchStats(submitted=len(items))
    effective = max(1, int(workers or 1))
    if executor is not None:
        # An injected pool parallelizes regardless of `workers`; its
        # own max_workers governs the real fan-out width.
        effective = max(effective, getattr(executor, "_max_workers", None) or 2)
    default_platform = Badge4()
    if tiers is None:
        tiers = DEFAULT_TIERS
    tier = tiers.disk(cache_dir)

    keys = [_item_key(item, default_platform) for item in items]
    resolved: dict[tuple, object] = {}
    cold: list[tuple[tuple, object, BatchItem]] = []
    seen: set[tuple] = set()
    for key, item in zip(keys, items):
        if key in seen:
            continue
        seen.add(key)
        stats.unique += 1
        cache = tiers.map_block if item.kind == "map_block" else tiers.decompose
        value = cache.get(key)
        if value is not None:
            stats.memory_hits += 1
            resolved[key] = value
            continue
        digest = stable_digest(key) if tier is not None else None
        if tier is not None:
            stored = tier.get(digest)
            if stored is not None:
                stats.disk_hits += 1
                cache.put(key, stored)
                resolved[key] = stored
                continue
        cold.append((key, digest, item))

    stats.computed = len(cold)
    stats.workers = min(effective, len(cold)) if cold else 1

    if cold and effective > 1 and len(cold) > 1:
        _run_parallel(cold, resolved, stats, tier, tiers, default_platform, executor)
    else:
        for key, digest, item in cold:
            resolved[key] = _compute_cold(
                item, key, digest, tier, tiers, default_platform
            )
            stats.serial_jobs += 1

    report = BatchReport(stats=stats)
    report.results = [
        _present(item.kind, resolved[key]) for key, item in zip(keys, items)
    ]
    return report


def _run_parallel(
    cold: "Sequence[tuple[tuple, object, BatchItem]]",
    resolved: dict,
    stats: BatchStats,
    tier,
    tiers: CacheTiers,
    default_platform: Badge4,
    executor: "Executor | None" = None,
) -> None:
    """Fan the cold items out, falling back serially where needed."""
    jobs: list[tuple[tuple, object, BatchItem, bytes]] = []
    lib_blobs: dict[int, bytes] = {}
    for key, digest, item in cold:
        try:
            jobs.append((key, digest, item, _pack_job(item, lib_blobs)))
        except Exception:
            stats.pickle_fallbacks += 1
            resolved[key] = _compute_cold(
                item, key, digest, tier, tiers, default_platform
            )
            stats.serial_jobs += 1

    if not jobs:
        return
    if len(jobs) == 1:
        key, digest, item, _ = jobs[0]
        resolved[key] = _compute_cold(item, key, digest, tier, tiers, default_platform)
        stats.serial_jobs += 1
        return

    if executor is not None:
        # Caller-owned pool: submit straight into it, never shut it
        # down, never respawn it (its lifetime belongs to the owner) —
        # items a broken injected pool orphans degrade serially like
        # any other worker failure.
        serial, respawn = _collect_jobs(executor, jobs, resolved, stats, tier, tiers)
        serial.extend(job[:3] for job in respawn)
    else:
        serial = _run_private_pool(jobs, resolved, stats, tier, tiers)

    for key, digest, item in serial:
        stats.worker_retries += 1
        resolved[key] = _compute_cold(item, key, digest, tier, tiers, default_platform)
        stats.serial_jobs += 1


def _run_private_pool(
    jobs: "Sequence[tuple[tuple, object, BatchItem, bytes]]",
    resolved: dict,
    stats: BatchStats,
    tier,
    tiers: CacheTiers,
) -> "list[tuple[tuple, object, BatchItem]]":
    """Run packed jobs in a fresh process pool, respawning it once.

    A worker that dies hard (OOM-killed, segfaulted, ``os._exit``)
    breaks the *whole* ``ProcessPoolExecutor``: every outstanding
    future raises ``BrokenProcessPool`` even though those items never
    ran and are not individually at fault.  They get one fresh pool —
    counted in ``stats.pool_respawns`` — before falling back serially;
    a second breakage (the culprit item rode along, or the host really
    is out of memory) sends the remainder to the serial path, whose
    items are returned for the caller to recompute.
    """
    serial: list[tuple[tuple, object, BatchItem]] = []
    pending = list(jobs)
    for round_index in range(2):
        workers = min(stats.workers, len(pending))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                round_serial, respawn = _collect_jobs(
                    pool, pending, resolved, stats, tier, tiers
                )
        except Exception:
            # The pool itself failed wholesale (e.g. fork refused):
            # everything not yet resolved runs serially.
            serial.extend(job[:3] for job in pending if job[0] not in resolved)
            return serial
        serial.extend(round_serial)
        if not respawn:
            return serial
        if round_index == 0:
            stats.pool_respawns += 1
            pending = respawn
        else:
            serial.extend(job[:3] for job in respawn)
    return serial


def _collect_jobs(
    pool: Executor,
    jobs: "Sequence[tuple[tuple, object, BatchItem, bytes]]",
    resolved: dict,
    stats: BatchStats,
    tier,
    tiers: CacheTiers,
) -> "tuple[list, list]":
    """Submit packed jobs to ``pool``; classify what needs retrying.

    Returns ``(serial, respawn)``: ``serial`` holds items whose *job*
    failed (the work itself raised — rerun it in-process, where a
    deterministic failure will surface to the caller), ``respawn``
    holds items (with their packed blobs) whose *pool* died under them
    (``BrokenExecutor`` — the work may never have run, so a fresh pool
    is worth one try).  Submission is guarded too: a pool that breaks
    mid-batch refuses every later ``submit`` with the same exception.
    """
    serial: list[tuple[tuple, object, BatchItem]] = []
    respawn: list[tuple[tuple, object, BatchItem, bytes]] = []
    futures = []
    for key, digest, item, blob in jobs:
        try:
            futures.append((key, digest, item, blob, pool.submit(_execute_job, blob)))
        except BrokenExecutor:
            respawn.append((key, digest, item, blob))
        except Exception:
            serial.append((key, digest, item))
    for key, digest, item, blob, future in futures:
        try:
            value = future.result()
        except BrokenExecutor:
            respawn.append((key, digest, item, blob))
            continue
        except Exception:
            serial.append((key, digest, item))
            continue
        _merge(item.kind, key, digest, value, tier, tiers)
        resolved[key] = value
        stats.parallel_jobs += 1
    return serial, respawn
