"""Code rewriting: a mapping solution back to executable source.

The output of ``Decompose`` is algebra (elements + residual); what the
designer ships is *code*.  The rewriter emits a small Python function
that calls the chosen library elements and combines their outputs with
the Horner form of the residual — and, for verification, can evaluate
the mapped program against the original polynomial at arbitrary
points (the semantic-equivalence check our tests rely on).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping

from repro.errors import MappingError
from repro.mapping.decompose import MappingSolution
from repro.platform.tally import OperationTally
from repro.symalg.expression import to_source
from repro.symalg.horner import horner

__all__ = ["MappedProgram", "rewrite"]


@dataclass(frozen=True)
class MappedProgram:
    """Executable form of a mapping solution."""

    name: str
    solution: MappingSolution
    source: str
    inputs: tuple[str, ...]

    def evaluate(
        self,
        env: Mapping[str, Fraction | float],
        kernels: Mapping[str, Callable] | None = None,
    ):
        """Run the mapped program.

        Element calls are computed from their *bound polynomials* by
        default (exact semantics); pass ``kernels`` to use real
        implementations instead (e.g. fixed-point ones) and observe
        accuracy loss.
        """
        values: dict[str, Fraction | float] = dict(env)
        for step in self.solution.steps:
            symbol = step.output_symbol
            if kernels is not None and step.element.name in kernels:
                args = [env[actual] for _formal, actual in step.binding]
                values[symbol] = kernels[step.element.name](*args)
            else:
                values[symbol] = step.bound_polynomial().evaluate(env)
        return self.solution.residual.evaluate(values)

    def cost_tally(self) -> OperationTally:
        """Total per-call tally: element costs + residual Horner ops."""
        total = OperationTally()
        for step in self.solution.steps:
            total.merge(step.element.cost)
        count = horner(self.solution.residual).op_count()
        total.fp_add += count.adds
        total.fp_mul += count.muls
        total.fp_div += count.divs
        total.call += count.calls
        return total


def rewrite(solution: MappingSolution, name: str = "mapped") -> MappedProgram:
    """Emit source for a mapping solution.

    >>> # doctest-style sketch; see tests/mapping/test_rewriter.py
    """
    inputs = _program_inputs(solution)
    lines = [f"def {name}({', '.join(inputs)}):"]
    if not solution.steps and solution.residual.is_zero():
        lines.append("    return 0")
    for step in solution.steps:
        args = ", ".join(actual for _formal, actual in step.binding)
        lines.append(f"    {step.output_symbol} = {step.element.name}({args})")
    residual_expr = horner(solution.residual)
    lines.append(f"    return {to_source(residual_expr)}")
    source = "\n".join(lines)
    return MappedProgram(name, solution, source, inputs)


def _program_inputs(solution: MappingSolution) -> tuple[str, ...]:
    names: set[str] = set()
    for step in solution.steps:
        names.update(actual for _f, actual in step.binding)
    symbols = {step.output_symbol for step in solution.steps}
    names.update(set(solution.residual.variables) - symbols)
    if not names:
        raise MappingError("mapped program has no inputs at all")
    return tuple(sorted(names))
