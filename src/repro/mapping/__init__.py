"""``repro.mapping`` — the paper's contribution (Section 3.3).

Branch-and-bound decomposition of target polynomials into complex
library elements via simplification modulo side relations, candidate
generation by symbolic manipulation, block matching for multi-output
elements, code rewriting, and the full three-step methodology driver.

The entry points (:func:`decompose`, :func:`map_block`) and the
candidate generators are memoized — see :mod:`repro.mapping.cache` for
the fingerprinting contract, :func:`mapping_cache_stats` for hit
rates, and :func:`clear_mapping_caches` for cold-start measurements.
"""

from repro.mapping.cache import (clear_mapping_caches, fingerprint_block,
                                 fingerprint_library, fingerprint_platform,
                                 mapping_cache_stats)
from repro.mapping.candidates import (CandidateForm, all_manipulations,
                                      structural_hints)
from repro.mapping.decompose import (DecomposeResult, MappingSolution,
                                     decompose, map_block, residual_cost)
from repro.mapping.flow import FlowReport, MappingPass, MethodologyFlow
from repro.mapping.match import (BlockMatch, Instantiation,
                                 enumerate_instantiations, match_block)
from repro.mapping.rewriter import MappedProgram, rewrite

__all__ = [
    "Instantiation", "BlockMatch", "enumerate_instantiations", "match_block",
    "CandidateForm", "all_manipulations", "structural_hints",
    "decompose", "map_block", "MappingSolution", "DecomposeResult",
    "residual_cost",
    "rewrite", "MappedProgram",
    "MethodologyFlow", "MappingPass", "FlowReport",
    "mapping_cache_stats", "clear_mapping_caches",
    "fingerprint_block", "fingerprint_library", "fingerprint_platform",
]
