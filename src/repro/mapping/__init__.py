"""``repro.mapping`` — the paper's contribution (Section 3.3).

Branch-and-bound decomposition of target polynomials into complex
library elements via simplification modulo side relations, candidate
generation by symbolic manipulation, block matching for multi-output
elements, code rewriting, and the full three-step methodology driver.

The entry points (:func:`decompose`, :func:`map_block`) and the
candidate generators are memoized in two tiers — the in-process LRU
and an optional persistent disk store — bundled per owner as a
:class:`~repro.mapping.cache.CacheTiers`.  The typed front door is
:class:`repro.api.MappingSession`, which owns one tier bundle and
exposes the whole methodology; the module-level ``map_block`` /
``configure`` family remains as deprecated shims over the process-wide
:data:`~repro.mapping.cache.DEFAULT_TIERS`.  See
:mod:`repro.mapping.cache` for the fingerprinting and serialization
contracts, :func:`cache_stats` for hit rates,
:func:`clear_mapping_caches` for cold-start measurements, and
:mod:`repro.mapping.batch` (:func:`run_batch`) for mapping whole
(block × library × platform) work sets with dedup and process
fan-out.
"""

from repro.mapping.batch import BatchItem, BatchReport, BatchStats, run_batch
from repro.mapping.cache import (
    DEFAULT_TIERS,
    CacheTiers,
    cache_stats,
    clear_all,
    clear_mapping_caches,
    configure,
    fingerprint_block,
    fingerprint_library,
    fingerprint_platform,
    mapping_cache_stats,
    shared_cache_stats,
)
from repro.mapping.candidates import (
    CandidateForm,
    all_manipulations,
    structural_hints,
)
from repro.mapping.decompose import (
    DecomposeResult,
    MappingSolution,
    decompose,
    map_block,
    map_block_pareto,
    residual_cost,
)
from repro.mapping.flow import (
    FlowReport,
    MappingPass,
    MethodologyFlow,
    SweepEntry,
    SweepReport,
    methodology_blocks,
)
from repro.mapping.match import (
    BlockMatch,
    Instantiation,
    enumerate_instantiations,
    match_block,
)
from repro.mapping.pareto import (
    BlockParetoResult,
    Objectives,
    ParetoPoint,
    pareto_front,
    score_element,
    score_match,
)
from repro.mapping.rewriter import MappedProgram, rewrite

__all__ = [
    "Instantiation",
    "BlockMatch",
    "enumerate_instantiations",
    "match_block",
    "CandidateForm",
    "all_manipulations",
    "structural_hints",
    "decompose",
    "map_block",
    "map_block_pareto",
    "MappingSolution",
    "DecomposeResult",
    "residual_cost",
    "Objectives",
    "ParetoPoint",
    "BlockParetoResult",
    "pareto_front",
    "score_match",
    "score_element",
    "rewrite",
    "MappedProgram",
    "MethodologyFlow",
    "MappingPass",
    "FlowReport",
    "methodology_blocks",
    "SweepEntry",
    "SweepReport",
    "BatchItem",
    "BatchReport",
    "BatchStats",
    "run_batch",
    "CacheTiers",
    "DEFAULT_TIERS",
    "cache_stats",
    "mapping_cache_stats",
    "shared_cache_stats",
    "clear_mapping_caches",
    "clear_all",
    "configure",
    "fingerprint_block",
    "fingerprint_library",
    "fingerprint_platform",
]
