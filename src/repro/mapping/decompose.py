"""The library-mapping algorithm (Table 2 of the paper).

``decompose`` searches for a cover of the target polynomial by library
elements:

* the *solution tree* holds partially simplified forms; the root is the
  target (after ``AllManipulations`` seeding);
* each edge applies one side relation — an instantiated library element
  — via ``simplify`` modulo the side-relation ideal (Groebner normal
  form with the program variables outranking the element-output
  symbols);
* a node whose polynomial contains no program variables is a solution:
  the target is expressed entirely over element outputs (plus a cheap
  residual combination);
* the bound is the best cost seen so far, initialized with the cost of
  *not* mapping (evaluating the target itself, Horner-form, at
  reference prices) — ``boundVal[i] = Performance(exp_tree[i])`` in the
  paper's pseudo-code; branches whose element cost alone exceeds it are
  pruned.

Worst case remains exponential (the paper says so too); node and depth
limits keep practice polite.

Entry points come in two layers.  The session facade
(:class:`repro.api.MappingSession`) calls the ``_*_cached`` internals
with an explicit :class:`~repro.mapping.cache.CacheTiers`; the
module-level :func:`map_block` / :func:`map_block_pareto` are
deprecated shims over the process-wide default tiers, kept for the
paper-reproduction scripts that predate sessions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace

from repro.errors import GroebnerExplosion
from repro.frontend.extract import TargetBlock
from repro.library.catalog import Library
from repro.mapping.cache import (
    DEFAULT_TIERS,
    CacheTiers,
    DiskCache,
    _warn_deprecated,
    fingerprint_block,
    fingerprint_library,
    fingerprint_platform,
    stable_digest,
)
from repro.mapping.candidates import structural_hints
from repro.mapping.match import (
    BlockMatch,
    Instantiation,
    enumerate_instantiations,
    match_block,
)
from repro.platform.badge4 import Badge4
from repro.platform.tally import OperationTally
from repro.symalg.horner import horner
from repro.symalg.ideal import simplify_modulo
from repro.symalg.polynomial import Polynomial

__all__ = [
    "MappingSolution",
    "DecomposeResult",
    "decompose",
    "map_block",
    "map_block_pareto",
    "residual_cost",
]

#: Legacy aliases for the default tiers' caches (external pokers and
#: pre-session tests import these names; new code goes through a
#: :class:`~repro.mapping.cache.CacheTiers`).
_DECOMPOSE_CACHE = DEFAULT_TIERS.decompose
_MAP_BLOCK_CACHE = DEFAULT_TIERS.map_block


def _decompose_key(
    target: Polynomial,
    library: Library,
    platform: Badge4,
    tolerance: float,
    accuracy_budget: float,
    max_depth: int,
    max_nodes: int,
    use_hints: bool,
    use_bounding: bool,
) -> tuple:
    """The cache key of one decompose work item.

    Shared between :func:`decompose` and the batch engine so a batch
    prewarm and a later direct call land on the same cache line — in
    memory (hashable tuple) and on disk (via
    :func:`~repro.mapping.cache.stable_digest`).
    """
    return (
        "decompose",
        target,
        fingerprint_library(library),
        fingerprint_platform(platform),
        tolerance,
        accuracy_budget,
        max_depth,
        max_nodes,
        use_hints,
        use_bounding,
    )


def _map_block_key(
    block: TargetBlock,
    library: Library,
    platform: Badge4,
    tolerance: float,
    accuracy_budget: float,
) -> tuple:
    """The cache key of one block-match work item (see above)."""
    return (
        "map_block",
        fingerprint_block(block),
        fingerprint_library(library),
        fingerprint_platform(platform),
        tolerance,
        accuracy_budget,
    )


def _tier_for(cache_dir) -> DiskCache | None:
    """The disk tier a legacy call should use: explicit dir > global
    config; ``REPRO_NO_CACHE`` wins even over an explicit per-call
    directory (see :meth:`~repro.mapping.cache.CacheTiers.disk`)."""
    return DEFAULT_TIERS.disk(cache_dir)


def residual_cost(poly: Polynomial, platform: Badge4) -> float:
    """Cycles to evaluate ``poly`` as generic (reference-grade) code.

    Horner-form operation counts priced as soft-float ops: the cost of
    leaving this piece of the target unmapped.
    """
    if poly.is_zero() or poly.is_constant():
        return 0.0
    count = horner(poly).op_count()
    tally = OperationTally(fp_add=count.adds, fp_mul=count.muls, fp_div=count.divs)
    tally.call += count.calls
    return platform.cost_model.cycles(tally)


@dataclass(frozen=True)
class MappingSolution:
    """A cover: the elements applied and the residual glue polynomial."""

    steps: tuple[Instantiation, ...]
    residual: Polynomial
    element_cycles: float
    residual_cycles: float
    accuracy_loss: float

    @property
    def total_cycles(self) -> float:
        """Element cost plus residual-evaluation cost, in cycles."""
        return self.element_cycles + self.residual_cycles

    def element_names(self) -> list[str]:
        """Names of the applied elements, in application order."""
        return [step.element.name for step in self.steps]

    def describe(self) -> str:
        """One-line human-readable account of the cover."""
        if not self.steps:
            return f"unmapped (residual {self.residual})"
        used = " + ".join(str(s) for s in self.steps)
        return f"{used}; residual = {self.residual}"


@dataclass(frozen=True)
class DecomposeResult:
    """Search outcome plus statistics (for the Table 2 runtime bench).

    Frozen: :func:`decompose` memoizes results and returns the cached
    instance to every caller, so mutation would poison the cache.
    """

    best: MappingSolution
    nodes_explored: int
    solutions_found: int
    pruned: int

    @property
    def mapped(self) -> bool:
        """True iff the best solution uses at least one library element."""
        return bool(self.best.steps)


@dataclass(order=True)
class _Node:
    priority: float
    counter: int
    polynomial: Polynomial = field(compare=False)
    steps: tuple[Instantiation, ...] = field(compare=False)
    cost: float = field(compare=False)
    accuracy: float = field(compare=False)


def decompose(
    target: Polynomial,
    library: Library,
    platform: Badge4 | None = None,
    *,
    tolerance: float = 1e-9,
    accuracy_budget: float = float("inf"),
    max_depth: int = 3,
    max_nodes: int = 500,
    use_hints: bool = True,
    use_bounding: bool = True,
    cache_dir: "str | None" = None,
) -> DecomposeResult:
    """Map ``target`` into ``library`` elements (Table 2's ``Decompose``).

    Returns the best-cost solution with sufficient accuracy; if no
    element helps, the result is the unmapped solution (residual ==
    target).

    ``use_hints`` / ``use_bounding`` exist for ablation: they disable
    the manipulation-guided candidate ordering and the branch-and-bound
    cost pruning respectively (both on in the paper's algorithm).

    Results are memoized in two tiers: the in-process LRU (repeating a
    decomposition in the inner loop of the methodology's mapping passes
    returns the cached result without searching) and, when a cache dir
    is configured, the persistent disk tier — a fresh process re-running
    the same mapping starts warm.  This module-level form uses the
    process-wide default tiers; ``cache_dir`` overrides their disk
    directory for this call.  Session users get the same search with
    session-owned tiers via :meth:`repro.api.MappingSession.decompose`.
    """
    return _decompose_cached(
        target,
        library,
        platform or Badge4(),
        tolerance=tolerance,
        accuracy_budget=accuracy_budget,
        max_depth=max_depth,
        max_nodes=max_nodes,
        use_hints=use_hints,
        use_bounding=use_bounding,
        tiers=DEFAULT_TIERS,
        cache_dir=cache_dir,
    )


def _decompose_cached(
    target: Polynomial,
    library: Library,
    platform: Badge4,
    *,
    tolerance: float,
    accuracy_budget: float,
    max_depth: int,
    max_nodes: int,
    use_hints: bool,
    use_bounding: bool,
    tiers: CacheTiers,
    cache_dir: "str | None" = None,
) -> DecomposeResult:
    """The two-tier cached search against an explicit tier bundle."""
    key = _decompose_key(
        target,
        library,
        platform,
        tolerance,
        accuracy_budget,
        max_depth,
        max_nodes,
        use_hints,
        use_bounding,
    )
    cached = tiers.decompose.get(key)
    if cached is not None:
        return cached
    tier = tiers.disk(cache_dir)
    digest = stable_digest(key) if tier is not None else None
    if tier is not None:
        stored = tier.get(digest)
        if stored is not None:
            tiers.decompose.put(key, stored)
            return stored
    result = _decompose_uncached(
        target,
        library,
        platform,
        tolerance=tolerance,
        accuracy_budget=accuracy_budget,
        max_depth=max_depth,
        max_nodes=max_nodes,
        use_hints=use_hints,
        use_bounding=use_bounding,
    )
    tiers.decompose.put(key, result)
    if tier is not None:
        tier.put(digest, result)
    return result


def _decompose_uncached(
    target: Polynomial,
    library: Library,
    platform: Badge4,
    *,
    tolerance: float,
    accuracy_budget: float,
    max_depth: int,
    max_nodes: int,
    use_hints: bool,
    use_bounding: bool,
) -> DecomposeResult:
    """The actual branch-and-bound search behind :func:`decompose`."""
    program_vars = frozenset(target.variables)
    hints = structural_hints(target) if use_hints else []

    unmapped = MappingSolution(
        steps=(),
        residual=target,
        element_cycles=0.0,
        residual_cycles=residual_cost(target, platform),
        accuracy_loss=0.0,
    )
    best = unmapped
    bound = unmapped.total_cycles

    counter = itertools.count()
    root = _Node(0.0, next(counter), target, (), 0.0, 0.0)
    frontier: list[_Node] = [root]
    explored = 0
    solutions = 1  # the unmapped fallback counts as found
    pruned = 0

    while frontier and explored < max_nodes:
        node = heapq.heappop(frontier)
        explored += 1

        if node.steps:
            # Every simplified form is a candidate solution: the residual
            # (which may still involve program variables, as in the
            # paper's  x + y^2*x*p  example) is priced as generic code.
            res_cycles = residual_cost(node.polynomial, platform)
            total = node.cost + res_cycles
            solutions += 1
            if total < bound and node.accuracy <= accuracy_budget:
                bound = total
                best = MappingSolution(
                    node.steps, node.polynomial, node.cost, res_cycles, node.accuracy
                )

        residual_vars = program_vars & set(node.polynomial.variables)
        if not residual_vars:
            continue  # fully covered: no further side relation can help
        if len(node.steps) >= max_depth:
            continue

        for inst in _candidate_instantiations(
            node.polynomial, library, program_vars, hints, tolerance
        ):
            if len(node.steps):
                # Fresh output symbol per application along this path.
                inst = replace(inst, tag=str(len(node.steps)))
            element_cycles = platform.cost_model.cycles(inst.element.cost)
            cost = node.cost + element_cycles
            if use_bounding and cost >= bound:
                pruned += 1
                continue
            accuracy = node.accuracy + inst.element.accuracy
            if accuracy > accuracy_budget:
                pruned += 1
                continue

            # The paper's "within an acceptable tolerance" test: if the
            # bound element polynomial approximates the node wholesale
            # (e.g. the node is a truncation of the element's series),
            # accept an approximate full cover, charging the distance
            # to the accuracy budget.
            bound_poly = inst.bound_polynomial()
            distance = bound_poly.max_coefficient_distance(node.polynomial)
            allowed = max(inst.element.accuracy, tolerance)
            if 0 < distance <= allowed:
                approx_accuracy = accuracy + distance
                if approx_accuracy <= accuracy_budget:
                    heapq.heappush(
                        frontier,
                        _Node(
                            cost,
                            next(counter),
                            Polynomial.variable(inst.output_symbol),
                            node.steps + (inst,),
                            cost,
                            approx_accuracy,
                        ),
                    )
                    continue

            order = _elimination_order(node.polynomial, program_vars, inst)
            try:
                result = simplify_modulo(
                    node.polynomial, [inst.side_relation()], order
                )
            except GroebnerExplosion:
                pruned += 1
                continue
            if result == node.polynomial:
                continue  # the element did not participate
            heapq.heappush(
                frontier,
                _Node(
                    cost,
                    next(counter),
                    result,
                    node.steps + (inst,),
                    cost,
                    accuracy,
                ),
            )

    return DecomposeResult(best, explored, solutions, pruned)


def _elimination_order(
    poly: Polynomial, program_vars: frozenset[str], inst: Instantiation
) -> list[str]:
    """Program variables outrank every element-output symbol."""
    true_vars = sorted(set(poly.variables) & program_vars)
    rel_vars = sorted(
        (set(inst.side_relation().polynomial.variables) & program_vars)
        - set(true_vars)
    )
    symbols = sorted(set(poly.variables) - program_vars)
    return true_vars + rel_vars + symbols + [inst.output_symbol]


def _candidate_instantiations(
    poly: Polynomial,
    library: Library,
    program_vars: frozenset[str],
    hints: list[Polynomial],
    tolerance: float,
) -> list[Instantiation]:
    """Side-relation candidates for one node, best-first.

    Ranking implements the paper's guidance: relations whose bound
    polynomial *is* the node (exact cover) come first, then relations
    matching a structural hint from ``AllManipulations``, then the rest
    by ascending element cost.
    """
    remaining = set(poly.variables) & program_vars
    if not remaining:
        return []
    scored: list[tuple[int, float, Instantiation]] = []
    # Canonical (name-sorted) element order: tie-breaking and the
    # truncation below must not depend on library assembly order, or
    # the order-independent library fingerprint would be unsound.
    for element in sorted(library, key=lambda e: e.name):
        if element.n_outputs > 1:
            continue  # block elements are handled by map_block
        for inst in enumerate_instantiations(element, poly, tolerance):
            # Bindings may reference earlier element outputs (MAC-style
            # chaining); application tagging keeps symbols fresh, so
            # self-referential relations cannot arise.
            bound_poly = inst.bound_polynomial()
            if not set(bound_poly.variables) & remaining:
                continue
            if bound_poly.almost_equal(poly, tolerance):
                rank = 0
            elif any(bound_poly.almost_equal(h, tolerance) for h in hints):
                rank = 1
            else:
                rank = 2
            scored.append((rank, float(element.cost.total_ops()), inst))
    scored.sort(key=lambda t: (t[0], t[1]))
    return [inst for _, _, inst in scored[:24]]


def map_block(
    block: TargetBlock,
    library: Library,
    platform: Badge4 | None = None,
    *,
    tolerance: float = 1e-6,
    accuracy_budget: float = float("inf"),
    cache_dir: "str | None" = None,
) -> tuple[BlockMatch | None, list[BlockMatch]]:
    """Deprecated module-level block mapping over the process globals.

    This is the one-step matching that sends the IMDCT loop nest to
    ``IppsMDCTInv_MP3_32s``: every candidate element whose rows match
    the block's polynomials within tolerance is characterized, and the
    cheapest with sufficient accuracy wins.

    Returns ``(winner_or_None, all_matches)``.  Memoized in the
    process-wide default tiers (``cache_dir`` overrides their disk
    directory), which is exactly why it is deprecated: it reads global
    cache state a caller cannot scope.  Use
    :meth:`repro.api.MappingSession.map` — same search, same cache
    keys, session-owned tiers, and a typed result whose ``to_json()``
    is the service's wire format.
    """
    _warn_deprecated(
        "module-level map_block()",
        "use repro.api.MappingSession.map() (sessions own the cache "
        "tiers this call reads from process globals)",
    )
    return _map_block_cached(
        block,
        library,
        platform or Badge4(),
        tolerance,
        accuracy_budget,
        DEFAULT_TIERS,
        cache_dir,
    )


def _map_block_cached(
    block: TargetBlock,
    library: Library,
    platform: Badge4,
    tolerance: float,
    accuracy_budget: float,
    tiers: CacheTiers,
    cache_dir: "str | None" = None,
) -> tuple[BlockMatch | None, list[BlockMatch]]:
    """Two-tier cached block matching against an explicit tier bundle.

    Re-mapping the same block against the same library ladder (every
    pass of :meth:`~repro.mapping.flow.MethodologyFlow.run_passes`,
    every benchmark round, every fresh CI process with a warm cache
    dir) is a cache hit.
    """
    key = _map_block_key(block, library, platform, tolerance, accuracy_budget)
    cached = tiers.map_block.get(key)
    if cached is not None:
        winner, matches = cached
        return winner, list(matches)
    tier = tiers.disk(cache_dir)
    digest = stable_digest(key) if tier is not None else None
    if tier is not None:
        stored = tier.get(digest)
        if stored is not None:
            tiers.map_block.put(key, stored)
            winner, matches = stored
            return winner, list(matches)
    value = _map_block_uncached(block, library, platform, tolerance, accuracy_budget)
    tiers.map_block.put(key, value)
    if tier is not None:
        tier.put(digest, value)
    return value[0], list(value[1])


def map_block_pareto(
    block: TargetBlock,
    library: Library,
    platform: Badge4 | None = None,
    *,
    tolerance: float = 1e-6,
    accuracy_budget: float = float("inf"),
    cache_dir: "str | None" = None,
    measure: bool = False,
    stimulus=None,
) -> "BlockParetoResult":
    """Deprecated multi-objective :func:`map_block` over the globals:
    the Pareto front over (cycles, energy, accuracy) instead of a
    single scalar winner.  Use :meth:`repro.api.MappingSession.pareto`.

    Every adequate match is scored on ``platform`` — cycles by the
    processor model, Joules by the board's energy model, accuracy from
    the element label — and the non-dominated set is returned as a
    :class:`~repro.mapping.pareto.BlockParetoResult`.  The scalar API
    is the cycles-only projection: ``result.cycles_winner`` equals
    ``map_block(...)[0]`` by construction.

    The match list is shared with :func:`map_block` through both cache
    tiers (same key, same value); only the energy scoring happens per
    call, in-process, so fronts can never be served stale across
    energy-model changes.

    ``measure=True`` additionally runs every candidate's generated
    fixed-point kernel against the exact float64 reference
    (:func:`repro.codegen.verify.match_measurer`) and attaches
    ``measured_accuracy`` / ``snr_db`` to each point's objectives;
    ``stimulus`` overrides the workload's deterministic input vectors.
    Measurement is derived like energy — never cached, never part of
    the cache key — so measured and unmeasured calls share hits.
    """
    _warn_deprecated(
        "module-level map_block_pareto()",
        "use repro.api.MappingSession.pareto()",
    )
    return _map_block_pareto_cached(
        block,
        library,
        platform or Badge4(),
        tolerance,
        accuracy_budget,
        DEFAULT_TIERS,
        cache_dir,
        measure=measure,
        stimulus=stimulus,
    )


def _map_block_pareto_cached(
    block: TargetBlock,
    library: Library,
    platform: Badge4,
    tolerance: float,
    accuracy_budget: float,
    tiers: CacheTiers,
    cache_dir: "str | None" = None,
    *,
    measure: bool = False,
    stimulus=None,
) -> "BlockParetoResult":
    """Front derivation over the cached match list (derived-front
    contract: energy — and measurement, when requested — is always
    scored fresh, in-process)."""
    from repro.mapping.pareto import BlockParetoResult

    _winner, matches = _map_block_cached(
        block, library, platform, tolerance, accuracy_budget, tiers, cache_dir
    )
    measure_fn = None
    if measure:
        from repro.codegen.verify import match_measurer

        measure_fn = match_measurer(block, stimulus=stimulus)
    return BlockParetoResult.from_matches(
        block.name, platform, matches, measure=measure_fn
    )


def _map_block_uncached(
    block: TargetBlock,
    library: Library,
    platform: Badge4,
    tolerance: float,
    accuracy_budget: float,
) -> tuple[BlockMatch | None, tuple[BlockMatch, ...]]:
    """The search behind :func:`map_block`, in LRU-value shape."""
    matches: list[BlockMatch] = []
    # Name-sorted for the same reason as _candidate_instantiations: the
    # cost-sort below must break ties independent of assembly order.
    for element in sorted(library, key=lambda e: e.name):
        if element.n_outputs != len(block.outputs):
            continue
        found = match_block(element, block, tolerance)
        if found is not None and element.accuracy <= accuracy_budget:
            matches.append(found)
    matches.sort(key=lambda m: platform.cost_model.cycles(m.element.cost))
    return (matches[0], tuple(matches)) if matches else (None, ())
