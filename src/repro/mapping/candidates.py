"""Candidate generation: ``AllManipulations`` of Table 2.

"The algorithm also applies tree-height reduction, factorization,
substitution, expansion, and Horner-based transform on S.  As a result,
there are several polynomials representing the target code (exp_tree),
which can [be] used to guide the initial side relation selection
process."

Each manipulation yields an equivalent form of the target; the forms'
*structure* (factors, nested groups) seeds which side relations the
branch-and-bound tries first at depth 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.cache import LRUCache
from repro.symalg.expression import Expression
from repro.symalg.factor import factor
from repro.symalg.horner import horner
from repro.symalg.polynomial import Polynomial
from repro.symalg.treeheight import reduce_tree_height

__all__ = ["CandidateForm", "all_manipulations", "structural_hints"]

#: Polynomials are immutable and hashable, so they key their own
#: manipulation results directly.
_MANIPULATIONS_CACHE = LRUCache(maxsize=1024, name="all_manipulations")
_HINTS_CACHE = LRUCache(maxsize=1024, name="structural_hints")


@dataclass(frozen=True)
class CandidateForm:
    """One equivalent representation of the target."""

    label: str
    expression: Expression

    def op_count(self):
        """Operation counts of this form's expression tree."""
        return self.expression.op_count()


def all_manipulations(target: Polynomial) -> list[CandidateForm]:
    """The manipulation set of Table 2, deduplicated by rendering.

    Memoized on the target polynomial — factorization and tree-height
    reduction are the expensive parts of candidate seeding, and the
    Decompose search asks for the same target's forms repeatedly.
    """
    cached = _MANIPULATIONS_CACHE.get(target)
    if cached is not None:
        return list(cached)
    forms = _all_manipulations_uncached(target)
    _MANIPULATIONS_CACHE.put(target, tuple(forms))
    return forms


def _all_manipulations_uncached(target: Polynomial) -> list[CandidateForm]:
    forms: list[CandidateForm] = []

    expanded = horner(target, list(target.variables))  # canonical nesting
    forms.append(CandidateForm("horner", expanded))

    if len(target.variables) > 1:
        reverse = list(reversed(target.variables))
        forms.append(CandidateForm("horner-reversed", horner(target, reverse)))

    factorization = factor(target)
    factors = factorization.factors
    nontrivial = len(factors) > 1 or any(m > 1 for _, m in factors)
    if nontrivial:
        # Rebuild a factored expression: product of Horner'd factors.
        from fractions import Fraction

        from repro.symalg.expression import Const, Mul, Pow

        parts = []
        if factorization.unit != 1:
            parts.append(Const(Fraction(factorization.unit)))
        for base, mult in factorization.factors:
            nested = horner(base)
            parts.append(nested if mult == 1 else Pow(nested, mult))
        expr = parts[0] if len(parts) == 1 else Mul(tuple(parts))
        forms.append(CandidateForm("factored", expr))

    forms.append(CandidateForm("tree-height-reduced", reduce_tree_height(expanded)))

    seen: set[str] = set()
    unique: list[CandidateForm] = []
    for form in forms:
        key = str(form.expression)
        if key not in seen:
            seen.add(key)
            unique.append(form)
    return unique


def structural_hints(target: Polynomial) -> list[Polynomial]:
    """Sub-polynomials the manipulations expose, for seeding side relations.

    Factors (and square-free parts) of the target are natural "shapes"
    a library element might implement — the Decompose algorithm scores
    side relations that equal one of these hints first.  Memoized on
    the target polynomial.
    """
    cached = _HINTS_CACHE.get(target)
    if cached is not None:
        return list(cached)
    hints = _structural_hints_uncached(target)
    _HINTS_CACHE.put(target, tuple(hints))
    return hints


def _structural_hints_uncached(target: Polynomial) -> list[Polynomial]:
    hints: list[Polynomial] = []
    factorization = factor(target)
    for base, _mult in factorization.factors:
        if not base.is_constant() and base != target:
            hints.append(base)
    # Univariate coefficient groups of the leading variable expose the
    # "inner" polynomials a Horner nesting would compute.
    if target.variables:
        main = target.variables[0]
        for _power, coeff in target.coefficients_in(main).items():
            if not coeff.is_constant() and coeff != target:
                hints.append(coeff)
    unique: list[Polynomial] = []
    seen: set[Polynomial] = set()
    for hint in hints:
        if hint not in seen:
            seen.add(hint)
            unique.append(hint)
    return unique
