"""Memoization for the mapping flow: repeated decompositions are free.

The mapping entry points (:func:`~repro.mapping.decompose.decompose`,
:func:`~repro.mapping.decompose.map_block`) and the candidate
generators are pure functions of their arguments, but their arguments
are not all hashable: a :class:`~repro.library.catalog.Library` is a
mutable collection, a :class:`~repro.platform.tally.OperationTally`
carries a ``dict``, and a :class:`~repro.platform.badge4.Badge4` owns
live model objects.  This module supplies the two missing pieces:

* **Fingerprints** — small hashable tuples that capture exactly the
  inputs the algorithms read (element polynomials, costs, cycle
  prices), so semantically equal libraries/platforms hit the same
  cache line even when they are distinct objects rebuilt per pass.
* **LRU caches** — bounded, with hit/miss counters, registered
  centrally so :func:`clear_mapping_caches` and
  :func:`mapping_cache_stats` see every cache the mapping layer owns.

Caching contract
----------------
Cached values are treated as immutable: callers receive either frozen
dataclasses or fresh shallow copies of list results, never an aliased
mutable structure that a later hit would observe mutated.  Correctness
therefore only requires that fingerprints cover every input the
algorithms depend on — a fingerprint collision between semantically
different inputs would be a bug in the fingerprint, not in the cache.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.frontend.extract import TargetBlock
from repro.library.catalog import Library
from repro.library.element import LibraryElement
from repro.platform.badge4 import Badge4
from repro.platform.tally import OperationTally

__all__ = ["LRUCache", "mapping_cache_stats", "clear_mapping_caches",
           "fingerprint_tally", "fingerprint_element", "fingerprint_library",
           "fingerprint_block", "fingerprint_platform"]

_MISS = object()

#: Every cache the mapping layer creates, for stats/clearing.
_REGISTRY: list["LRUCache"] = []


class LRUCache:
    """A bounded mapping-layer cache with least-recently-used eviction.

    >>> cache = LRUCache(maxsize=2, name="doc")
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None          # evicted: capacity 2
    True
    >>> cache.get("c")
    3
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 1)
    """

    def __init__(self, maxsize: int = 256, name: str = ""):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self._data: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0
        _REGISTRY.append(self)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it recently used)."""
        value = self._data.pop(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return default
        self._data[key] = value    # re-insert: now most recently used
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key -> value``, evicting the LRU entry when full."""
        self._data.pop(key, None)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            # dicts iterate in insertion order: first key is the LRU.
            self._data.pop(next(iter(self._data)))

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict[str, int]:
        """``{"size", "maxsize", "hits", "misses"}`` for this cache."""
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses}


def mapping_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/size statistics for every mapping-layer cache, by name."""
    return {cache.name: cache.stats() for cache in _REGISTRY}


def clear_mapping_caches() -> None:
    """Empty every mapping-layer cache (benchmarks use this between
    cold/warm phases; tests use it for isolation)."""
    for cache in _REGISTRY:
        cache.clear()


# ----------------------------------------------------------------------
# Fingerprints: hashable digests of the unhashable inputs
# ----------------------------------------------------------------------
def fingerprint_tally(tally: OperationTally) -> tuple:
    """Hashable digest of an operation tally (all counts + libm calls)."""
    return (tally.int_alu, tally.int_mul, tally.int_mac, tally.int_div,
            tally.shift, tally.fp_add, tally.fp_mul, tally.fp_div,
            tally.load, tally.store, tally.branch, tally.call,
            tuple(sorted(tally.libm_calls.items())))


def fingerprint_element(element: LibraryElement) -> tuple:
    """Hashable digest of everything the mapper reads from an element.

    Covers the polynomial representation (structural — the
    :class:`~repro.symalg.polynomial.Polynomial` hash), accuracy, and
    the cost tally; the ``kernel`` callable is deliberately excluded
    because matching and decomposition never execute it.
    """
    return (element.name, element.library, element.polynomials,
            element.accuracy, fingerprint_tally(element.cost))


def fingerprint_library(library: Library) -> tuple:
    """Order-independent digest of a library's mapped-against content.

    Two libraries with the same elements fingerprint identically even
    when assembled by different :meth:`~repro.library.catalog.Library.union`
    calls, so every pass of a benchmark ladder shares cache lines.
    """
    return tuple(sorted(fingerprint_element(e) for e in library))


def fingerprint_block(block: TargetBlock) -> tuple:
    """Digest of a target block: name, output polynomials, input frame."""
    return (block.name,
            tuple(sorted(block.outputs.items())),
            block.input_variables)


def fingerprint_platform(platform: Badge4) -> tuple:
    """Digest of the cost-model inputs of a platform.

    Only what prices a tally matters to the mapper: the processor's
    cycle costs and libm prices.  Energy and DVFS state are not read on
    the mapping path and are excluded.
    """
    spec = platform.cost_model.spec
    return (spec.name, spec.clock_hz, spec.has_fpu,
            tuple(sorted(spec.cycle_costs.items())),
            tuple(sorted(spec.libm_costs.items())),
            spec.libm_default)
