"""Memoization for the mapping flow: repeated decompositions are free.

The mapping entry points (:func:`~repro.mapping.decompose.decompose`,
:func:`~repro.mapping.decompose.map_block`) and the candidate
generators are pure functions of their arguments, but their arguments
are not all hashable: a :class:`~repro.library.catalog.Library` is a
mutable collection, a :class:`~repro.platform.tally.OperationTally`
carries a ``dict``, and a :class:`~repro.platform.badge4.Badge4` owns
live model objects.  This module supplies the missing pieces:

* **Fingerprints** — small hashable tuples that capture exactly the
  inputs the algorithms read (element polynomials, costs, cycle
  prices), so semantically equal libraries/platforms hit the same
  cache line even when they are distinct objects rebuilt per pass.
* **LRU caches** — bounded, with hit/miss/eviction counters, optionally
  registered centrally so :func:`clear_mapping_caches` and
  :func:`cache_stats` see every process-wide cache the mapping layer
  owns.
* **A persistent disk tier** — an sqlite-backed store under a
  user-configurable cache directory, keyed by a *stable* digest of the
  same fingerprints plus :data:`SCHEMA_VERSION`.  The expensive entry
  points consult it on LRU miss and write through on store, so a
  second process (a CI re-run, a fresh benchmark) starts warm.
* **:class:`CacheTiers`** — an instantiable bundle of the two mapping
  LRUs plus a disk-tier resolution policy.  A
  :class:`~repro.api.MappingSession` owns one, which is how two
  sessions with different cache directories coexist in one process
  with fully isolated statistics.  :data:`DEFAULT_TIERS` is the
  process-wide instance every legacy module-level entry point uses.

Cache-dir configuration
-----------------------
The disk tier is off by default.  The canonical way to turn it on is
an explicit :class:`~repro.api.SessionConfig` (``cache_dir=...``); the
process-wide default tiers additionally honor the environment:

* the ``REPRO_CACHE_DIR`` environment variable names a directory
  (checked dynamically, so exported knobs work without code changes;
  ``REPRO_NO_CACHE=1`` force-disables it and wins over everything), or
* the deprecated :func:`configure` pins an explicit directory, or
* a call site passes ``cache_dir=`` to ``decompose``/``map_block``/
  ``run_batch``.

A cache directory holds one sqlite file, ``mapping_cache.sqlite``.
Disk keys cannot use Python ``hash`` (randomized per process); they
are sha256 digests of a canonical text encoding of the fingerprint key
(see :func:`stable_digest`) joined with the schema version, so bumping
:data:`SCHEMA_VERSION` invalidates every stale entry at once.  A
corrupted or unreadable store trips a circuit breaker (every lookup
misses, every write is dropped, and the store is re-probed after a
cooldown) — the cache must never break the computation.

Caching contract
----------------
Cached values are treated as immutable: callers receive either frozen
dataclasses or fresh shallow copies of list results, never an aliased
mutable structure that a later hit would observe mutated.  Correctness
therefore only requires that fingerprints cover every input the
algorithms depend on — a fingerprint collision between semantically
different inputs would be a bug in the fingerprint, not in the cache.
Values that reach the disk tier additionally rely on the serialization
contract (``Polynomial.__getstate__``, ``LibraryElement.__getstate__``):
pickles carry only canonical state, and unpicklable kernels are
dropped because the mapping algorithms never execute them.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import threading
import warnings
import weakref
from fractions import Fraction
from pathlib import Path
from typing import Any, Hashable

from repro.frontend.extract import TargetBlock
from repro.library.catalog import Library
from repro.library.element import LibraryElement
from repro.platform.badge4 import Badge4
from repro.platform.tally import OperationTally
from repro.resilience import CircuitBreaker, inject
from repro.symalg.polynomial import Polynomial

__all__ = [
    "LRUCache",
    "DiskCache",
    "CacheTiers",
    "DEFAULT_TIERS",
    "SCHEMA_VERSION",
    "cache_stats",
    "mapping_cache_stats",
    "shared_cache_stats",
    "clear_shared_caches",
    "clear_mapping_caches",
    "clear_all",
    "configure",
    "disk_tier",
    "stable_digest",
    "fingerprint_tally",
    "fingerprint_element",
    "fingerprint_library",
    "fingerprint_block",
    "fingerprint_platform",
]

_MISS = object()

#: Every process-wide cache the mapping layer creates, for stats and
#: clearing.  Session-owned :class:`CacheTiers` caches stay out of it —
#: their statistics are isolated by design.
_REGISTRY: list["LRUCache"] = []

#: Bump when a change alters what cached mapping results mean: new
#: fields on DecomposeResult/BlockMatch, fingerprint coverage changes,
#: algorithm changes that affect outputs.  Entries written under any
#: other version are treated as absent.
#:
#: History: 1 — the PR-2 disk tier; 2 — the multi-platform sweep era
#: (pluggable processor registry + Pareto fronts derived from cached
#: match lists; platform identity has keyed every entry since v1, but
#: v1 entries predate the registry's non-SA-1110 specs and the
#: derived-front contract, so they are retired wholesale).
SCHEMA_VERSION = 2


def _warn_deprecated(old: str, new: str) -> None:
    """Emit the one deprecation warning a legacy entry point carries."""
    warnings.warn(
        f"{old} is deprecated; {new}",
        DeprecationWarning,
        stacklevel=3,
    )


class LRUCache:
    """A bounded mapping-layer cache with least-recently-used eviction.

    Thread-safe: the service front-end resolves requests on a worker
    thread pool, so ``get``'s pop-and-reinsert recency update and
    ``put``'s eviction must be atomic across threads, not just across
    bytecodes.

    ``register=False`` keeps a cache out of the process-wide registry:
    session-owned tiers opt out so :func:`cache_stats` and
    :func:`clear_mapping_caches` never reach across session boundaries.

    >>> cache = LRUCache(maxsize=2, name="doc")
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None          # evicted: capacity 2
    True
    >>> cache.get("c")
    3
    >>> stats = cache.stats()
    >>> stats["hits"], stats["misses"], stats["evictions"]
    (1, 1, 1)
    """

    def __init__(self, maxsize: int = 256, name: str = "", register: bool = True):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self._data: dict[Hashable, Any] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if register:
            _REGISTRY.append(self)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it recently used)."""
        with self._lock:
            value = self._data.pop(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return default
            self._data[key] = value  # re-insert: now most recently used
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key -> value``, evicting the LRU entry when full."""
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                # dicts iterate in insertion order: first key is the LRU.
                self._data.pop(next(iter(self._data)))
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict[str, int]:
        """``{"size", "maxsize", "hits", "misses", "evictions"}``."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


# ----------------------------------------------------------------------
# Fingerprints: hashable digests of the unhashable inputs
# ----------------------------------------------------------------------
def fingerprint_tally(tally: OperationTally) -> tuple:
    """Hashable digest of an operation tally (all counts + libm calls)."""
    return (
        tally.int_alu,
        tally.int_mul,
        tally.int_mac,
        tally.int_div,
        tally.shift,
        tally.fp_add,
        tally.fp_mul,
        tally.fp_div,
        tally.load,
        tally.store,
        tally.branch,
        tally.call,
        tuple(sorted(tally.libm_calls.items())),
    )


def fingerprint_element(element: LibraryElement) -> tuple:
    """Hashable digest of everything the mapper reads from an element.

    Covers the polynomial representation (structural — the
    :class:`~repro.symalg.polynomial.Polynomial` hash), accuracy, and
    the cost tally; the ``kernel`` callable is deliberately excluded
    because matching and decomposition never execute it.
    """
    return (
        element.name,
        element.library,
        element.polynomials,
        element.accuracy,
        fingerprint_tally(element.cost),
    )


#: Per-Library fingerprint memo.  A Library only ever grows (``add``
#: raises on duplicates, there is no removal), so ``len`` is a sound
#: staleness guard; weak keys keep dead libraries collectable.
_LIBRARY_FP_MEMO: "weakref.WeakKeyDictionary[Library, tuple[int, tuple]]" = (
    weakref.WeakKeyDictionary()
)


def fingerprint_library(library: Library) -> tuple:
    """Order-independent digest of a library's mapped-against content.

    Two libraries with the same elements fingerprint identically even
    when assembled by different :meth:`~repro.library.catalog.Library.union`
    calls, so every pass of a benchmark ladder shares cache lines.
    Memoized per instance (the batch engine keys every work item, and
    re-fingerprinting a 20-element library per item dominated the warm
    path).
    """
    memo = _LIBRARY_FP_MEMO.get(library)
    if memo is not None and memo[0] == len(library):
        return memo[1]
    fp = tuple(sorted(fingerprint_element(e) for e in library))
    _LIBRARY_FP_MEMO[library] = (len(library), fp)
    return fp


def fingerprint_block(block: TargetBlock) -> tuple:
    """Digest of a target block: name, output polynomials, input frame."""
    return (
        block.name,
        tuple(sorted(block.outputs.items())),
        block.input_variables,
    )


def fingerprint_platform(platform: Badge4) -> tuple:
    """Digest of the cost-model inputs of a platform.

    This is the *platform identity* that keys every mapping cache
    entry: the processor's name, clock, and full cycle/libm price
    tables — two registry entries with different cost tables can never
    share a cache line, and editing a spec's table retires its old
    entries.  The energy model and DVFS state are deliberately
    excluded: cached values (match lists, decompose results) are priced
    in cycles only, and the Pareto layer derives energy scores fresh in
    the calling process (see :mod:`repro.mapping.pareto`), so they can
    never be served stale.
    """
    spec = platform.cost_model.spec
    return (
        spec.name,
        spec.clock_hz,
        spec.has_fpu,
        tuple(sorted(spec.cycle_costs.items())),
        tuple(sorted(spec.libm_costs.items())),
        spec.libm_default,
    )


# ----------------------------------------------------------------------
# Stable digests: process-independent keys for the disk tier
# ----------------------------------------------------------------------
def _stable(obj: Any):
    """A JSON-able canonical form of a fingerprint key component.

    Python ``hash`` is randomized per process (``PYTHONHASHSEED``), so
    disk keys are built from this encoding instead.  Every type a
    fingerprint tuple can contain is covered; anything else is a bug in
    the caller's key, surfaced loudly.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]  # repr round-trips exactly
    if isinstance(obj, Fraction):
        return ["q", obj.numerator, obj.denominator]
    if isinstance(obj, Polynomial):
        # The packed representation is already canonical (variables
        # sorted, codes unique, coefficients exact); encoding it
        # directly is ~50x cheaper than rendering str(poly), which
        # term-order-sorts every polynomial in a library fingerprint.
        terms = []
        for code, coeff in sorted(obj._codes.items()):
            if isinstance(coeff, Fraction):
                terms.append([code, coeff.numerator, coeff.denominator])
            else:
                terms.append([code, coeff, 1])
        return ["P", list(obj.variables), terms]
    if isinstance(obj, (tuple, list)):
        return ["t", [_stable(x) for x in obj]]
    raise TypeError(f"cannot build a stable disk-cache key from {type(obj).__name__}")


#: Encoded-component memo keyed by ``id``.  Only tuples are memoized
#: (fingerprints are tuples, immutable, and — via the per-library
#: memo — identity-stable across a batch).  Entries hold a strong
#: reference to the tuple, so a live entry's id cannot be recycled;
#: the table is cleared wholesale when it grows past its bound.
_ENCODED_MEMO: dict[int, tuple[Any, str]] = {}
_ENCODED_MEMO_BOUND = 256


def _encoded(obj: Any) -> str:
    """Canonical JSON text of one key component (memoized for tuples)."""
    if isinstance(obj, tuple):
        entry = _ENCODED_MEMO.get(id(obj))
        if entry is not None and entry[0] is obj:
            return entry[1]
        text = json.dumps(_stable(obj), separators=(",", ":"), ensure_ascii=True)
        if len(_ENCODED_MEMO) >= _ENCODED_MEMO_BOUND:
            _ENCODED_MEMO.clear()
        _ENCODED_MEMO[id(obj)] = (obj, text)
        return text
    return json.dumps(_stable(obj), separators=(",", ":"), ensure_ascii=True)


def stable_digest(key: tuple) -> str:
    """Hex sha256 of the canonical encoding of ``key`` + schema version.

    Stable across processes and Python sessions; changes whenever the
    key's semantic content or :data:`SCHEMA_VERSION` changes.  Encoded
    per top-level component (NUL-separated — JSON text cannot contain a
    raw NUL, so the framing is unambiguous) so that the large shared
    components — a 20-element library fingerprint — are encoded once
    per batch instead of once per work item.
    """
    h = hashlib.sha256()
    h.update(str(SCHEMA_VERSION).encode("ascii"))
    for component in key:
        h.update(b"\x00")
        h.update(_encoded(component).encode("ascii"))
    return h.hexdigest()


# ----------------------------------------------------------------------
# The persistent tier
# ----------------------------------------------------------------------
class DiskCache:
    """An sqlite-backed pickle store: the mapping layer's warm tier.

    One table of ``(key, schema, payload)`` rows.  Every operation is
    failure-tolerant by design: a locked database skips the operation,
    failures never raise, and :meth:`clear` deletes the file — which
    also repairs a broken store.  Connections are opened lazily and
    re-opened after a ``fork`` (sqlite connections must not cross
    process boundaries).

    Failure policy is a :class:`~repro.resilience.CircuitBreaker`
    rather than a permanent "broken" flag: a store that cannot even be
    opened (corrupt file) trips the circuit immediately, and
    ``failure_threshold`` consecutive operation failures (locked,
    I/O-error, corruption discovered mid-read) open it too.  While the
    circuit is open every lookup misses and every write drops — the
    mapping layer serves memory-only — and after ``cooldown`` seconds
    the next access probes the store (half-open) and closes the
    circuit again on success.  A transiently-locked or repaired store
    therefore heals without operator action; breaker state is visible
    in :meth:`stats` and on every stats surface above it.

    The ``disk_cache.read`` / ``disk_cache.write`` fault sites
    (:func:`repro.resilience.inject`) sit inside the sqlite error
    handling, so chaos tests drive exactly the degradation paths real
    corruption would.

    Thread-safe: one connection is shared under an instance lock
    (``check_same_thread=False``), because the service front-end's
    worker threads all consult the same tier — sqlite would otherwise
    raise ``ProgrammingError`` (a ``DatabaseError`` subclass) from any
    non-opening thread.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        *,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock=None,
    ):
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        breaker_kwargs = {} if clock is None else {"clock": clock}
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown=cooldown,
            name=str(self.path),
            **breaker_kwargs,
        )
        self._lock = threading.RLock()

    # -- connection management -----------------------------------------
    def _connection(self) -> sqlite3.Connection | None:
        if not self.breaker.allow():
            return None
        pid = os.getpid()
        if self._conn is not None and self._pid == pid:
            return self._conn
        if self._conn is not None:
            # Inherited across fork: abandon without closing (closing
            # would checkpoint the parent's WAL from the child).
            self._conn = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=5.0, check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key TEXT PRIMARY KEY,"
                " schema INTEGER NOT NULL,"
                " payload BLOB NOT NULL)"
            )
            conn.commit()
        except sqlite3.OperationalError:
            # Locked / transiently unopenable: count toward the
            # threshold, it may clear on its own.
            self.breaker.record_failure()
            return None
        except sqlite3.DatabaseError:
            # The file is not (or no longer) a database: open the
            # circuit now — counting to the threshold against a store
            # that cannot even be opened is pointless retries.
            self.breaker.trip()
            return None
        except (sqlite3.Error, OSError):
            self.breaker.record_failure()
            return None
        self._conn, self._pid = conn, pid
        return conn

    # -- the store -------------------------------------------------------
    def get(self, digest: str) -> Any:
        """The stored value for ``digest``, or ``None`` on any miss.

        Misses include: no row, a row written under a different
        :data:`SCHEMA_VERSION`, an unreadable payload, a locked or
        corrupted database.  None of these raise.
        """
        with self._lock:
            conn = self._connection()
            if conn is None:
                self.misses += 1
                return None
            try:
                inject("disk_cache.read")
                row = conn.execute(
                    "SELECT schema, payload FROM entries WHERE key = ?",
                    (digest,),
                ).fetchone()
            except sqlite3.DatabaseError:  # locked, busy, or corrupted
                self.breaker.record_failure()
                self.misses += 1
                return None
            self.breaker.record_success()
            if row is None or row[0] != SCHEMA_VERSION:
                self.misses += 1
                return None
            try:
                value = pickle.loads(row[1])
            except Exception:  # stale/garbled payload
                self.misses += 1
                return None
            self.hits += 1
            return value

    def put(self, digest: str, value: Any) -> None:
        """Write-through ``digest -> value``; silently drops on failure."""
        with self._lock:
            conn = self._connection()
            if conn is None:
                return
            try:
                payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:  # unpicklable value: skip (not a store fault)
                return
            try:
                inject("disk_cache.write")
                conn.execute(
                    "INSERT OR REPLACE INTO entries (key, schema, payload)"
                    " VALUES (?, ?, ?)",
                    (digest, SCHEMA_VERSION, payload),
                )
                conn.commit()
            except sqlite3.DatabaseError:  # locked, busy, or corrupted
                self.breaker.record_failure()
                return
            self.breaker.record_success()
            self.writes += 1

    def clear(self) -> None:
        """Delete the store file (also repairs a broken store)."""
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
            self._conn = None
            self._pid = None
            self.breaker.reset()
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(f"{self.path}{suffix}")
                except OSError:
                    pass
            self.hits = 0
            self.misses = 0
            self.writes = 0

    def __len__(self) -> int:
        with self._lock:
            conn = self._connection()
            if conn is None:
                return 0
            try:
                count = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
            except sqlite3.Error:
                self.breaker.record_failure()
                return 0
            self.breaker.record_success()
            return count

    def stats(self) -> dict:
        """Disk-tier statistics, including the observed hit rate."""
        lookups = self.hits + self.misses
        return {
            "enabled": True,
            "path": str(self.path),
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "broken": self.breaker.state != CircuitBreaker.CLOSED,
            "breaker": self.breaker.stats(),
        }


# ----------------------------------------------------------------------
# Tier bundles: the instantiable cache-ownership unit
# ----------------------------------------------------------------------
#: Filename of the store inside a cache directory.
_DB_NAME = "mapping_cache.sqlite"

#: One DiskCache per resolved directory for the *default* tiers, shared
#: by every legacy call site so stats accumulate and ``clear_all()``
#: can reach them.  Session-owned tiers keep private memos.
_TIERS: dict[Path, DiskCache] = {}

#: Explicit configure() choice: unset / a directory / disabled (None).
_UNSET = object()


class CacheTiers:
    """The two mapping LRUs plus a disk-tier policy, as one object.

    This is the cache-ownership unit of the session facade: a
    :class:`~repro.api.MappingSession` owns exactly one ``CacheTiers``,
    so two sessions in one process can point at different cache
    directories (or none) with fully isolated hit/miss/write counters.
    The module-level entry points all share :data:`DEFAULT_TIERS`.

    Disk resolution has three modes, fixed at construction:

    * ``follow_env=True`` — the legacy process-wide behaviour:
      ``REPRO_NO_CACHE`` force-disables (it wins over everything,
      including a pinned directory), an explicitly configured
      directory wins otherwise, and ``REPRO_CACHE_DIR`` is the
      fallback.  Only :data:`DEFAULT_TIERS` uses this mode.
    * ``cache_dir=<dir>`` — pinned: the tier lives under ``<dir>``,
      environment variables are ignored (explicit configuration
      outranks the environment; see the precedence table in
      ``docs/architecture.md``).
    * ``cache_dir=None`` (the default) — persistence off.

    >>> tiers = CacheTiers()
    >>> tiers.disk() is None
    True
    >>> sorted(tiers.stats())
    ['decompose', 'disk', 'map_block']
    """

    def __init__(
        self,
        *,
        cache_dir: "str | os.PathLike[str] | None" = None,
        follow_env: bool = False,
        decompose_lru: int = 512,
        map_block_lru: int = 256,
        register: bool = False,
        tier_memo: "dict[Path, DiskCache] | None" = None,
    ):
        self.decompose = LRUCache(decompose_lru, name="decompose", register=register)
        self.map_block = LRUCache(map_block_lru, name="map_block", register=register)
        self._env_veto = follow_env
        if follow_env:
            self._configured: Any = _UNSET
        elif cache_dir is None:
            self._configured = None
        else:
            self._configured = Path(cache_dir)
        self._memo = tier_memo if tier_memo is not None else {}

    # -- disk resolution -------------------------------------------------
    def tier_at(self, cache_dir: "str | os.PathLike[str]") -> DiskCache:
        """The (memoized) disk tier rooted at ``cache_dir``."""
        path = Path(cache_dir).expanduser()
        tier = self._memo.get(path)
        if tier is None:
            tier = self._memo[path] = DiskCache(path / _DB_NAME)
        return tier

    def disk(
        self, cache_dir: "str | os.PathLike[str] | None" = None
    ) -> DiskCache | None:
        """The active disk tier (``cache_dir`` overrides per call).

        In env-following mode ``REPRO_NO_CACHE`` (any non-empty value)
        disables the tier unconditionally — it is the benchmark knob
        guaranteeing cold numbers without editing code.  Pinned and
        disabled tiers ignore the environment entirely.
        """
        if self._env_veto and os.environ.get("REPRO_NO_CACHE"):
            return None
        if cache_dir is not None:
            return self.tier_at(cache_dir)
        if self._configured is None:
            return None
        if self._configured is not _UNSET:
            return self.tier_at(self._configured)
        env_dir = os.environ.get("REPRO_CACHE_DIR")
        if not env_dir:
            return None
        return self.tier_at(env_dir)

    def configure(
        self,
        cache_dir: "str | os.PathLike[str] | None" = None,
        *,
        follow_env: bool = False,
    ) -> DiskCache | None:
        """Repoint this bundle's disk tier.

        ``configure(path)`` pins it to ``path``; ``configure(None)``
        disables it; ``configure(follow_env=True)`` reverts to
        environment-driven resolution.  Returns the now-active tier.
        """
        if follow_env:
            self._configured = _UNSET
        else:
            self._configured = None if cache_dir is None else Path(cache_dir)
        return self.disk()

    # -- observability / lifecycle ---------------------------------------
    def stats(self) -> dict:
        """The canonical per-tiers statistics shape.

        ``{"decompose": ..., "map_block": ..., "disk": ...}`` — the two
        LRU caches' counters plus the active disk tier's (or
        ``{"enabled": False}`` when persistence is off).
        """
        tier = self.disk()
        return {
            "decompose": self.decompose.stats(),
            "map_block": self.map_block.stats(),
            "disk": tier.stats() if tier is not None else {"enabled": False},
        }

    def lookup_map_block(self, key: tuple, digest: "str | None" = None):
        """The cached ``(winner, matches)`` for a prebuilt map_block
        key, or ``None`` — memory first, then the active disk tier (a
        disk hit is promoted into the LRU).  Never computes.

        This is the fleet front's routing peek: a worker that is not a
        request's shard owner consults it so cross-worker warm hits
        (present in the shared disk tier) are served locally instead
        of forwarded.  ``digest`` short-circuits re-hashing when the
        caller already holds ``stable_digest(key)``.
        """
        cached = self.map_block.get(key)
        if cached is not None:
            return cached
        tier = self.disk()
        if tier is None:
            return None
        if digest is None:
            digest = stable_digest(key)
        stored = tier.get(digest)
        if stored is not None:
            self.map_block.put(key, stored)
        return stored

    def clear_memory(self) -> None:
        """Drop both LRU caches (counters included)."""
        self.decompose.clear()
        self.map_block.clear()

    def clear(self) -> None:
        """Drop the LRUs *and* every disk tier this bundle resolves to.

        The configured tier is materialized first, so a fresh process
        (``repro cache clear``) wipes the on-disk store it points at,
        not just tiers this process happened to have opened already.
        """
        self.clear_memory()
        self.disk()
        for tier in list(self._memo.values()):
            tier.clear()

    def __repr__(self) -> str:
        if self._configured is _UNSET:
            where = "follow_env"
        elif self._configured is None:
            where = "disk=off"
        else:
            where = f"disk={self._configured}"
        return f"CacheTiers({where})"


#: The process-wide default tiers: every legacy module-level entry
#: point (``map_block`` without a session, ``run_batch(tiers=None)``)
#: and :func:`repro.api.default_session` share this instance, so their
#: statistics and cache lines are one pool, exactly as before the
#: session facade existed.
DEFAULT_TIERS = CacheTiers(follow_env=True, register=True, tier_memo=_TIERS)


# ----------------------------------------------------------------------
# Process-wide stats & clearing (shared caches + the default tiers)
# ----------------------------------------------------------------------
def _registry_stats() -> dict[str, dict]:
    stats: dict[str, dict] = {cache.name: cache.stats() for cache in _REGISTRY}
    tier = DEFAULT_TIERS.disk()
    stats["disk"] = tier.stats() if tier is not None else {"enabled": False}
    return stats


def cache_stats() -> dict[str, dict]:
    """Statistics for every *process-wide* mapping cache + disk tier.

    Per registered in-memory cache: size/maxsize/hits/misses/evictions.
    Under the ``"disk"`` key: the default tiers' active disk tier, or
    ``{"enabled": False}`` when none is configured.  Session-owned
    tiers are excluded by design; the canonical per-session shape is
    :meth:`CacheTiers.stats` (via ``MappingSession.stats()``).
    """
    return _registry_stats()


def mapping_cache_stats() -> dict[str, dict]:
    """Deprecated alias of :func:`cache_stats` (the original PR-1 name)."""
    _warn_deprecated(
        "mapping_cache_stats()",
        "use cache_stats() or CacheTiers.stats() via MappingSession.stats()",
    )
    return _registry_stats()


def shared_cache_stats() -> dict[str, dict]:
    """Statistics of the pure-function caches every session shares.

    The instantiation/manipulation/hint caches are keyed by exact
    inputs and hold platform-independent derivations, so they are
    process-wide singletons rather than session state; this reports
    them without the default tiers' own entries.
    """
    own = {id(DEFAULT_TIERS.decompose), id(DEFAULT_TIERS.map_block)}
    return {cache.name: cache.stats() for cache in _REGISTRY if id(cache) not in own}


def clear_shared_caches() -> None:
    """Empty the shared pure-function caches, leaving tier LRUs alone.

    The session-facing twin of :func:`clear_mapping_caches`:
    ``MappingSession.clear_caches()`` clears its own
    :class:`CacheTiers` plus these, without reaching into the default
    tiers a *different* session (or legacy caller) may be warming.
    """
    own = {id(DEFAULT_TIERS.decompose), id(DEFAULT_TIERS.map_block)}
    for cache in _REGISTRY:
        if id(cache) not in own:
            cache.clear()


def clear_mapping_caches() -> None:
    """Empty every process-wide in-memory mapping cache.

    Benchmarks use this between cold/warm phases; tests use it for
    isolation.  Neither disk tiers nor session-owned caches are
    touched — use :meth:`CacheTiers.clear` (or the deprecated
    :func:`clear_all`) for a truly cold start.
    """
    for cache in _REGISTRY:
        cache.clear()


def clear_all() -> None:
    """Deprecated: empty the process-wide in-memory caches *and* every
    disk tier the default tiers opened (the active one and any per-call
    ``cache_dir`` overrides).  Use ``clear_mapping_caches()`` plus
    ``DEFAULT_TIERS.clear()`` (or ``MappingSession.clear_caches()``)."""
    _warn_deprecated(
        "clear_all()",
        "use clear_mapping_caches() + CacheTiers.clear() "
        "(or MappingSession.clear_caches())",
    )
    clear_mapping_caches()
    for tier in list(_TIERS.values()):
        tier.clear()


# ----------------------------------------------------------------------
# Legacy tier configuration (deprecated shims over DEFAULT_TIERS)
# ----------------------------------------------------------------------
def _tier_at(cache_dir: "str | os.PathLike[str]") -> DiskCache:
    """The default tiers' (memoized) disk tier rooted at ``cache_dir``."""
    return DEFAULT_TIERS.tier_at(cache_dir)


def configure(
    cache_dir: "str | os.PathLike[str] | None" = None,
    *,
    follow_env: bool = False,
) -> DiskCache | None:
    """Deprecated: choose the process-wide disk tier.

    ``configure(path)`` pins the default tiers to ``path``;
    ``configure(None)`` disables them; ``configure(follow_env=True)``
    reverts to environment-driven resolution.  New code builds a
    :class:`~repro.api.SessionConfig` instead — sessions own their
    tiers, so nothing process-global needs mutating.
    """
    _warn_deprecated(
        "configure()",
        "build a repro.api.SessionConfig(cache_dir=...) "
        "(or call DEFAULT_TIERS.configure for the process default)",
    )
    return DEFAULT_TIERS.configure(cache_dir, follow_env=follow_env)


def disk_tier() -> DiskCache | None:
    """The default tiers' active disk tier, or ``None`` when off.

    ``REPRO_NO_CACHE`` (any non-empty value) always disables it,
    including one pinned by :func:`configure` — it is the benchmark
    knob guaranteeing cold numbers without editing code.
    """
    return DEFAULT_TIERS.disk()
