"""Matching library elements against target polynomials.

An element's polynomial representation lives over formal inputs
(``in0``...); using it as a side relation requires an *instantiation*:
a binding of formals to the target's variables under which the
substituted polynomial appears in (or equals) the target, within the
paper's "acceptable tolerance".

Two matching modes:

* :func:`enumerate_instantiations` — candidate bindings of a scalar
  element against a target polynomial.  Linear forms bind by
  coefficient comparison; small-arity algebraic elements (``mac``,
  side-relation style kernels) bind by bounded injective search.
* :func:`match_block` — multi-output elements (IMDCT, subband
  matrixing) against a :class:`~repro.frontend.TargetBlock`, binding
  formals to the block's inputs positionally and checking every row's
  coefficients within tolerance.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass

from repro.frontend.extract import TargetBlock
from repro.library.element import LibraryElement
from repro.mapping.cache import LRUCache, fingerprint_element
from repro.symalg.ideal import SideRelation
from repro.symalg.polynomial import Polynomial

__all__ = [
    "Instantiation",
    "BlockMatch",
    "enumerate_instantiations",
    "match_block",
]

#: Candidate bindings per (element, target) pair — the innermost loop
#: of the Decompose search, re-entered for every node that shares a
#: residual polynomial with an earlier node or an earlier call.
_INSTANTIATIONS_CACHE = LRUCache(maxsize=8192, name="instantiations")

_INDEX_RE = re.compile(r"(\d+)")


def _natural_key(name: str):
    return [int(p) if p.isdigit() else p for p in _INDEX_RE.split(name)]


@dataclass(frozen=True)
class Instantiation:
    """A concrete use of an element: formals bound to target variables.

    ``tag`` disambiguates repeated uses of the same element along one
    mapping path (each application introduces a fresh output symbol).
    """

    element: LibraryElement
    binding: tuple[tuple[str, str], ...]  # (formal, target var) pairs
    output_index: int = 0
    tag: str = ""

    @property
    def output_symbol(self) -> str:
        """The fresh symbol this application introduces (tag-suffixed)."""
        base = self.element.output_symbol(self.output_index)
        return f"{base}_{self.tag}" if self.tag else base

    def bound_polynomial(self) -> Polynomial:
        """The element polynomial over the target's variables."""
        mapping = {
            formal: Polynomial.variable(actual) for formal, actual in self.binding
        }
        return self.element.polynomials[self.output_index].substitute(mapping)

    def side_relation(self) -> SideRelation:
        """``output_symbol = bound polynomial`` for the simplifier."""
        return SideRelation(self.output_symbol, self.bound_polynomial())

    def __str__(self) -> str:
        binds = ", ".join(f"{f}={a}" for f, a in self.binding)
        return f"{self.element.name}({binds})"


@dataclass(frozen=True)
class BlockMatch:
    """A multi-output element covering a whole target block."""

    element: LibraryElement
    binding: tuple[tuple[str, str], ...]
    max_coefficient_error: float

    def __str__(self) -> str:
        return (
            f"{self.element.name} covers block "
            f"(err={self.max_coefficient_error:.2g})"
        )


def _is_simple_linear(poly: Polynomial) -> bool:
    """True for sums of single-variable degree-1 terms (no constant mix)."""
    for powers, _ in poly.iter_terms():
        if len(powers) > 1 or any(e != 1 for e in powers.values()):
            return False
    return True


def enumerate_instantiations(
    element: LibraryElement,
    target: Polynomial,
    tolerance: float = 1e-9,
    limit: int = 16,
) -> list[Instantiation]:
    """Candidate bindings of a (scalar-output) element against ``target``.

    Results are *candidates* for the Decompose search — each produces a
    side relation; whether it actually simplifies the target is decided
    by the Groebner reduction, not here.  Bindings may repeat a target
    variable across formals (``mac(x, x, y)`` computes ``x^2 + y``),
    which MAC-style decomposition chains rely on; candidates are ranked
    by how many of the target's monomials the bound polynomial shares.

    Memoized per ``(element, target, tolerance, limit)``: cached
    instantiations reference the first structurally-equal element seen,
    which is interchangeable by the fingerprint contract.
    """
    key = (fingerprint_element(element), target, tolerance, limit)
    cached = _INSTANTIATIONS_CACHE.get(key)
    if cached is not None:
        return list(cached)
    result = _enumerate_uncached(element, target, tolerance, limit)
    _INSTANTIATIONS_CACHE.put(key, tuple(result))
    return result


def _enumerate_uncached(
    element: LibraryElement, target: Polynomial, tolerance: float, limit: int
) -> list[Instantiation]:
    out: list[tuple[int, Instantiation]] = []
    target_vars = sorted(target.variables, key=_natural_key)
    if not target_vars:
        return []
    target_monomials = {frozenset(p.items()) for p, _c in target.iter_terms() if p}
    for output_index, poly in enumerate(element.polynomials):
        formals = tuple(sorted(poly.variables, key=_natural_key))
        if not formals:
            continue
        if _is_simple_linear(poly) and len(formals) > 3:
            binding = _linear_binding(poly, formals, target, tolerance)
            if binding is not None:
                out.append((0, Instantiation(element, binding, output_index)))
            continue
        if len(formals) > 3 or len(target_vars) > 8:
            continue  # bounded search only
        for combo in itertools.product(target_vars, repeat=len(formals)):
            inst = Instantiation(element, tuple(zip(formals, combo)), output_index)
            bound = inst.bound_polynomial()
            if bound.is_constant():
                continue
            shared = sum(
                1
                for p, _c in bound.iter_terms()
                if p and frozenset(p.items()) in target_monomials
            )
            out.append((-shared, inst))
    out.sort(key=lambda pair: pair[0])
    return [inst for _score, inst in out[:limit]]


def _linear_binding(
    poly: Polynomial,
    formals: tuple[str, ...],
    target: Polynomial,
    tolerance: float,
) -> tuple[tuple[str, str], ...] | None:
    """Bind a large linear form by coefficient values.

    Each formal's coefficient must appear (within tolerance) as the
    coefficient of exactly one target variable.
    """
    target_coeffs: dict[str, float] = {}
    for powers, coeff in target.iter_terms():
        if len(powers) == 1:
            ((var, e),) = powers.items()
            if e == 1:
                target_coeffs[var] = float(coeff)
    binding: list[tuple[str, str]] = []
    used: set[str] = set()
    for formal in formals:
        want = float(poly.coefficient({formal: 1}))
        found = None
        for var, have in target_coeffs.items():
            if var in used:
                continue
            if abs(have - want) <= tolerance * max(1.0, abs(want)):
                found = var
                break
        if found is None:
            return None
        used.add(found)
        binding.append((formal, found))
    return tuple(binding)


def match_block(
    element: LibraryElement, block: TargetBlock, tolerance: float = 1e-9
) -> BlockMatch | None:
    """Match a multi-output element against a whole target block.

    Formals bind to the block's input variables positionally (both
    sorted naturally: ``in0 -> y_0``, ``in1 -> y_1``, ...); the match
    succeeds when every element row equals the corresponding block
    output within coefficient tolerance.
    """
    outputs = [block.outputs[k] for k in sorted(block.outputs, key=_natural_key)]
    if element.n_outputs != len(outputs):
        return None
    formals = sorted(element.formals, key=_natural_key)
    inputs = sorted(dict.fromkeys(block.input_variables), key=_natural_key)
    if len(formals) != len(inputs):
        return None
    mapping = {f: Polynomial.variable(a) for f, a in zip(formals, inputs)}
    worst = 0.0
    for row_poly, target_poly in zip(element.polynomials, outputs):
        bound = row_poly.substitute(mapping)
        distance = bound.max_coefficient_distance(target_poly)
        worst = max(worst, distance)
        if worst > tolerance:
            return None
    return BlockMatch(element, tuple(zip(formals, inputs)), worst)
