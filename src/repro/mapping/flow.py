"""The full three-step methodology applied to the MP3 decoder (Section 4).

``MethodologyFlow`` runs exactly the paper's loop:

1. **Library characterization** — price every element of the active
   libraries on the Badge4 model.
2. **Target code identification** — decode a stream with the current
   decoder, profile it, pick the critical functions, and formulate
   their polynomials (the complex stages via the frontend on
   reference-style kernel sources).
3. **Library mapping** — match each critical block against the active
   libraries (``map_block`` for the complex elements); rebuild the
   decoder with the chosen elements; verify compliance; re-profile.

Calling :meth:`run_passes` with the paper's library ladder (LM+IH, then
LM+IH+IPP) regenerates Tables 4, 5 and 6 mechanically.

A flow can be session-bound: :meth:`repro.api.MappingSession.flow`
builds one wired to the session's cache tiers, worker count, executor
and block catalog, so every pass resolves against session-owned state
instead of process globals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import MappingError
from repro.frontend.extract import TargetBlock
from repro.library.builtin import (
    inhouse_library,
    ipp_library,
    linux_math_library,
    reference_library,
)
from repro.library.catalog import Library
from repro.mapping.batch import BatchItem, BatchStats, run_batch
from repro.mapping.cache import CacheTiers
from repro.mapping.pareto import BlockParetoResult, ParetoPoint
from repro.mp3.compliance import ComplianceReport, check_compliance
from repro.mp3.decoder import DecoderConfig, Mp3Decoder
from repro.mp3.synth_stream import EncodedStream
from repro.platform.badge4 import Badge4
from repro.platform.profiler import ProfileReport
from repro.platform.registry import DEFAULT_REGISTRY, duplicate_labels
from repro.workload import DEFAULT_WORKLOAD, DEFAULT_WORKLOAD_REGISTRY

# Compatibility aliases: the MP3 block builders lived here before the
# workload registry existed, and callers import them from the flow.
from repro.workload.mp3 import imdct_block as _imdct_block  # noqa: F401
from repro.workload.mp3 import matrixing_block as _matrixing_block  # noqa: F401

__all__ = [
    "MethodologyFlow",
    "MappingPass",
    "FlowReport",
    "SweepEntry",
    "SweepReport",
    "methodology_blocks",
]


def methodology_blocks() -> dict[str, TargetBlock]:
    """Fresh extractions of the methodology's complex target blocks.

    The public handle on the Table 4/5 work set — the IMDCT loop nest
    and the polyphase matrixing core, i.e. the default (``mp3``)
    workload of :mod:`repro.workload`, resolved through the registry.
    Each call re-runs the frontend, so callers own their copies.
    """
    return DEFAULT_WORKLOAD_REGISTRY.blocks(DEFAULT_WORKLOAD)


#: element name -> (DecoderConfig field, variant value)
_ELEMENT_TO_STAGE = {
    "float_IMDCT": ("imdct", "float"),
    "fixed_IMDCT": ("imdct", "fixed"),
    "IppsMDCTInv_MP3_32s": ("imdct", "ipp"),
    "float_SubBandSyn": ("synthesis", "float"),
    "fixed_SubBandSyn": ("synthesis", "fixed_fast"),
    "ippsSynthPQMF_MP3_32s16s": ("synthesis", "ipp"),
}


@dataclass
class MappingPass:
    """One mapping pass: libraries used, choices made, results."""

    name: str
    libraries: tuple[str, ...]
    config: DecoderConfig
    chosen_elements: dict[str, str]
    profile: ProfileReport
    compliance: ComplianceReport
    seconds: float
    energy_j: float


@dataclass
class FlowReport:
    """Everything the flow produced, in pass order."""

    passes: list[MappingPass] = field(default_factory=list)

    def pass_named(self, name: str) -> MappingPass:
        """The pass called ``name`` (raises ``KeyError`` if absent)."""
        for p in self.passes:
            if p.name == name:
                return p
        raise KeyError(name)

    def speedup_ladder(self) -> list[tuple[str, float, float]]:
        """(name, perf factor, energy factor) versus the first pass."""
        base = self.passes[0]
        return [
            (p.name, base.seconds / p.seconds, base.energy_j / p.energy_j)
            for p in self.passes
        ]


@dataclass(frozen=True)
class SweepEntry:
    """One (platform × library × block) cell of a sweep."""

    platform: str  # registry key (or the processor name)
    library: str
    block: str
    result: BlockParetoResult

    @property
    def winner_name(self) -> str | None:
        """The cycles-projection winner's element name (scalar API)."""
        winner = self.result.cycles_winner
        return winner.element.name if winner is not None else None


@dataclass
class SweepReport:
    """Everything a multi-platform sweep produced.

    Entries are ordered (platform, library, block) — the submission
    order — and every front inside obeys the canonical Pareto ordering,
    so two sweeps over the same inputs are comparable byte-for-byte via
    :meth:`to_json` regardless of worker count or cache temperature.
    """

    platforms: tuple[str, ...]
    libraries: tuple[str, ...]
    blocks: tuple[str, ...]
    entries: list[SweepEntry]
    stats: BatchStats
    #: The workload-registry key the swept blocks came from (the label
    #: only — explicit ``blocks`` overrides still sweep whatever was
    #: passed, under the flow's workload label).
    workload: str = DEFAULT_WORKLOAD

    def entry(self, platform: str, block: str, library: str) -> SweepEntry:
        """The cell for one (platform, block, library) coordinate."""
        for e in self.entries:
            if (e.platform, e.block, e.library) == (platform, block, library):
                return e
        raise KeyError((platform, block, library))

    def front(
        self, platform: str, block: str, library: str
    ) -> tuple[ParetoPoint, ...]:
        """The Pareto front at one coordinate."""
        return self.entry(platform, block, library).result.front

    def winners(self, platform: str) -> dict[tuple[str, str], str | None]:
        """Cycles-projection winners on one platform, keyed (block, library)."""
        if platform not in self.platforms:
            raise KeyError(
                f"platform {platform!r} not in this sweep; "
                f"swept: {list(self.platforms)}"
            )
        return {
            (e.block, e.library): e.winner_name
            for e in self.entries
            if e.platform == platform
        }

    def to_json(self) -> str:
        """Canonical JSON rendering (the byte-parity comparison form).

        Sorted keys, no whitespace, ``repr``-exact floats; deliberately
        free of timings, worker counts and cache statistics so that
        serial/parallel and cold/warm runs of the same sweep serialize
        identically.
        """
        payload = {
            "platforms": list(self.platforms),
            "libraries": list(self.libraries),
            "blocks": list(self.blocks),
            "workload": self.workload,
            "entries": [
                {
                    "platform": e.platform,
                    "library": e.library,
                    "block": e.block,
                    "processor": e.result.platform_name,
                    "winner": e.winner_name,
                    "front": [
                        {
                            "element": p.element_name,
                            "element_library": p.library,
                            "cycles": p.objectives.cycles,
                            "energy_j": p.objectives.energy_j,
                            "accuracy": p.objectives.accuracy,
                        }
                        for p in e.result.front
                    ],
                }
                for e in self.entries
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def format_report(self) -> str:
        """Per-platform mapping report: every cell's front, readably."""
        lines: list[str] = []
        for platform in self.platforms:
            lines.append(f"== {platform} ==")
            for e in self.entries:
                if e.platform != platform:
                    continue
                lines.append(
                    f"  {e.block} vs {e.library}: "
                    f"winner={e.winner_name or '<unmapped>'}"
                )
                for p in e.result.front:
                    o = p.objectives
                    lines.append(
                        f"    - {p.element_name:<28} "
                        f"{o.cycles:>12,.0f} cyc  "
                        f"{o.energy_j:>10.3e} J  "
                        f"err {o.accuracy:.1e}"
                    )
        return "\n".join(lines)


def _mapping_ladder() -> list[tuple[str, Library]]:
    """The paper's mapping passes: (pass name, library) rungs.

    The single construction point for the evaluation ladder —
    ``run_passes`` prepends the Original (REF-only) rung, the sweep
    takes the libraries as its defaults — so the two flows cannot
    drift apart.
    """
    base = [reference_library(), linux_math_library(), inhouse_library()]
    return [
        ("LM + IH mapping", Library.union(*base)),
        ("LM + IH + IPP mapping", Library.union(*base, ipp_library())),
    ]


def _sweep_library_ladder() -> list[Library]:
    """The default sweep libraries: the paper's two mapping passes."""
    return [library for _name, library in _mapping_ladder()]


#: Explicit "not passed" marker for sweep knobs that default to the
#: flow's own configuration (``None`` is a meaningful value for both).
_UNSET = object()


class MethodologyFlow:
    """Drives characterize -> identify -> map on the MP3 decoder.

    ``workers`` sets the batch-mapping fan-out: each pass's critical
    blocks are submitted to :func:`~repro.mapping.batch.run_batch`
    together, deduplicated against both cache tiers, and the cold
    remainder mapped in parallel worker processes.  ``None`` (default)
    keeps everything serial and in-process — results are identical
    either way.  ``cache_dir`` pins the persistent tier for this flow
    (otherwise the global ``REPRO_CACHE_DIR`` configuration applies).

    ``executor`` injects a caller-owned
    :class:`concurrent.futures.Executor` into every batch submission
    (see :func:`~repro.mapping.batch.run_batch`): a long-running
    front-end — the mapping service — keeps one warm pool across
    requests instead of forking per call.  ``blocks`` overrides the
    extracted complex target blocks; the service injects its shared
    catalog so frontend extraction happens once per process, not once
    per flow.  ``tiers`` binds the flow to an explicit
    :class:`~repro.mapping.cache.CacheTiers` (a session's); ``None``
    keeps the process-wide default tiers.  ``registry`` is the
    processor catalog :meth:`sweep` resolves platform keys against
    (sessions pass their configured one; the default registry
    otherwise); ``workloads`` the workload catalog block sets resolve
    against, and ``workload`` the key naming this flow's default block
    set (``"mp3"`` unless told otherwise — ``blocks`` overrides the
    block *objects* while keeping the label).
    """

    def __init__(
        self,
        platform: Badge4 | None = None,
        critical_threshold_percent: float = 5.0,
        workers: int | None = None,
        cache_dir: str | None = None,
        executor=None,
        blocks: "Mapping[str, TargetBlock] | None" = None,
        tiers: "CacheTiers | None" = None,
        registry=None,
        workload: str | None = None,
        workloads=None,
    ):
        self.platform = platform or Badge4()
        self.threshold = critical_threshold_percent
        self.workers = workers
        self.cache_dir = cache_dir
        self.executor = executor
        self.tiers = tiers
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.workloads = (
            workloads if workloads is not None else DEFAULT_WORKLOAD_REGISTRY
        )
        self.workload = workload if workload is not None else DEFAULT_WORKLOAD
        if blocks is not None:
            self._blocks = dict(blocks)
        else:
            self._blocks = self.workloads.blocks(self.workload)

    # -- step 2: profiling ------------------------------------------------
    def profile(
        self, config: DecoderConfig, stream: EncodedStream
    ) -> tuple[ProfileReport, np.ndarray]:
        """Decode ``stream`` under ``config`` and profile it.

        Returns the per-function profile report and the decoded PCM
        (kept for compliance checking against the reference pass).
        """
        decoder = Mp3Decoder(config, self.platform.profiler())
        pcm = decoder.decode(stream)
        return decoder.profiler.report(), pcm

    def critical_functions(self, report: ProfileReport) -> list[str]:
        """Functions above the criticality threshold, hottest first."""
        return [row.name for row in report.rows if row.percent >= self.threshold]

    # -- step 3: mapping ---------------------------------------------------
    def map_decoder(
        self,
        library: Library,
        base: DecoderConfig,
        critical: list[str],
        pass_name: str,
    ) -> tuple[DecoderConfig, dict[str, str]]:
        """Choose elements for the critical complex stages.

        Scalar stages (requantization, stereo) follow the best grade the
        active libraries provide: IH libraries carry the fixed-point
        table/kernel replacements for the libm calls.
        """
        chosen: dict[str, str] = {}
        fields = {
            "dequantize": base.dequantize,
            "stereo": base.stereo,
            "antialias": base.antialias,
            "imdct": base.imdct,
            "synthesis": base.synthesis,
        }

        has_ih = any(e.library == "IH" for e in library)
        if has_ih:
            # pow/exp/log family mapped onto fixed kernels: the front-end
            # stages leave double-precision libm behind.
            for stage in ("dequantize", "stereo", "antialias"):
                fields[stage] = "fixed"
            chosen["III_dequantize_sample"] = "fx_pow43_table(IH)"
            chosen["III_stereo"] = "fx_mac(IH)"
            chosen["III_antialias"] = "fx_mac(IH)"

        # Submit every critical block through the batch engine at once
        # (instead of mapping them one at a time): the engine dedups
        # against the cache tiers and fans cold items across workers.
        blocks = [
            (name, block)
            for name, block in self._blocks.items()
            if name in critical or f"{name} " in critical
        ]
        batch = run_batch(
            [
                BatchItem.for_block(block, library, self.platform, tolerance=1e-6)
                for _name, block in blocks
            ],
            workers=self.workers,
            cache_dir=self.cache_dir,
            executor=self.executor,
            tiers=self.tiers,
        )
        for (name, block), (winner, _all) in zip(blocks, batch.results):
            if winner is None:
                continue
            element_name = winner.element.name
            if element_name not in _ELEMENT_TO_STAGE:
                raise MappingError(
                    f"matched element {element_name} has no stage mapping"
                )
            stage_field, variant = _ELEMENT_TO_STAGE[element_name]
            # Never regress: only adopt a cheaper element than current.
            current_variant = fields[stage_field]
            new_cycles = self._variant_cycles(stage_field, variant)
            if new_cycles < self._variant_cycles(stage_field, current_variant):
                fields[stage_field] = variant
                chosen[name] = element_name
        config = DecoderConfig(pass_name, huffman_grade=base.huffman_grade, **fields)
        return config, chosen

    # -- multi-platform sweep ---------------------------------------------
    def sweep(
        self,
        platforms: "Sequence[str | Badge4] | None" = None,
        libraries: "Iterable[Library] | None" = None,
        blocks: "Mapping[str, TargetBlock] | None" = None,
        *,
        workload: "str | None" = None,
        tolerance: float = 1e-6,
        accuracy_budget: float = float("inf"),
        workers=_UNSET,
        cache_dir=_UNSET,
        executor=_UNSET,
    ) -> SweepReport:
        """Map every block against every library on every platform.

        The full (block × library × platform) cross-product goes
        through the batch engine in one submission — deduplicated
        against both cache tiers, cold remainder fanned across worker
        processes — and each cell comes back as a Pareto front over
        (cycles, energy, accuracy), with the scalar cycles winner as
        its projection.

        ``platforms`` accepts registry keys (strings) and/or live
        platform objects; the default is every registered processor
        (SA-1110 first).  ``libraries`` defaults to the paper's ladder
        (LM+IH, then LM+IH+IPP, both over REF); ``workload`` selects a
        workload-registry block set (default: the flow's own, normally
        ``mp3``), and an explicit ``blocks`` mapping overrides the
        block objects while keeping the workload label.  ``workers``/
        ``cache_dir``/``executor`` default to the flow's own
        configuration, as do the flow's bound cache tiers and
        processor registry.
        """
        resolved = self.registry.resolve(platforms)
        libs = list(libraries) if libraries is not None else _sweep_library_ladder()
        duplicates = duplicate_labels(lib.name for lib in libs)
        if duplicates:
            # Reports index cells by library name too; a shared name
            # would silently shadow one library's results (same reason
            # the registry rejects duplicate platform labels).
            raise MappingError(
                f"sweep libraries must have unique names; duplicates: {duplicates}"
            )
        workload_key = workload if workload is not None else self.workload
        if workload is not None:
            self.workloads.get(workload_key)  # unknown keys fail fast
        if blocks is not None:
            block_map = dict(blocks)
        elif workload_key == self.workload:
            block_map = dict(self._blocks)
        else:
            block_map = self.workloads.blocks(workload_key)

        coords: list[tuple[str, Badge4, str, str]] = []
        items: list[BatchItem] = []
        for label, platform in resolved:
            for library in libs:
                for block_name, block in block_map.items():
                    coords.append((label, platform, library.name, block_name))
                    items.append(
                        BatchItem.for_block(
                            block,
                            library,
                            platform,
                            tolerance=tolerance,
                            accuracy_budget=accuracy_budget,
                        )
                    )

        batch = run_batch(
            items,
            workers=self.workers if workers is _UNSET else workers,
            cache_dir=self.cache_dir if cache_dir is _UNSET else cache_dir,
            executor=self.executor if executor is _UNSET else executor,
            tiers=self.tiers,
        )

        entries: list[SweepEntry] = []
        for (label, platform, lib_name, block_name), (_winner, matches) in zip(
            coords, batch.results
        ):
            entries.append(
                SweepEntry(
                    platform=label,
                    library=lib_name,
                    block=block_name,
                    result=BlockParetoResult.from_matches(
                        block_name, platform, matches
                    ),
                )
            )
        return SweepReport(
            platforms=tuple(label for label, _ in resolved),
            libraries=tuple(lib.name for lib in libs),
            blocks=tuple(block_map),
            entries=entries,
            stats=batch.stats,
            workload=workload_key,
        )

    def _variant_cycles(self, stage_field: str, variant: str) -> float:
        from repro.library.builtin import _imdct_cost, _synthesis_cost

        if stage_field == "imdct":
            return self.platform.cost_model.cycles(_imdct_cost(variant))
        if stage_field == "synthesis":
            return self.platform.cost_model.cycles(_synthesis_cost(variant))
        return float("inf")

    # -- the whole loop ----------------------------------------------------
    def run_passes(
        self, stream: EncodedStream, required_compliance: str = "limited"
    ) -> FlowReport:
        """The paper's evaluation: Original -> LM+IH -> LM+IH+IPP."""
        report = FlowReport()
        reference_pcm: np.ndarray | None = None

        ladder = [("Original", Library.union(reference_library()))]
        ladder += _mapping_ladder()

        config = DecoderConfig("Original")
        for pass_name, library in ladder:
            if pass_name != "Original":
                base_profile, _ = self.profile(config, stream)
                critical = self.critical_functions(base_profile)
                config, chosen = self.map_decoder(
                    library, DecoderConfig("Original"), critical, pass_name
                )
            else:
                chosen = {}
            profile, pcm = self.profile(config, stream)
            if reference_pcm is None:
                reference_pcm = pcm
            compliance = check_compliance(reference_pcm, pcm)
            compliance.require(required_compliance)
            report.passes.append(
                MappingPass(
                    name=pass_name,
                    libraries=tuple(sorted({e.library for e in library})),
                    config=config,
                    chosen_elements=chosen,
                    profile=profile,
                    compliance=compliance,
                    seconds=profile.total_seconds,
                    energy_j=profile.total_energy_j,
                )
            )
        return report
