"""The library catalog: a searchable set of characterized elements."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import LibraryError
from repro.library.element import LibraryElement

__all__ = ["Library"]


class Library:
    """A collection of :class:`LibraryElement` with lookup helpers.

    Libraries combine: ``Library.union(lm, ih, ipp)`` models the paper's
    successive mapping passes (first LM+IH, then LM+IH+IPP).
    """

    def __init__(self, name: str, elements: Iterable[LibraryElement] = ()):
        self.name = name
        self._elements: dict[str, LibraryElement] = {}
        for element in elements:
            self.add(element)

    def add(self, element: LibraryElement) -> None:
        if element.name in self._elements:
            raise LibraryError(f"duplicate element name {element.name!r}")
        self._elements[element.name] = element

    def __iter__(self) -> Iterator[LibraryElement]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def get(self, name: str) -> LibraryElement:
        if name not in self._elements:
            raise LibraryError(f"no element named {name!r} in library {self.name}")
        return self._elements[name]

    def from_library(self, tag: str) -> list[LibraryElement]:
        """All elements belonging to a library tag (LM/IH/IPP/REF)."""
        return [e for e in self if e.library == tag]

    def select(self, predicate: Callable[[LibraryElement], bool]) -> list[LibraryElement]:
        """Filtered elements."""
        return [e for e in self if predicate(e)]

    def with_signature(self, arity: int | None = None,
                       n_outputs: int | None = None,
                       max_degree: int | None = None) -> list[LibraryElement]:
        """Signature search used by the mapper to shortlist candidates."""
        out = []
        for element in self:
            if arity is not None and element.arity != arity:
                continue
            if n_outputs is not None and element.n_outputs != n_outputs:
                continue
            if max_degree is not None:
                degree = max(p.total_degree() for p in element.polynomials)
                if degree > max_degree:
                    continue
            out.append(element)
        return out

    def implementations_of(self, function: str) -> list[LibraryElement]:
        """Elements whose name advertises ``function`` (e.g. all four logs)."""
        return [e for e in self if function.lower() in e.name.lower()]

    @classmethod
    def union(cls, *libraries: "Library") -> "Library":
        """Combine libraries (later ones must not collide by name)."""
        name = "+".join(lib.name for lib in libraries)
        combined = cls(name)
        for lib in libraries:
            for element in lib:
                combined.add(element)
        return combined

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self)} elements)"
