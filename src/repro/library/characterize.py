"""Library characterization harness (Section 3.1).

Prices every element's per-call tally on a platform (performance via
the cycle model, energy via the energy model) and, when the element
ships a kernel, measures its accuracy against exact math — producing
the rows of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.catalog import Library
from repro.library.element import LibraryElement
from repro.platform.badge4 import Badge4

__all__ = ["CharacterizedElement", "characterize", "characterize_library",
           "CharacterizationTable"]


@dataclass(frozen=True)
class CharacterizedElement:
    """An element plus its platform-specific numbers."""

    element: LibraryElement
    seconds_per_call: float
    energy_per_call_j: float
    cycles_per_call: float

    @property
    def name(self) -> str:
        return self.element.name

    @property
    def library(self) -> str:
        return self.element.library


def characterize(element: LibraryElement,
                 platform: Badge4 | None = None) -> CharacterizedElement:
    """Price one element on a platform."""
    platform = platform or Badge4()
    cycles = platform.cost_model.cycles(element.cost)
    seconds = platform.cost_model.seconds(element.cost)
    energy = platform.energy.energy(element.cost, platform.cost_model)
    return CharacterizedElement(element, seconds, energy, cycles)


def characterize_library(library: Library,
                         platform: Badge4 | None = None
                         ) -> dict[str, CharacterizedElement]:
    """Characterize every element; keyed by element name."""
    platform = platform or Badge4()
    return {e.name: characterize(e, platform) for e in library}


class CharacterizationTable:
    """Renders groups of characterized elements like the paper's Table 1."""

    def __init__(self, characterized: dict[str, CharacterizedElement]):
        self.characterized = characterized

    def rows(self, names: list[str], baseline: str) -> list[tuple[str, float, float]]:
        """(name, seconds, ratio-vs-baseline) rows; baseline ratio is 1."""
        base = self.characterized[baseline].seconds_per_call
        out = []
        for name in names:
            seconds = self.characterized[name].seconds_per_call
            out.append((name, seconds, base / seconds if seconds else float("inf")))
        return out

    def format(self, groups: dict[str, tuple[list[str], str]]) -> str:
        """Render ``{title: (names, baseline)}`` groups as a table."""
        lines = ["Library Element                    Exec time (s)    Ratio"]
        for title, (names, baseline) in groups.items():
            for name, seconds, ratio in self.rows(names, baseline):
                lines.append(f"  {name:<34} {seconds:>11.6f}  {ratio:>7.0f}")
        return "\n".join(lines)
