"""Library characterization harness (Section 3.1).

Prices every element's per-call tally on a platform (performance via
the cycle model, energy via the energy model) and, when the element
ships a kernel, measures its accuracy against exact math — producing
the rows of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.library.catalog import Library
from repro.library.element import LibraryElement
from repro.platform.badge4 import Badge4
from repro.platform.registry import DEFAULT_REGISTRY

__all__ = ["CharacterizedElement", "characterize", "characterize_library",
           "CharacterizationTable", "platform_cost_labels",
           "format_platform_cost_labels"]


@dataclass(frozen=True)
class CharacterizedElement:
    """An element plus its platform-specific numbers."""

    element: LibraryElement
    seconds_per_call: float
    energy_per_call_j: float
    cycles_per_call: float

    @property
    def name(self) -> str:
        return self.element.name

    @property
    def library(self) -> str:
        return self.element.library


def characterize(element: LibraryElement,
                 platform: Badge4 | None = None) -> CharacterizedElement:
    """Price one element on a platform."""
    platform = platform or Badge4()
    cycles = platform.cost_model.cycles(element.cost)
    seconds = platform.cost_model.seconds(element.cost)
    energy = platform.energy.energy(element.cost, platform.cost_model)
    return CharacterizedElement(element, seconds, energy, cycles)


def characterize_library(library: Library,
                         platform: Badge4 | None = None
                         ) -> dict[str, CharacterizedElement]:
    """Characterize every element; keyed by element name."""
    platform = platform or Badge4()
    return {e.name: characterize(e, platform) for e in library}


def platform_cost_labels(library: Library,
                         platforms: "Sequence[str | Badge4] | None" = None
                         ) -> dict[str, dict[str, CharacterizedElement]]:
    """Characterize every element on every platform: the sweep's Table 1.

    The paper labels each element with its performance/energy on *the*
    target; the multi-platform registry makes that label a row per
    target instead.  ``platforms`` accepts registry keys and/or live
    platform objects (default: every registered processor); the result
    is ``labels[element_name][platform_key]`` →
    :class:`CharacterizedElement`.
    """
    resolved = DEFAULT_REGISTRY.resolve(platforms)
    labels: dict[str, dict[str, CharacterizedElement]] = {}
    for element in library:
        labels[element.name] = {key: characterize(element, platform)
                                for key, platform in resolved}
    return labels


def format_platform_cost_labels(
        labels: dict[str, dict[str, CharacterizedElement]]) -> str:
    """Render per-platform cost labels as one row per (element, platform)."""
    lines = [f"{'Element':<30} {'Platform':<12} {'Cycles':>14} "
             f"{'Energy (J)':>12} {'Accuracy':>10}"]
    for name in sorted(labels):
        for key, ch in labels[name].items():
            lines.append(f"{name:<30} {key:<12} {ch.cycles_per_call:>14,.0f} "
                         f"{ch.energy_per_call_j:>12.3e} "
                         f"{ch.element.accuracy:>10.1e}")
    return "\n".join(lines)


class CharacterizationTable:
    """Renders groups of characterized elements like the paper's Table 1."""

    def __init__(self, characterized: dict[str, CharacterizedElement]):
        self.characterized = characterized

    def rows(self, names: list[str], baseline: str) -> list[tuple[str, float, float]]:
        """(name, seconds, ratio-vs-baseline) rows; baseline ratio is 1."""
        base = self.characterized[baseline].seconds_per_call
        out = []
        for name in names:
            seconds = self.characterized[name].seconds_per_call
            out.append((name, seconds, base / seconds if seconds else float("inf")))
        return out

    def format(self, groups: dict[str, tuple[list[str], str]]) -> str:
        """Render ``{title: (names, baseline)}`` groups as a table."""
        lines = ["Library Element                    Exec time (s)    Ratio"]
        for title, (names, baseline) in groups.items():
            for name, seconds, ratio in self.rows(names, baseline):
                lines.append(f"  {name:<34} {seconds:>11.6f}  {ratio:>7.0f}")
        return "\n".join(lines)
