"""Library elements: the unit of characterization (Section 3.1).

Each element is labeled with exactly what the paper lists: "the type of
inputs and outputs, performance, accuracy, energy consumption, and
finally the polynomial representation".

The polynomial representation lives over *formal* input names
(``in0``, ``in1``, ...); multi-output elements (IMDCT, subband
synthesis matrixing) carry one polynomial per output.  The mapping
layer instantiates formals against the target's variables.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, fields
from typing import Callable

from repro.errors import LibraryError
from repro.platform.tally import OperationTally
from repro.symalg.polynomial import Polynomial

__all__ = ["LibraryElement", "formal_inputs"]


def formal_inputs(count: int) -> tuple[str, ...]:
    """The canonical formal input names ``in0..in{count-1}``."""
    return tuple(f"in{i}" for i in range(count))


@dataclass(frozen=True)
class LibraryElement:
    """One characterized library element.

    Attributes
    ----------
    name:
        The callable's name (e.g. ``ippsSynthPQMF_MP3_32s16s``).
    library:
        Which library it belongs to: ``LM`` (Linux math), ``IH``
        (in-house), ``IPP`` (Intel primitives) or ``REF`` (the
        open-source reference implementation).
    polynomials:
        Polynomial representation, one per output, over formal inputs
        ``in0..`` (coefficients may be exact rationals of the element's
        numeric constants, e.g. cosine-table entries).
    input_format / output_format:
        Data formats, from the include files ("double", "q5.26", ...).
    accuracy:
        Max absolute error versus exact math on the element's domain.
    cost:
        Per-call operation tally (prices to seconds/Joules on a
        platform via characterization).
    kernel:
        Optional executable implementation used by the
        characterization harness and the rewriter.
    """

    name: str
    library: str
    polynomials: tuple[Polynomial, ...]
    input_format: str
    output_format: str
    accuracy: float
    cost: OperationTally
    kernel: Callable | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.polynomials:
            raise LibraryError(f"element {self.name} has no polynomial representation")
        if self.library not in ("LM", "IH", "IPP", "REF"):
            raise LibraryError(f"unknown library tag {self.library!r}")
        if self.accuracy < 0:
            raise LibraryError("accuracy must be nonnegative")

    @property
    def polynomial(self) -> Polynomial:
        """The single polynomial of a scalar element."""
        if len(self.polynomials) != 1:
            raise LibraryError(
                f"{self.name} has {len(self.polynomials)} outputs; use .polynomials")
        return self.polynomials[0]

    @property
    def n_outputs(self) -> int:
        return len(self.polynomials)

    @property
    def formals(self) -> tuple[str, ...]:
        """Formal input names used across the polynomials, sorted by index."""
        names: set[str] = set()
        for poly in self.polynomials:
            names.update(poly.variables)
        return tuple(sorted(names, key=lambda n: (len(n), n)))

    @property
    def arity(self) -> int:
        return len(self.formals)

    def __getstate__(self) -> dict:
        """Serialization contract: everything but an unpicklable kernel.

        The builtin catalogs attach module-level kernels, which pickle
        by reference; ad-hoc elements may carry lambdas or closures,
        which cannot cross a process or disk boundary.  Those kernels
        are replaced by ``None`` — matching and decomposition never
        execute a kernel (it is excluded from the element fingerprint),
        so mapping results are identical either way.  Only the
        characterization harness and the rewriter's simulation path
        would notice, and they run in the parent process.
        """
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        kernel = state["kernel"]
        if kernel is not None:
            try:
                pickle.dumps(kernel)
            except Exception:
                state["kernel"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # The copy module also routes through __getstate__, which would
    # silently drop closure kernels from plain copies; only *pickles*
    # must shed them, so copying is implemented directly.
    def __copy__(self) -> "LibraryElement":
        return self.__class__(
            **{f.name: getattr(self, f.name) for f in fields(self)})

    def __deepcopy__(self, memo: dict) -> "LibraryElement":
        import copy
        new = object.__new__(self.__class__)
        memo[id(self)] = new     # registered first: shared refs stay shared
        for f in fields(self):
            value = self.kernel if f.name == "kernel" else \
                copy.deepcopy(getattr(self, f.name), memo)
            object.__setattr__(new, f.name, value)
        return new

    def output_symbol(self, index: int = 0) -> str:
        """The fresh symbol the mapper introduces for output ``index``."""
        if self.n_outputs == 1:
            return f"{self.name}_out"
        return f"{self.name}_out{index}"

    def __str__(self) -> str:
        return f"{self.library}:{self.name}"
