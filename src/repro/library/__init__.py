"""``repro.library`` — library characterization (Section 3.1).

Elements labeled with I/O format, accuracy, performance, energy and a
polynomial representation; a searchable catalog; a characterization
harness that prices elements on the platform model; and the paper's
concrete LM / IH / IPP / REF libraries.
"""

from repro.library.builtin import (full_library, inhouse_library,
                                   ipp_library, linux_math_library,
                                   reference_library)
from repro.library.catalog import Library
from repro.library.characterize import (CharacterizationTable,
                                        CharacterizedElement, characterize,
                                        characterize_library,
                                        format_platform_cost_labels,
                                        platform_cost_labels)
from repro.library.element import LibraryElement, formal_inputs

__all__ = [
    "LibraryElement", "formal_inputs", "Library",
    "characterize", "characterize_library", "CharacterizedElement",
    "CharacterizationTable", "platform_cost_labels",
    "format_platform_cost_labels",
    "linux_math_library", "inhouse_library", "ipp_library",
    "reference_library", "full_library",
]
