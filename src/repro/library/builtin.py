"""The built-in libraries: LM (Linux math), IH (in-house), IPP, REF.

These are the concrete libraries of the paper's evaluation:

* **REF** — the open-source floating-point elements from the standards
  body's decoder (the baselines of Table 1);
* **LM** — the Linux math library: double- and single-precision
  transcendentals (including the intro's four ``log`` variants, two of
  which live here);
* **IH** — the in-house fixed-point library: bit-manipulation and
  polynomial ``log``, fixed ``exp``/``sin``/``cos``/``sqrt``, the fixed
  IMDCT and fast-DCT subband synthesis, and a ``mac`` helper;
* **IPP** — the Intel-style hand-optimized complex elements
  (``ippsSynthPQMF_MP3_32s16s``, ``IppsMDCTInv_MP3_32s``).

Beyond the MP3 set, REF/IH/IPP also carry implementations of the other
built-in workloads' blocks (:mod:`repro.workload`): block FIR, biquad
IIR, real FFT, 1-D/2-D inverse DCT, correlation and energy MAC loops.
Their polynomial rows come from the same coefficient tables
(:mod:`repro.workload.kernels`) the workload kernels feed the
frontend, so blocks and elements match coefficient-for-coefficient.

Complex elements carry *per-frame* cost tallies built from the very
stage implementations the decoder runs, so Table 1's numbers and the
decoder profiles are one consistent cost model.  Polynomial
representations use exact rational images of the numeric constants
(Equation 1's cosines), as extracted "from the source code ... or from
documentation".
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.fixedpoint import (Q16_15, cost_fx_cos, cost_fx_exp,
                              cost_fx_log2_bitwise, cost_fx_log_poly,
                              cost_fx_sin, cost_fx_sqrt)
from repro.library.catalog import Library
from repro.library.element import LibraryElement, formal_inputs
from repro.mp3 import imdct as im
from repro.mp3 import synthesis as sy
from repro.mp3.tables import IMDCT_COS_36, POLYPHASE_N, SUBBANDS
from repro.platform.tally import OperationTally
from repro.symalg.polynomial import Polynomial
from repro.symalg.series import taylor
from repro.workload import kernels as wk

__all__ = ["linux_math_library", "inhouse_library", "ipp_library",
           "reference_library", "full_library", "STEPS_PER_FRAME",
           "BLOCKS_PER_FRAME"]

#: Polyphase synthesis steps per frame: 2 granules x 2 channels x 18.
STEPS_PER_FRAME = 72
#: IMDCT blocks per frame: 2 granules x 2 channels x 32 subbands.
BLOCKS_PER_FRAME = 128


# ----------------------------------------------------------------------
# Polynomial representations
# ----------------------------------------------------------------------
def _log_polynomial(degree: int = 8) -> Polynomial:
    """log(x) around 1 over formal in0 (the documented representation)."""
    x = Polynomial.variable("in0")
    return taylor("log1p", degree).substitute({"_arg": x - 1})


def _exp_polynomial(degree: int = 8) -> Polynomial:
    x = Polynomial.variable("in0")
    return taylor("exp", degree).substitute({"_arg": x})


def _sin_polynomial(degree: int = 9) -> Polynomial:
    x = Polynomial.variable("in0")
    return taylor("sin", degree).substitute({"_arg": x})


def _cos_polynomial(degree: int = 8) -> Polynomial:
    x = Polynomial.variable("in0")
    return taylor("cos", degree).substitute({"_arg": x})


def _sqrt_polynomial(degree: int = 6) -> Polynomial:
    x = Polynomial.variable("in0")
    return taylor("sqrt1p", degree).substitute({"_arg": x - 1})


def _linear_rows(matrix: np.ndarray) -> tuple[Polynomial, ...]:
    """Rows of a numeric matrix as linear polynomials over formals."""
    n_out, n_in = matrix.shape
    formals = formal_inputs(n_in)
    rows = []
    for i in range(n_out):
        terms = {}
        for k in range(n_in):
            exps = tuple(1 if j == k else 0 for j in range(n_in))
            terms[exps] = Fraction(float(matrix[i, k]))
        rows.append(Polynomial(formals, terms))
    return tuple(rows)


#: Equation 1 rows for n=36 (the IMDCT polynomial representation).
_IMDCT_ROWS = _linear_rows(IMDCT_COS_36)
#: Polyphase matrixing rows (the synthesis core's representation).
_SYNTH_ROWS = _linear_rows(POLYPHASE_N)

# Polynomial representations of the non-MP3 workload elements, built
# from the same coefficient tables the workload block builders feed
# the frontend (repro.workload.kernels) — shared constants are what
# make block and element polynomials coincide, exactly as the MP3
# blocks match through repro.mp3.tables.
_FIR_ROWS = _linear_rows(wk.fir_matrix(wk.fir_taps()))
_IIR_ROWS = _linear_rows(wk.iir_impulse_matrix())
_RFFT_ROWS = _linear_rows(wk.rfft_matrix())
_IDCT_ROW_ROWS = _linear_rows(wk.idct_basis())
_IDCT2_ROWS = _linear_rows(wk.idct2_matrix())
_XCORR_ROWS = _linear_rows(wk.xcorr_taps().reshape(1, -1))


def _energy_polynomial(n: int = wk.ENERGY_POINTS) -> Polynomial:
    """Sum of squares over ``n`` formals (the VQ energy element)."""
    formals = formal_inputs(n)
    poly = Polynomial.zero()
    for f in formals:
        poly = poly + Polynomial.variable(f) ** 2
    return poly


_ENERGY_POLY = _energy_polynomial()


# ----------------------------------------------------------------------
# Per-frame cost tallies, built from the decoder's own stage kernels
# ----------------------------------------------------------------------
def _frame_cost(stage_fn, arg_builder, calls: int) -> OperationTally:
    """Run one stage call on dummy data, scale its tally to a frame."""
    tally = OperationTally()
    stage_fn(*arg_builder(), tally)
    return tally.scaled(calls)


def _synthesis_cost(variant: str) -> OperationTally:
    fn, domain = sy.VARIANTS[variant]
    fixed = domain == "fixed"

    def args():
        step = np.zeros(SUBBANDS, dtype=np.int64 if fixed else np.float64)
        return step, sy.SynthesisState(fixed=fixed)

    return _frame_cost(fn, args, STEPS_PER_FRAME)


def _imdct_cost(variant: str) -> OperationTally:
    fn, domain = im.VARIANTS[variant]
    fixed = domain == "fixed"

    def args():
        return (np.zeros(18, dtype=np.int64 if fixed else np.float64),)

    return _frame_cost(fn, args, BLOCKS_PER_FRAME)


def _libm_cost(name: str, extra_fp: int = 0) -> OperationTally:
    tally = OperationTally()
    tally.libm(name)
    tally.fp_mul += extra_fp
    tally.call += 1
    return tally


def _float32_libm_cost(name: str) -> OperationTally:
    """Single-precision libm: roughly half the double soft-float work."""
    tally = OperationTally()
    tally.libm(name)          # priced per double call below...
    # ...then discounted: represent as fewer equivalent fp ops instead.
    tally.libm_calls[name] = 0
    tally.fp_add += 8
    tally.fp_mul += 10
    tally.int_alu += 40
    tally.shift += 20
    tally.load += 12
    tally.call += 2
    return tally


# ----------------------------------------------------------------------
# Library constructors
# ----------------------------------------------------------------------
def linux_math_library() -> Library:
    """LM: the Linux/libm elements (double plus float variants)."""
    lib = Library("LM")
    log_poly = _log_polynomial()
    lib.add(LibraryElement(
        name="log_double", library="LM", polynomials=(log_poly,),
        input_format="double", output_format="double", accuracy=1e-15,
        cost=_libm_cost("log"), kernel=math.log,
        description="IEEE double natural log (libm)"))
    lib.add(LibraryElement(
        name="logf_float", library="LM", polynomials=(log_poly,),
        input_format="float", output_format="float", accuracy=6e-8,
        cost=_float32_libm_cost("log"), kernel=math.log,
        description="single-precision logf (libm)"))
    lib.add(LibraryElement(
        name="exp_double", library="LM", polynomials=(_exp_polynomial(),),
        input_format="double", output_format="double", accuracy=1e-15,
        cost=_libm_cost("exp"), kernel=math.exp,
        description="IEEE double exp (libm)"))
    lib.add(LibraryElement(
        name="sin_double", library="LM", polynomials=(_sin_polynomial(),),
        input_format="double", output_format="double", accuracy=1e-15,
        cost=_libm_cost("sin"), kernel=math.sin,
        description="IEEE double sin (libm)"))
    lib.add(LibraryElement(
        name="cos_double", library="LM", polynomials=(_cos_polynomial(),),
        input_format="double", output_format="double", accuracy=1e-15,
        cost=_libm_cost("cos"), kernel=math.cos,
        description="IEEE double cos (libm)"))
    lib.add(LibraryElement(
        name="sqrt_double", library="LM", polynomials=(_sqrt_polynomial(),),
        input_format="double", output_format="double", accuracy=1e-15,
        cost=_libm_cost("sqrt"), kernel=math.sqrt,
        description="IEEE double sqrt (libm)"))
    lib.add(LibraryElement(
        name="pow_double", library="LM",
        polynomials=(Polynomial.variable("in0") * Polynomial.variable("in1"),),
        input_format="double", output_format="double", accuracy=1e-15,
        cost=_libm_cost("pow"), kernel=math.pow,
        description="IEEE double pow (libm); polynomial rep is symbolic"))
    return lib


def inhouse_library() -> Library:
    """IH: the in-house fixed-point elements."""
    from repro.fixedpoint import fx_exp, fx_log2_bitwise, fx_log_poly

    lib = Library("IH")
    log_poly = _log_polynomial()
    lib.add(LibraryElement(
        name="fx_log_bitwise", library="IH", polynomials=(log_poly,),
        input_format="q16.15", output_format="q16.15", accuracy=4e-3,
        cost=cost_fx_log2_bitwise(Q16_15),
        kernel=fx_log2_bitwise,
        description="fixed-point log2 via bit manipulation (Crenshaw [14])"))
    lib.add(LibraryElement(
        name="fx_log_poly", library="IH", polynomials=(log_poly,),
        input_format="q16.15", output_format="q16.15", accuracy=8e-3,
        cost=cost_fx_log_poly(Q16_15),
        kernel=fx_log_poly,
        description="fixed-point log via polynomial expansion"))
    lib.add(LibraryElement(
        name="fx_exp", library="IH", polynomials=(_exp_polynomial(),),
        input_format="q16.15", output_format="q16.15", accuracy=2e-2,
        cost=cost_fx_exp(Q16_15), kernel=fx_exp,
        description="fixed-point exp (range reduction + polynomial)"))
    lib.add(LibraryElement(
        name="fx_sin", library="IH", polynomials=(_sin_polynomial(),),
        input_format="q16.15", output_format="q16.15", accuracy=3e-3,
        cost=cost_fx_sin(Q16_15), description="fixed-point sine"))
    lib.add(LibraryElement(
        name="fx_cos", library="IH", polynomials=(_cos_polynomial(),),
        input_format="q16.15", output_format="q16.15", accuracy=3e-3,
        cost=cost_fx_cos(Q16_15), description="fixed-point cosine"))
    lib.add(LibraryElement(
        name="fx_sqrt", library="IH", polynomials=(_sqrt_polynomial(),),
        input_format="q16.15", output_format="q16.15", accuracy=2e-3,
        cost=cost_fx_sqrt(Q16_15), description="fixed-point Newton sqrt"))

    a, b, c = (Polynomial.variable(n) for n in ("in0", "in1", "in2"))
    mac_tally = OperationTally(int_mac=1, load=2, store=1)
    lib.add(LibraryElement(
        name="mac", library="IH", polynomials=(a * b + c,),
        input_format="q16.15", output_format="q16.15", accuracy=3e-5,
        cost=mac_tally,
        description="multiply-accumulate helper (the DATE'02 target)"))

    lib.add(LibraryElement(
        name="fixed_IMDCT", library="IH", polynomials=_IMDCT_ROWS,
        input_format="q5.26", output_format="q5.26", accuracy=2e-6,
        cost=_imdct_cost("fixed"),
        description="in-house fixed 36-point IMDCT (direct form, Eq. 1)"))
    lib.add(LibraryElement(
        name="fixed_SubBandSyn", library="IH", polynomials=_SYNTH_ROWS,
        input_format="q5.26", output_format="q5.26", accuracy=2e-6,
        cost=_synthesis_cost("fixed_fast"),
        description="in-house fixed subband synthesis (fast DCT-32)"))

    # Non-MP3 workload elements (per-call tallies, from documentation).
    lib.add(LibraryElement(
        name="fx_fir16", library="IH", polynomials=_FIR_ROWS,
        input_format="q16.15", output_format="q16.15", accuracy=5e-5,
        cost=OperationTally(int_mac=128, shift=8, load=256, store=8, call=1),
        description="in-house fixed 16-tap block FIR (8 samples/call)"))
    lib.add(LibraryElement(
        name="fx_biquad_iir8", library="IH", polynomials=_IIR_ROWS,
        input_format="q16.15", output_format="q16.15", accuracy=8e-5,
        cost=OperationTally(int_mac=40, shift=16, load=88, store=16, call=1),
        description="in-house fixed biquad IIR (8-sample unrolled)"))
    lib.add(LibraryElement(
        name="fx_idct_row8", library="IH", polynomials=_IDCT_ROW_ROWS,
        input_format="q16.15", output_format="q16.15", accuracy=2e-5,
        cost=OperationTally(int_mac=64, shift=8, load=128, store=8, call=1),
        description="in-house fixed 8-point IDCT row pass (direct form)"))
    lib.add(LibraryElement(
        name="fx_idct8x8", library="IH", polynomials=_IDCT2_ROWS,
        input_format="q16.15", output_format="q16.15", accuracy=3e-5,
        cost=OperationTally(int_mac=1024, shift=128, load=2176, store=128,
                            call=1),
        description="in-house fixed separable 8x8 2-D IDCT (two passes)"))
    lib.add(LibraryElement(
        name="fx_L_mac40", library="IH", polynomials=_XCORR_ROWS,
        input_format="q16.15", output_format="q16.15", accuracy=6e-5,
        cost=OperationTally(int_mac=40, load=80, store=1, call=1),
        description="in-house L_mac loop: weighted 40-lag correlation"))
    lib.add(LibraryElement(
        name="fx_energy8", library="IH", polynomials=(_ENERGY_POLY,),
        input_format="q16.15", output_format="q16.15", accuracy=4e-5,
        cost=OperationTally(int_mac=8, load=8, store=1, call=1),
        description="in-house fixed sum-of-squares energy (8 samples)"))
    return lib


def ipp_library() -> Library:
    """IPP: Intel-style hand-optimized complex elements."""
    lib = Library("IPP")
    lib.add(LibraryElement(
        name="IppsMDCTInv_MP3_32s", library="IPP", polynomials=_IMDCT_ROWS,
        input_format="q5.26", output_format="q5.26", accuracy=2e-6,
        cost=_imdct_cost("ipp"),
        description="IPP fast inverse MDCT (from documentation)"))
    lib.add(LibraryElement(
        name="ippsSynthPQMF_MP3_32s16s", library="IPP",
        polynomials=_SYNTH_ROWS,
        input_format="q5.26", output_format="s16", accuracy=2e-6,
        cost=_synthesis_cost("ipp"),
        description="IPP polyphase synthesis filterbank (from documentation)"))
    lib.add(LibraryElement(
        name="ippsFIR_16tap_32s", library="IPP", polynomials=_FIR_ROWS,
        input_format="q16.15", output_format="q16.15", accuracy=4e-6,
        cost=OperationTally(int_mac=128, shift=8, load=96, store=8, call=1),
        description="IPP block FIR, 16 taps (circular delay line)"))
    lib.add(LibraryElement(
        name="ippsFFT_RToPack_8_32s", library="IPP", polynomials=_RFFT_ROWS,
        input_format="q16.15", output_format="q16.15", accuracy=3e-6,
        cost=OperationTally(int_mac=20, int_alu=24, shift=16, load=32,
                            store=8, call=1),
        description="IPP 8-point real FFT, packed output (radix-2 fast)"))
    lib.add(LibraryElement(
        name="ippiDCT8x8Inv_16s", library="IPP", polynomials=_IDCT2_ROWS,
        input_format="s16", output_format="s16", accuracy=2e-5,
        cost=OperationTally(int_mac=464, int_alu=288, shift=256, load=832,
                            store=128, call=1),
        description="IPP fast 8x8 inverse DCT (AAN-style factorization)"))
    return lib


def reference_library() -> Library:
    """REF: the open-source float elements from the standards body."""
    lib = Library("REF")
    lib.add(LibraryElement(
        name="float_IMDCT", library="REF", polynomials=_IMDCT_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=_imdct_cost("float"),
        description="reference double-precision IMDCT (inv_mdctL)"))
    lib.add(LibraryElement(
        name="float_SubBandSyn", library="REF", polynomials=_SYNTH_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=_synthesis_cost("float"),
        description="reference double-precision SubBandSynthesis"))

    # Reference implementations of the non-MP3 workload blocks: the
    # textbook double-precision loops, priced per call.  Every workload
    # block has a REF element, so each one maps on the REF-only rung.
    lib.add(LibraryElement(
        name="float_FIR16", library="REF", polynomials=_FIR_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=OperationTally(fp_mul=128, fp_add=120, load=256, store=8,
                            call=1),
        description="reference double 16-tap block FIR (8 samples/call)"))
    lib.add(LibraryElement(
        name="float_BiquadIIR8", library="REF", polynomials=_IIR_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=OperationTally(fp_mul=40, fp_add=32, load=88, store=16, call=1),
        description="reference double biquad IIR (8-sample direct form II)"))
    lib.add(LibraryElement(
        name="float_rFFT8", library="REF", polynomials=_RFFT_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=OperationTally(fp_mul=64, fp_add=56, load=128, store=8, call=1),
        description="reference double 8-point real DFT (direct form)"))
    lib.add(LibraryElement(
        name="float_IDCT1D8", library="REF", polynomials=_IDCT_ROW_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=OperationTally(fp_mul=64, fp_add=56, load=128, store=8, call=1),
        description="reference double 8-point IDCT row pass"))
    lib.add(LibraryElement(
        name="float_IDCT8x8", library="REF", polynomials=_IDCT2_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=OperationTally(fp_mul=1024, fp_add=896, load=2176, store=128,
                            call=1),
        description="reference double separable 8x8 2-D IDCT"))
    lib.add(LibraryElement(
        name="float_xcorr40", library="REF", polynomials=_XCORR_ROWS,
        input_format="double", output_format="double", accuracy=1e-12,
        cost=OperationTally(fp_mul=40, fp_add=39, load=80, store=1, call=1),
        description="reference double weighted 40-lag correlation"))
    lib.add(LibraryElement(
        name="float_energy8", library="REF", polynomials=(_ENERGY_POLY,),
        input_format="double", output_format="double", accuracy=1e-12,
        cost=OperationTally(fp_mul=8, fp_add=7, load=8, store=1, call=1),
        description="reference double sum-of-squares energy (8 samples)"))
    return lib


def full_library() -> Library:
    """Everything: REF + LM + IH + IPP (the final mapping pass's view)."""
    return Library.union(reference_library(), linux_math_library(),
                         inhouse_library(), ipp_library())
