"""Operation tallies: the currency between kernels and the cost model.

The paper measures performance and energy on real Badge4 hardware.  Our
substitute is deterministic: every kernel (decoder stage, library
element, generated residual code) *executes for real* in Python and, as
it runs, accounts the operations the equivalent C code would execute on
the StrongARM.  A :class:`OperationTally` holds those counts; the
processor model prices them in cycles and the energy model in Joules.

Counts are bulk-incremented per stage invocation with formulas that
mirror the actual loop trip counts — identical results to per-iteration
increments at a fraction of the Python cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["OperationTally"]


@dataclass
class OperationTally:
    """Counts of dynamic operations, by class.

    ``fp_*`` are single/double-precision floating-point operations; on a
    processor without an FPU (the SA-1110) the cost model prices them at
    software-emulation rates.  ``libm_calls`` tracks calls into the math
    library by function name (``pow``, ``cos``, ...), each with its own
    characterized cost.
    """

    int_alu: int = 0          # integer add/sub/logic
    int_mul: int = 0          # integer multiply
    int_mac: int = 0          # integer multiply-accumulate
    int_div: int = 0          # integer divide (software on ARM)
    shift: int = 0            # barrel-shifter ops priced like ALU ops
    fp_add: int = 0
    fp_mul: int = 0
    fp_div: int = 0
    load: int = 0
    store: int = 0
    branch: int = 0
    call: int = 0             # function-call/return overhead events
    libm_calls: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def libm(self, name: str, count: int = 1) -> None:
        """Record ``count`` calls to math-library function ``name``."""
        if count:
            self.libm_calls[name] = self.libm_calls.get(name, 0) + count

    def merge(self, other: "OperationTally") -> None:
        """Accumulate ``other`` into this tally in place."""
        for f in fields(self):
            if f.name == "libm_calls":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for name, count in other.libm_calls.items():
            self.libm_calls[name] = self.libm_calls.get(name, 0) + count

    def scaled(self, factor: int) -> "OperationTally":
        """A new tally with every count multiplied by ``factor``."""
        out = OperationTally()
        for f in fields(self):
            if f.name == "libm_calls":
                continue
            setattr(out, f.name, getattr(self, f.name) * factor)
        out.libm_calls = {k: v * factor for k, v in self.libm_calls.items()}
        return out

    def copy(self) -> "OperationTally":
        """An independent copy."""
        out = OperationTally()
        out.merge(self)
        return out

    def total_ops(self) -> int:
        """Total dynamic operations (libm calls count once each)."""
        total = 0
        for f in fields(self):
            if f.name == "libm_calls":
                continue
            total += getattr(self, f.name)
        return total + sum(self.libm_calls.values())

    def is_empty(self) -> bool:
        """True if nothing has been recorded."""
        return self.total_ops() == 0

    def __add__(self, other: "OperationTally") -> "OperationTally":
        out = self.copy()
        out.merge(other)
        return out

    def breakdown(self) -> dict[str, int]:
        """Counts as a flat ``{name: count}`` dict (libm prefixed)."""
        out: dict[str, int] = {}
        for f in fields(self):
            if f.name == "libm_calls":
                continue
            value = getattr(self, f.name)
            if value:
                out[f.name] = value
        for name, count in sorted(self.libm_calls.items()):
            out[f"libm:{name}"] = count
        return out
