"""Function-level profiler over the cost model (Tables 3-5 machinery).

The paper identifies target code by profiling "directly on the
hardware" with OS timers, producing per-function execution time and
percentage tables.  Our deterministic equivalent accumulates one
:class:`~repro.platform.tally.OperationTally` per function name and
renders reports in the same shape as the paper's Tables 3, 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError
from repro.platform.energy import EnergyModel
from repro.platform.processor import CostModel
from repro.platform.tally import OperationTally

__all__ = ["Profiler", "ProfileRow", "ProfileReport"]


@dataclass(frozen=True)
class ProfileRow:
    """One function's share of a profile."""

    name: str
    seconds: float
    percent: float
    cycles: float
    energy_j: float


class ProfileReport:
    """A finished profile: rows sorted by descending time."""

    def __init__(self, rows: list[ProfileRow], clock_hz: float):
        self.rows = sorted(rows, key=lambda r: r.seconds, reverse=True)
        self.clock_hz = clock_hz

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.rows)

    @property
    def total_energy_j(self) -> float:
        return sum(r.energy_j for r in self.rows)

    def row(self, name: str) -> ProfileRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def names(self) -> list[str]:
        """Function names, hottest first."""
        return [r.name for r in self.rows]

    def format_table(self, title: str = "Profile",
                     time_unit: str = "s") -> str:
        """Render like the paper's profile tables."""
        scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[time_unit]
        width = max([len(r.name) for r in self.rows] + [len("Total")])
        lines = [title,
                 f"  {'Function name':<{width}}  {'Time (' + time_unit + ')':>12}  {'%':>7}"]
        for r in self.rows:
            lines.append(
                f"  {r.name:<{width}}  {r.seconds * scale:>12.5g}  {r.percent:>7.2f}")
        lines.append(
            f"  {'Total':<{width}}  {self.total_seconds * scale:>12.5g}  {100.0:>7.2f}")
        return "\n".join(lines)


class Profiler:
    """Accumulates per-function tallies and prices them.

    Usage::

        profiler = Profiler(cost_model, energy_model)
        profiler.record("III_dequantize_sample", tally)
        report = profiler.report()
    """

    def __init__(self, cost_model: CostModel | None = None,
                 energy_model: EnergyModel | None = None):
        self.cost_model = cost_model or CostModel()
        self.energy_model = energy_model or EnergyModel()
        self._tallies: dict[str, OperationTally] = {}
        self._order: list[str] = []

    def record(self, name: str, tally: OperationTally) -> None:
        """Accumulate ``tally`` under function ``name``."""
        if name not in self._tallies:
            self._tallies[name] = OperationTally()
            self._order.append(name)
        self._tallies[name].merge(tally)

    def tally(self, name: str) -> OperationTally:
        """The accumulated tally for ``name`` (empty if never recorded)."""
        return self._tallies.get(name, OperationTally()).copy()

    def combined_tally(self) -> OperationTally:
        """Sum of all per-function tallies."""
        total = OperationTally()
        for t in self._tallies.values():
            total.merge(t)
        return total

    def reset(self) -> None:
        """Forget everything recorded so far."""
        self._tallies.clear()
        self._order.clear()

    def report(self, clock_hz: float | None = None,
               voltage: float | None = None) -> ProfileReport:
        """Price every function and produce a report."""
        if not self._tallies:
            raise PlatformError("nothing profiled")
        clock = clock_hz if clock_hz is not None else self.cost_model.spec.clock_hz
        seconds = {name: self.cost_model.seconds(t, clock_hz=clock)
                   for name, t in self._tallies.items()}
        total = sum(seconds.values())
        rows = []
        for name in self._order:
            t = self._tallies[name]
            s = seconds[name]
            rows.append(ProfileRow(
                name=name,
                seconds=s,
                percent=(100.0 * s / total) if total else 0.0,
                cycles=self.cost_model.cycles(t),
                energy_j=self.energy_model.energy(
                    t, self.cost_model, voltage=voltage, clock_hz=clock),
            ))
        return ProfileReport(rows, clock)
