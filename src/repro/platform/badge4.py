"""The Badge4 platform inventory (Figure 1 of the paper).

Figure 1 is a block diagram: StrongARM SA-1110 with SA-1111 companion
chip, audio codec with microphone/speakers, Lucent WLAN card, sensors,
three memories (SRAM, SDRAM, FLASH), all fed from batteries through a
DC-DC converter.  This module is the executable version: a
:class:`Badge4` bundles the processor cost model, energy model, DVFS
governor and the component inventory, and can render the block list the
Figure-1 benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.dvfs import (SA1110_OPERATING_POINTS, DvfsGovernor,
                                 scaled_ladder)
from repro.platform.energy import BADGE4_ENERGY, EnergyModel
from repro.platform.processor import SA1110, CostModel, ProcessorSpec
from repro.platform.profiler import Profiler

__all__ = ["Component", "Badge4", "Platform", "BADGE4_COMPONENTS"]


@dataclass(frozen=True)
class Component:
    """One block of the Figure-1 diagram."""

    name: str
    kind: str            # processor | companion | memory | radio | audio | power | sensor
    detail: str


#: The Figure-1 inventory.
BADGE4_COMPONENTS: tuple[Component, ...] = (
    Component("StrongARM SA-1110", "processor",
              "206.4 MHz core, no FPU; runs embedded Linux"),
    Component("SA-1111 companion chip", "companion",
              "peripheral controller (USB, PS/2, SSP, PCMCIA)"),
    Component("SRAM", "memory", "fast static RAM; holds the core OS and file system"),
    Component("SDRAM", "memory", "bulk working memory (new in Badge4 vs SmartBadge)"),
    Component("FLASH", "memory", "non-volatile boot and image storage"),
    Component("WLAN card (Lucent)", "radio",
              "streams MP3 bitstreams from the server-mounted file system"),
    Component("Audio codec", "audio", "microphone input and speaker output"),
    Component("Sensors", "sensor", "badge sensing suite"),
    Component("DC-DC converter", "power",
              "battery supply regulation (~85% efficient)"),
    Component("Batteries", "power", "primary energy source"),
)


@dataclass
class Badge4:
    """The whole platform: models + inventory, ready for experiments."""

    processor: ProcessorSpec = SA1110
    energy: EnergyModel = BADGE4_ENERGY
    components: tuple[Component, ...] = BADGE4_COMPONENTS

    def __post_init__(self) -> None:
        self.cost_model = CostModel(self.processor)
        if self.processor == SA1110:     # value-equal: unpickled SA-1110
            self._ladder = SA1110_OPERATING_POINTS   # specs qualify too
        else:
            # Registry targets: same first-order DVFS shape, scaled to
            # this core's clock and this board's nominal voltage.
            self._ladder = scaled_ladder(self.processor.clock_hz,
                                         self.energy.nominal_voltage)
            if self.components is BADGE4_COMPONENTS:
                # The default inventory names the SA-1110 as its CPU
                # block; keep the board, swap the processor entry so
                # describe() cannot contradict the spec.
                self.components = tuple(
                    Component(self.processor.name, "processor",
                              self.processor.description
                              or f"{self.processor.clock_hz / 1e6:.1f} MHz core")
                    if comp.kind == "processor" else comp
                    for comp in BADGE4_COMPONENTS)
        self.governor = DvfsGovernor(self.cost_model, self.energy,
                                     self._ladder)

    def profiler(self) -> Profiler:
        """A fresh profiler wired to this platform's models."""
        return Profiler(self.cost_model, self.energy)

    def operating_points(self):
        """This platform's DVFS ladder (slowest first)."""
        return self._ladder

    def describe(self) -> str:
        """Render the Figure-1 block inventory as text."""
        lines = [f"{self.processor.name} platform — Figure-1 style inventory",
                 f"  CPU: {self.processor.name} @ {self.processor.clock_hz / 1e6:.1f} MHz"
                 f" (FPU: {'yes' if self.processor.has_fpu else 'no — soft float'})"]
        for comp in self.components:
            lines.append(f"  [{comp.kind:>9}] {comp.name}: {comp.detail}")
        return "\n".join(lines)


#: The generic name for the platform container.  ``Badge4`` predates
#: the processor registry; with pluggable specs the same class carries
#: any registered target (``Badge4(processor=ARM926, energy=...)``), so
#: multi-platform code reads better against this alias.
Platform = Badge4
