"""Processor cost model: StrongARM SA-1110 and friends.

Prices an :class:`~repro.platform.tally.OperationTally` in cycles.  The
SA-1110 figures are derived from the documented microarchitecture:

* single-issue 5-stage integer pipeline, most ALU ops 1 cycle;
* 32x32 multiplier with early termination (1-3 cycles; we use 2, MAC 3);
* **no FPU** — floating-point is emulated in software (gcc soft-float /
  ``_fp`` kernels), costing on the order of 10^2 cycles per operation;
* no hardware divide — integer division is a ~70-cycle library call;
* ``libm`` double-precision transcendentals on soft-float cost
  thousands of cycles per call (``pow`` is the famous offender that
  makes the ISO MP3 dequantizer two orders of magnitude too slow).

Absolute constants are documented estimates, not measurements of a
physical badge; EXPERIMENTS.md discusses the calibration.  What the
reproduction relies on is their *relative* order, which is hardware
fact: int ops ~1 cycle << soft-fp ops ~10^2 << libm calls ~10^3-10^4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import PlatformError
from repro.platform.tally import OperationTally

__all__ = ["ProcessorSpec", "CostModel", "SA1110", "SA1110_COSTS",
           "ARM7TDMI", "ARM7TDMI_COSTS", "ARM926", "ARM926_COSTS",
           "GENERIC_DSP", "GENERIC_DSP_COSTS"]


@dataclass(frozen=True)
class ProcessorSpec:
    """Static description of a processor for the cost model.

    ``cycle_costs`` prices each tally field; ``libm_costs`` prices
    math-library calls by name, with ``libm_default`` as fallback.
    """

    name: str
    clock_hz: float
    has_fpu: bool
    cycle_costs: Mapping[str, float]
    libm_costs: Mapping[str, float]
    libm_default: float = 4000.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise PlatformError(f"clock must be positive, got {self.clock_hz}")
        required = {"int_alu", "int_mul", "int_mac", "int_div", "shift",
                    "fp_add", "fp_mul", "fp_div", "load", "store",
                    "branch", "call"}
        missing = required - set(self.cycle_costs)
        if missing:
            raise PlatformError(f"cycle_costs missing entries: {sorted(missing)}")


#: SA-1110 per-operation cycle costs (no FPU: fp_* are soft-float).
#:
#: The fp_* figures price *double-precision* emulation the way the ISO
#: reference build pays for it: a libgcc soft-double routine per
#: operation, called (not inlined), with argument marshalling, unpack /
#: align / normalize / repack and spills — several hundred cycles each.
#: EXPERIMENTS.md "Calibration" discusses how these were pinned against
#: the paper's Table 3.
SA1110_COSTS: dict[str, float] = {
    "int_alu": 1.0,
    "int_mul": 2.0,
    "int_mac": 3.0,
    "int_div": 70.0,     # __divsi3 software divide
    "shift": 1.0,        # barrel shifter folded into ALU ops
    "fp_add": 420.0,     # soft-double add (library call incl. overhead)
    "fp_mul": 560.0,     # soft-double multiply
    "fp_div": 2400.0,    # soft-double divide
    "load": 2.0,         # cached load
    "store": 1.0,        # buffered store
    "branch": 2.0,       # average incl. pipeline flushes
    "call": 8.0,         # call+return+spill overhead
}

#: Double-precision libm-on-soft-float call costs (cycles per call).
#: pow() is the famous offender: it is why the ISO dequantizer alone is
#: ~45% of Table 3.
_SA1110_LIBM: dict[str, float] = {
    "pow": 52000.0,
    "exp": 11000.0,
    "log": 12000.0,
    "log10": 12500.0,
    "sin": 12000.0,
    "cos": 12000.0,
    "tan": 16000.0,
    "atan": 13000.0,
    "sqrt": 9000.0,
    "floor": 900.0,
    "fabs": 200.0,
    "frexp": 700.0,
    "ldexp": 700.0,
}

#: The Badge4 CPU: Intel StrongARM SA-1110 at 206.4 MHz.
SA1110 = ProcessorSpec(
    name="StrongARM SA-1110",
    clock_hz=206.4e6,
    has_fpu=False,
    cycle_costs=SA1110_COSTS,
    libm_costs=_SA1110_LIBM,
    libm_default=8000.0,
    description=(
        "Intel StrongARM SA-1110 @ 206.4 MHz as used on Badge4: "
        "single-issue integer core, early-terminating multiplier, "
        "no FPU (soft-float), no hardware divide."
    ),
)


def _scaled_libm(base: Mapping[str, float], factor: float) -> dict[str, float]:
    """A libm price table scaled from a reference one.

    The transcendental routines are the same soft-float code on every
    FPU-less core; what changes between processors is how fast that
    code's multiply/shift mix runs, which a single factor captures to
    the fidelity this model needs.
    """
    return {name: round(cost * factor) for name, cost in base.items()}


#: ARM7TDMI-class per-operation cycle costs.  Three-stage pipeline, a
#: 32x8 Booth multiplier (2-5 cycles; we use 4, MAC 5), no cache
#: assumption beyond slow single-port memory, no FPU, no divider.
ARM7TDMI_COSTS: dict[str, float] = {
    "int_alu": 1.0,
    "int_mul": 4.0,      # 32x8 Booth steps, early termination averaged
    "int_mac": 5.0,      # MLA adds a cycle over MUL
    "int_div": 90.0,     # software divide, no CLZ to speed normalization
    "shift": 1.0,        # barrel shifter folded into the ALU path
    "fp_add": 480.0,     # soft-double add (slower multiplier tax)
    "fp_mul": 700.0,     # soft-double multiply leans hard on the 8-bit Booth
    "fp_div": 2900.0,
    "load": 3.0,         # non-sequential memory access
    "store": 2.0,
    "branch": 3.0,       # 3-stage refill
    "call": 10.0,
}

#: ARM7TDMI-class embedded core (the pre-StrongARM generation).
ARM7TDMI = ProcessorSpec(
    name="ARM7TDMI",
    clock_hz=66.0e6,
    has_fpu=False,
    cycle_costs=ARM7TDMI_COSTS,
    libm_costs=_scaled_libm(_SA1110_LIBM, 1.3),
    libm_default=10000.0,
    description=(
        "ARM7TDMI-class core @ 66 MHz: 3-stage pipeline, 32x8 Booth "
        "multiplier, no cache, no FPU, no hardware divide."),
)

#: ARM926EJ-S-class per-operation cycle costs.  Five-stage pipeline,
#: Harvard caches, single-cycle 32x16 DSP-extension MAC, CLZ-assisted
#: software division; still no FPU.
ARM926_COSTS: dict[str, float] = {
    "int_alu": 1.0,
    "int_mul": 2.0,      # 32x16 pipelined multiplier
    "int_mac": 1.0,      # single-cycle MAC (the ARM9E DSP extension)
    "int_div": 35.0,     # software divide with CLZ normalization
    "shift": 1.0,
    "fp_add": 400.0,
    "fp_mul": 460.0,     # faster multiplier narrows the soft-float gap
    "fp_div": 2200.0,
    "load": 1.0,         # Harvard I/D caches hide most latency
    "store": 1.0,
    "branch": 3.0,       # 5-stage mispredict refill
    "call": 6.0,
}

#: ARM926EJ-S-class applications core (the post-StrongARM generation).
ARM926 = ProcessorSpec(
    name="ARM926EJ-S",
    clock_hz=200.0e6,
    has_fpu=False,
    cycle_costs=ARM926_COSTS,
    libm_costs=_scaled_libm(_SA1110_LIBM, 0.85),
    libm_default=7000.0,
    description=(
        "ARM926EJ-S-class core @ 200 MHz: 5-stage pipeline, Harvard "
        "caches, single-cycle DSP MAC, CLZ divide assist, no FPU."),
)

#: Generic fixed-point DSP per-operation cycle costs.  Dual MAC-capable
#: datapaths and dual data buses make integer/fixed-point work nearly
#: free; IEEE doubles are emulated miserably; control flow pays a deep
#: exposed pipeline.
GENERIC_DSP_COSTS: dict[str, float] = {
    "int_alu": 0.5,      # dual ALUs: two ops per cycle sustained
    "int_mul": 1.0,
    "int_mac": 0.5,      # dual single-cycle MAC units
    "int_div": 18.0,     # iterative divide step instruction
    "shift": 0.5,
    "fp_add": 700.0,     # IEEE soft-double on a 16/32-bit datapath
    "fp_mul": 950.0,
    "fp_div": 4200.0,
    "load": 0.5,         # dual data buses, on-chip RAM
    "store": 0.5,
    "branch": 5.0,       # deep exposed pipeline, no predictor
    "call": 12.0,
}

#: A generic fixed-point DSP of the SmartBadge era (C55x/Blackfin-ish).
GENERIC_DSP = ProcessorSpec(
    name="Generic fixed-point DSP",
    clock_hz=160.0e6,
    has_fpu=False,
    cycle_costs=GENERIC_DSP_COSTS,
    libm_costs=_scaled_libm(_SA1110_LIBM, 1.8),
    libm_default=15000.0,
    description=(
        "Generic fixed-point DSP @ 160 MHz: dual MAC/ALU datapaths and "
        "dual data buses, iterative divide, deep pipeline, no FPU — "
        "IEEE doubles are punitively emulated."),
)


class CostModel:
    """Prices operation tallies in cycles and seconds for one processor."""

    def __init__(self, spec: ProcessorSpec = SA1110):
        self.spec = spec

    def cycles(self, tally: OperationTally) -> float:
        """Total cycles the tallied operations cost on this processor."""
        costs = self.spec.cycle_costs
        total = (
            tally.int_alu * costs["int_alu"]
            + tally.int_mul * costs["int_mul"]
            + tally.int_mac * costs["int_mac"]
            + tally.int_div * costs["int_div"]
            + tally.shift * costs["shift"]
            + tally.fp_add * costs["fp_add"]
            + tally.fp_mul * costs["fp_mul"]
            + tally.fp_div * costs["fp_div"]
            + tally.load * costs["load"]
            + tally.store * costs["store"]
            + tally.branch * costs["branch"]
            + tally.call * costs["call"]
        )
        for name, count in tally.libm_calls.items():
            per_call = self.spec.libm_costs.get(name, self.spec.libm_default)
            total += count * per_call
        return total

    def seconds(self, tally: OperationTally, clock_hz: float | None = None) -> float:
        """Wall-clock seconds at ``clock_hz`` (default: the spec's clock)."""
        clock = clock_hz if clock_hz is not None else self.spec.clock_hz
        if clock <= 0:
            raise PlatformError(f"clock must be positive, got {clock}")
        return self.cycles(tally) / clock
