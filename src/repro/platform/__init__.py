"""``repro.platform`` — the target-hardware substitute.

Deterministic cycle/energy cost models of the StrongARM SA-1110 (no
FPU), the Badge4 energy chain (core + memory + DC-DC), DVFS operating
points, and a function-level profiler that renders the paper's profile
tables — plus a pluggable processor registry (:mod:`repro.platform.registry`)
carrying ARM7TDMI-class, ARM926-class and generic-DSP targets for the
multi-platform mapping sweep.
"""

from repro.platform.badge4 import (BADGE4_COMPONENTS, Badge4, Component,
                                   Platform)
from repro.platform.dvfs import (SA1110_OPERATING_POINTS, DvfsDecision,
                                 DvfsGovernor, OperatingPoint, scaled_ladder)
from repro.platform.energy import (ARM7TDMI_ENERGY, ARM926_ENERGY,
                                   BADGE4_ENERGY, GENERIC_DSP_ENERGY,
                                   EnergyModel)
from repro.platform.processor import (ARM7TDMI, ARM7TDMI_COSTS, ARM926,
                                      ARM926_COSTS, GENERIC_DSP,
                                      GENERIC_DSP_COSTS, SA1110,
                                      SA1110_COSTS, CostModel, ProcessorSpec)
from repro.platform.profiler import ProfileReport, ProfileRow, Profiler
from repro.platform.registry import (DEFAULT_REGISTRY, PlatformEntry,
                                     ProcessorRegistry, get_processor,
                                     platform_named, register_processor,
                                     registered_processors)
from repro.platform.tally import OperationTally

__all__ = [
    "OperationTally",
    "ProcessorSpec", "CostModel",
    "SA1110", "SA1110_COSTS", "ARM7TDMI", "ARM7TDMI_COSTS",
    "ARM926", "ARM926_COSTS", "GENERIC_DSP", "GENERIC_DSP_COSTS",
    "EnergyModel", "BADGE4_ENERGY", "ARM7TDMI_ENERGY", "ARM926_ENERGY",
    "GENERIC_DSP_ENERGY",
    "OperatingPoint", "SA1110_OPERATING_POINTS", "DvfsGovernor", "DvfsDecision",
    "scaled_ladder",
    "Profiler", "ProfileRow", "ProfileReport",
    "Badge4", "Platform", "Component", "BADGE4_COMPONENTS",
    "ProcessorRegistry", "PlatformEntry", "DEFAULT_REGISTRY",
    "register_processor", "get_processor", "platform_named",
    "registered_processors",
]
