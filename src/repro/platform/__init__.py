"""``repro.platform`` — the Badge4 hardware substitute.

Deterministic cycle/energy cost models of the StrongARM SA-1110 (no
FPU), the Badge4 energy chain (core + memory + DC-DC), DVFS operating
points, and a function-level profiler that renders the paper's profile
tables.
"""

from repro.platform.badge4 import BADGE4_COMPONENTS, Badge4, Component
from repro.platform.dvfs import (SA1110_OPERATING_POINTS, DvfsDecision,
                                 DvfsGovernor, OperatingPoint)
from repro.platform.energy import BADGE4_ENERGY, EnergyModel
from repro.platform.processor import SA1110, SA1110_COSTS, CostModel, ProcessorSpec
from repro.platform.profiler import ProfileReport, ProfileRow, Profiler
from repro.platform.tally import OperationTally

__all__ = [
    "OperationTally",
    "ProcessorSpec", "CostModel", "SA1110", "SA1110_COSTS",
    "EnergyModel", "BADGE4_ENERGY",
    "OperatingPoint", "SA1110_OPERATING_POINTS", "DvfsGovernor", "DvfsDecision",
    "Profiler", "ProfileRow", "ProfileReport",
    "Badge4", "Component", "BADGE4_COMPONENTS",
]
