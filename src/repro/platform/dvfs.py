"""Dynamic voltage and frequency scaling for the SA-1110.

Section 4 of the paper: "our most optimized MP3 code runs almost four
times faster than real time", so "additional energy savings are possible
by using processor frequency and voltage scaling".  This module makes
that argument executable: given a workload that takes ``t`` seconds of
compute per second of audio at the maximum operating point, find the
slowest operating point that still meets real time and report the
energy ratio.

Operating points follow the SA-1110's CCF-programmable core clock
ladder (59.0 to 206.4 MHz) with a linear voltage reduction toward the
minimum-frequency point, the standard first-order DVFS model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError
from repro.platform.energy import EnergyModel
from repro.platform.processor import CostModel
from repro.platform.tally import OperationTally

__all__ = ["OperatingPoint", "SA1110_OPERATING_POINTS", "DvfsGovernor",
           "DvfsDecision", "scaled_ladder"]


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair the core can run at."""

    clock_hz: float
    voltage: float

    def __str__(self) -> str:
        return f"{self.clock_hz / 1e6:.1f} MHz @ {self.voltage:.2f} V"


def _sa1110_ladder() -> tuple[OperatingPoint, ...]:
    """The SA-1110 core-clock ladder with first-order voltage scaling."""
    freqs_mhz = (59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2,
                 176.9, 191.7, 206.4)
    v_min, v_max = 1.00, 1.55
    f_min, f_max = freqs_mhz[0], freqs_mhz[-1]
    points = []
    for f in freqs_mhz:
        v = v_min + (v_max - v_min) * (f - f_min) / (f_max - f_min)
        points.append(OperatingPoint(f * 1e6, round(v, 3)))
    return tuple(points)


#: SA-1110 operating points, slowest first.
SA1110_OPERATING_POINTS = _sa1110_ladder()


def scaled_ladder(clock_hz: float, v_max: float) -> tuple[OperatingPoint, ...]:
    """An SA-1110-shaped DVFS ladder scaled to another core.

    Registry targets other than the SA-1110 have no published CCF
    table; the standard first-order model still applies, so their
    ladder reuses the SA-1110's relative frequency steps scaled to the
    core's clock, with the same ~0.65 minimum-voltage fraction of
    ``v_max`` (the board's nominal voltage) linearly interpolated.
    """
    ref = SA1110_OPERATING_POINTS
    f_min_ref, f_max_ref = ref[0].clock_hz, ref[-1].clock_hz
    v_min = v_max * (ref[0].voltage / ref[-1].voltage)
    points = []
    for point in ref:
        frac = (point.clock_hz - f_min_ref) / (f_max_ref - f_min_ref)
        points.append(OperatingPoint(
            clock_hz * point.clock_hz / f_max_ref,
            round(v_min + (v_max - v_min) * frac, 3)))
    return tuple(points)


@dataclass(frozen=True)
class DvfsDecision:
    """Result of a governor query.

    ``energy_j`` covers the whole deadline period: active execution at
    the operating point plus static idle burn for any slack left before
    the deadline — the comparison that makes race-to-idle vs DVFS fair.
    """

    point: OperatingPoint
    seconds: float
    energy_j: float
    meets_deadline: bool


class DvfsGovernor:
    """Chooses operating points for a workload under a deadline."""

    def __init__(self, cost_model: CostModel, energy_model: EnergyModel,
                 points: tuple[OperatingPoint, ...] = SA1110_OPERATING_POINTS):
        if not points:
            raise PlatformError("need at least one operating point")
        self.cost_model = cost_model
        self.energy_model = energy_model
        self.points = tuple(sorted(points, key=lambda p: p.clock_hz))

    def evaluate(self, tally: OperationTally,
                 point: OperatingPoint,
                 deadline_s: float) -> DvfsDecision:
        """Time/energy of ``tally`` at ``point`` against ``deadline_s``."""
        seconds = self.cost_model.seconds(tally, clock_hz=point.clock_hz)
        energy = self.energy_model.energy(
            tally, self.cost_model, voltage=point.voltage,
            clock_hz=point.clock_hz)
        energy += self.energy_model.idle_energy(deadline_s - seconds)
        return DvfsDecision(point, seconds, energy, seconds <= deadline_s)

    def slowest_feasible(self, tally: OperationTally,
                         deadline_s: float) -> DvfsDecision:
        """The lowest-energy point that still meets the deadline.

        Falls back to the fastest point when nothing meets the deadline
        (``meets_deadline`` is then False).
        """
        if deadline_s <= 0:
            raise PlatformError(f"deadline must be positive, got {deadline_s}")
        for point in self.points:  # slowest first
            decision = self.evaluate(tally, point, deadline_s)
            if decision.meets_deadline:
                return decision
        return self.evaluate(tally, self.points[-1], deadline_s)

    def sweep(self, tally: OperationTally,
              deadline_s: float) -> list[DvfsDecision]:
        """Evaluate every operating point (for the DVFS benchmark)."""
        return [self.evaluate(tally, p, deadline_s) for p in self.points]

    def energy_saving_factor(self, tally: OperationTally,
                             deadline_s: float) -> float:
        """Energy(fastest point) / Energy(slowest feasible point)."""
        fastest = self.evaluate(tally, self.points[-1], deadline_s)
        best = self.slowest_feasible(tally, deadline_s)
        if best.energy_j == 0:
            raise PlatformError("zero energy at best point; empty tally?")
        return fastest.energy_j / best.energy_j
