"""The pluggable processor registry: platforms as first-class catalog.

The paper prices everything against one target — the SA-1110 inside
the HP BadgE4.  The multi-platform sweep asks the same symbolic flow
"which library implementation wins on *this* processor, for *this*
objective" across many targets at once, which needs the targets to be
data, not code: a registry of :class:`~repro.platform.processor.ProcessorSpec`
entries, each paired with the :class:`~repro.platform.energy.EnergyModel`
of its board, instantiable into a full platform object on demand.

The default registry ships the SA-1110 (still the default — every
single-platform code path is unchanged) plus an ARM7TDMI-class core,
an ARM926EJ-S-class core, and a generic fixed-point DSP, each with its
own per-op cycle and energy tables.  Registering a custom processor is
one call:

>>> from repro.platform import registry
>>> sorted(registry.registered_processors())[0]
'ARM7TDMI'
>>> registry.platform_named("SA-1110").processor.name
'StrongARM SA-1110'
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError
from repro.platform.badge4 import Badge4
from repro.platform.energy import (ARM7TDMI_ENERGY, ARM926_ENERGY,
                                   BADGE4_ENERGY, GENERIC_DSP_ENERGY,
                                   EnergyModel)
from repro.platform.processor import (ARM7TDMI, ARM926, GENERIC_DSP, SA1110,
                                      ProcessorSpec)

__all__ = ["PlatformEntry", "ProcessorRegistry", "DEFAULT_REGISTRY",
           "register_processor", "get_processor", "platform_named",
           "registered_processors", "duplicate_labels"]


def duplicate_labels(labels) -> list[str]:
    """Sorted labels appearing more than once in ``labels``.

    The shared guard behind every label-indexed report: both the
    platform selection (:meth:`ProcessorRegistry.resolve`) and the
    sweep's library list reject duplicates through this, so their
    semantics cannot drift.
    """
    seen: set[str] = set()
    duplicates: set[str] = set()
    for label in labels:
        if label in seen:
            duplicates.add(label)
        seen.add(label)
    return sorted(duplicates)


@dataclass(frozen=True)
class PlatformEntry:
    """One registered target: a processor spec plus its board's energy model."""

    key: str
    spec: ProcessorSpec
    energy: EnergyModel

    def platform(self) -> Badge4:
        """A fresh platform object wired with this entry's models."""
        return Badge4(processor=self.spec, energy=self.energy)


class ProcessorRegistry:
    """A named catalog of processor targets.

    Keys are short stable handles (``"SA-1110"``, ``"ARM7TDMI"``, ...)
    independent of the specs' display names; iteration order is
    registration order, so sweeps over "all registered platforms" are
    deterministic.
    """

    def __init__(self) -> None:
        self._entries: dict[str, PlatformEntry] = {}

    def register(self, key: str, spec: ProcessorSpec,
                 energy: EnergyModel | None = None, *,
                 replace: bool = False) -> PlatformEntry:
        """Add (or, with ``replace=True``, overwrite) a target.

        ``energy`` defaults to the Badge4 board model, which keeps ad-hoc
        spec experiments one-liner-cheap; real targets should bring the
        board they live on.
        """
        if not key:
            raise PlatformError("registry key must be non-empty")
        if key in self._entries and not replace:
            raise PlatformError(
                f"processor {key!r} is already registered "
                f"(pass replace=True to overwrite)")
        entry = PlatformEntry(key, spec, energy or BADGE4_ENERGY)
        self._entries[key] = entry
        return entry

    def get(self, key: str) -> PlatformEntry:
        """The entry registered under ``key`` (raises on unknown keys)."""
        try:
            return self._entries[key]
        except KeyError:
            known = ", ".join(self._entries) or "<empty registry>"
            raise PlatformError(
                f"no processor registered as {key!r}; known: {known}") from None

    def platform(self, key: str) -> Badge4:
        """A fresh platform instance for the target ``key``."""
        return self.get(key).platform()

    def names(self) -> list[str]:
        """Registered keys, in registration order."""
        return list(self._entries)

    def label_for(self, platform: Badge4) -> str:
        """The registry key of a live platform, if *both* its spec and
        energy model are the registered ones; the processor's display
        name otherwise.

        Keeps labels consistent between the two ways of naming a sweep
        target — ``sweep(platforms=["SA-1110"])`` and
        ``sweep(platforms=[Badge4()])`` land on the same label — while
        a platform carrying a customized energy model falls back to the
        display name, so its (differently-priced) results can never be
        confused with the registry entry's under an identical label.
        """
        for key, entry in self._entries.items():
            # Value equality: a spec that crossed a pickle/deepcopy
            # boundary still names the same target.
            if entry.spec == platform.processor \
                    and entry.energy == platform.energy:
                return key
        return platform.processor.name

    def resolve(self, platforms=None) -> "list[tuple[str, Badge4]]":
        """``(label, platform)`` pairs for a mixed platform selection.

        ``platforms`` may hold registry keys (strings) and/or live
        platform objects; ``None`` selects every registered target in
        registration order.  This is the single resolution point the
        multi-platform entry points (``MethodologyFlow.sweep``,
        ``platform_cost_labels``) share, so their labeling can't drift.
        """
        if platforms is None:
            return [(key, entry.platform()) for key, entry in
                    self._entries.items()]
        resolved: list[tuple[str, Badge4]] = []
        for p in platforms:
            if isinstance(p, str):
                resolved.append((p, self.platform(p)))
            else:
                resolved.append((self.label_for(p), p))
        duplicates = duplicate_labels(label for label, _ in resolved)
        if duplicates:
            # Reports index results by label; letting two platforms
            # share one would silently conflate their (differently
            # priced) cells.  Register the variants under distinct keys.
            raise PlatformError(
                f"selection resolves to duplicate platform label(s) "
                f"{duplicates}; register each variant under its own key")
        return resolved

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"ProcessorRegistry({self.names()!r})"


#: The process-wide registry, pre-seeded with the built-in targets.
#: The SA-1110 comes first: "all registered platforms" sweeps lead with
#: the paper's processor, and single-platform flows keep it as default.
DEFAULT_REGISTRY = ProcessorRegistry()
DEFAULT_REGISTRY.register("SA-1110", SA1110, BADGE4_ENERGY)
DEFAULT_REGISTRY.register("ARM7TDMI", ARM7TDMI, ARM7TDMI_ENERGY)
DEFAULT_REGISTRY.register("ARM926", ARM926, ARM926_ENERGY)
DEFAULT_REGISTRY.register("DSP", GENERIC_DSP, GENERIC_DSP_ENERGY)


def register_processor(key: str, spec: ProcessorSpec,
                       energy: EnergyModel | None = None, *,
                       replace: bool = False) -> PlatformEntry:
    """Register a target in the default registry (see
    :meth:`ProcessorRegistry.register`)."""
    return DEFAULT_REGISTRY.register(key, spec, energy, replace=replace)


def get_processor(key: str) -> PlatformEntry:
    """The default registry's entry for ``key``."""
    return DEFAULT_REGISTRY.get(key)


def platform_named(key: str) -> Badge4:
    """A fresh platform instance for the default registry's ``key``."""
    return DEFAULT_REGISTRY.platform(key)


def registered_processors() -> list[str]:
    """Keys of the default registry, in registration order."""
    return DEFAULT_REGISTRY.names()
