"""Energy model for the Badge4 platform.

The paper measures whole-system energy (processor + memory + DC-DC
converter) with data acquisition hardware; reference [16] is the
cycle-accurate energy simulator used for library characterization.  Our
substitute prices energy as

    E = (P_core(V, f) + P_mem(activity) + P_static) * t / eta_dcdc

* ``P_core`` scales as C_eff * V^2 * f (the CMOS dynamic-power law that
  makes the paper's DVFS argument work);
* memory power follows load/store activity;
* the DC-DC converter adds a fixed efficiency loss.

Constants approximate the published SA-1110/Badge numbers (~400 mW core
at 206.4 MHz / 1.55 V, ~85% converter efficiency).  As with the cycle
model, the reproduction depends on relative behaviour, not the absolute
milliwatts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError
from repro.platform.processor import CostModel
from repro.platform.tally import OperationTally

__all__ = ["EnergyModel", "BADGE4_ENERGY", "ARM7TDMI_ENERGY",
           "ARM926_ENERGY", "GENERIC_DSP_ENERGY"]


@dataclass(frozen=True)
class EnergyModel:
    """Whole-platform energy pricing.

    Attributes
    ----------
    core_power_max_w:
        Core dynamic power at ``nominal_voltage``/``nominal_clock_hz``.
    nominal_voltage / nominal_clock_hz:
        The operating point the max power is quoted at.
    static_power_w:
        Leakage + always-on peripherals charged for the whole runtime.
    mem_energy_per_access_j:
        Incremental energy per load/store (SRAM/SDRAM average).
    dcdc_efficiency:
        DC-DC converter efficiency (0 < eta <= 1).
    """

    core_power_max_w: float = 0.40
    nominal_voltage: float = 1.55
    nominal_clock_hz: float = 206.4e6
    static_power_w: float = 0.06
    mem_energy_per_access_j: float = 1.5e-9
    dcdc_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if not 0 < self.dcdc_efficiency <= 1:
            raise PlatformError(
                f"DC-DC efficiency must be in (0, 1], got {self.dcdc_efficiency}")

    def core_power(self, voltage: float | None = None,
                   clock_hz: float | None = None) -> float:
        """Core dynamic power at an operating point: P ~ V^2 * f."""
        v = voltage if voltage is not None else self.nominal_voltage
        f = clock_hz if clock_hz is not None else self.nominal_clock_hz
        scale = (v / self.nominal_voltage) ** 2 * (f / self.nominal_clock_hz)
        return self.core_power_max_w * scale

    def energy(self, tally: OperationTally, cost_model: CostModel,
               voltage: float | None = None,
               clock_hz: float | None = None) -> float:
        """Energy in Joules to execute ``tally`` at an operating point.

        The clock defaults to the *processor's* clock, not this model's
        nominal point: a board may pair an energy model quoted at one
        frequency with a spec that runs at another (the registry's
        fallback board does exactly that), and the work is executed at
        the spec's clock — ``core_power`` scales the quoted power to it.
        """
        f = clock_hz if clock_hz is not None else cost_model.spec.clock_hz
        seconds = cost_model.seconds(tally, clock_hz=f)
        compute = (self.core_power(voltage, f) + self.static_power_w) * seconds
        memory = (tally.load + tally.store) * self.mem_energy_per_access_j
        return (compute + memory) / self.dcdc_efficiency

    def idle_energy(self, seconds: float) -> float:
        """Energy burnt sitting idle (static/leakage power only).

        This is what makes racing-to-idle lose to DVFS in the paper's
        argument: finishing a frame early still pays static power until
        the next frame is due.
        """
        if seconds <= 0:
            return 0.0
        return self.static_power_w * seconds / self.dcdc_efficiency


#: Default Badge4 energy model.
BADGE4_ENERGY = EnergyModel()

#: ARM7TDMI-class board: an older, higher-voltage process, so the core
#: burns more per cycle than its clock suggests; uncached external
#: memory makes each access pricier.
ARM7TDMI_ENERGY = EnergyModel(
    core_power_max_w=0.045,
    nominal_voltage=1.8,
    nominal_clock_hz=66.0e6,
    static_power_w=0.020,
    mem_energy_per_access_j=2.2e-9,
    dcdc_efficiency=0.85,
)

#: ARM926EJ-S-class board: a newer low-voltage process with cached
#: memory — cheaper per cycle and per access than the SA-1110.
ARM926_ENERGY = EnergyModel(
    core_power_max_w=0.090,
    nominal_voltage=1.2,
    nominal_clock_hz=200.0e6,
    static_power_w=0.030,
    mem_energy_per_access_j=1.2e-9,
    dcdc_efficiency=0.88,
)

#: Generic fixed-point DSP board: frugal datapaths and on-chip RAM —
#: by far the cheapest per access — but the whole advantage evaporates
#: if the code leaves doubles in the hot loop.
GENERIC_DSP_ENERGY = EnergyModel(
    core_power_max_w=0.120,
    nominal_voltage=1.5,
    nominal_clock_hz=160.0e6,
    static_power_w=0.012,
    mem_energy_per_access_j=0.8e-9,
    dcdc_efficiency=0.90,
)
