"""MPEG-style conformance checking (the paper's accuracy feedback).

"Compliance test provided by MPEG standard [17] is used to evaluate the
accuracy of the optimizations.  The range of RMS error between the
original code's output and the samples produced by the code under test
defines the level of compliance."

ISO/IEC 11172-4 defines the decoder bands in terms of RMS error against
the reference for full-scale samples:

* **full accuracy**: RMS < 2^-15 / sqrt(12), max |diff| < 2^-14;
* **limited accuracy**: RMS < 2^-11 / sqrt(12), max |diff| < 2^-10;
* anything worse is **non-compliant**.

The mapping flow calls :func:`check_compliance` after every rewriting
step, exactly as Section 4 describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ComplianceError

__all__ = ["ComplianceLevel", "ComplianceReport", "check_compliance",
           "FULL_RMS_LIMIT", "LIMITED_RMS_LIMIT"]

FULL_RMS_LIMIT = 2.0 ** -15 / math.sqrt(12.0)
FULL_MAX_LIMIT = 2.0 ** -14
LIMITED_RMS_LIMIT = 2.0 ** -11 / math.sqrt(12.0)
LIMITED_MAX_LIMIT = 2.0 ** -10


class ComplianceLevel:
    """Ordered compliance levels."""

    FULL = "full"
    LIMITED = "limited"
    NON_COMPLIANT = "non-compliant"

    _ORDER = {FULL: 2, LIMITED: 1, NON_COMPLIANT: 0}

    @classmethod
    def at_least(cls, level: str, minimum: str) -> bool:
        """True if ``level`` meets or exceeds ``minimum``."""
        return cls._ORDER[level] >= cls._ORDER[minimum]


@dataclass(frozen=True)
class ComplianceReport:
    """Outcome of comparing a decoder under test against the reference."""

    rms_error: float
    max_error: float
    level: str

    def require(self, minimum: str) -> None:
        """Raise :class:`ComplianceError` below ``minimum``."""
        if not ComplianceLevel.at_least(self.level, minimum):
            raise ComplianceError(
                f"compliance {self.level} below required {minimum} "
                f"(rms={self.rms_error:.3g}, max={self.max_error:.3g})")


def check_compliance(reference: np.ndarray,
                     under_test: np.ndarray) -> ComplianceReport:
    """Grade ``under_test`` PCM against ``reference`` PCM.

    Arrays must have identical shape; samples are full-scale in
    [-1, 1] as the decoder produces them.
    """
    reference = np.asarray(reference, dtype=np.float64)
    under_test = np.asarray(under_test, dtype=np.float64)
    if reference.shape != under_test.shape:
        raise ComplianceError(
            f"shape mismatch: {reference.shape} vs {under_test.shape}")
    diff = reference - under_test
    rms = float(np.sqrt(np.mean(diff * diff)))
    peak = float(np.max(np.abs(diff))) if diff.size else 0.0
    if rms < FULL_RMS_LIMIT and peak < FULL_MAX_LIMIT:
        level = ComplianceLevel.FULL
    elif rms < LIMITED_RMS_LIMIT and peak < LIMITED_MAX_LIMIT:
        level = ComplianceLevel.LIMITED
    else:
        level = ComplianceLevel.NON_COMPLIANT
    return ComplianceReport(rms, peak, level)
