"""Polyphase subband synthesis (SubBandSynthesis / ippsSynthPQMF_MP3_32s16s).

Per time step the filterbank turns 32 subband samples into 32 PCM
samples: matrixing ``V[0:64] = N @ s`` into a 1024-value FIFO, then a
512-tap windowed accumulation (16 taps per output).

Variants
--------
``float``
    The ISO reference shape: dense 64x32 matrixing in double (2048
    muls), an explicit 960-element FIFO shift, 512-tap windowing.
``fixed_fast``
    The in-house element: Lee fast DCT-32 (really computed — see
    :mod:`repro.mp3.fastdct`) with the 64-point symmetry mapping, Q5.26
    samples and a circular FIFO (no copying), saturating fixed-helper
    pricing.  This algorithmic win is why the paper's Table 1 shows
    fixed subband synthesis gaining 92x while fixed IMDCT (a straight
    port) gains only 27x.
``ipp``
    Same fast algorithm at hand-scheduled assembly prices.

Fixed numerics are modeled by boundary quantization: the DCT core runs
in double and its outputs are quantized to Q5.26 before the Q1.15
windowing, which bounds the per-stage rounding exactly like a
word-accurate implementation would.
"""

from __future__ import annotations

import numpy as np

from repro.mp3.costs import asm_adds, asm_mac_taps, float_macs, ih_adds, ih_mul_taps
from repro.mp3.fastdct import dct2_add_count, dct2_mul_count, matrixing_from_dct
from repro.mp3.fxutil import WIN_FRAC, XR_FRAC, from_q, qround_shift, to_q
from repro.mp3.tables import POLYPHASE_N, SUBBANDS, SYNTH_WINDOW_D
from repro.platform.tally import OperationTally

__all__ = ["SynthesisState", "synthesis_float", "synthesis_fixed_fast",
           "synthesis_ipp", "VARIANTS"]

_V_SIZE = 1024
_TAPS = 16
_WINDOW_Q = to_q(SYNTH_WINDOW_D, WIN_FRAC)

_DCT_MULS = dct2_mul_count(32)   # 80
_DCT_ADDS = dct2_add_count(32)   # 209


class SynthesisState:
    """Per-channel filterbank memory: the 1024-value V FIFO."""

    def __init__(self, fixed: bool = False):
        dtype = np.int64 if fixed else np.float64
        self.v = np.zeros(_V_SIZE, dtype=dtype)

    def reset(self) -> None:
        self.v[:] = 0


def _window_indices() -> tuple[np.ndarray, np.ndarray]:
    """(u_index, d_index) pairs of the ISO windowing step, precomputed.

    ``U[i*64+j]    = V[i*128+j]``      (j in [0,32))
    ``U[i*64+32+j] = V[i*128+96+j]``   (j in [0,32))
    ``out[j] = sum_i U[j + 32*i] * D[j + 32*i]``.
    """
    u_from_v = np.empty(512, dtype=np.int64)
    for i in range(8):
        j = np.arange(32)
        u_from_v[i * 64 + j] = i * 128 + j
        u_from_v[i * 64 + 32 + j] = i * 128 + 96 + j
    j = np.arange(32)[:, None]
    i = np.arange(_TAPS)[None, :]
    tap_index = j + 32 * i                     # (32, 16) indices into U/D
    return u_from_v, tap_index


_U_FROM_V, _TAP_INDEX = _window_indices()


def _synthesize(v: np.ndarray, new_v: np.ndarray,
                window: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shared FIFO + windowing math; returns (pcm32, updated fifo)."""
    v = np.concatenate((new_v, v[:-64]))
    u = v[_U_FROM_V]
    taps = u[_TAP_INDEX] * window[_TAP_INDEX]
    return taps.sum(axis=1), v


def synthesis_float(samples: np.ndarray, state: SynthesisState,
                    tally: OperationTally) -> np.ndarray:
    """Reference double-precision synthesis of one time step (32 in/out)."""
    new_v = POLYPHASE_N @ samples
    pcm, state.v = _synthesize(state.v, new_v, SYNTH_WINDOW_D)
    float_macs(tally,
               muls=64 * SUBBANDS + 512,
               adds=64 * (SUBBANDS - 1) + 32 * (_TAPS - 1),
               loads=64 * SUBBANDS + 2 * 512,
               stores=64 + 32)
    tally.load += 960                 # FIFO shift reads
    tally.store += 960                # FIFO shift writes
    tally.branch += 32                # clip tests
    tally.call += 1
    return pcm


def synthesis_fixed_fast(raws: np.ndarray, state: SynthesisState,
                         tally: OperationTally) -> np.ndarray:
    """In-house fast fixed synthesis (Lee DCT-32 + circular FIFO)."""
    new_v = to_q(matrixing_from_dct(from_q(raws, XR_FRAC)), XR_FRAC)
    wide, state.v = _synthesize(state.v, new_v, _WINDOW_Q)
    pcm = qround_shift(wide, WIN_FRAC)
    ih_mul_taps(tally, _DCT_MULS + 512)       # DCT muls + window taps
    ih_adds(tally, _DCT_ADDS + 32 * (_TAPS - 1))
    tally.int_alu += 64 + 48                  # symmetry mapping + negates
    tally.store += 64 + 32
    tally.int_alu += 16                       # circular index arithmetic
    tally.branch += 32
    tally.call += 1
    return pcm


def synthesis_ipp(raws: np.ndarray, state: SynthesisState,
                  tally: OperationTally) -> np.ndarray:
    """IPP-grade fast synthesis (same algorithm, assembly pricing)."""
    new_v = to_q(matrixing_from_dct(from_q(raws, XR_FRAC)), XR_FRAC)
    wide, state.v = _synthesize(state.v, new_v, _WINDOW_Q)
    pcm = qround_shift(wide, WIN_FRAC)
    asm_mac_taps(tally, _DCT_MULS + 512)
    asm_adds(tally, _DCT_ADDS + 32 * (_TAPS - 1) + 64 + 16)
    tally.store += 64 + 32
    tally.branch += 32
    tally.call += 1
    return pcm


VARIANTS = {
    "float": (synthesis_float, "float"),
    "fixed_fast": (synthesis_fixed_fast, "fixed"),
    "ipp": (synthesis_ipp, "fixed"),
}
