"""The 36-point IMDCT with windowing (inv_mdctL / IppsMDCTInv_MP3_32s).

Equation 1 of the paper::

    x_i = sum_{k=0}^{n/2-1} y_k cos(pi/(2n) (2i + 1 + n/2)(2k + 1))

applied per subband to 18 spectral lines, followed by the sine window.
Variants:

``float``
    Reference: dense 36x18 cosine multiply in double (648 muls + 612
    adds) plus 36 window multiplies per block.
``fixed``
    The in-house element: same dense algorithm in Q5.26 with Q1.14
    cosine/window tables, every tap through the saturating fixed-mul
    helper.  This is deliberately *not* algorithmically faster — the
    paper's Table 1 shows fixed IMDCT gaining only 27x (vs 92x for
    fixed subband synthesis), consistent with a straight fixed-point
    port.
``ipp``
    IPP-grade fast MDCT synthesis.  The numeric path uses the exact
    cosine transform (the fast factorization is mathematically
    identical); the cost tally uses the published fast-36-IMDCT
    operation counts (43 multiplies + 115 additions per block) at
    hand-scheduled assembly prices, the way the paper characterizes IPP
    elements "from documentation".
"""

from __future__ import annotations

import numpy as np

from repro.mp3.costs import asm_adds, asm_mac_taps, float_macs, ih_mul_taps
from repro.mp3.fxutil import COEF_FRAC, WIN_FRAC, qround_shift, to_q
from repro.mp3.tables import IMDCT_COS_36, IMDCT_WIN_36
from repro.platform.tally import OperationTally

__all__ = ["imdct_block_float", "imdct_block_fixed", "imdct_block_ipp",
           "VARIANTS", "IPP_FAST_MULS", "IPP_FAST_ADDS"]

_N = 36
_HALF = 18

#: Published fast-IMDCT-36 operation counts (Szabo/Konig-class kernels).
IPP_FAST_MULS = 43
IPP_FAST_ADDS = 115

_COS_Q = to_q(IMDCT_COS_36, COEF_FRAC)
_WIN_Q = to_q(IMDCT_WIN_36, WIN_FRAC)


def imdct_block_float(lines: np.ndarray, tally: OperationTally) -> np.ndarray:
    """Reference: windowed IMDCT of 18 lines -> 36 samples (float64)."""
    out = (IMDCT_COS_36 @ lines) * IMDCT_WIN_36
    float_macs(tally,
               muls=_N * _HALF + _N,          # matrix + window
               adds=_N * (_HALF - 1),
               loads=_N * _HALF + _N,
               stores=_N)
    tally.branch += _N
    tally.call += 1
    return out


def imdct_block_fixed(raws: np.ndarray, tally: OperationTally) -> np.ndarray:
    """In-house fixed: dense Q5.26 x Q1.14 transform + Q1.15 window."""
    acc = _COS_Q @ raws                        # Q(26+14) accumulators
    samples = qround_shift(acc, COEF_FRAC)     # back to Q26
    windowed = qround_shift(samples * _WIN_Q, WIN_FRAC)
    ih_mul_taps(tally, _N * _HALF + _N)
    tally.int_alu += _N * (_HALF - 1)          # accumulates ride the MACs
    tally.store += _N
    tally.branch += _N
    tally.call += 1
    return windowed


def imdct_block_ipp(raws: np.ndarray, tally: OperationTally) -> np.ndarray:
    """IPP-grade fast IMDCT (fast-factorization cost, exact numerics)."""
    acc = _COS_Q @ raws
    samples = qround_shift(acc, COEF_FRAC)
    windowed = qround_shift(samples * _WIN_Q, WIN_FRAC)
    asm_mac_taps(tally, IPP_FAST_MULS + _N)    # fast muls + window macs
    asm_adds(tally, IPP_FAST_ADDS)
    tally.load += _HALF
    tally.store += _N
    tally.call += 1
    return windowed


VARIANTS = {
    "float": (imdct_block_float, "float"),
    "fixed": (imdct_block_fixed, "fixed"),
    "ipp": (imdct_block_ipp, "fixed"),
}
