"""MSB-first bitstream reader/writer with frame synchronization.

"The first step in decoding MP3 stream is synchronizing the incoming
bitstream and the decoder" (Section 2).  Frames in our synthetic
streams are delimited by the standard-style 11-bit sync pattern
(0x7FF) on a byte boundary, which :meth:`BitReader.seek_sync` hunts
for exactly like a real decoder does.
"""

from __future__ import annotations

from repro.errors import Mp3Error

__all__ = ["BitWriter", "BitReader", "SYNC_WORD", "SYNC_BITS"]

#: 11-bit frame sync pattern (all ones), as in MPEG audio.
SYNC_WORD = 0x7FF
SYNC_BITS = 11


class BitWriter:
    """Accumulates bits MSB-first into bytes."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_pos = 0  # bits used in the trailing partial byte

    def write(self, value: int, bits: int) -> None:
        """Append the low ``bits`` bits of ``value``, MSB first."""
        if bits < 0:
            raise Mp3Error("cannot write a negative number of bits")
        if bits == 0:
            return
        if value < 0 or value >= (1 << bits):
            raise Mp3Error(f"value {value} does not fit in {bits} bits")
        for shift in range(bits - 1, -1, -1):
            bit = (value >> shift) & 1
            if self._bit_pos == 0:
                self._bytes.append(0)
            self._bytes[-1] |= bit << (7 - self._bit_pos)
            self._bit_pos = (self._bit_pos + 1) % 8

    def align_byte(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        self._bit_pos = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        partial = self._bit_pos if self._bit_pos else 8
        if not self._bytes:
            return 0
        return (len(self._bytes) - 1) * 8 + partial

    def getvalue(self) -> bytes:
        """The accumulated bytes (zero-padded to a byte boundary)."""
        return bytes(self._bytes)


class BitReader:
    """Reads bits MSB-first; supports sync-pattern search."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # absolute bit position

    @property
    def bit_position(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read(self, bits: int) -> int:
        """Read ``bits`` bits as an unsigned integer."""
        if bits < 0:
            raise Mp3Error("cannot read a negative number of bits")
        if bits > self.bits_remaining:
            raise Mp3Error(
                f"bitstream exhausted: wanted {bits}, have {self.bits_remaining}")
        value = 0
        pos = self._pos
        for _ in range(bits):
            byte = self._data[pos >> 3]
            bit = (byte >> (7 - (pos & 7))) & 1
            value = (value << 1) | bit
            pos += 1
        self._pos = pos
        return value

    def peek(self, bits: int) -> int:
        """Read without consuming."""
        saved = self._pos
        try:
            return self.read(bits)
        finally:
            self._pos = saved

    def align_byte(self) -> None:
        """Skip to the next byte boundary."""
        self._pos = (self._pos + 7) & ~7

    def seek_sync(self) -> bool:
        """Advance to the next byte-aligned sync pattern.

        Returns True when positioned *at* a sync word, False when the
        stream is exhausted first.
        """
        self.align_byte()
        while self.bits_remaining >= SYNC_BITS:
            if self.peek(SYNC_BITS) == SYNC_WORD:
                return True
            self._pos += 8
        return False
