"""Lee's fast DCT-II — the algorithm inside fast subband synthesis.

The IPP-class (and good in-house) polyphase synthesis implementations
do not multiply the 64x32 matrix directly: they compute a 32-point
DCT-II with Lee's recursive decomposition (~N/2 log2 N multiplies: 80
for N=32, against 2048 for the matrix) and map its outputs onto the 64
matrixing values by symmetry.  This module implements the real
algorithm; the synthesis stage uses it for the fast variants.

Reference: B.G. Lee, "A new algorithm to compute the discrete cosine
transform", IEEE Trans. ASSP, 1984.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dct2", "dct2_mul_count", "dct2_add_count", "matrixing_from_dct"]


def _half_secants(n: int) -> np.ndarray:
    """The 1/(2 cos((2k+1) pi / (2n))) factors of one recursion level."""
    k = np.arange(n // 2)
    return 0.5 / np.cos((2 * k + 1) * np.pi / (2 * n))


# Precompute per-level factors for N up to 64 (keyed by sub-size).
_FACTORS: dict[int, np.ndarray] = {n: _half_secants(n)
                                   for n in (64, 32, 16, 8, 4, 2)}


def dct2(x: np.ndarray) -> np.ndarray:
    """DCT-II of ``x`` (length a power of two, >= 1), unnormalized:

        C[m] = sum_k x[k] cos(m (2k+1) pi / (2N))

    computed with Lee's recursion.
    """
    n = len(x)
    if n == 1:
        return x.astype(np.float64).copy()
    half = n // 2
    front = x[:half]
    back = x[half:][::-1]
    even = dct2(front + back)
    odd = dct2((front - back) * _FACTORS[n])
    out = np.empty(n, dtype=np.float64)
    out[0::2] = even
    # odd outputs: odd[i] + odd[i+1], with the implicit trailing zero.
    out[1::2] = odd + np.concatenate((odd[1:], [0.0]))
    return out


def dct2_mul_count(n: int) -> int:
    """Multiplications Lee's recursion performs for size ``n``."""
    if n <= 1:
        return 0
    return n // 2 + 2 * dct2_mul_count(n // 2)


def dct2_add_count(n: int) -> int:
    """Additions Lee's recursion performs for size ``n``.

    ``n`` input adds/subs plus ``n/2 - 1`` output merges per level:
    209 for N=32, the textbook figure.
    """
    if n <= 1:
        return 0
    return n + (n // 2 - 1) + 2 * dct2_add_count(n // 2)


def matrixing_from_dct(samples: np.ndarray) -> np.ndarray:
    """The 64 polyphase matrixing values from one DCT-II of size 32.

    ``V[i] = sum_k cos((16+i)(2k+1) pi/64) s[k]``; with
    ``C[m] = sum_k cos(m (2k+1) pi/64) s[k]`` (DCT-II of size 32) the
    angle identities give::

        V[i]      =  C[16 + i]        for i in [0, 16)
        V[16]     =  0
        V[i]      = -C[48 - i]        for i in (16, 48]
        V[i]      = -C[i - 48]        for i in (48, 64)

    This is the standard symmetry exploited by every fast PQMF.
    """
    c = dct2(np.asarray(samples, dtype=np.float64))
    v = np.empty(64, dtype=np.float64)
    v[0:16] = c[16:32]
    v[16] = 0.0
    v[17:49] = -c[31::-1]
    v[49:64] = -c[1:16]
    return v
