"""Synthetic MP3-like bitstream generator (the reproduction workload).

The paper streams real MP3 files from a server to the Badge4.  We have
no copyrighted audio or ISO reference bitstreams, so the workload is a
*synthetic encoder*: it draws plausible quantized Layer-III spectra
(decaying envelope, tonal peaks, zeroed high-frequency tail — the
statistics that drive every stage's work) and emits real sync-framed,
Huffman-coded bitstreams that the decoder substrate parses bit by bit.

Determinism: everything derives from the seed, so benchmark tables are
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import Mp3Error
from repro.mp3.bitstream import BitWriter
from repro.mp3.frame import Frame, FrameHeader, GranuleChannel
from repro.mp3.tables import FRAME_SAMPLES, GRANULE_SAMPLES

__all__ = ["EncodedStream", "SyntheticEncoder", "make_stream"]


@dataclass(frozen=True)
class EncodedStream:
    """An encoded bitstream plus its metadata."""

    data: bytes
    n_frames: int
    sample_rate: int
    channels: int

    @property
    def duration_seconds(self) -> float:
        """Audio duration represented by the stream."""
        return self.n_frames * FRAME_SAMPLES / self.sample_rate

    @property
    def frame_duration_seconds(self) -> float:
        """Real-time budget per frame."""
        return FRAME_SAMPLES / self.sample_rate


class SyntheticEncoder:
    """Draws random-but-plausible frames and serializes them."""

    def __init__(self, seed: int = 2002, sample_rate_index: int = 0,
                 channels: int = 2, ms_stereo: bool = True):
        if channels not in (1, 2):
            raise Mp3Error("channels must be 1 or 2")
        self.rng = np.random.default_rng(seed)
        self.header = FrameHeader(sample_rate_index, channels, ms_stereo)

    def _spectrum(self) -> np.ndarray:
        """One granule-channel of quantized spectral values."""
        rng = self.rng
        k = np.arange(GRANULE_SAMPLES, dtype=np.float64)
        envelope = 90.0 / (1.0 + (k / 24.0) ** 1.6)
        # Tonal peaks: a few bins get boosted like musical partials.
        n_peaks = int(rng.integers(2, 6))
        peaks = rng.integers(0, 200, size=n_peaks)
        boost = np.ones(GRANULE_SAMPLES)
        boost[peaks] = rng.uniform(3.0, 8.0, size=n_peaks)
        noise = rng.rayleigh(scale=0.45, size=GRANULE_SAMPLES)
        magnitudes = envelope * boost * noise
        signs = rng.choice((-1, 1), size=GRANULE_SAMPLES)
        values = np.round(signs * magnitudes).astype(np.int64)
        # Zero tail: real spectra die out; cutoff varies per granule.
        cutoff = int(rng.integers(220, 480))
        values[cutoff:] = 0
        return values

    def make_frame(self) -> Frame:
        """One frame of 2 granules x channels."""
        granules = []
        for _ in range(2):
            row = []
            for _ in range(self.header.channels):
                gain = int(self.rng.integers(140, 175))
                row.append(GranuleChannel(gain, self._spectrum()))
            granules.append(row)
        return Frame(self.header, granules)

    def encode(self, n_frames: int) -> EncodedStream:
        """Serialize ``n_frames`` frames into a sync-framed bitstream."""
        if n_frames <= 0:
            raise Mp3Error("need at least one frame")
        writer = BitWriter()
        for _ in range(n_frames):
            self.make_frame().write(writer)
        return EncodedStream(writer.getvalue(), n_frames,
                             self.header.sample_rate, self.header.channels)


def make_stream(n_frames: int = 8, seed: int = 2002,
                channels: int = 2) -> EncodedStream:
    """Convenience: a deterministic stereo test stream."""
    return SyntheticEncoder(seed=seed, channels=channels).encode(n_frames)
