"""Vectorized Q-format helpers for the fixed-point decoder stages.

The scalar :mod:`repro.fixedpoint` types are the right tool for the
math-kernel library; the decoder moves arrays of 576 samples per stage,
so its fixed variants run the same Q-format semantics on numpy int64
raws: multiply keeps the wide product and shifts back with rounding,
saturation clips to the 32-bit raw range.
"""

from __future__ import annotations

import numpy as np

__all__ = ["XR_FRAC", "COEF_FRAC", "WIN_FRAC", "to_q", "from_q", "qmul",
           "qround_shift", "saturate32"]

#: Q-format of spectral / time-domain samples (Q5.26 raws).
XR_FRAC = 26
#: Q-format of cosine-matrix coefficients (Q1.20 32-bit tables; full-
#: compliance fixed decoders need more than int16 coefficient precision).
COEF_FRAC = 20
#: Q-format of window coefficients (Q1.20).
WIN_FRAC = 20

_INT32_MAX = np.int64(2 ** 31 - 1)
_INT32_MIN = np.int64(-(2 ** 31))


def to_q(values: np.ndarray, frac: int) -> np.ndarray:
    """Quantize float64 values into int64 raws at ``frac`` fractional bits."""
    return np.round(np.asarray(values, dtype=np.float64)
                    * (1 << frac)).astype(np.int64)


def from_q(raws: np.ndarray, frac: int) -> np.ndarray:
    """Back to float64."""
    return np.asarray(raws, dtype=np.float64) / (1 << frac)


def qround_shift(wide: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-up, elementwise."""
    if shift <= 0:
        return wide << (-shift)
    return (wide + (1 << (shift - 1))) >> shift


def qmul(a_raw: np.ndarray, b_raw: np.ndarray, frac: int) -> np.ndarray:
    """Q-format multiply: wide product, rounded shift back."""
    return qround_shift(a_raw * b_raw, frac)


def saturate32(raws: np.ndarray) -> np.ndarray:
    """Clip raws to the signed 32-bit range (the C library saturates)."""
    return np.clip(raws, _INT32_MIN, _INT32_MAX)
