"""Numeric tables shared by the decoder stages.

* the Equation-1 IMDCT cosine matrix ``cos(pi/(2n) (2i+1+n/2)(2k+1))``
  for the long (n=36) and short (n=12) block sizes, plus the sine
  windows Layer III applies to IMDCT outputs;
* the polyphase matrixing cosines ``N[i][k] = cos((16+i)(2k+1) pi/64)``;
* a 512-tap synthesis prototype window ``D`` (windowed-sinc lowpass at
  pi/64 — the ISO table is data shipped with the standard; this
  prototype has the same length, shape and role, which is what the
  op-count reproduction needs);
* antialias butterfly coefficients ``cs``/``ca`` from the standard's
  eight ``ci`` constants.

Everything is precomputed once at import with numpy float64.
"""

from __future__ import annotations

import numpy as np

__all__ = ["imdct_cos_matrix", "imdct_window", "IMDCT_COS_36", "IMDCT_COS_12",
           "IMDCT_WIN_36", "POLYPHASE_N", "SYNTH_WINDOW_D", "ANTIALIAS_CS",
           "ANTIALIAS_CA", "SUBBANDS", "GRANULE_SAMPLES", "FRAME_SAMPLES"]

#: Layer III geometry.
SUBBANDS = 32
GRANULE_SAMPLES = 576          # 32 subbands x 18 samples
FRAME_SAMPLES = 2 * GRANULE_SAMPLES  # two granules


def imdct_cos_matrix(n: int) -> np.ndarray:
    """Equation 1's cosine matrix: shape ``(n, n // 2)``.

    ``x_i = sum_k cos(pi/(2n) (2i + 1 + n/2)(2k + 1)) y_k``.
    """
    i = np.arange(n)[:, None]
    k = np.arange(n // 2)[None, :]
    return np.cos(np.pi / (2 * n) * (2 * i + 1 + n // 2) * (2 * k + 1))


def imdct_window(n: int) -> np.ndarray:
    """Layer III long-block sine window: ``sin(pi/n (i + 1/2))``."""
    i = np.arange(n)
    return np.sin(np.pi / n * (i + 0.5))


IMDCT_COS_36 = imdct_cos_matrix(36)
IMDCT_COS_12 = imdct_cos_matrix(12)
IMDCT_WIN_36 = imdct_window(36)


def _polyphase_matrix() -> np.ndarray:
    """Synthesis matrixing: ``N[i][k] = cos((16 + i)(2k + 1) pi / 64)``."""
    i = np.arange(64)[:, None]
    k = np.arange(32)[None, :]
    return np.cos((16 + i) * (2 * k + 1) * np.pi / 64)


POLYPHASE_N = _polyphase_matrix()


def _synthesis_window() -> np.ndarray:
    """512-tap lowpass prototype (Hann-windowed sinc at cutoff pi/64).

    The ISO D[] coefficients are tabulated data; this prototype matches
    their length, symmetry and lowpass role so the filterbank is a real
    near-perfect-reconstruction PQMF.  Scaled so a DC subband input
    reconstructs at unit gain.
    """
    taps = 512
    n = np.arange(taps)
    center = (taps - 1) / 2.0
    x = (n - center) / 64.0
    sinc = np.sinc(x)
    hann = 0.5 - 0.5 * np.cos(2 * np.pi * (n + 0.5) / taps)
    window = sinc * hann
    window /= window.sum() / 32.0
    return window


SYNTH_WINDOW_D = _synthesis_window()

#: The standard's antialias constants.
_CI = np.array([-0.6, -0.535, -0.33, -0.185, -0.095, -0.041, -0.0142, -0.0037])
ANTIALIAS_CS = 1.0 / np.sqrt(1.0 + _CI ** 2)
ANTIALIAS_CA = _CI / np.sqrt(1.0 + _CI ** 2)
