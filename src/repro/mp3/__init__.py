"""``repro.mp3`` — the MP3-Layer-III-style decoder substrate.

The paper's evaluation vehicle: a structurally faithful decoder
pipeline (sync, Huffman, requantize, stereo, reorder, antialias, IMDCT,
hybrid overlap, polyphase synthesis) with reference-float, in-house
fixed-point, and IPP-style implementations of every computational
stage, a synthetic workload generator, and the MPEG-style compliance
check.
"""

from repro.mp3.bitstream import BitReader, BitWriter
from repro.mp3.compliance import (ComplianceLevel, ComplianceReport,
                                  check_compliance)
from repro.mp3.decoder import (CONFIGURATIONS, IH_IPP_FULL, IH_IPP_SUBBAND,
                               IH_LIBRARY, IPP_MP3, IPP_SUBBAND,
                               IPP_SUBBAND_IMDCT, ORIGINAL, DecoderConfig,
                               Mp3Decoder)
from repro.mp3.frame import Frame, FrameHeader, GranuleChannel
from repro.mp3.huffman import PAIR_TABLE, HuffmanTable
from repro.mp3.synth_stream import EncodedStream, SyntheticEncoder, make_stream
from repro.mp3.tables import FRAME_SAMPLES, GRANULE_SAMPLES, SUBBANDS

__all__ = [
    "BitReader", "BitWriter",
    "HuffmanTable", "PAIR_TABLE",
    "Frame", "FrameHeader", "GranuleChannel",
    "EncodedStream", "SyntheticEncoder", "make_stream",
    "DecoderConfig", "Mp3Decoder", "CONFIGURATIONS",
    "ORIGINAL", "IPP_SUBBAND", "IPP_SUBBAND_IMDCT", "IH_LIBRARY",
    "IH_IPP_SUBBAND", "IH_IPP_FULL", "IPP_MP3",
    "ComplianceLevel", "ComplianceReport", "check_compliance",
    "FRAME_SAMPLES", "GRANULE_SAMPLES", "SUBBANDS",
]
