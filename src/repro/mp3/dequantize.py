"""Requantization: quantized integers -> spectral values (III_dequantize_sample).

The reference formula is ``xr = sign(iq) * |iq|^(4/3) * 2^(0.25 *
(global_gain - 210))``.  The ISO C code calls double-precision ``pow``
**twice per sample** (once for the 4/3 power, once for the gain), which
on a soft-float StrongARM is why this one function is 45% of the
original profile (Table 3).

Variants
--------
``float``
    Reference semantics and reference cost (2 pow calls/sample).
``fixed``
    The in-house approach: a precomputed ``n^(4/3)`` table plus a
    shift/multiply gain application in Q5.26, through the saturating
    fixed helper (2 helper calls/sample plus band bookkeeping).
``asm``
    IPP-grade table lookup with folded scaling (used by the "IPP MP3"
    configuration only).
"""

from __future__ import annotations

import numpy as np

from repro.mp3.costs import ih_mul_taps
from repro.mp3.frame import GranuleChannel
from repro.mp3.fxutil import XR_FRAC, to_q
from repro.platform.tally import OperationTally

__all__ = ["dequantize_float", "dequantize_fixed", "dequantize_asm",
           "VARIANTS"]


def _xr_reference(gc: GranuleChannel) -> np.ndarray:
    iq = gc.values.astype(np.float64)
    gain = 2.0 ** (0.25 * (gc.global_gain - 210))
    return np.sign(iq) * np.abs(iq) ** (4.0 / 3.0) * gain


def dequantize_float(gc: GranuleChannel, tally: OperationTally) -> np.ndarray:
    """Reference double-precision requantizer; returns float64 xr[576]."""
    xr = _xr_reference(gc)
    n = len(gc.values)
    tally.libm("pow", 2 * n)      # |iq|^(4/3) and 2^(0.25(gain-210)), per sample
    tally.fp_mul += 2 * n         # sign apply + gain apply
    tally.load += 2 * n
    tally.store += n
    tally.branch += n             # sign test
    tally.int_alu += 2 * n        # index/gain arithmetic
    tally.call += 1
    return xr


def dequantize_fixed(gc: GranuleChannel, tally: OperationTally) -> np.ndarray:
    """In-house fixed-point requantizer; returns Q5.26 int64 raws.

    Numerically: the exact reference value quantized to Q5.26, which is
    what a correctly-rounded table + shift implementation produces.
    """
    raws = to_q(_xr_reference(gc), XR_FRAC)
    n = len(gc.values)
    ih_mul_taps(tally, 2 * n)     # pow43-scale and gain-scale helper calls
    tally.load += 3 * n           # table + value + gain-shift lookups
    tally.branch += 3 * n         # sign, escape, saturation band tests
    tally.int_alu += 6 * n
    tally.shift += 2 * n
    tally.store += n
    tally.call += 1
    return raws


def dequantize_asm(gc: GranuleChannel, tally: OperationTally) -> np.ndarray:
    """IPP-grade requantizer: same values, hand-scheduled cost."""
    raws = to_q(_xr_reference(gc), XR_FRAC)
    n = len(gc.values)
    tally.int_mul += n
    tally.shift += n
    tally.load += 2 * n
    tally.store += n
    tally.int_alu += n
    tally.call += 1
    return raws


#: variant name -> (callable, output domain)
VARIANTS = {
    "float": (dequantize_float, "float"),
    "fixed": (dequantize_fixed, "fixed"),
    "asm": (dequantize_asm, "fixed"),
}
