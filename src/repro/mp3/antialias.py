"""Alias-reduction butterflies (III_antialias).

Eight butterflies across each of the 31 subband boundaries:

    xr'[below] = xr[below]*cs - xr[above]*ca
    xr'[above] = xr[above]*cs + xr[below]*ca

with the standard's cs/ca constants.  4 multiplies + 2 adds per
butterfly; 248 butterflies per granule-channel.
"""

from __future__ import annotations

import numpy as np

from repro.mp3.costs import asm_mac_taps, float_macs, ih_adds, ih_mul_taps
from repro.mp3.fxutil import COEF_FRAC, qround_shift, to_q
from repro.mp3.tables import ANTIALIAS_CA, ANTIALIAS_CS, SUBBANDS
from repro.platform.tally import OperationTally

__all__ = ["antialias_float", "antialias_fixed", "antialias_asm", "VARIANTS",
           "BUTTERFLIES_PER_GRANULE"]

_SB_SIZE = 18
#: 31 boundaries x 8 butterflies.
BUTTERFLIES_PER_GRANULE = (SUBBANDS - 1) * 8

_CS_Q = to_q(ANTIALIAS_CS, COEF_FRAC)
_CA_Q = to_q(ANTIALIAS_CA, COEF_FRAC)


def _butterfly_float(xr: np.ndarray) -> np.ndarray:
    out = xr.copy()
    for boundary in range(1, SUBBANDS):
        base = boundary * _SB_SIZE
        below = out[base - 8: base][::-1].copy()   # 8 lines below the boundary
        above = out[base: base + 8].copy()
        out[base - 8: base] = (below * ANTIALIAS_CS - above * ANTIALIAS_CA)[::-1]
        out[base: base + 8] = above * ANTIALIAS_CS + below * ANTIALIAS_CA
    return out


def antialias_float(xr: np.ndarray, tally: OperationTally) -> np.ndarray:
    """Reference double-precision butterflies."""
    out = _butterfly_float(xr)
    b = BUTTERFLIES_PER_GRANULE
    float_macs(tally, muls=4 * b, adds=2 * b, loads=2 * b, stores=2 * b)
    tally.branch += SUBBANDS
    tally.call += 1
    return out


def antialias_fixed(raws: np.ndarray, tally: OperationTally) -> np.ndarray:
    """Fixed-point butterflies on Q5.26 raws with Q1.14 constants."""
    out = raws.copy()
    for boundary in range(1, SUBBANDS):
        base = boundary * _SB_SIZE
        below = out[base - 8: base][::-1].copy()
        above = out[base: base + 8].copy()
        new_below = qround_shift(below * _CS_Q - above * _CA_Q, COEF_FRAC)
        new_above = qround_shift(above * _CS_Q + below * _CA_Q, COEF_FRAC)
        out[base - 8: base] = new_below[::-1]
        out[base: base + 8] = new_above
    b = BUTTERFLIES_PER_GRANULE
    ih_mul_taps(tally, 4 * b)
    ih_adds(tally, 2 * b)
    tally.store += 2 * b
    tally.branch += SUBBANDS
    tally.call += 1
    return out


def antialias_asm(raws: np.ndarray, tally: OperationTally) -> np.ndarray:
    """IPP-grade butterflies (same math, MAC pricing)."""
    out = antialias_fixed(raws, OperationTally())
    b = BUTTERFLIES_PER_GRANULE
    asm_mac_taps(tally, 4 * b)
    tally.int_alu += 2 * b
    tally.store += 2 * b
    tally.call += 1
    return out


VARIANTS = {
    "float": (antialias_float, "float"),
    "fixed": (antialias_fixed, "fixed"),
    "asm": (antialias_asm, "fixed"),
}
