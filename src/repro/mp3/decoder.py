"""The decoder: stage pipeline with pluggable library elements.

This is the artifact the whole paper is about.  Every stage of the
Layer-III pipeline (Section 2: sync -> Huffman -> requantize -> stereo
-> reorder -> antialias -> IMDCT -> hybrid overlap -> polyphase
synthesis) exists in several library grades, and a
:class:`DecoderConfig` picks one per stage — exactly the knob the
mapping flow turns when it swaps reference code for Linux-math,
in-house, or IPP elements.

The seven preset configurations are the seven rows of the paper's
Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import Mp3Error
from repro.mp3 import antialias as aa
from repro.mp3 import dequantize as dq
from repro.mp3 import hybrid as hy
from repro.mp3 import imdct as im
from repro.mp3 import reorder as ro
from repro.mp3 import stereo as stx
from repro.mp3 import synthesis as sy
from repro.mp3.bitstream import BitReader
from repro.mp3.costs import domain_conversion
from repro.mp3.frame import Frame
from repro.mp3.fxutil import XR_FRAC, from_q, to_q
from repro.mp3.synth_stream import EncodedStream
from repro.mp3.tables import SUBBANDS
from repro.platform.profiler import Profiler
from repro.platform.tally import OperationTally

__all__ = ["DecoderConfig", "Mp3Decoder", "CONFIGURATIONS",
           "ORIGINAL", "IPP_SUBBAND", "IPP_SUBBAND_IMDCT", "IH_LIBRARY",
           "IH_IPP_SUBBAND", "IH_IPP_FULL", "IPP_MP3"]

_SB_SIZE = 18


@dataclass(frozen=True)
class DecoderConfig:
    """Which library element implements each stage."""

    name: str
    dequantize: str = "float"     # float | fixed | asm
    stereo: str = "float"         # float | fixed | asm
    antialias: str = "float"      # float | fixed | asm
    imdct: str = "float"          # float | fixed | ipp
    synthesis: str = "float"      # float | fixed_fast | ipp
    huffman_grade: str = "c"      # c | asm
    description: str = ""

    def __post_init__(self) -> None:
        checks = [
            (self.dequantize, dq.VARIANTS), (self.stereo, stx.VARIANTS),
            (self.antialias, aa.VARIANTS), (self.imdct, im.VARIANTS),
            (self.synthesis, sy.VARIANTS),
        ]
        for variant, table in checks:
            if variant not in table:
                raise Mp3Error(f"unknown stage variant {variant!r}")

    @property
    def frontend_domain(self) -> str:
        return dq.VARIANTS[self.dequantize][1]

    @property
    def imdct_domain(self) -> str:
        return im.VARIANTS[self.imdct][1]

    @property
    def synthesis_domain(self) -> str:
        return sy.VARIANTS[self.synthesis][1]


#: Table 6 row 1: the standards-body code, double precision throughout.
ORIGINAL = DecoderConfig(
    "Original", description="ISO reference: all double-precision float")
#: Table 6 row 2: only IPP subband synthesis dropped in.
IPP_SUBBAND = DecoderConfig(
    "IPP SubBand", synthesis="ipp",
    description="reference float code + ippsSynthPQMF")
#: Table 6 row 3: IPP subband synthesis and IPP IMDCT.
IPP_SUBBAND_IMDCT = DecoderConfig(
    "IPP SubBand & IMDCT", synthesis="ipp", imdct="ipp",
    description="reference float code + ippsSynthPQMF + ippsMDCTInv")
#: Table 6 row 4: Linux-math + in-house fixed point everywhere.
IH_LIBRARY = DecoderConfig(
    "IH Library", dequantize="fixed", stereo="fixed", antialias="fixed",
    imdct="fixed", synthesis="fixed_fast",
    description="LM+IH mapping: fixed point throughout")
#: Table 6 row 5.
IH_IPP_SUBBAND = DecoderConfig(
    "IH + IPP SubBand", dequantize="fixed", stereo="fixed", antialias="fixed",
    imdct="fixed", synthesis="ipp",
    description="IH everywhere + ippsSynthPQMF")
#: Table 6 row 6: the paper's best automatic result.
IH_IPP_FULL = DecoderConfig(
    "IH + IPP SubBand & IMDCT", dequantize="fixed", stereo="fixed",
    antialias="fixed", imdct="ipp", synthesis="ipp",
    description="IH everywhere + both IPP elements (best mapped version)")
#: Table 6 row 7: Intel's fully hand-optimized decoder (comparison bound).
IPP_MP3 = DecoderConfig(
    "IPP MP3", dequantize="asm", stereo="asm", antialias="asm",
    imdct="ipp", synthesis="ipp", huffman_grade="asm",
    description="fully hand-optimized decoder (everything assembly-grade)")

#: All Table 6 rows in paper order.
CONFIGURATIONS = (ORIGINAL, IPP_SUBBAND, IPP_SUBBAND_IMDCT, IH_LIBRARY,
                  IH_IPP_SUBBAND, IH_IPP_FULL, IPP_MP3)


def _profile_names(config: DecoderConfig) -> dict[str, str]:
    """Profiler row names per stage, following the paper's tables."""
    return {
        "side": "III_get_scale_factors",
        "huffman": ("ippsHuffmanDecode_MP3" if config.huffman_grade == "asm"
                    else "III_hufman_decode"),
        "dequantize": ("ippsReQuantize_MP3_32s" if config.dequantize == "asm"
                       else "III_dequantize_sample"),
        "stereo": ("ippsJointStereo_MP3_32s" if config.stereo == "asm"
                   else "III_stereo"),
        "reorder": "III_reorder",
        "antialias": ("ippsAntialias_MP3_32s" if config.antialias == "asm"
                      else "III_antialias"),
        "imdct": ("IppsMDCTInv_MP3_32s" if config.imdct == "ipp"
                  else "inv_mdctL"),
        "hybrid": "III_hybrid",
        "synthesis": ("ippsSynthPQMF_MP3_32s16s" if config.synthesis == "ipp"
                      else "SubBandSynthesis"),
        "convert": "xr_format_convert",
    }


class Mp3Decoder:
    """Decodes synthetic streams with a given stage configuration.

    >>> from repro.mp3.synth_stream import make_stream
    >>> stream = make_stream(n_frames=2)
    >>> decoder = Mp3Decoder(ORIGINAL)
    >>> pcm = decoder.decode(stream)
    >>> pcm.shape
    (2304, 2)
    """

    def __init__(self, config: DecoderConfig = ORIGINAL,
                 profiler: Profiler | None = None):
        self.config = config
        self.profiler = profiler if profiler is not None else Profiler()
        self._names = _profile_names(config)

    # ------------------------------------------------------------------
    def decode(self, stream: EncodedStream) -> np.ndarray:
        """Decode the whole stream to PCM, shape (samples, channels)."""
        reader = BitReader(stream.data)
        channels = stream.channels
        hybrid_states = [hy.HybridState(
            np.int64 if self.config.imdct_domain == "fixed" else np.float64)
            for _ in range(channels)]
        synth_states = [sy.SynthesisState(
            fixed=self.config.synthesis_domain == "fixed")
            for _ in range(channels)]
        pcm_frames: list[np.ndarray] = []
        for _ in range(stream.n_frames):
            if not reader.seek_sync():
                raise Mp3Error("ran out of sync words before frame count")
            frame = self._read_frame(reader)
            pcm_frames.append(self._decode_frame(frame, hybrid_states,
                                                 synth_states))
        return np.concatenate(pcm_frames, axis=0)

    # ------------------------------------------------------------------
    def _record(self, stage: str, tally: OperationTally) -> None:
        self.profiler.record(self._names[stage], tally)

    def _read_frame(self, reader: BitReader) -> Frame:
        side_tally = OperationTally()
        huffman_tally = OperationTally()
        frame = Frame.read(reader, side_tally=side_tally,
                           huffman_tally=huffman_tally)
        if self.config.huffman_grade == "asm":
            huffman_tally = _asm_discount(huffman_tally)
        self._record("side", side_tally)
        self._record("huffman", huffman_tally)
        return frame

    def _convert(self, xr: np.ndarray, current: str, wanted: str) -> np.ndarray:
        """Move data between the float and fixed domains, with cost."""
        if current == wanted:
            return xr
        tally = OperationTally()
        domain_conversion(tally, len(xr), to_fixed=(wanted == "fixed"))
        self._record("convert", tally)
        if wanted == "fixed":
            return to_q(xr, XR_FRAC)
        return from_q(xr, XR_FRAC)

    def _decode_frame(self, frame: Frame,
                      hybrid_states: list[hy.HybridState],
                      synth_states: list[sy.SynthesisState]) -> np.ndarray:
        config = self.config
        channels = frame.header.channels
        granule_pcm: list[np.ndarray] = []
        for granule in frame.granules:
            # --- front end: dequantize + stereo + reorder + antialias ---
            dequantize_fn, front_domain = dq.VARIANTS[config.dequantize]
            xrs = []
            for gc in granule:
                tally = OperationTally()
                xrs.append(dequantize_fn(gc, tally))
                self._record("dequantize", tally)

            if channels == 2:
                stereo_fn, _ = stx.VARIANTS[config.stereo]
                tally = OperationTally()
                xrs = list(stereo_fn(xrs[0], xrs[1],
                                     frame.header.ms_stereo, tally))
                self._record("stereo", tally)

            processed = []
            for xr in xrs:
                tally = OperationTally()
                xr = ro.reorder(xr, short_blocks=False, tally=tally)
                self._record("reorder", tally)
                antialias_fn, _ = aa.VARIANTS[config.antialias]
                tally = OperationTally()
                xr = antialias_fn(xr, tally)
                self._record("antialias", tally)
                processed.append(xr)

            # --- IMDCT + hybrid + synthesis, per channel ---
            step_pcm = np.zeros((_SB_SIZE, SUBBANDS, channels))
            for ch, xr in enumerate(processed):
                xr = self._convert(xr, front_domain, config.imdct_domain)
                imdct_fn, imdct_domain = im.VARIANTS[config.imdct]
                blocks = np.empty((SUBBANDS, 2 * _SB_SIZE),
                                  dtype=np.int64 if imdct_domain == "fixed"
                                  else np.float64)
                tally = OperationTally()
                for sb in range(SUBBANDS):
                    lines = xr[sb * _SB_SIZE:(sb + 1) * _SB_SIZE]
                    blocks[sb] = imdct_fn(lines, tally)
                self._record("imdct", tally)

                hybrid_fn, _ = hy.VARIANTS[
                    "fixed" if imdct_domain == "fixed" else "float"]
                tally = OperationTally()
                rows = hybrid_fn(blocks, hybrid_states[ch], tally)
                self._record("hybrid", tally)

                # rows: (32 subbands, 18 steps) -> per-step vectors
                steps = rows.T
                synthesis_fn, synth_domain = sy.VARIANTS[config.synthesis]
                tally = OperationTally()
                for t in range(_SB_SIZE):
                    step = steps[t]
                    if imdct_domain != synth_domain:
                        conv_tally = OperationTally()
                        domain_conversion(conv_tally, SUBBANDS,
                                          to_fixed=(synth_domain == "fixed"))
                        self._record("convert", conv_tally)
                        if synth_domain == "fixed":
                            step = to_q(step, XR_FRAC)
                        else:
                            step = from_q(step, XR_FRAC)
                    pcm = synthesis_fn(step, synth_states[ch], tally)
                    if synth_domain == "fixed":
                        pcm = from_q(pcm, XR_FRAC)
                    step_pcm[:, :, ch][t] = pcm
                self._record("synthesis", tally)

            granule_pcm.append(
                step_pcm.reshape(_SB_SIZE * SUBBANDS, channels))
        return np.clip(np.concatenate(granule_pcm, axis=0), -1.0, 1.0)


def _asm_discount(tally: OperationTally) -> OperationTally:
    """Hand-optimized Huffman decode: table-driven multi-bit steps.

    An assembly decoder consumes several bits per lookup instead of one
    branch per bit; model as a 4x reduction of the tree-walk work.
    """
    out = OperationTally()
    out.load = tally.load // 4
    out.shift = tally.shift // 4
    out.int_alu = tally.int_alu // 4
    out.branch = tally.branch // 4
    out.store = tally.store
    out.call = tally.call
    return out
