"""Canonical Huffman coding of quantized spectral values.

Layer III Huffman-codes quantized subband coefficients in pairs with
escape coding for large values.  We reproduce that structure: a
canonical Huffman table over (x, y) value pairs with ``|x|,|y| <= 15``,
escape values (15) extended by ``LINBITS`` raw bits, and sign bits per
nonzero value — the same decode work profile as the standard's tables
(the exact ISO table contents are data, not algorithm; ours are built
from a fixed Laplacian-like frequency model so encoder and decoder
agree deterministically).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import Mp3Error
from repro.mp3.bitstream import BitReader, BitWriter
from repro.platform.tally import OperationTally

__all__ = ["HuffmanTable", "PAIR_TABLE", "LINBITS", "MAX_SMALL",
           "encode_spectrum", "decode_spectrum", "cost_decode_spectrum"]

#: Largest magnitude coded directly; 15 is the escape marker (as in ISO tables 16-31).
MAX_SMALL = 15
#: Extra raw bits carried by an escaped value.
LINBITS = 13


def _build_code_lengths(weights: dict[int, float]) -> dict[int, int]:
    """Huffman code lengths from symbol weights (package-merge-free).

    Standard heap construction; ties broken by symbol for determinism.
    """
    if len(weights) == 1:
        return {next(iter(weights)): 1}
    heap: list[tuple[float, int, tuple[int, ...]]] = []
    for i, (symbol, w) in enumerate(sorted(weights.items())):
        heapq.heappush(heap, (w, symbol, (symbol,)))
    lengths = {s: 0 for s in weights}
    while len(heap) > 1:
        w1, t1, s1 = heapq.heappop(heap)
        w2, t2, s2 = heapq.heappop(heap)
        for s in s1 + s2:
            lengths[s] += 1
        heapq.heappush(heap, (w1 + w2, min(t1, t2), s1 + s2))
    return lengths


@dataclass(frozen=True)
class _Entry:
    code: int
    bits: int


class HuffmanTable:
    """A canonical Huffman code over an integer symbol alphabet."""

    def __init__(self, weights: dict[int, float]):
        if not weights:
            raise Mp3Error("cannot build a Huffman table from no symbols")
        lengths = _build_code_lengths(weights)
        # Canonicalize: sort by (length, symbol), assign increasing codes.
        ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
        self._encode: dict[int, _Entry] = {}
        code = 0
        prev_len = ordered[0][1]
        for symbol, length in ordered:
            code <<= (length - prev_len)
            self._encode[symbol] = _Entry(code, length)
            code += 1
            prev_len = length
        # Decode tree as nested dict-free structure: (left, right) tuples
        # with leaves as ints; also record max depth for cost modelling.
        self._root = self._build_tree()
        self.max_code_length = max(e.bits for e in self._encode.values())
        self._mean_length = (
            sum(e.bits * weights[s] for s, e in self._encode.items())
            / sum(weights.values()))

    def _build_tree(self):
        root: list = [None, None]
        for symbol, entry in self._encode.items():
            node = root
            for shift in range(entry.bits - 1, -1, -1):
                bit = (entry.code >> shift) & 1
                if shift == 0:
                    node[bit] = symbol
                else:
                    if node[bit] is None:
                        node[bit] = [None, None]
                    node = node[bit]
        return root

    @property
    def symbols(self) -> list[int]:
        return sorted(self._encode)

    @property
    def mean_code_length(self) -> float:
        """Expected code length under the design weights."""
        return self._mean_length

    def encode(self, symbol: int, writer: BitWriter) -> None:
        """Append ``symbol``'s code to ``writer``."""
        entry = self._encode.get(symbol)
        if entry is None:
            raise Mp3Error(f"symbol {symbol} not in Huffman table")
        writer.write(entry.code, entry.bits)

    def decode(self, reader: BitReader) -> tuple[int, int]:
        """Read one symbol; returns ``(symbol, bits_consumed)``."""
        node = self._root
        consumed = 0
        while True:
            bit = reader.read(1)
            consumed += 1
            node = node[bit]
            if node is None:
                raise Mp3Error("invalid Huffman code in bitstream")
            if isinstance(node, int):
                return node, consumed

    def is_prefix_free_and_complete(self) -> bool:
        """Kraft equality: sum(2^-len) == 1 for a full canonical tree."""
        total = sum(2 ** -e.bits for e in self._encode.values())
        return abs(total - 1.0) < 1e-12


def _pair_weights() -> dict[int, float]:
    """Laplacian-like joint weights for (x, y) pairs, 0..15 each.

    Symbol id is ``x * 16 + y``.  Small magnitudes dominate, exactly the
    statistics the ISO tables were designed for.
    """
    weights: dict[int, float] = {}
    for x in range(MAX_SMALL + 1):
        for y in range(MAX_SMALL + 1):
            weights[x * 16 + y] = 2.0 ** (-(0.9 * x + 0.9 * y))
    return weights


#: The shared pair table (deterministic; encoder and decoder both use it).
PAIR_TABLE = HuffmanTable(_pair_weights())


def _clamp_escape(value: int) -> tuple[int, int | None]:
    """Split |value| into (small symbol part, linbits extension or None)."""
    mag = abs(value)
    if mag < MAX_SMALL:
        return mag, None
    extension = mag - MAX_SMALL
    if extension >= (1 << LINBITS):
        raise Mp3Error(f"|{value}| too large for {LINBITS} linbits")
    return MAX_SMALL, extension


def encode_spectrum(values, writer: BitWriter,
                    table: HuffmanTable = PAIR_TABLE) -> None:
    """Huffman-encode a sequence of quantized values in (x, y) pairs."""
    values = list(values)
    if len(values) % 2:
        values.append(0)
    for i in range(0, len(values), 2):
        x, y = values[i], values[i + 1]
        sx, ext_x = _clamp_escape(x)
        sy, ext_y = _clamp_escape(y)
        table.encode(sx * 16 + sy, writer)
        if ext_x is not None:
            writer.write(ext_x, LINBITS)
        if sx:
            writer.write(1 if x < 0 else 0, 1)
        if ext_y is not None:
            writer.write(ext_y, LINBITS)
        if sy:
            writer.write(1 if y < 0 else 0, 1)


def decode_spectrum(reader: BitReader, count: int,
                    table: HuffmanTable = PAIR_TABLE,
                    tally: OperationTally | None = None) -> list[int]:
    """Decode ``count`` quantized values; optionally tally the work.

    The tally models a C tree-walk decoder: ~4 ops per bit visited
    (load, mask, branch, pointer chase) plus per-value sign/escape
    handling.
    """
    if count % 2:
        raise Mp3Error("spectrum length must be even (pair coding)")
    out: list[int] = []
    bits_walked = 0
    linbits_read = 0
    signs_read = 0
    for _ in range(count // 2):
        symbol, consumed = table.decode(reader)
        bits_walked += consumed
        sx, sy = symbol >> 4, symbol & 15
        for small in (sx, sy):
            value = small
            if small == MAX_SMALL:
                value += reader.read(LINBITS)
                linbits_read += 1
            if small:
                if reader.read(1):
                    value = -value
                signs_read += 1
            out.append(value)
    if tally is not None:
        tally.load += bits_walked + linbits_read + signs_read
        tally.shift += bits_walked + linbits_read
        tally.int_alu += 2 * bits_walked + 4 * (count // 2)
        tally.branch += bits_walked + signs_read + count
        tally.store += count
        tally.call += 1
    return out


def cost_decode_spectrum(count: int,
                         mean_bits: float | None = None) -> OperationTally:
    """Analytic tally for decoding ``count`` values (for characterization)."""
    if mean_bits is None:
        mean_bits = PAIR_TABLE.mean_code_length
    pairs = count // 2
    bits = int(pairs * mean_bits)
    t = OperationTally()
    t.load = bits + count
    t.shift = bits
    t.int_alu = 2 * bits + 4 * pairs
    t.branch = bits + count
    t.store = count
    t.call = 1
    return t
