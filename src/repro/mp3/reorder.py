"""Spectrum reordering (III_reorder).

For short-block granules Layer III interleaves the three short
transforms and the decoder must de-interleave.  Our synthetic streams
use long blocks only, so the stage is the guarded copy the reference
decoder performs — which is also why III_reorder is one of the smallest
rows in every profile table.  The short-block permutation is
implemented for completeness.
"""

from __future__ import annotations

import numpy as np

from repro.platform.tally import OperationTally

__all__ = ["reorder", "short_block_permutation", "VARIANTS"]


def short_block_permutation(n: int = 576, window_size: int = 18) -> np.ndarray:
    """The de-interleave permutation for short blocks.

    Samples arrive grouped by frequency triplets (s0 s1 s2 of the three
    short windows); the decoder regroups them window-major per band.
    """
    idx = np.arange(n)
    bands = idx // window_size
    within = idx % window_size
    window = within % 3
    line = within // 3
    return bands * window_size + window * (window_size // 3) + line


def reorder(xr: np.ndarray, short_blocks: bool,
            tally: OperationTally) -> np.ndarray:
    """De-interleave short blocks; guarded copy for long blocks."""
    n = len(xr)
    if short_blocks:
        out = xr[short_block_permutation(n)]
        tally.load += 2 * n           # value + permutation index
        tally.store += n
        tally.int_alu += 2 * n
        tally.branch += n
    else:
        out = xr.copy()
        tally.load += n
        tally.store += n
        tally.branch += n // 18       # per-band long/short test
    tally.call += 1
    return out


#: reorder is pure integer index work: same routine at every grade.
VARIANTS = {
    "float": (reorder, "same"),
    "fixed": (reorder, "same"),
    "asm": (reorder, "same"),
}
