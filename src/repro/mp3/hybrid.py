"""Hybrid filterbank glue: overlap-add and frequency inversion (III_hybrid).

Each subband's 36 windowed IMDCT outputs overlap-add with the previous
granule's saved half; the second half is saved for the next granule.
Odd time samples of odd subbands are negated (frequency inversion) so
the polyphase filterbank sees the right spectral orientation.
"""

from __future__ import annotations

import numpy as np

from repro.mp3.tables import SUBBANDS
from repro.platform.tally import OperationTally

__all__ = ["HybridState", "hybrid_float", "hybrid_fixed", "VARIANTS"]

_SB_SIZE = 18


class HybridState:
    """Per-channel overlap memory: 32 subbands x 18 saved samples."""

    def __init__(self, dtype=np.float64):
        self.saved = np.zeros((SUBBANDS, _SB_SIZE), dtype=dtype)

    def reset(self) -> None:
        self.saved[:] = 0


def _overlap(blocks: np.ndarray, state: HybridState) -> np.ndarray:
    """Overlap-add 32 blocks of 36 -> 32 rows of 18 time samples."""
    first = blocks[:, :_SB_SIZE] + state.saved
    state.saved = blocks[:, _SB_SIZE:].copy()
    return first


def _frequency_inversion(rows: np.ndarray) -> np.ndarray:
    out = rows.copy()
    out[1::2, 1::2] = -out[1::2, 1::2]
    return out


def hybrid_float(blocks: np.ndarray, state: HybridState,
                 tally: OperationTally) -> np.ndarray:
    """Reference overlap-add; ``blocks`` is (32, 36) float64."""
    rows = _frequency_inversion(_overlap(blocks, state))
    n_add = SUBBANDS * _SB_SIZE
    n_inv = (SUBBANDS // 2) * (_SB_SIZE // 2)
    tally.fp_add += n_add
    tally.load += 2 * n_add
    tally.store += 2 * n_add          # overlap result + saved half
    tally.int_alu += n_inv            # sign flips are integer ops on doubles' sign bit
    tally.branch += SUBBANDS
    tally.call += 1
    return rows


def hybrid_fixed(blocks: np.ndarray, state: HybridState,
                 tally: OperationTally) -> np.ndarray:
    """Fixed-point overlap-add; ``blocks`` is (32, 36) int64 raws."""
    rows = _frequency_inversion(_overlap(blocks, state))
    n_add = SUBBANDS * _SB_SIZE
    n_inv = (SUBBANDS // 2) * (_SB_SIZE // 2)
    tally.int_alu += 2 * n_add + n_inv
    tally.branch += n_add + SUBBANDS
    tally.load += 2 * n_add
    tally.store += 2 * n_add
    tally.call += 1
    return rows


VARIANTS = {
    "float": (hybrid_float, "float"),
    "fixed": (hybrid_fixed, "fixed"),
}
