"""Frame structures: header, side information, granule payloads.

A simplified but structurally faithful Layer III frame:

* 11-bit sync + header (sample-rate index, channel mode, frame payload
  length);
* side information per granule x channel: ``global_gain`` (8 bits),
  ``count_nonzero`` (10 bits, the big-values analogue), ``ms_stereo``
  flag per frame;
* Huffman-coded quantized spectra (576 values per granule-channel).

Two granules per frame, 1152 PCM samples per channel, as in MPEG-1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import Mp3Error
from repro.mp3.bitstream import SYNC_BITS, SYNC_WORD, BitReader, BitWriter
from repro.mp3.huffman import decode_spectrum, encode_spectrum
from repro.mp3.tables import GRANULE_SAMPLES
from repro.platform.tally import OperationTally

__all__ = ["SAMPLE_RATES", "GranuleChannel", "Frame", "FrameHeader"]

#: Selectable sample rates (MPEG-1 set), indexed by the 2-bit header field.
SAMPLE_RATES = (44100, 48000, 32000)


@dataclass
class FrameHeader:
    """Decoded frame header fields."""

    sample_rate_index: int = 0
    channels: int = 2
    ms_stereo: bool = True

    @property
    def sample_rate(self) -> int:
        return SAMPLE_RATES[self.sample_rate_index]

    def write(self, writer: BitWriter) -> None:
        writer.write(SYNC_WORD, SYNC_BITS)
        writer.write(self.sample_rate_index, 2)
        writer.write(self.channels - 1, 1)
        writer.write(1 if self.ms_stereo else 0, 1)
        writer.write(0, 1)  # reserved, keeps the header 16 bits


    @classmethod
    def read(cls, reader: BitReader) -> "FrameHeader":
        sync = reader.read(SYNC_BITS)
        if sync != SYNC_WORD:
            raise Mp3Error(f"lost synchronization (got {sync:#x})")
        idx = reader.read(2)
        if idx >= len(SAMPLE_RATES):
            raise Mp3Error(f"reserved sample-rate index {idx}")
        channels = reader.read(1) + 1
        ms = bool(reader.read(1))
        reader.read(1)
        return cls(idx, channels, ms)


@dataclass
class GranuleChannel:
    """One granule of one channel: gain + quantized spectrum."""

    global_gain: int
    values: np.ndarray  # shape (576,), dtype int32

    def __post_init__(self) -> None:
        if not 0 <= self.global_gain < 256:
            raise Mp3Error(f"global_gain {self.global_gain} out of range")
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.values.shape != (GRANULE_SAMPLES,):
            raise Mp3Error(
                f"granule spectrum must have {GRANULE_SAMPLES} values")

    @property
    def count_nonzero(self) -> int:
        return int(np.count_nonzero(self.values))


@dataclass
class Frame:
    """A whole frame: header + 2 granules x channels."""

    header: FrameHeader
    granules: list[list[GranuleChannel]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.granules) != 2:
            raise Mp3Error("a frame has exactly two granules")
        for granule in self.granules:
            if len(granule) != self.header.channels:
                raise Mp3Error("granule/channel count mismatch")

    def write(self, writer: BitWriter) -> None:
        """Serialize header, side info, and Huffman payload."""
        self.header.write(writer)
        for granule in self.granules:
            for gc in granule:
                writer.write(gc.global_gain, 8)
        for granule in self.granules:
            for gc in granule:
                encode_spectrum(gc.values.tolist(), writer)
        writer.align_byte()

    @classmethod
    def read(cls, reader: BitReader,
             side_tally: OperationTally | None = None,
             huffman_tally: OperationTally | None = None) -> "Frame":
        """Parse one frame starting at a sync position."""
        header = FrameHeader.read(reader)
        gains: list[list[int]] = []
        for _ in range(2):
            gains.append([reader.read(8) for _ in range(header.channels)])
        if side_tally is not None:
            fields = 2 * header.channels
            side_tally.load += fields * 2
            side_tally.shift += fields
            side_tally.int_alu += fields * 2
            side_tally.store += fields
            side_tally.call += 1
        granules: list[list[GranuleChannel]] = []
        for g in range(2):
            row = []
            for ch in range(header.channels):
                values = decode_spectrum(reader, GRANULE_SAMPLES,
                                         tally=huffman_tally)
                row.append(GranuleChannel(gains[g][ch],
                                          np.array(values, dtype=np.int64)))
            granules.append(row)
        reader.align_byte()
        return cls(header, granules)
