"""Mid/side stereo reconstruction (III_stereo).

MS stereo transmits M = (L+R)/sqrt(2) and S = (L-R)/sqrt(2); the
decoder reconstructs L = (M+S)/sqrt(2), R = (M-S)/sqrt(2).  When the
frame is plain L/R the stage is a guarded pass-through (that is the
Table 3 case, where III_stereo is only 0.04%).
"""

from __future__ import annotations

import math

import numpy as np

from repro.mp3.costs import ih_adds, ih_mul_taps
from repro.mp3.fxutil import XR_FRAC, qmul, to_q
from repro.platform.tally import OperationTally

__all__ = ["stereo_float", "stereo_fixed", "stereo_asm", "VARIANTS"]

_INV_SQRT2 = 1.0 / math.sqrt(2.0)
_INV_SQRT2_Q = to_q(np.array([_INV_SQRT2]), XR_FRAC)[0]


def stereo_float(mid: np.ndarray, side: np.ndarray, ms: bool,
                 tally: OperationTally) -> tuple[np.ndarray, np.ndarray]:
    """Reference double-precision MS reconstruction."""
    n = len(mid)
    if not ms:
        tally.load += 2 * n
        tally.store += 2 * n
        tally.branch += n
        tally.call += 1
        return mid, side
    left = (mid + side) * _INV_SQRT2
    right = (mid - side) * _INV_SQRT2
    tally.fp_add += 2 * n
    tally.fp_mul += 2 * n
    tally.load += 2 * n
    tally.store += 2 * n
    tally.branch += n
    tally.call += 1
    return left, right


def stereo_fixed(mid: np.ndarray, side: np.ndarray, ms: bool,
                 tally: OperationTally) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-point MS reconstruction on Q5.26 raws."""
    n = len(mid)
    if not ms:
        tally.load += 2 * n
        tally.store += 2 * n
        tally.branch += n
        tally.call += 1
        return mid, side
    left = qmul(mid + side, _INV_SQRT2_Q, XR_FRAC)
    right = qmul(mid - side, _INV_SQRT2_Q, XR_FRAC)
    ih_mul_taps(tally, 2 * n)
    ih_adds(tally, 2 * n)
    tally.store += 2 * n
    tally.call += 1
    return left, right


def stereo_asm(mid: np.ndarray, side: np.ndarray, ms: bool,
               tally: OperationTally) -> tuple[np.ndarray, np.ndarray]:
    """IPP-grade MS reconstruction."""
    n = len(mid)
    if ms:
        left = qmul(mid + side, _INV_SQRT2_Q, XR_FRAC)
        right = qmul(mid - side, _INV_SQRT2_Q, XR_FRAC)
        tally.int_mac += 2 * n
        tally.int_alu += 2 * n
    else:
        left, right = mid, side
        tally.int_alu += n
    tally.load += 2 * n
    tally.store += 2 * n
    tally.call += 1
    return left, right


VARIANTS = {
    "float": (stereo_float, "float"),
    "fixed": (stereo_fixed, "fixed"),
    "asm": (stereo_asm, "fixed"),
}
