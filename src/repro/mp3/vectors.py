"""Deterministic compliance stimulus for the MP3 workload blocks.

The codegen verifier (:mod:`repro.codegen.verify`) needs real input
vectors for the two paper blocks — ``inv_mdctL`` (18 spectral lines
per subband) and ``SubBandSynthesis`` (32 subband samples per
time step).  Synthetic ramps would under-exercise the fixed-point
formats, so this module replays the reference float decoder's front
end on the deterministic synthetic stream (the same one the
compliance suite decodes) and captures the values that actually reach
those stages: post-antialias spectral lines for the IMDCT, post-hybrid
subband steps for the synthesis matrixing.

Capture is cached — one stream decode serves every verification run.

>>> vectors = imdct_vectors(limit=4)
>>> len(vectors), len(vectors[0])
(4, 18)
>>> steps = matrixing_vectors(limit=4)
>>> len(steps), len(steps[0])
(4, 32)
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.mp3 import antialias as aa
from repro.mp3 import dequantize as dq
from repro.mp3 import hybrid as hy
from repro.mp3 import reorder as ro
from repro.mp3 import stereo as stx
from repro.mp3.bitstream import BitReader
from repro.mp3.frame import Frame
from repro.mp3.imdct import VARIANTS as IMDCT_VARIANTS
from repro.mp3.synth_stream import make_stream
from repro.mp3.tables import SUBBANDS
from repro.platform.tally import OperationTally

__all__ = ["imdct_vectors", "matrixing_vectors"]

_SB_SIZE = 18


@lru_cache(maxsize=1)
def _float_front_end(n_frames: int = 1) -> tuple[tuple, tuple]:
    """Replay the reference float pipeline; return (imdct, matrixing)
    input tuples in decode order."""
    stream = make_stream(n_frames=n_frames)
    reader = BitReader(stream.data)
    channels = stream.channels
    dequantize_fn, _ = dq.VARIANTS["float"]
    stereo_fn, _ = stx.VARIANTS["float"]
    antialias_fn, _ = aa.VARIANTS["float"]
    imdct_fn, _ = IMDCT_VARIANTS["float"]
    hybrid_fn, _ = hy.VARIANTS["float"]
    hybrid_states = [hy.HybridState(np.float64) for _ in range(channels)]
    tally = OperationTally()

    imdct_inputs: list[tuple[float, ...]] = []
    step_inputs: list[tuple[float, ...]] = []
    for _ in range(stream.n_frames):
        if not reader.seek_sync():
            break
        frame = Frame.read(reader, side_tally=OperationTally(),
                           huffman_tally=OperationTally())
        for granule in frame.granules:
            xrs = [dequantize_fn(gc, tally) for gc in granule]
            if channels == 2:
                xrs = list(stereo_fn(xrs[0], xrs[1],
                                     frame.header.ms_stereo, tally))
            for ch, xr in enumerate(xrs):
                xr = ro.reorder(xr, short_blocks=False, tally=tally)
                xr = antialias_fn(xr, tally)
                blocks = np.empty((SUBBANDS, 2 * _SB_SIZE), dtype=np.float64)
                for sb in range(SUBBANDS):
                    lines = xr[sb * _SB_SIZE:(sb + 1) * _SB_SIZE]
                    imdct_inputs.append(tuple(float(v) for v in lines))
                    blocks[sb] = imdct_fn(lines, tally)
                rows = hybrid_fn(blocks, hybrid_states[ch], tally)
                for step in rows.T:
                    step_inputs.append(tuple(float(v) for v in step))
    return tuple(imdct_inputs), tuple(step_inputs)


def _select(vectors: tuple, limit: int) -> tuple:
    """Prefer vectors with signal in them (silence starves the SNR
    reference), falling back to the raw prefix."""
    lively = tuple(v for v in vectors if any(v))
    chosen = (lively or vectors)[:limit]
    return chosen


def imdct_vectors(limit: int = 32) -> tuple[tuple[float, ...], ...]:
    """Deterministic 18-line stimulus for the ``inv_mdctL`` block."""
    return _select(_float_front_end()[0], limit)


def matrixing_vectors(limit: int = 32) -> tuple[tuple[float, ...], ...]:
    """Deterministic 32-sample stimulus for ``SubBandSynthesis``."""
    return _select(_float_front_end()[1], limit)
