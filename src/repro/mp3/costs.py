"""Shared cost recipes for decoder-stage tallies.

Three implementation "grades" recur across the decoder variants, each
with a characteristic per-tap price on the SA-1110:

* **float** (reference C, double precision): priced directly through
  the ``fp_*`` soft-double costs — the stage tallies count fp ops.
* **IH fixed** (in-house C fixed-point library): every multiply(-
  accumulate) goes through a *non-inlined saturating Q-format helper*
  (``fixed_mul(a, b)`` as a C function: SMULL, round, shift, saturate
  checks, call/return).  ~30 cycles per tap — this single constant is
  what pins Table 1's "fixed" rows, see EXPERIMENTS.md.
* **IPP asm** (hand-scheduled assembly): true inlined MACs with folded
  addressing, ~3-5 cycles per tap.
"""

from __future__ import annotations

from repro.platform.tally import OperationTally

__all__ = ["ih_mul_taps", "ih_adds", "asm_mac_taps", "asm_adds",
           "float_macs", "domain_conversion"]


def ih_mul_taps(tally: OperationTally, taps: int) -> None:
    """``taps`` saturating fixed-point multiply(-accumulate) helper calls.

    Per tap: SMULL (int_mul) + 6 ALU ops (round, 64-bit add-with-carry,
    saturation compares) + 4 shifts + 2 branches + 3 loads + call
    overhead — about 30 cycles on the SA-1110 cost table.
    """
    if taps <= 0:
        return
    tally.int_mul += taps
    tally.int_alu += 6 * taps
    tally.shift += 4 * taps
    tally.branch += 2 * taps
    tally.load += 3 * taps
    tally.call += taps


def ih_adds(tally: OperationTally, count: int) -> None:
    """Saturating fixed adds (inline, but guarded): ~6 cycles each."""
    if count <= 0:
        return
    tally.int_alu += 2 * count
    tally.branch += count
    tally.load += count


def asm_mac_taps(tally: OperationTally, taps: int) -> None:
    """IPP-grade MAC taps: MLA/SMLAL with folded addressing, ~5 cycles."""
    if taps <= 0:
        return
    tally.int_mac += taps
    tally.load += taps


def asm_adds(tally: OperationTally, count: int) -> None:
    """IPP-grade adds: single-cycle ALU ops."""
    if count <= 0:
        return
    tally.int_alu += count


def float_macs(tally: OperationTally, muls: int, adds: int,
               loads: int = 0, stores: int = 0) -> None:
    """Reference-grade double-precision op bundle."""
    tally.fp_mul += muls
    tally.fp_add += adds
    tally.load += loads
    tally.store += stores


def domain_conversion(tally: OperationTally, samples: int,
                      to_fixed: bool) -> None:
    """float<->fixed conversion at a stage boundary.

    Each direction is one soft-float convert call per sample (~a
    soft-double add's worth) plus the move.
    """
    if samples <= 0:
        return
    tally.fp_add += samples          # __fixdfsi / __floatsidf
    tally.shift += samples
    tally.load += samples
    tally.store += samples
    tally.call += 1
    del to_fixed  # same price both ways; parameter kept for clarity at call sites
