"""Binding lowered kernels to numeric formats, plus an interpreter.

A library element declares its numeric contract as ``input_format`` /
``output_format`` strings (``"q5.26"``, ``"s16"``, ``"float"``,
``"double"``).  This module parses those labels into
:class:`NumericFormat` and executes a :class:`~repro.codegen.lower.
LoweredKernel` under them:

* **fixed** formats run on :class:`repro.fixedpoint.Fixed` — every
  add/mul saturates and rounds exactly as the library's hand-written
  fxmath kernels do, so the interpreter *is* the numeric reference for
  generated code;
* **float64** runs in native Python floats (exact IEEE double);
* **float32** quantizes every intermediate through a 4-byte struct
  round-trip, modelling single-precision hardware.

The interpreter is deliberately dependency-free (no numpy) so the
emitted-Python fast path (:mod:`repro.codegen.pysource`) can be pinned
bit-identical against it.

>>> parse_format("q5.26").qformat
QFormat(int_bits=5, frac_bits=26, overflow='saturate')
>>> parse_format("s16").qformat
QFormat(int_bits=0, frac_bits=15, overflow='saturate')
>>> parse_format("double").kind
'float64'
"""

from __future__ import annotations

import math
import re
import struct
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.codegen.lower import LoweredKernel
from repro.errors import CodegenError
from repro.fixedpoint import Fixed, Q15, QFormat
from repro.library.element import LibraryElement

__all__ = [
    "NumericFormat",
    "parse_format",
    "element_formats",
    "quantize_raw",
    "to_float32",
    "interpret_raw",
    "interpret",
]

_Q_RE = re.compile(r"^[qQ](\d+)\.(\d+)$")


@dataclass(frozen=True)
class NumericFormat:
    """A numeric representation generated code can execute under.

    ``kind`` is ``"fixed"`` (with ``qformat`` set), ``"float64"`` or
    ``"float32"``.
    """

    name: str
    kind: str
    qformat: "QFormat | None" = None

    @property
    def is_fixed(self) -> bool:
        return self.kind == "fixed"


def parse_format(label: str) -> NumericFormat:
    """Parse a library format label into a :class:`NumericFormat`.

    Recognized labels: ``"double"`` (IEEE float64), ``"float"`` (IEEE
    float32), ``"s16"`` (signed 16-bit = Q0.15) and ``"qI.F"``.
    """
    if label == "double":
        return NumericFormat(label, "float64")
    if label == "float":
        return NumericFormat(label, "float32")
    if label == "s16":
        return NumericFormat(label, "fixed", Q15)
    got = _Q_RE.match(label)
    if got:
        return NumericFormat(
            label, "fixed", QFormat(int(got.group(1)), int(got.group(2)))
        )
    raise CodegenError(f"unsupported numeric format label: {label!r}")


def element_formats(element: LibraryElement) -> tuple[NumericFormat, NumericFormat]:
    """The (input, output) formats a library element declares."""
    return parse_format(element.input_format), parse_format(element.output_format)


def quantize_raw(value: float, fmt: QFormat) -> int:
    """Quantize a real value to ``fmt`` raw integer form.

    Matches :meth:`repro.fixedpoint.Fixed.from_float`: scale, round
    half toward +inf, then clamp under the format's overflow mode.
    """
    return fmt.clamp_raw(math.floor(float(value) * fmt.scale + 0.5))


def to_float32(value: float) -> float:
    """Round a double to the nearest IEEE single, as a Python float.

    Values beyond float32 range overflow to signed infinity (what the
    hardware's round-to-nearest would produce for such magnitudes).
    """
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.inf if value > 0 else -math.inf


def interpret_raw(
    kernel: LoweredKernel,
    fmt: QFormat,
    out_fmt: QFormat,
    raw_inputs: Sequence[int],
) -> tuple[int, ...]:
    """Execute a kernel on raw fixed-point integers.

    Inputs and all intermediates live in ``fmt``; outputs are converted
    to ``out_fmt`` (rounding the excess fraction bits) on the way out.
    Returns raw integers in kernel output order.
    """
    if len(raw_inputs) != len(kernel.inputs):
        raise CodegenError(
            f"kernel {kernel.name!r} takes {len(kernel.inputs)} inputs, "
            f"got {len(raw_inputs)}")
    env: dict[str, Fixed] = {
        name: Fixed(raw, fmt) for name, raw in zip(kernel.inputs, raw_inputs)
    }
    for instr in kernel.instructions:
        if instr.op == "const":
            env[instr.dest] = Fixed.from_fraction(instr.args[0], fmt)
        elif instr.op == "add":
            env[instr.dest] = env[instr.args[0]] + env[instr.args[1]]
        else:
            env[instr.dest] = env[instr.args[0]] * env[instr.args[1]]
    return tuple(env[value].convert(out_fmt).raw for _name, value in kernel.outputs)


def interpret(
    kernel: LoweredKernel,
    in_fmt: NumericFormat,
    out_fmt: NumericFormat,
    inputs: "Mapping[str, float] | Sequence[float]",
) -> dict[str, float]:
    """Execute a kernel on real-valued inputs under declared formats.

    Accepts inputs as a mapping (by name) or a sequence (in kernel
    input order) and returns ``{output_name: float value}``.  Fixed
    formats quantize inputs, run :func:`interpret_raw` and rescale;
    float formats evaluate op by op, quantizing every intermediate for
    float32.  Mixing a fixed input format with a float output format
    (or vice versa) has no hardware analog in the library and raises
    :class:`~repro.errors.CodegenError`.
    """
    if isinstance(inputs, Mapping):
        try:
            values = [float(inputs[name]) for name in kernel.inputs]
        except KeyError as missing:
            raise CodegenError(
                f"kernel {kernel.name!r} input {missing.args[0]!r} "
                f"missing from environment") from None
    else:
        values = [float(v) for v in inputs]
        if len(values) != len(kernel.inputs):
            raise CodegenError(
                f"kernel {kernel.name!r} takes {len(kernel.inputs)} "
                f"inputs, got {len(values)}")

    if in_fmt.is_fixed != out_fmt.is_fixed:
        raise CodegenError(
            f"mixed fixed/float binding ({in_fmt.name!r} -> "
            f"{out_fmt.name!r}) is not supported")

    names = kernel.output_names
    if in_fmt.is_fixed:
        raw_inputs = [quantize_raw(v, in_fmt.qformat) for v in values]
        raws = interpret_raw(kernel, in_fmt.qformat, out_fmt.qformat, raw_inputs)
        scale = out_fmt.qformat.scale
        return {name: raw / scale for name, raw in zip(names, raws)}

    op_q = to_float32 if in_fmt.kind == "float32" else float
    out_q = to_float32 if out_fmt.kind == "float32" else float
    env: dict[str, float] = {
        name: op_q(v) for name, v in zip(kernel.inputs, values)
    }
    for instr in kernel.instructions:
        if instr.op == "const":
            env[instr.dest] = op_q(float(instr.args[0]))
        elif instr.op == "add":
            env[instr.dest] = op_q(env[instr.args[0]] + env[instr.args[1]])
        else:
            env[instr.dest] = op_q(env[instr.args[0]] * env[instr.args[1]])
    return {
        name: out_q(env[value]) for (name, value) in kernel.outputs
    }
