"""Lowering mapped blocks to a linear three-address IR.

The paper's output is *code*: each mapped block either becomes a call
into a complex library element or residual polynomial arithmetic.
This module turns both into the same executable currency — a flat
list of three-address instructions over SSA-style value names — so the
fixed-point binder (:mod:`repro.codegen.fixedpt`) and the Python
emitter (:mod:`repro.codegen.pysource`) share one input shape.

Scheduling reuses :func:`repro.symalg.horner.horner`: every output
polynomial is nested into its Horner form over the block's natural
input order (the minimal-multiplication nesting the cost model already
prices), then walked bottom-up with structural common-subexpression
elimination, so repeated powers and shared subterms are computed once.

The IR is deliberately tiny — ``const``, ``add``, ``mul`` — because
that is the whole operation set of a matched element's polynomial
rows (powers lower to repeated multiplication, exactly as
:meth:`~repro.symalg.expression.Pow.op_count` costs them).  ``Call``
nodes have no lowering: nonlinear functions reach the mapper only
through polynomial approximations, which are already plain arithmetic.

>>> from repro.symalg.parser import parse_polynomial
>>> kernel = lower_polynomials("sq", {"out": parse_polynomial("x^2 + 3")}, ("x",))
>>> for instr in kernel.instructions:
...     print(instr)
t0 = mul x x
t1 = const 3
t2 = add t0 t1
>>> kernel.outputs
(('out', 't2'),)
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.errors import CodegenError
from repro.frontend.extract import TargetBlock
from repro.mapping.match import BlockMatch, _natural_key
from repro.symalg.expression import Add, Const, Expression, Mul, Pow, Var
from repro.symalg.horner import horner
from repro.symalg.polynomial import Polynomial

__all__ = [
    "Instr",
    "LoweredKernel",
    "lower_expressions",
    "lower_polynomials",
    "lower_block",
    "lower_match",
    "block_inputs",
]


@dataclass(frozen=True)
class Instr:
    """One three-address instruction.

    ``op`` is ``"const"`` (``args`` is a 1-tuple holding the exact
    :class:`~fractions.Fraction`), ``"add"`` or ``"mul"`` (``args``
    names the two operands — inputs or earlier destinations).
    """

    dest: str
    op: str
    args: tuple

    def __str__(self) -> str:
        if self.op == "const":
            return f"{self.dest} = const {self.args[0]}"
        return f"{self.dest} = {self.op} {self.args[0]} {self.args[1]}"


@dataclass(frozen=True)
class LoweredKernel:
    """A lowered block: straight-line code from inputs to named outputs.

    ``outputs`` pairs each output name with the value name holding its
    result (a temporary, an input, or a constant's destination —
    identical rows share one value, the CSE guarantee).
    """

    name: str
    inputs: tuple[str, ...]
    instructions: tuple[Instr, ...]
    outputs: tuple[tuple[str, str], ...]

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(name for name, _value in self.outputs)

    def op_counts(self) -> dict[str, int]:
        """``{"const": c, "add": a, "mul": m}`` over the instruction list."""
        counts = {"const": 0, "add": 0, "mul": 0}
        for instr in self.instructions:
            counts[instr.op] += 1
        return counts

    def __str__(self) -> str:
        lines = [f"kernel {self.name}({', '.join(self.inputs)}):"]
        lines += [f"  {instr}" for instr in self.instructions]
        lines += [f"  {name} <- {value}" for name, value in self.outputs]
        return "\n".join(lines)


class _Lowerer:
    """Bottom-up expression walker with structural CSE."""

    def __init__(self, inputs: Sequence[str]):
        self.inputs = frozenset(inputs)
        self.instructions: list[Instr] = []
        self._memo: dict[tuple, str] = {}

    def _emit(self, op: str, args: tuple) -> str:
        key = (op,) + args
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        dest = f"t{len(self.instructions)}"
        self.instructions.append(Instr(dest, op, args))
        self._memo[key] = dest
        return dest

    def _fold(self, op: str, args: Sequence[Expression]) -> str:
        names = [self.value(arg) for arg in args]
        acc = names[0]
        for name in names[1:]:
            acc = self._emit(op, (acc, name))
        return acc

    def value(self, expr: Expression) -> str:
        """The value name holding ``expr``, emitting instructions as needed."""
        if isinstance(expr, Const):
            return self._emit("const", (expr.value,))
        if isinstance(expr, Var):
            if expr.name not in self.inputs:
                raise CodegenError(
                    f"expression reads {expr.name!r}, which is not a "
                    f"kernel input")
            return expr.name
        if isinstance(expr, Add):
            return self._fold("add", expr.args)
        if isinstance(expr, Mul):
            return self._fold("mul", expr.args)
        if isinstance(expr, Pow):
            if expr.exponent == 0:
                return self._emit("const", (Fraction(1),))
            base = self.value(expr.base)
            acc = base
            for _ in range(expr.exponent - 1):
                acc = self._emit("mul", (acc, base))
            return acc
        raise CodegenError(
            f"cannot lower {type(expr).__name__} nodes; only polynomial "
            f"arithmetic (const/var/add/mul/pow) has a fixed-point lowering")


def lower_expressions(
    name: str,
    outputs: "Mapping[str, Expression]",
    inputs: Sequence[str],
) -> LoweredKernel:
    """Lower already-scheduled expressions (one per output) to the IR.

    ``outputs`` iteration order fixes the kernel's output order;
    ``inputs`` fixes the calling convention.  All outputs share one
    CSE scope.
    """
    lowerer = _Lowerer(inputs)
    pairs = tuple((out, lowerer.value(expr)) for out, expr in outputs.items())
    return LoweredKernel(
        name=name,
        inputs=tuple(inputs),
        instructions=tuple(lowerer.instructions),
        outputs=pairs,
    )


def lower_polynomials(
    name: str,
    polynomials: "Mapping[str, Polynomial]",
    inputs: Sequence[str],
    variable_order: "Sequence[str] | None" = None,
) -> LoweredKernel:
    """Horner-schedule and lower one polynomial per output.

    Nesting priority defaults to the kernel's input order, so two
    lowerings of the same rows are instruction-identical.
    """
    order = tuple(variable_order) if variable_order is not None else tuple(inputs)
    exprs = {out: horner(poly, order) for out, poly in polynomials.items()}
    return lower_expressions(name, exprs, inputs)


def block_inputs(block: TargetBlock) -> tuple[str, ...]:
    """The block's unique input variables in natural order — the same
    positional convention :func:`repro.mapping.match.match_block` binds
    element formals against."""
    return tuple(sorted(dict.fromkeys(block.input_variables), key=_natural_key))


def _output_names(block: TargetBlock) -> list[str]:
    return sorted(block.outputs, key=_natural_key)


def lower_block(block: TargetBlock) -> LoweredKernel:
    """Lower a target block's own polynomials (the reference kernel)."""
    inputs = block_inputs(block)
    polys = {name: block.outputs[name] for name in _output_names(block)}
    return lower_polynomials(block.name, polys, inputs)


def lower_match(block: TargetBlock, match: BlockMatch) -> LoweredKernel:
    """Lower a mapped block: the matched element's rows over the block's
    variables.

    The element's polynomial rows are substituted through the match
    binding (formal -> block input) and paired positionally with the
    block's naturally-sorted output names — the exact pairing
    :func:`~repro.mapping.match.match_block` verified within
    coefficient tolerance.  This is the generated code's ground truth:
    what the kernel computes is the *element's* arithmetic, so measured
    error includes both the coefficient mismatch and the element's
    numeric format.
    """
    names = _output_names(block)
    element = match.element
    if element.n_outputs != len(names):
        raise CodegenError(
            f"element {element.name!r} has {element.n_outputs} outputs "
            f"but block {block.name!r} has {len(names)}")
    mapping = {
        formal: Polynomial.variable(actual) for formal, actual in match.binding
    }
    polys = {
        name: element.polynomials[index].substitute(mapping)
        for index, name in enumerate(names)
    }
    return lower_polynomials(
        f"{block.name}__{element.name}", polys, block_inputs(block)
    )
