"""Numeric verification: measured accuracy for mapped blocks.

The paper evaluates every mapped decoder against the ISO 11172-4
compliance bands; this module does the same *per block*.  A mapped
block's generated kernel (element arithmetic under the element's
declared formats) runs on deterministic workload stimulus, an exact
float64 lowering of the block's own polynomials runs on the same
vectors, and the difference is reported as RMS / max error / SNR and
classified with :func:`repro.mp3.compliance.check_compliance` — the
loop the Pareto front's static ``accuracy`` estimate never closed.

Stimulus comes from the workload registry: blocks declare a
``stimulus`` hook (the MP3 blocks replay compliance-stream vectors),
everything else gets the seeded fallback, so measurements are
byte-reproducible across machines.

>>> from repro.library import full_library
>>> from repro.mapping.decompose import map_block
>>> from repro.workload import workload_named
>>> block = workload_named("mp3").methodology_blocks()["inv_mdctL"]
>>> _winner, matches = map_block(block, full_library())
>>> double = [m for m in matches if m.element.input_format == "double"][0]
>>> measurement = measure_match(block, double)
>>> measurement.compliance
'full'
>>> measurement.snr_db == SNR_CAP_DB  # exact float64 kernel: error-free
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.codegen.fixedpt import element_formats
from repro.codegen.lower import lower_block, lower_match
from repro.codegen.pysource import CompiledKernel, compile_kernel
from repro.errors import CodegenError
from repro.frontend.extract import TargetBlock
from repro.mapping.match import BlockMatch
from repro.mp3.compliance import check_compliance
from repro.workload.registry import (
    DEFAULT_WORKLOAD_REGISTRY,
    default_stimulus,
)

__all__ = [
    "SNR_CAP_DB",
    "BlockMeasurement",
    "stimulus_for_block",
    "measure_match",
    "match_measurer",
]

#: Reported SNR ceiling: canonical JSON forbids infinities, so an
#: error-free kernel reports this finite cap (far beyond any physical
#: converter).
SNR_CAP_DB = 300.0


@dataclass(frozen=True)
class BlockMeasurement:
    """Measured accuracy of one mapped block's generated kernel."""

    block: str
    element: str
    element_library: str
    input_format: str
    output_format: str
    declared_accuracy: float
    rms_error: float
    max_error: float
    snr_db: float
    compliance: str
    n_vectors: int

    def to_payload(self) -> dict:
        """JSON-shaped measurement summary (used by ``VerifyResult``)."""
        return {
            "element": self.element,
            "element_library": self.element_library,
            "input_format": self.input_format,
            "output_format": self.output_format,
            "declared_accuracy": self.declared_accuracy,
            "rms_error": self.rms_error,
            "max_error": self.max_error,
            "snr_db": self.snr_db,
            "compliance": self.compliance,
            "vectors": self.n_vectors,
        }


def stimulus_for_block(
    block: TargetBlock, workload: "str | None" = None
) -> tuple[tuple[float, ...], ...]:
    """Deterministic stimulus for a block.

    With ``workload`` given, the block must be declared there.  Without
    it, registered workloads are scanned in registration order (the MP3
    workload first) for a declaration of the block's name; unregistered
    blocks fall back to the seeded default stimulus.
    """
    if workload is not None:
        entry = DEFAULT_WORKLOAD_REGISTRY.get(workload)
        if block.name in entry.block_names():
            return entry.workload.stimulus(block.name)
    else:
        for entry in DEFAULT_WORKLOAD_REGISTRY:
            if block.name in entry.block_names():
                return entry.workload.stimulus(block.name)
    n_inputs = len(dict.fromkeys(block.input_variables))
    return default_stimulus(n_inputs, name=block.name)


def _reference_runner(block: TargetBlock) -> CompiledKernel:
    """The block's own polynomials, exact float64 — the yardstick."""
    from repro.codegen.fixedpt import parse_format
    double = parse_format("double")
    return compile_kernel(lower_block(block), double, double)


def _run_vectors(
    compiled: CompiledKernel,
    inputs: tuple[str, ...],
    output_names: tuple[str, ...],
    stimulus: Sequence[Sequence[float]],
) -> np.ndarray:
    rows = []
    for vector in stimulus:
        env = dict(zip(inputs, vector))
        got = compiled.run(env)
        rows.append([got[name] for name in output_names])
    return np.array(rows, dtype=np.float64)


def _snr_db(reference: np.ndarray, under_test: np.ndarray) -> float:
    signal = float(np.mean(reference * reference))
    noise = float(np.mean((reference - under_test) ** 2))
    if noise == 0.0:
        return SNR_CAP_DB
    if signal == 0.0:
        return 0.0
    return min(10.0 * math.log10(signal / noise), SNR_CAP_DB)


def measure_match(
    block: TargetBlock,
    match: BlockMatch,
    stimulus: "Sequence[Sequence[float]] | None" = None,
) -> BlockMeasurement:
    """Measure a mapped block's generated kernel against float64 truth.

    Lowers both the match (element rows, element formats) and the block
    itself (exact double), runs them on the same stimulus, and grades
    the difference.
    """
    stimulus = tuple(stimulus) if stimulus is not None \
        else stimulus_for_block(block)
    if not stimulus:
        raise CodegenError(f"empty stimulus for block {block.name!r}")
    kernel = lower_match(block, match)
    in_fmt, out_fmt = element_formats(match.element)
    compiled = compile_kernel(kernel, in_fmt, out_fmt)
    reference = _reference_runner(block)
    names = reference.kernel.output_names
    ref = _run_vectors(reference, reference.kernel.inputs, names, stimulus)
    got = _run_vectors(compiled, kernel.inputs, names, stimulus)
    report = check_compliance(ref, got)
    return BlockMeasurement(
        block=block.name,
        element=match.element.name,
        element_library=match.element.library,
        input_format=match.element.input_format,
        output_format=match.element.output_format,
        declared_accuracy=match.element.accuracy,
        rms_error=report.rms_error,
        max_error=report.max_error,
        snr_db=_snr_db(ref, got),
        compliance=report.level,
        n_vectors=len(stimulus),
    )


def match_measurer(
    block: TargetBlock,
    stimulus: "Sequence[Sequence[float]] | None" = None,
) -> Callable[[BlockMatch], tuple[float, float]]:
    """A per-match ``(measured_accuracy, snr_db)`` closure for
    :meth:`repro.mapping.pareto.BlockParetoResult.from_matches`.

    The reference lowering and stimulus are shared across every match
    of the block, so measuring a whole candidate list costs one
    reference run plus one generated-kernel run per match.
    ``measured_accuracy`` is the max absolute error — directly
    comparable to the element's characterized ``accuracy`` bound.
    """
    vectors = tuple(stimulus) if stimulus is not None \
        else stimulus_for_block(block)

    def measure(match: BlockMatch) -> tuple[float, float]:
        measurement = measure_match(block, match, stimulus=vectors)
        return measurement.max_error, measurement.snr_db

    return measure
