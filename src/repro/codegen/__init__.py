"""Fixed-point code generation and numeric verification.

The back half of the paper's flow: once a block is mapped to a library
element, generate executable code for it and *measure* the accuracy
instead of trusting the characterization table.  Four stages:

* :mod:`repro.codegen.lower` — Horner-scheduled three-address IR;
* :mod:`repro.codegen.fixedpt` — numeric-format binding + reference
  interpreter on :mod:`repro.fixedpoint` semantics;
* :mod:`repro.codegen.pysource` — emitted pure-Python fast path,
  pinned bit-identical to the interpreter;
* :mod:`repro.codegen.verify` — measured RMS / max error / SNR against
  exact float64 references on deterministic workload stimulus.
"""

from repro.codegen.fixedpt import (
    NumericFormat,
    element_formats,
    interpret,
    interpret_raw,
    parse_format,
)
from repro.codegen.lower import (
    Instr,
    LoweredKernel,
    block_inputs,
    lower_block,
    lower_expressions,
    lower_match,
    lower_polynomials,
)
from repro.codegen.pysource import CompiledKernel, compile_kernel, emit_python
from repro.codegen.verify import (
    SNR_CAP_DB,
    BlockMeasurement,
    match_measurer,
    measure_match,
    stimulus_for_block,
)

__all__ = [
    "Instr",
    "LoweredKernel",
    "block_inputs",
    "lower_block",
    "lower_expressions",
    "lower_match",
    "lower_polynomials",
    "NumericFormat",
    "parse_format",
    "element_formats",
    "interpret",
    "interpret_raw",
    "CompiledKernel",
    "emit_python",
    "compile_kernel",
    "SNR_CAP_DB",
    "BlockMeasurement",
    "measure_match",
    "match_measurer",
    "stimulus_for_block",
]
