"""Exception hierarchy shared across the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so
callers can distinguish library failures from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SymbolicError(ReproError):
    """Error inside the symbolic algebra engine (``repro.symalg``)."""


class ParseError(SymbolicError):
    """Malformed expression text handed to the expression parser."""


class DivisionError(SymbolicError):
    """Invalid polynomial division request (e.g. division by zero)."""


class GroebnerExplosion(SymbolicError):
    """Buchberger's algorithm exceeded its configured work limits.

    Groebner basis computation is worst-case doubly exponential; the
    engine bounds basis size and pair count and raises this instead of
    running away.  Callers (the mapping search) treat it as "this side
    relation set is too hard" and prune the branch.
    """


class FrontendError(ReproError):
    """Target-code identification failed (unsupported construct, etc.)."""


class LibraryError(ReproError):
    """Library characterization / catalog errors."""


class MappingError(ReproError):
    """Library-mapping search errors."""


class PlatformError(ReproError):
    """Platform (cost/energy model) configuration errors."""


class WorkloadError(ReproError):
    """Workload registry / catalog errors (unknown key, bad declaration)."""


class FixedPointError(ReproError):
    """Fixed-point format violations (overflow in saturating mode, etc.)."""


class ServiceError(ReproError):
    """A mapping-service request that cannot be served.

    Carries the HTTP status the service front-end should answer with
    (400 for malformed requests, 404 for unknown resources, 429/503
    for shed load, ...), so validation code raises one exception type
    and the transport layer owns the wire encoding.

    ``retry_after`` (seconds) rides along on retryable refusals and
    becomes the response's ``Retry-After`` header.  ``attempts`` is
    filled by the *client* when it exhausts its retry budget: one
    human-readable string per attempt (``"connection refused"``,
    ``"503 after 0.05s"``, ...), so the terminal error tells the whole
    story instead of just the last symptom.
    """

    def __init__(self, status: int, message: str, *,
                 retry_after: "float | None" = None, attempts=None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.attempts = tuple(attempts or ())


class CodegenError(ReproError):
    """Fixed-point code generation errors (``repro.codegen``): an
    expression the lowerer cannot handle, an unsupported numeric
    format, or an overflow policy emitted code cannot honor."""


class Mp3Error(ReproError):
    """MP3 decoder substrate errors (bad bitstream, bad frame, ...)."""


class ComplianceError(Mp3Error):
    """Raised when a decoder variant fails the conformance check."""
