"""``python -m repro`` — the first-class command-line interface.

The zero-to-mapped path without booting the HTTP server: every
subcommand builds one :class:`~repro.api.MappingSession` (environment
knobs honored via :meth:`~repro.api.SessionConfig.from_env`, an
explicit ``--cache-dir`` winning) and calls the same facade methods
library code uses.

``--json`` output is the *canonical wire format*: ``repro map ...
--json`` prints byte-for-byte the body a running service would answer
on ``/v1/map`` for the same request — asserted in
``tests/api/test_cli.py`` and smoke-checked in CI.

=============  =========================================================
``map``        scalar block mapping (cycles winner + every match)
``pareto``     the (cycles, energy, accuracy) non-dominated front
``sweep``      the multi-platform sweep (canonical sweep JSON)
``verify``     measure the winner's generated kernel (codegen loop)
``codegen``    print the winner's generated fixed-point Python source
``workloads``  the workload registry (block names per workload)
``platforms``  the processor registry
``cache``      session cache statistics / clearing
``serve``      run the HTTP service (``python -m repro.service``)
=============  =========================================================

``map``/``pareto``/``sweep`` take ``--workload`` to resolve block
names in a non-default workload (``repro map idct8x8 --workload
jpeg_idct``); ``repro workloads --json`` prints byte-for-byte the
``/v1/workloads`` body.

Library selections are forgiving about separators and case:
``--library LM+IH``, ``--library lm_ih`` and ``--library LM,IH`` all
name the same catalog tags.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from repro.api import MappingSession, SessionConfig, canonical_json, default_session
from repro.api.types import ACCURACY_BUDGET_MESSAGE
from repro.errors import ReproError

__all__ = ["build_parser", "main"]

_TAG_SPLIT = re.compile(r"[+,_\s]+")


def _parse_tags(text: str) -> tuple[str, ...]:
    """Catalog tags from a separator-agnostic, case-insensitive combo."""
    return tuple(part.upper() for part in _TAG_SPLIT.split(text) if part)


def _accuracy_budget(text: str) -> float:
    """Argparse type for ``--accuracy-budget``: a nonnegative float.

    Rejects negatives with the same message the service's 400 carries
    (:data:`~repro.api.types.ACCURACY_BUDGET_MESSAGE`), so both
    surfaces refuse identically.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if value < 0 or value != value:
        raise argparse.ArgumentTypeError(ACCURACY_BUDGET_MESSAGE)
    return value


def _parse_list(text: str) -> tuple[str, ...]:
    """A comma-separated name list (platform keys, block names)."""
    return tuple(part for part in (p.strip() for p in text.split(",")) if part)


def build_parser() -> argparse.ArgumentParser:
    """The CLI surface (locked by ``tests/api/test_surface.py``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbolic-algebra library mapping (DAC 2002 reproduction): "
        "map target blocks onto complex library elements from the command "
        "line, through the same repro.api.MappingSession the service uses.",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    def add_session_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            default=None,
            help="pin the persistent mapping cache to this directory "
            "(default: REPRO_CACHE_DIR, if set)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="print the canonical JSON wire format instead of a table",
        )

    def add_map_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("block", help="target block name (e.g. inv_mdctL)")
        p.add_argument(
            "--library",
            default=None,
            help="library tag combo, any of +,_ as separators "
            "(e.g. LM+IH or lm_ih; default: REF+LM+IH+IPP)",
        )
        p.add_argument(
            "--platform",
            default=None,
            help="processor registry key (default: SA-1110)",
        )
        p.add_argument(
            "--tolerance",
            type=float,
            default=None,
            help="coefficient-match tolerance (default: 1e-6)",
        )
        p.add_argument(
            "--accuracy-budget",
            type=_accuracy_budget,
            default=None,
            help="maximum acceptable accuracy loss (default: unbounded)",
        )
        p.add_argument(
            "--workload",
            default=None,
            help="workload registry key the block name resolves in "
            "(default: mp3; see `repro workloads`)",
        )
        add_session_options(p)

    p_map = sub.add_parser("map", help="map one block to its cheapest element")
    add_map_options(p_map)

    p_pareto = sub.add_parser(
        "pareto", help="the (cycles, energy, accuracy) front for one block"
    )
    add_map_options(p_pareto)

    p_sweep = sub.add_parser(
        "sweep", help="map every block x library x platform combination"
    )
    p_sweep.add_argument(
        "--platforms",
        default=None,
        help="comma-separated registry keys (default: all registered)",
    )
    p_sweep.add_argument(
        "--libraries",
        default=None,
        help="comma-separated tag combos, e.g. REF+LM+IH,REF+LM+IH+IPP "
        "(default: the paper's ladder)",
    )
    p_sweep.add_argument(
        "--blocks",
        default=None,
        help="comma-separated block names (default: all catalog blocks)",
    )
    p_sweep.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="coefficient-match tolerance (default: 1e-6)",
    )
    p_sweep.add_argument(
        "--accuracy-budget",
        type=_accuracy_budget,
        default=None,
        help="maximum acceptable accuracy loss (default: unbounded)",
    )
    p_sweep.add_argument(
        "--workload",
        default=None,
        help="workload registry key to sweep (default: mp3; see `repro workloads`)",
    )
    add_session_options(p_sweep)

    p_verify = sub.add_parser(
        "verify",
        help="measure the winner's generated fixed-point kernel against "
        "the exact float64 reference (ISO 11172-4 bands)",
    )
    add_map_options(p_verify)

    p_codegen = sub.add_parser(
        "codegen",
        help="print the winner's generated kernel source",
    )
    add_map_options(p_codegen)
    p_codegen.add_argument(
        "--emit",
        choices=("python",),
        default="python",
        help="target language of the emitted kernel (default: %(default)s)",
    )

    p_workloads = sub.add_parser("workloads", help="list the workload registry")
    add_session_options(p_workloads)

    p_platforms = sub.add_parser("platforms", help="list the processor registry")
    add_session_options(p_platforms)

    p_cache = sub.add_parser("cache", help="session cache statistics / clearing")
    p_cache.add_argument(
        "action",
        choices=("stats", "clear"),
        help="'stats' prints the canonical cache statistics; "
        "'clear' empties the session's tiers (memory + disk)",
    )
    add_session_options(p_cache)

    p_serve = sub.add_parser(
        "serve", help="run the mapping service (HTTP/JSON front-end)"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port; 0 picks an ephemeral one (default: 8357)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fork N worker processes behind the port (the fleet "
        "front; SIGHUP rolls them over one at a time; default: one "
        "in-process service)",
    )
    p_serve.add_argument(
        "--map-workers",
        type=int,
        default=None,
        help="share one process pool of N workers across all batch "
        "submissions (default: in-thread serial)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="pin the persistent mapping cache tier to this directory",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-request wall-clock bound, seconds; expiry answers "
        "503 + Retry-After (default: 300)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission bound: shed requests past N in flight with "
        "429 + Retry-After (default: unbounded)",
    )
    p_serve.add_argument(
        "--retry-after",
        type=float,
        default=None,
        help="seconds advertised in Retry-After on 429/503 sheds (default: 1)",
    )
    p_serve.add_argument(
        "--drain-grace",
        type=float,
        default=None,
        help="seconds SIGTERM waits for in-flight work before stopping "
        "(default: 30)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="debug-level logging"
    )

    return parser


def _session(args: argparse.Namespace) -> MappingSession:
    if getattr(args, "cache_dir", None):
        # An explicit directory gets a private session (isolated tiers).
        return MappingSession(SessionConfig.from_env(cache_dir=args.cache_dir))
    # Otherwise share the process default session: one coherent cache
    # pool with any library code in the same process, env knobs live.
    return default_session()


def _emit(text: str) -> None:
    sys.stdout.write(text + "\n")


def _cmd_map(args: argparse.Namespace) -> int:
    session = _session(args)
    library = _parse_tags(args.library) if args.library else None
    result = session.map(
        args.block,
        library,
        args.platform,
        tolerance=args.tolerance,
        accuracy_budget=args.accuracy_budget,
        workload=args.workload,
    )
    if args.json:
        _emit(result.to_json().decode("ascii"))
        return 0
    request = result.request
    _emit(f"block     {request.block}")
    _emit(f"platform  {request.platform} ({result.platform.processor.name})")
    _emit(f"library   {'+'.join(request.library)}")
    _emit(f"mapped    {str(result.mapped).lower()}")
    cycles = result.platform.cost_model.cycles
    for match in result.matches:
        marker = "*" if match is result.winner else " "
        element = match.element
        _emit(
            f"  {marker} {element.name:<28} {element.library:<4} "
            f"{cycles(element.cost):>14,.0f} cyc  err {element.accuracy:.1e}"
        )
    if not result.matches:
        _emit("  (no adequate element)")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    session = _session(args)
    library = _parse_tags(args.library) if args.library else None
    result = session.pareto(
        args.block,
        library,
        args.platform,
        tolerance=args.tolerance,
        accuracy_budget=args.accuracy_budget,
        workload=args.workload,
    )
    if args.json:
        _emit(result.to_json().decode("ascii"))
        return 0
    request = result.request
    _emit(f"block     {request.block}")
    _emit(f"platform  {request.platform} ({result.result.platform_name})")
    _emit(f"library   {'+'.join(request.library)}")
    _emit(f"winner    {result.winner_name or '<unmapped>'}")
    for point in result.front:
        o = point.objectives
        _emit(
            f"  - {point.element_name:<28} {o.cycles:>14,.0f} cyc  "
            f"{o.energy_j:>10.3e} J  err {o.accuracy:.1e}"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    session = _session(args)
    libraries = None
    if args.libraries:
        # Each combo is as forgiving as `map --library`: lm_ih == LM+IH.
        libraries = [
            "+".join(_parse_tags(combo)) for combo in _parse_list(args.libraries)
        ]
    report = session.sweep(
        platforms=_parse_list(args.platforms) if args.platforms else None,
        libraries=libraries,
        blocks=_parse_list(args.blocks) if args.blocks else None,
        tolerance=args.tolerance,
        accuracy_budget=args.accuracy_budget,
        workload=args.workload,
    )
    if args.json:
        _emit(report.to_json())
        return 0
    _emit(report.format_report())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    session = _session(args)
    library = _parse_tags(args.library) if args.library else None
    result = session.verify(
        args.block,
        library,
        args.platform,
        tolerance=args.tolerance,
        accuracy_budget=args.accuracy_budget,
        workload=args.workload,
    )
    if args.json:
        _emit(result.to_json().decode("ascii"))
        return 0
    request = result.request
    _emit(f"block     {request.block}")
    _emit(f"platform  {request.platform} ({result.platform.processor.name})")
    _emit(f"library   {'+'.join(request.library)}")
    _emit(f"mapped    {str(result.mapped).lower()}")
    m = result.measurement
    if m is None:
        _emit("  (no adequate element; nothing to verify)")
        return 0
    _emit(f"element   {m.element} ({m.element_library})")
    _emit(f"formats   {m.input_format} -> {m.output_format}")
    _emit(f"declared  {m.declared_accuracy:.3e}")
    _emit(f"rms       {m.rms_error:.3e}")
    _emit(f"max       {m.max_error:.3e}")
    _emit(f"snr       {m.snr_db:.1f} dB")
    _emit(f"band      {m.compliance}  ({m.n_vectors} vectors)")
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    session = _session(args)
    library = _parse_tags(args.library) if args.library else None
    result = session.map(
        args.block,
        library,
        args.platform,
        tolerance=args.tolerance,
        accuracy_budget=args.accuracy_budget,
        workload=args.workload,
    )
    if result.winner is None:
        print(
            f"error: no adequate element maps block {result.request.block!r}",
            file=sys.stderr,
        )
        return 2
    from repro.codegen import element_formats, emit_python, lower_match

    block_obj = session.blocks(result.request.workload)[result.request.block]
    kernel = lower_match(block_obj, result.winner)
    in_fmt, out_fmt = element_formats(result.winner.element)
    source = emit_python(kernel, in_fmt, out_fmt)
    if args.json:
        payload = {
            "block": result.request.block,
            "platform": result.request.platform,
            "processor": result.platform.processor.name,
            "library": "+".join(result.request.library),
            "workload": result.request.workload,
            "element": result.winner.element.name,
            "element_library": result.winner.element.library,
            "emit": args.emit,
            "input_format": result.winner.element.input_format,
            "output_format": result.winner.element.output_format,
            "source": source,
        }
        _emit(canonical_json(payload).decode("ascii"))
        return 0
    _emit(source.rstrip("\n"))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    session = _session(args)
    payload = session.workloads_payload()
    if args.json:
        _emit(canonical_json(payload).decode("ascii"))
        return 0
    for entry in payload["workloads"]:
        default = "*" if entry["key"] == payload["default"] else " "
        _emit(f"{default} {entry['key']:<10} {entry['title']}")
        _emit(f"    blocks: {', '.join(entry['blocks'])}")
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    session = _session(args)
    registry = session.config.registry
    if args.json:
        payload = {
            "default": session.config.platform,
            "platforms": [
                {
                    "key": entry.key,
                    "processor": entry.spec.name,
                    "clock_hz": entry.spec.clock_hz,
                    "has_fpu": entry.spec.has_fpu,
                }
                for entry in registry
            ],
        }
        _emit(canonical_json(payload).decode("ascii"))
        return 0
    for entry in registry:
        default = "*" if entry.key == session.config.platform else " "
        fpu = "fpu" if entry.spec.has_fpu else "soft-float"
        _emit(
            f"{default} {entry.key:<10} {entry.spec.name:<24} "
            f"{entry.spec.clock_hz / 1e6:>7.1f} MHz  {fpu}"
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    session = _session(args)
    if args.action == "clear":
        session.clear_caches()
        _emit("cleared session cache tiers (memory + disk) and shared caches")
        return 0
    stats = session.stats()
    if args.json:
        _emit(canonical_json(stats).decode("ascii"))
        return 0
    _emit(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Delegate to the service's own entry point (one arg-handling
    # path, one serve loop), re-rendering only the flags the user set
    # so its defaults stay authoritative.
    from repro.service.__main__ import main as serve_main

    argv = ["--host", args.host]
    if args.port is not None:
        argv += ["--port", str(args.port)]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.map_workers is not None:
        argv += ["--map-workers", str(args.map_workers)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if args.request_timeout is not None:
        argv += ["--request-timeout", str(args.request_timeout)]
    if args.max_inflight is not None:
        argv += ["--max-inflight", str(args.max_inflight)]
    if args.retry_after is not None:
        argv += ["--retry-after", str(args.retry_after)]
    if args.drain_grace is not None:
        argv += ["--drain-grace", str(args.drain_grace)]
    if args.verbose:
        argv += ["--verbose"]
    serve_main(argv)
    return 0


_COMMANDS = {
    "map": _cmd_map,
    "pareto": _cmd_pareto,
    "sweep": _cmd_sweep,
    "verify": _cmd_verify,
    "codegen": _cmd_codegen,
    "workloads": _cmd_workloads,
    "platforms": _cmd_platforms,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
}


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return _COMMANDS[args.command](args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
