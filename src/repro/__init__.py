"""repro — reproduction of Peymandoust, Simunic & De Micheli (DAC 2002),
"Complex Library Mapping for Embedded Software Using Symbolic Algebra".

The front door is :mod:`repro.api`: build a
:class:`~repro.api.MappingSession` and call ``map`` / ``pareto`` /
``batch`` / ``sweep`` / ``flow`` on it — or use ``python -m repro``
(:mod:`repro.cli`) from a shell.  The HTTP service
(:mod:`repro.service`) serves the same facade long-running.

Subpackages
-----------
``repro.api``
    The public session facade: typed config, requests and results,
    the canonical wire format every frontend shares.
``repro.cli``
    ``python -m repro`` — map, pareto, sweep, platforms, cache.
``repro.symalg``
    From-scratch symbolic algebra engine (the paper's Maple V role):
    exact multivariate polynomials, Groebner bases, simplification
    modulo side relations, Horner forms, factorization, series.
``repro.frontend``
    Target-code identification: restricted-Python AST -> expression
    trees -> polynomials, with the paper's code transformations.
``repro.library``
    Library characterization: elements annotated with I/O format,
    accuracy, performance, energy, and polynomial representation.
``repro.mapping``
    The paper's contribution: branch-and-bound library mapping via
    symbolic simplification, plus the full 3-step methodology driver.
``repro.platform``
    Badge4 substitute: SA-1110-style cycle/energy cost model, DVFS,
    profiler, and the pluggable processor registry.
``repro.fixedpoint``
    In-house style Q-format fixed-point arithmetic and math kernels.
``repro.mp3``
    MP3-Layer-III-style decoder substrate with float/fixed/IPP-style
    stage variants, synthetic workload generator, compliance test.
``repro.service``
    Mapping-as-a-service: the asyncio HTTP/JSON front-end over one
    session.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
