"""``repro.frontend`` — target code identification (Section 3.2).

Symbolic execution of a restricted imperative subset turns critical
kernels into polynomials, performing the paper's loop unrolling,
constant/variable propagation, conditional expansion and model
expansion along the way.
"""

from repro.frontend.extract import (MATH_FUNCTIONS, ArrayInput,
                                    SymbolicInput, TargetBlock, extract_block)

__all__ = ["SymbolicInput", "ArrayInput", "TargetBlock", "extract_block",
           "MATH_FUNCTIONS"]
