"""Target code identification: imperative code -> polynomials (Section 3.2).

"Traditional compiler techniques are used in representing the
arithmetic section of the critical functions as polynomials ...  This
can be accomplished by using code transformation techniques such as
loop unrolling, constant and variable propagation, code motion,
conditional expansion and model expansion."

We implement this as *symbolic execution* of a restricted Python
subset.  Executing the code with symbolic inputs performs the paper's
transformations by construction:

* ``for i in range(...)`` loops are executed iteration by iteration —
  **loop unrolling**;
* assignments bind names to symbolic values that flow forward —
  **constant and variable (copy) propagation**;
* arithmetic on symbols builds expression trees; pure computations are
  hoisted wherever their operands are — **code motion** falls out of
  dataflow;
* ``if`` on a *symbolic* 0/1 condition evaluates both arms and blends
  them as ``cond*then + (1-cond)*else`` — **conditional expansion**;
* calls to known nonlinear functions become :class:`Call` nodes, later
  replaced by Taylor/Chebyshev approximations — **model expansion**.

Supported subset: function defs with scalar/array parameters, (aug-)
assignments, tuple-free ``for _ in range(const...)``, constant or
symbolic ``if``, ``return`` of an expression/tuple/list, ``+ - * /
**`` arithmetic, indexing with compile-time-constant indices, and
calls to whitelisted math functions.  Everything else raises
:class:`~repro.errors.FrontendError` with a pointed message — target
code identification is meant for arithmetic kernels, not arbitrary
programs.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from repro.errors import FrontendError
from repro.symalg.expression import (Add, Call, Const, Expression, Mul, Pow,
                                     Var, flatten)
from repro.symalg.polynomial import Polynomial

__all__ = ["SymbolicInput", "ArrayInput", "TargetBlock", "extract_block",
           "MATH_FUNCTIONS"]

#: Calls the frontend lowers to Call nodes (resolved by approximation later).
MATH_FUNCTIONS = ("exp", "log", "sin", "cos", "tan", "sqrt", "atan",
                  "log1p", "sinh", "cosh")


@dataclass(frozen=True)
class SymbolicInput:
    """A scalar input: bound to the symbolic variable ``name``."""

    name: str


@dataclass(frozen=True)
class ArrayInput:
    """An array input of known shape; elements become ``name_i[_j]``.

    ``values`` optionally pins elements to numeric constants (that is
    how cosine tables enter as constants instead of symbols).
    """

    name: str
    shape: tuple[int, ...]
    values: object | None = None  # nested sequence matching shape


@dataclass
class TargetBlock:
    """The frontend's product: named output polynomials over input vars."""

    name: str
    outputs: dict[str, Polynomial]
    input_variables: tuple[str, ...]
    expressions: dict[str, Expression] = field(default_factory=dict)

    def polynomial(self, output: str | None = None) -> Polynomial:
        """A single output's polynomial (default: the only one)."""
        if output is None:
            if len(self.outputs) != 1:
                raise FrontendError(
                    f"block {self.name} has {len(self.outputs)} outputs; name one")
            return next(iter(self.outputs.values()))
        return self.outputs[output]


class _Array:
    """A (possibly nested) array of symbolic values."""

    def __init__(self, items: list):
        self.items = items

    def get(self, index: int):
        if not isinstance(index, int):
            raise FrontendError(f"array index must fold to a constant, got {index!r}")
        if not 0 <= index < len(self.items):
            raise FrontendError(f"array index {index} out of range 0..{len(self.items) - 1}")
        return self.items[index]

    def set(self, index: int, value) -> None:
        self.get(index)  # bounds check
        self.items[index] = value


def _build_array(spec: ArrayInput) -> _Array:
    def build(prefix: str, shape: tuple[int, ...], values):
        if len(shape) == 1:
            items = []
            for i in range(shape[0]):
                if values is not None:
                    items.append(Const(Fraction(values[i])))
                else:
                    items.append(Var(f"{prefix}_{i}"))
            return _Array(items)
        return _Array([build(f"{prefix}_{i}", shape[1:],
                             values[i] if values is not None else None)
                       for i in range(shape[0])])
    return build(spec.name, spec.shape, spec.values)


class _Interpreter(ast.NodeVisitor):
    """Symbolically executes one function body."""

    def __init__(self, env: dict):
        self.env = env
        self.returned = None

    # -- statements ----------------------------------------------------
    def execute(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            if self.returned is not None:
                raise FrontendError("unreachable code after return")
            self.visit(statement)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise FrontendError("chained assignment is not supported")
        value = self.eval(node.value)
        self._assign(node.targets[0], value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        current = self.eval(node.target)
        value = self.eval(node.value)
        combined = self._binop(type(node.op), current, value)
        self._assign(node.target, combined)

    def visit_For(self, node: ast.For) -> None:
        if node.orelse:
            raise FrontendError("for/else is not supported")
        bounds = self._range_bounds(node.iter)
        if not isinstance(node.target, ast.Name):
            raise FrontendError("loop target must be a simple name")
        for i in bounds:                       # loop unrolling
            self.env[node.target.id] = i
            self.execute(node.body)

    def visit_If(self, node: ast.If) -> None:
        condition = self.eval(node.test)
        if isinstance(condition, (int, bool, Fraction, float)):
            branch = node.body if condition else node.orelse
            self.execute(branch)
            return
        # Conditional expansion: both arms run on copies, results blend.
        then_env = dict(self.env)
        else_env = dict(self.env)
        _Interpreter(then_env).execute(node.body)
        if node.orelse:
            _Interpreter(else_env).execute(node.orelse)
        cond_expr = _as_expression(condition)
        for name in set(then_env) | set(else_env):
            a = then_env.get(name)
            b = else_env.get(name)
            if a is b:
                continue
            if a is None or b is None or isinstance(a, _Array) or isinstance(b, _Array):
                raise FrontendError(
                    f"conditional expansion needs {name!r} defined as a scalar in both arms")
            blended = (Mul((cond_expr, _as_expression(a)))
                       + Mul((Add((Const(Fraction(1)),
                                   Mul((Const(Fraction(-1)), cond_expr)))),
                              _as_expression(b))))
            self.env[name] = flatten(blended)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is None:
            raise FrontendError("return must carry a value")
        self.returned = self.eval(node.value)

    def visit_Expr(self, node: ast.Expr) -> None:
        raise FrontendError("bare expression statements have no effect; remove them")

    def visit_Pass(self, node: ast.Pass) -> None:  # noqa: D102
        return

    def generic_visit(self, node: ast.AST) -> None:
        raise FrontendError(
            f"unsupported construct {type(node).__name__} in target code")

    # -- helpers ---------------------------------------------------------
    def _assign(self, target: ast.expr, value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            return
        if isinstance(target, ast.Subscript):
            container = self.eval(target.value)
            if not isinstance(container, _Array):
                raise FrontendError("subscript assignment needs an array")
            index = self.eval(target.slice)
            index = _as_int(index)
            container.set(index, value)
            return
        if isinstance(target, ast.Tuple):
            raise FrontendError("tuple unpacking is not supported")
        raise FrontendError(f"cannot assign to {type(target).__name__}")

    def _range_bounds(self, node: ast.expr) -> range:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "range"):
            raise FrontendError("for loops must iterate over range(...)")
        args = [_as_int(self.eval(a)) for a in node.args]
        if not 1 <= len(args) <= 3:
            raise FrontendError("range takes 1-3 arguments")
        return range(*args)

    # -- expressions -----------------------------------------------------
    def eval(self, node: ast.expr):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return int(node.value)
            if isinstance(node.value, (int, float)):
                return Fraction(node.value) if isinstance(node.value, float) else node.value
            raise FrontendError(f"unsupported constant {node.value!r}")
        if isinstance(node, ast.Name):
            if node.id not in self.env:
                raise FrontendError(f"undefined name {node.id!r}")
            return self.env[node.id]
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            return self._binop(type(node.op), left, right)
        if isinstance(node, ast.UnaryOp):
            value = self.eval(node.operand)
            if isinstance(node.op, ast.USub):
                if isinstance(value, (int, Fraction)):
                    return -value
                return flatten(Mul((Const(Fraction(-1)), _as_expression(value))))
            if isinstance(node.op, ast.UAdd):
                return value
            raise FrontendError("only unary +/- are supported")
        if isinstance(node, ast.Subscript):
            container = self.eval(node.value)
            if not isinstance(container, _Array):
                raise FrontendError("subscript of a non-array value")
            return container.get(_as_int(self.eval(node.slice)))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            return _Array([self.eval(e) for e in node.elts])
        raise FrontendError(f"unsupported expression {type(node).__name__}")

    def _call(self, node: ast.Call):
        if not isinstance(node.func, ast.Name):
            raise FrontendError("only plain-name calls are supported")
        name = node.func.id
        if name == "range":
            raise FrontendError("range() only appears as a for-loop iterator")
        if name not in MATH_FUNCTIONS:
            raise FrontendError(
                f"call to unknown function {name!r}; supported: {MATH_FUNCTIONS}")
        args = [self.eval(a) for a in node.args]
        return Call(name, tuple(_as_expression(a) for a in args))

    def _compare(self, node: ast.Compare):
        if len(node.ops) != 1:
            raise FrontendError("chained comparisons are not supported")
        left = self.eval(node.left)
        right = self.eval(node.comparators[0])
        if isinstance(left, (int, Fraction)) and isinstance(right, (int, Fraction)):
            op = node.ops[0]
            table = {ast.Lt: left < right, ast.LtE: left <= right,
                     ast.Gt: left > right, ast.GtE: left >= right,
                     ast.Eq: left == right, ast.NotEq: left != right}
            if type(op) not in table:
                raise FrontendError("unsupported comparison operator")
            return int(table[type(op)])
        raise FrontendError(
            "comparisons must fold to constants; use a 0/1 variable for "
            "data-dependent conditions (conditional expansion)")

    def _binop(self, op_type, left, right):
        # List replication:  [0] * 36  builds an output buffer.
        if op_type is ast.Mult and isinstance(left, _Array) and isinstance(right, int):
            return _Array(list(left.items) * right)
        if op_type is ast.Mult and isinstance(right, _Array) and isinstance(left, int):
            return _Array(list(right.items) * left)
        numeric = isinstance(left, (int, Fraction)) and isinstance(right, (int, Fraction))
        if numeric:
            if op_type is ast.Add:
                return left + right
            if op_type is ast.Sub:
                return left - right
            if op_type is ast.Mult:
                return left * right
            if op_type is ast.Div:
                if right == 0:
                    raise FrontendError("division by zero in target code")
                return Fraction(left) / Fraction(right)
            if op_type is ast.Pow:
                if not isinstance(right, int) or right < 0:
                    raise FrontendError("exponents must be nonnegative integers")
                return left ** right
            if op_type is ast.FloorDiv:
                return left // right
            if op_type is ast.Mod:
                return left % right
            raise FrontendError(f"unsupported operator {op_type.__name__}")
        left_e = _as_expression(left)
        if op_type is ast.Add:
            return flatten(Add((left_e, _as_expression(right))))
        if op_type is ast.Sub:
            return flatten(Add((left_e, Mul((Const(Fraction(-1)),
                                             _as_expression(right))))))
        if op_type is ast.Mult:
            return flatten(Mul((left_e, _as_expression(right))))
        if op_type is ast.Div:
            if not isinstance(right, (int, Fraction)):
                folded = flatten(_as_expression(right))
                if not isinstance(folded, Const):
                    raise FrontendError("division by a non-constant is not polynomial")
                right = folded.value
            if right == 0:
                raise FrontendError("division by zero in target code")
            return flatten(Mul((left_e, Const(Fraction(1) / Fraction(right)))))
        if op_type is ast.Pow:
            if not isinstance(right, int) or right < 0:
                raise FrontendError("exponents must be nonnegative integers")
            return flatten(Pow(left_e, right))
        raise FrontendError(f"unsupported operator {op_type.__name__} on symbols")


def _as_expression(value) -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, Fraction)):
        return Const(Fraction(value))
    if isinstance(value, _Array):
        raise FrontendError("arrays cannot be used as scalar values")
    raise FrontendError(f"cannot use {value!r} symbolically")


def _as_int(value) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    raise FrontendError(f"expected a compile-time integer, got {value!r}")


def _function_ast(source_or_callable) -> ast.FunctionDef:
    if callable(source_or_callable):
        try:
            source = inspect.getsource(source_or_callable)
        except (OSError, TypeError) as exc:
            raise FrontendError(
                f"cannot read source of {source_or_callable!r} (defined "
                "interactively?); pass the source text instead") from exc
    else:
        source = source_or_callable
    tree = ast.parse(textwrap.dedent(source))
    functions = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(functions) != 1:
        raise FrontendError("expected exactly one function definition")
    return functions[0]


def extract_block(source_or_callable,
                  inputs: Sequence[SymbolicInput | ArrayInput],
                  approximations: Mapping[str, Polynomial] | None = None,
                  name: str | None = None) -> TargetBlock:
    """Symbolically execute a kernel and polynomialize its outputs.

    Parameters
    ----------
    source_or_callable:
        A Python function (or its source text) in the supported subset.
    inputs:
        One spec per function parameter, in order.
    approximations:
        Optional ``{function: polynomial in _arg}`` map for nonlinear
        calls (Section 3.2's Taylor/Chebyshev step).  Without an entry,
        a surviving Call makes polynomialization fail.

    Returns a :class:`TargetBlock` whose outputs are the function's
    returned values (``out0``, ``out1``, ... for tuples).

    >>> def poly(x):
    ...     acc = 0
    ...     for _ in range(2):
    ...         acc = acc * x + 1
    ...     return acc
    >>> block = extract_block(poly, [SymbolicInput("x")])
    >>> str(block.polynomial())
    'x + 1'
    """
    fn = _function_ast(source_or_callable)
    if len(fn.args.args) != len(inputs):
        raise FrontendError(
            f"{fn.name} has {len(fn.args.args)} parameters but {len(inputs)} specs given")
    env: dict = {}
    input_names: list[str] = []
    for arg, spec in zip(fn.args.args, inputs):
        if isinstance(spec, SymbolicInput):
            env[arg.arg] = Var(spec.name)
            input_names.append(spec.name)
        elif isinstance(spec, ArrayInput):
            array = _build_array(spec)
            env[arg.arg] = array
            input_names.extend(_leaf_names(array))
        else:
            raise FrontendError(f"bad input spec {spec!r}")

    interpreter = _Interpreter(env)
    interpreter.execute(fn.body)
    if interpreter.returned is None:
        raise FrontendError(f"{fn.name} never returns a value")

    returned = interpreter.returned
    raw_outputs = (returned.items if isinstance(returned, _Array) else [returned])
    expressions: dict[str, Expression] = {}
    outputs: dict[str, Polynomial] = {}
    for i, value in enumerate(raw_outputs):
        key = "out" if len(raw_outputs) == 1 else f"out{i}"
        expr = flatten(_as_expression(value))
        expressions[key] = expr
        outputs[key] = expr.to_polynomial(approximations)
    return TargetBlock(
        name=name or fn.name,
        outputs=outputs,
        input_variables=tuple(n for n in input_names),
        expressions=expressions,
    )


def _leaf_names(array: _Array) -> list[str]:
    names: list[str] = []
    for item in array.items:
        if isinstance(item, _Array):
            names.extend(_leaf_names(item))
        elif isinstance(item, Var):
            names.append(item.name)
    return names
