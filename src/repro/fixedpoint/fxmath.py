"""Fixed-point math kernels (the "in-house pre-optimized routines").

The paper's intro example characterizes four ``log`` implementations:
double, float, *fixed point using a simple bit manipulation algorithm*
(Crenshaw's toolkit, ref. [14]) and *fixed point using polynomial
expansion*.  This module implements the fixed-point side of that
library, plus the kernels the fixed-point MP3 stages need
(``exp``/``sin``/``cos``/``sqrt``/``x^(4/3)``).

Every kernel ``fx_foo`` has a companion ``cost_fx_foo`` returning the
:class:`~repro.platform.tally.OperationTally` one call executes on the
target — that is the "performance" column of library characterization,
priced by the processor model.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.errors import FixedPointError
from repro.fixedpoint.fixed import Fixed, QFormat, Q16_15
from repro.platform.tally import OperationTally

__all__ = [
    "fx_log2_bitwise", "cost_fx_log2_bitwise",
    "fx_log_poly", "cost_fx_log_poly",
    "fx_exp", "cost_fx_exp",
    "fx_sin", "fx_cos", "cost_fx_sin", "cost_fx_cos",
    "fx_sqrt", "cost_fx_sqrt",
    "fx_pow43", "cost_fx_pow43", "build_pow43_table",
    "LN2", "LOG_POLY_COEFFS", "EXP_POLY_COEFFS", "SIN_POLY_COEFFS",
]

#: ln(2) to ample precision for fixed conversion.
LN2 = Fraction(693147180559945309, 10 ** 18)

#: Minimax-ish coefficients for log(1+t) on [0, 1] (degree 6 Chebyshev-derived).
LOG_POLY_COEFFS = (
    Fraction(0),
    Fraction(999849, 10 ** 6),
    Fraction(-494592, 10 ** 6),
    Fraction(318212, 10 ** 6),
    Fraction(-193376, 10 ** 6),
    Fraction(84183, 10 ** 6),
    Fraction(-17492, 10 ** 6),
)

#: exp(r) on [-ln2/2, ln2/2]: plain Taylor degree 5 is ample at Q15.
EXP_POLY_COEFFS = tuple(Fraction(1, math.factorial(n)) for n in range(6))

#: sin(r)/r expressed in r^2 on [-pi/2, pi/2] (degree 3 in r^2).
SIN_POLY_COEFFS = (
    Fraction(1),
    Fraction(-1, 6),
    Fraction(1, 120),
    Fraction(-1, 5040),
)


def _poly_eval_fixed(coeffs, t: Fixed) -> Fixed:
    """Horner-evaluate rational coefficients at a fixed-point argument."""
    acc = Fixed.from_fraction(coeffs[-1], t.fmt)
    for c in reversed(coeffs[:-1]):
        acc = acc * t + Fixed.from_fraction(c, t.fmt)
    return acc


# ----------------------------------------------------------------------
# log2 via bit manipulation (Crenshaw-style)
# ----------------------------------------------------------------------
def fx_log2_bitwise(x: Fixed, frac_iterations: int | None = None) -> Fixed:
    """Base-2 logarithm by shift-and-square bit extraction.

    The "simple bit manipulation algorithm" of the paper's library:
    normalize ``x`` to ``m in [1, 2)`` counting the exponent, then
    extract fractional bits one at a time by squaring the mantissa —
    no multiply-free tricks spared, no polynomial involved.
    """
    if x.raw <= 0:
        raise FixedPointError("log2 of non-positive fixed-point value")
    fmt = x.fmt
    iterations = frac_iterations if frac_iterations is not None else fmt.frac_bits

    # Normalize: find e with  x = m * 2^e,  m in [1, 2).
    exponent = 0
    raw = x.raw
    one = fmt.scale
    while raw >= 2 * one:
        raw >>= 1
        exponent += 1
    while raw < one:
        raw <<= 1
        exponent -= 1

    # Extract fractional bits: repeatedly square the mantissa.
    frac_raw = 0
    work = raw
    for _ in range(iterations):
        frac_raw <<= 1
        work = (work * work) >> fmt.frac_bits
        if work >= 2 * one:
            work >>= 1
            frac_raw |= 1
    result = (exponent << fmt.frac_bits) + (
        (frac_raw << fmt.frac_bits) >> iterations)
    return Fixed(result, fmt)


def cost_fx_log2_bitwise(fmt: QFormat = Q16_15,
                         frac_iterations: int | None = None) -> OperationTally:
    """Per-call operation tally of :func:`fx_log2_bitwise`."""
    iters = frac_iterations if frac_iterations is not None else fmt.frac_bits
    norm = fmt.int_bits + 2  # expected normalize shifts
    return OperationTally(
        int_alu=2 * iters + norm + 4,
        int_mul=iters,          # one square per fractional bit
        shift=3 * iters + norm + 2,
        branch=2 * iters + norm + 2,
        call=1,
    )


# ----------------------------------------------------------------------
# log via polynomial expansion
# ----------------------------------------------------------------------
def fx_log_poly(x: Fixed) -> Fixed:
    """Natural log: normalize to [1, 2), degree-6 polynomial, scale by ln 2."""
    if x.raw <= 0:
        raise FixedPointError("log of non-positive fixed-point value")
    fmt = x.fmt
    exponent = 0
    raw = x.raw
    one = fmt.scale
    while raw >= 2 * one:
        raw >>= 1
        exponent += 1
    while raw < one:
        raw <<= 1
        exponent -= 1
    t = Fixed(raw - one, fmt)                       # t = m - 1 in [0, 1)
    log_m = _poly_eval_fixed(LOG_POLY_COEFFS, t)     # log(1 + t)
    ln2 = Fixed.from_fraction(LN2, fmt)
    return log_m + ln2 * Fixed.from_int(exponent, fmt)


def cost_fx_log_poly(fmt: QFormat = Q16_15) -> OperationTally:
    """Per-call tally of :func:`fx_log_poly` (degree-6 Horner + normalize)."""
    degree = len(LOG_POLY_COEFFS) - 1
    norm = fmt.int_bits + 2
    return OperationTally(
        int_alu=degree + norm + 4,
        int_mul=degree + 1,     # Horner muls + exponent*ln2
        shift=degree + norm + 2,  # product renormalization shifts
        branch=norm + 1,
        load=degree + 1,        # coefficient fetches
        call=1,
    )


# ----------------------------------------------------------------------
# exp via range reduction + polynomial
# ----------------------------------------------------------------------
def fx_exp(x: Fixed) -> Fixed:
    """exp(x):  x = k ln2 + r,  e^x = 2^k * poly(r)."""
    fmt = x.fmt
    ln2 = Fixed.from_fraction(LN2, fmt)
    k = int(round(x.to_float() / float(LN2)))
    r = x - ln2 * Fixed.from_int(k, fmt)
    poly = _poly_eval_fixed(EXP_POLY_COEFFS, r)
    if k >= 0:
        return poly << k
    return poly >> (-k)


def cost_fx_exp(fmt: QFormat = Q16_15) -> OperationTally:
    degree = len(EXP_POLY_COEFFS) - 1
    return OperationTally(
        int_alu=degree + 5,
        int_mul=degree + 2,
        int_div=1,              # k = x / ln2
        shift=degree + 2,
        branch=2,
        load=degree + 1,
        call=1,
    )


# ----------------------------------------------------------------------
# sin / cos via range reduction + odd polynomial
# ----------------------------------------------------------------------
def fx_sin(x: Fixed) -> Fixed:
    """sin(x) with range reduction to [-pi, pi] and an odd polynomial."""
    fmt = x.fmt
    two_pi = 2 * math.pi
    value = x.to_float()
    reduced = math.remainder(value, two_pi)
    # Fold into [-pi/2, pi/2] where the polynomial is accurate; the
    # identities sin(pi - r) = sin(r) keep the sign intact.
    if reduced > math.pi / 2:
        reduced = math.pi - reduced
    elif reduced < -math.pi / 2:
        reduced = -math.pi - reduced
    r = Fixed.from_float(reduced, fmt)
    r2 = r * r
    poly = _poly_eval_fixed(SIN_POLY_COEFFS, r2)
    return r * poly


def fx_cos(x: Fixed) -> Fixed:
    """cos(x) = sin(x + pi/2)."""
    half_pi = Fixed.from_float(math.pi / 2, x.fmt)
    return fx_sin(x + half_pi)


def cost_fx_sin(fmt: QFormat = Q16_15) -> OperationTally:
    degree = len(SIN_POLY_COEFFS) - 1
    return OperationTally(
        int_alu=degree + 6,
        int_mul=degree + 2,     # r2, Horner, final r*poly
        int_div=1,              # range reduction
        shift=degree + 2,
        branch=3,
        load=degree + 1,
        call=1,
    )


def cost_fx_cos(fmt: QFormat = Q16_15) -> OperationTally:
    tally = cost_fx_sin(fmt)
    tally.int_alu += 1
    return tally


# ----------------------------------------------------------------------
# sqrt via integer Newton iteration
# ----------------------------------------------------------------------
def fx_sqrt(x: Fixed, iterations: int = 12) -> Fixed:
    """sqrt(x) by Newton's method on the raw integer."""
    if x.raw < 0:
        raise FixedPointError("sqrt of negative fixed-point value")
    if x.raw == 0:
        return Fixed(0, x.fmt)
    target = x.raw << x.fmt.frac_bits      # sqrt(raw * scale) = result raw
    guess = 1 << ((target.bit_length() + 1) // 2)
    for _ in range(iterations):
        guess = (guess + target // guess) >> 1
    return Fixed(guess, x.fmt)


def cost_fx_sqrt(fmt: QFormat = Q16_15, iterations: int = 12) -> OperationTally:
    return OperationTally(
        int_alu=2 * iterations + 3,
        int_div=iterations,
        shift=iterations + 2,
        branch=iterations + 1,
        call=1,
    )


# ----------------------------------------------------------------------
# x^(4/3) for MP3 requantization
# ----------------------------------------------------------------------
def build_pow43_table(size: int, fmt: QFormat) -> list[Fixed]:
    """Precompute ``n^(4/3)`` for ``n in [0, size)`` (decoder init step)."""
    return [Fixed.from_float(float(n) ** (4.0 / 3.0), fmt) for n in range(size)]


def fx_pow43(n: int, table: list[Fixed]) -> Fixed:
    """Requantization kernel: table lookup for ``n^(4/3)``, |n| < len(table)."""
    if n >= 0:
        if n >= len(table):
            raise FixedPointError(f"pow43 table too small for {n}")
        return table[n]
    if -n >= len(table):
        raise FixedPointError(f"pow43 table too small for {n}")
    return -table[-n]


def cost_fx_pow43() -> OperationTally:
    """Per-sample tally: one guarded table lookup."""
    return OperationTally(int_alu=1, load=1, branch=1)
