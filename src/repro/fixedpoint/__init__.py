"""``repro.fixedpoint`` — Q-format arithmetic and fixed-point math kernels.

The "in-house pre-optimized library" of the paper: a fixed-point number
type plus the transcendental kernels (bit-manipulation log2, polynomial
log/exp/sin/cos, Newton sqrt, tabulated x^(4/3)) with per-call cost
tallies for library characterization.
"""

from repro.fixedpoint.fixed import Fixed, Q15, Q16_15, Q31, Q5_26, QFormat
from repro.fixedpoint.fxmath import (LN2, build_pow43_table, cost_fx_cos,
                                     cost_fx_exp, cost_fx_log2_bitwise,
                                     cost_fx_log_poly, cost_fx_pow43,
                                     cost_fx_sin, cost_fx_sqrt, fx_cos,
                                     fx_exp, fx_log2_bitwise, fx_log_poly,
                                     fx_pow43, fx_sin, fx_sqrt)

__all__ = [
    "QFormat", "Fixed", "Q15", "Q31", "Q5_26", "Q16_15",
    "fx_log2_bitwise", "cost_fx_log2_bitwise",
    "fx_log_poly", "cost_fx_log_poly",
    "fx_exp", "cost_fx_exp",
    "fx_sin", "fx_cos", "cost_fx_sin", "cost_fx_cos",
    "fx_sqrt", "cost_fx_sqrt",
    "fx_pow43", "cost_fx_pow43", "build_pow43_table",
    "LN2",
]
