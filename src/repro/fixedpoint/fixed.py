"""Q-format fixed-point arithmetic.

The paper's manual-optimization war story (Section 2): "the designer
first [had] to implement a fixed-point library and replace all
floating-point operations with fixed point".  This module is that
library.  A :class:`QFormat` fixes the word layout (sign + integer bits
+ fractional bits); a :class:`Fixed` is an immutable value in one
format.

Semantics follow what shipping ARM fixed-point kernels do:

* multiplication keeps the full double-width product, then shifts back
  with round-half-up;
* overflow behaviour is selectable per format: ``saturate`` (DSP
  default), ``wrap`` (C integer semantics), or ``raise`` for debugging;
* division pre-shifts the dividend to preserve fractional precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.errors import FixedPointError

__all__ = ["QFormat", "Fixed", "Q15", "Q31", "Q5_26", "Q16_15"]

_MODES = ("saturate", "wrap", "raise")

Number = Union[int, float, Fraction]


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point layout: 1 sign bit + ``int_bits`` + ``frac_bits``.

    ``Q15`` is ``QFormat(0, 15)`` (16-bit), the classic audio sample
    format; ``QFormat(5, 26)`` is the 32-bit layout MP3 fixed-point
    decoders use for subband samples.
    """

    int_bits: int
    frac_bits: int
    overflow: str = "saturate"

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise FixedPointError("bit counts must be nonnegative")
        if self.int_bits + self.frac_bits == 0:
            raise FixedPointError("format needs at least one magnitude bit")
        if self.overflow not in _MODES:
            raise FixedPointError(
                f"overflow mode {self.overflow!r} not in {_MODES}")

    @property
    def total_bits(self) -> int:
        """Word width including the sign bit."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """The implicit denominator 2**frac_bits."""
        return 1 << self.frac_bits

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.int_bits + self.frac_bits)) - 1

    @property
    def raw_min(self) -> int:
        """Smallest (most negative) representable raw integer."""
        return -(1 << (self.int_bits + self.frac_bits))

    @property
    def max_value(self) -> Fraction:
        """Largest representable value."""
        return Fraction(self.raw_max, self.scale)

    @property
    def min_value(self) -> Fraction:
        """Smallest representable value."""
        return Fraction(self.raw_min, self.scale)

    @property
    def epsilon(self) -> Fraction:
        """The quantum: 2**-frac_bits."""
        return Fraction(1, self.scale)

    def clamp_raw(self, raw: int) -> int:
        """Apply this format's overflow policy to a raw integer."""
        if self.raw_min <= raw <= self.raw_max:
            return raw
        if self.overflow == "saturate":
            return self.raw_max if raw > self.raw_max else self.raw_min
        if self.overflow == "raise":
            raise FixedPointError(
                f"overflow: raw {raw} outside [{self.raw_min}, {self.raw_max}]")
        # wrap: two's-complement truncation to total_bits.
        mask = (1 << self.total_bits) - 1
        wrapped = raw & mask
        if wrapped > self.raw_max:
            wrapped -= 1 << self.total_bits
        return wrapped

    def with_overflow(self, mode: str) -> "QFormat":
        """Same layout, different overflow policy."""
        return QFormat(self.int_bits, self.frac_bits, mode)

    def __str__(self) -> str:
        return f"Q{self.int_bits}.{self.frac_bits}"


#: 16-bit audio-sample format.
Q15 = QFormat(0, 15)
#: 32-bit full-scale fractional format.
Q31 = QFormat(0, 31)
#: 32-bit MP3 subband-sample format (5 integer bits of headroom).
Q5_26 = QFormat(5, 26)
#: 32-bit general-purpose format for math kernels.
Q16_15 = QFormat(16, 15)


def _round_shift(value: int, shift: int) -> int:
    """Arithmetic right shift with round-half-up (toward +inf)."""
    if shift <= 0:
        return value << (-shift)
    add = 1 << (shift - 1)
    return (value + add) >> shift


class Fixed:
    """An immutable fixed-point number in a given :class:`QFormat`."""

    __slots__ = ("raw", "fmt")

    def __init__(self, raw: int, fmt: QFormat):
        object.__setattr__(self, "raw", fmt.clamp_raw(int(raw)))
        object.__setattr__(self, "fmt", fmt)

    def __setattr__(self, *args) -> None:
        raise AttributeError("Fixed is immutable")

    # ------------------------------------------------------------------
    @classmethod
    def from_float(cls, value: float, fmt: QFormat) -> "Fixed":
        """Quantize a float (round to nearest quantum)."""
        import math
        raw = math.floor(value * fmt.scale + 0.5)
        return cls(raw, fmt)

    @classmethod
    def from_fraction(cls, value: Fraction, fmt: QFormat) -> "Fixed":
        """Quantize an exact rational."""
        scaled = value * fmt.scale
        raw = (scaled.numerator * 2 + scaled.denominator) // (2 * scaled.denominator)
        return cls(raw, fmt)

    @classmethod
    def from_int(cls, value: int, fmt: QFormat) -> "Fixed":
        """The integer ``value`` in format ``fmt``."""
        return cls(value << fmt.frac_bits if value >= 0
                   else -((-value) << fmt.frac_bits), fmt)

    @classmethod
    def zero(cls, fmt: QFormat) -> "Fixed":
        return cls(0, fmt)

    @classmethod
    def one(cls, fmt: QFormat) -> "Fixed":
        return cls.from_int(1, fmt)

    # ------------------------------------------------------------------
    def to_float(self) -> float:
        """Back to a float."""
        return self.raw / self.fmt.scale

    def to_fraction(self) -> Fraction:
        """Back to an exact rational."""
        return Fraction(self.raw, self.fmt.scale)

    def convert(self, fmt: QFormat) -> "Fixed":
        """Re-quantize into another format (rounding)."""
        diff = self.fmt.frac_bits - fmt.frac_bits
        return Fixed(_round_shift(self.raw, diff), fmt)

    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Fixed", Number]) -> "Fixed":
        if isinstance(other, Fixed):
            if other.fmt.frac_bits != self.fmt.frac_bits:
                raise FixedPointError(
                    f"mixed formats {self.fmt} and {other.fmt}; convert() first")
            return other
        if isinstance(other, int):
            return Fixed.from_int(other, self.fmt)
        if isinstance(other, float):
            return Fixed.from_float(other, self.fmt)
        if isinstance(other, Fraction):
            return Fixed.from_fraction(other, self.fmt)
        raise FixedPointError(f"cannot mix Fixed with {type(other).__name__}")

    def __add__(self, other: Union["Fixed", Number]) -> "Fixed":
        other = self._coerce(other)
        return Fixed(self.raw + other.raw, self.fmt)

    __radd__ = __add__

    def __sub__(self, other: Union["Fixed", Number]) -> "Fixed":
        other = self._coerce(other)
        return Fixed(self.raw - other.raw, self.fmt)

    def __rsub__(self, other: Number) -> "Fixed":
        return self._coerce(other) - self

    def __neg__(self) -> "Fixed":
        return Fixed(-self.raw, self.fmt)

    def __mul__(self, other: Union["Fixed", Number]) -> "Fixed":
        other = self._coerce(other)
        product = self.raw * other.raw
        return Fixed(_round_shift(product, self.fmt.frac_bits), self.fmt)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Fixed", Number]) -> "Fixed":
        other = self._coerce(other)
        if other.raw == 0:
            raise FixedPointError("fixed-point division by zero")
        num = self.raw << (self.fmt.frac_bits + 1)
        quotient = num // other.raw
        return Fixed(_round_shift(quotient, 1), self.fmt)

    def __lshift__(self, bits: int) -> "Fixed":
        return Fixed(self.raw << bits, self.fmt)

    def __rshift__(self, bits: int) -> "Fixed":
        return Fixed(self.raw >> bits, self.fmt)

    def __abs__(self) -> "Fixed":
        return Fixed(abs(self.raw), self.fmt)

    # ------------------------------------------------------------------
    def _cmp_raw(self, other: Union["Fixed", Number]) -> tuple[int, int]:
        other = self._coerce(other)
        return self.raw, other.raw

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Fixed, int, float, Fraction)):
            return NotImplemented
        a, b = self._cmp_raw(other)  # type: ignore[arg-type]
        return a == b

    def __lt__(self, other):  a, b = self._cmp_raw(other); return a < b
    def __le__(self, other):  a, b = self._cmp_raw(other); return a <= b
    def __gt__(self, other):  a, b = self._cmp_raw(other); return a > b
    def __ge__(self, other):  a, b = self._cmp_raw(other); return a >= b

    def __hash__(self) -> int:
        return hash((self.raw, self.fmt))

    def __repr__(self) -> str:
        return f"Fixed({self.to_float():.9g}, {self.fmt})"
