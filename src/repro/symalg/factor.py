"""Polynomial factorization (the engine behind the paper's ``factor``).

The mapping algorithm uses ``factor`` as a *guideline* generator: a
factored form suggests which side relations preserve the expression
structure.  We implement the layers that matter for that role:

1. rational content extraction (the unit);
2. monomial content (``x^16 + x^17 + x^2 -> x^2 * (x^15 + x^14 + 1)``,
   the paper's own Maple example);
3. square-free decomposition (Yun's algorithm, per variable);
4. univariate factorization over Q: rational-root linear factors,
   quadratics via the discriminant, binomial patterns ``x^n - c``;
5. multivariate splitting by content/primitive part w.r.t. each
   variable (pulls out factors like ``(y + 1)`` from ``x*y + x``).

Degrees the search above cannot split remain as single factors; the
result is always a *correct* factorization (product equals the input),
just not guaranteed fully irreducible for high-degree irrational cases.
That matches the engineering need: candidates for mapping, not number
theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import SymbolicError
from repro.symalg.division import exact_divide
from repro.symalg.gcdtools import content_in, polynomial_gcd
from repro.symalg.ordering import TermOrder
from repro.symalg.polynomial import Polynomial

__all__ = ["Factorization", "factor", "square_free_decomposition"]

_LEX = TermOrder("lex")


@dataclass
class Factorization:
    """``unit * prod(base_i ^ multiplicity_i)``.

    ``factors`` is sorted deterministically (by degree, then string).
    """

    unit: Fraction
    factors: list[tuple[Polynomial, int]] = field(default_factory=list)

    def expand(self) -> Polynomial:
        """Multiply the factorization back out."""
        result = Polynomial.constant(self.unit)
        for base, mult in self.factors:
            result = result * base ** mult
        return result

    def __str__(self) -> str:
        parts: list[str] = []
        if self.unit != 1 or not self.factors:
            parts.append(str(self.unit))
        for base, mult in self.factors:
            text = f"({base})"
            if mult != 1:
                text += f"^{mult}"
            parts.append(text)
        return " * ".join(parts)

    def __iter__(self):
        return iter(self.factors)


def factor(poly: Polynomial) -> Factorization:
    """Factor ``poly`` over the rationals (see module docstring for scope).

    >>> from repro.symalg.parser import parse_polynomial
    >>> p = parse_polynomial("x^16 + x^17 + x^2")
    >>> str(factor(p))
    '(x)^2 * (x^15 + x^14 + 1)'
    """
    if poly.is_zero():
        return Factorization(Fraction(0))
    if poly.is_constant():
        return Factorization(poly.constant_value())

    unit = poly.content()
    work = poly.primitive_part()
    factors: list[tuple[Polynomial, int]] = []

    # Monomial content: common power of each variable.
    for var in work.variables:
        coeffs = work.coefficients_in(var)
        min_power = min(coeffs)
        if min_power > 0:
            factors.append((Polynomial.variable(var), min_power))
            work = exact_divide(work, Polynomial.variable(var) ** min_power, _LEX)

    for base, mult in _factor_squarefree_tower(work):
        factors.extend((b, m * mult) for b, m in _factor_primitive(base))

    factors = _merge(factors)
    return Factorization(unit, factors)


def square_free_decomposition(poly: Polynomial) -> list[tuple[Polynomial, int]]:
    """Yun's algorithm: ``poly = prod(a_i ^ i)`` with each ``a_i`` square-free.

    Multivariate inputs are handled by decomposing w.r.t. each variable
    in turn.  The product of the result (times the content) equals the
    input's primitive part.
    """
    if poly.is_zero() or poly.is_constant():
        return []
    return _factor_squarefree_tower(poly.primitive_part())


def _factor_squarefree_tower(poly: Polynomial) -> list[tuple[Polynomial, int]]:
    """Square-free split w.r.t. the first variable, recursing on pieces.

    Yun's algorithm w.r.t. ``x`` only sees factors that involve ``x``:
    anything in the content (free of ``x``) divides the derivative too
    and would be silently swallowed by the first GCD.  So the content is
    split off first and decomposed recursively.
    """
    if poly.is_constant():
        return []
    var = poly.variables[0]
    out: list[tuple[Polynomial, int]] = []
    cont = content_in(poly, var)
    if not cont.is_constant():
        out.extend(_factor_squarefree_tower(cont))
        poly = exact_divide(poly, cont, _LEX)
    elif cont.constant_value() not in (0, 1):
        poly = exact_divide(poly, cont, _LEX)
    for base, mult in _yun(poly, var):
        if not base.is_constant():
            out.append((base, mult))
    return out


def _yun(poly: Polynomial, var: str) -> list[tuple[Polynomial, int]]:
    """Yun's square-free decomposition w.r.t. ``var``."""
    d = poly.derivative(var)
    if d.is_zero():
        # poly is free of var (shouldn't happen: var in variables) or a
        # polynomial in other variables only.
        return [(poly, 1)]
    g = polynomial_gcd(poly, d)
    if g.is_constant():
        return [(poly, 1)]
    out: list[tuple[Polynomial, int]] = []
    b = exact_divide(poly, g, _LEX)
    c = exact_divide(d, g, _LEX)
    i = 1
    while True:
        w = c - b.derivative(var)
        if w.is_zero():
            if not b.is_constant():
                out.append((b, i))
            break
        a = polynomial_gcd(b, w)
        if not a.is_constant():
            out.append((a, i))
        b = exact_divide(b, a, _LEX)
        c = exact_divide(w, a, _LEX)
        i += 1
        if b.is_constant():
            break
    return out


def _factor_primitive(poly: Polynomial) -> list[tuple[Polynomial, int]]:
    """Factor a primitive square-free polynomial as far as we can."""
    if poly.is_constant():
        return []
    variables = poly.variables
    if len(variables) == 1:
        return [(p, 1) for p in _factor_univariate(poly, variables[0])]
    return [(p, 1) for p in _factor_multivariate(poly)]


def _factor_multivariate(poly: Polynomial) -> list[Polynomial]:
    """Split a multivariate polynomial via contents in each variable."""
    for var in poly.variables:
        cont = content_in(poly, var)
        if not cont.is_constant():
            prim = exact_divide(poly, cont, _LEX)
            return _factor_multivariate_or_uni(cont) + _factor_multivariate_or_uni(prim)
    homogeneous = _factor_homogeneous(poly)
    if homogeneous is not None:
        return homogeneous
    # A general two-block split by substitution is out of scope; keep whole.
    return [poly.primitive_part()]


def _is_homogeneous(poly: Polynomial) -> bool:
    """True iff every term has the same total degree."""
    degrees = {sum(powers.values()) for powers, _ in poly.iter_terms()}
    return len(degrees) == 1


def _homogenize(poly: Polynomial, pivot: str) -> Polynomial:
    """Make ``poly`` homogeneous by padding each term with ``pivot``."""
    target = poly.total_degree()
    v = Polynomial.variable(pivot)
    result = Polynomial.zero()
    for powers, coeff in poly.iter_terms():
        deficit = target - sum(powers.values())
        result = result + Polynomial.monomial(powers, coeff) * v ** deficit
    return result


def _factor_homogeneous(poly: Polynomial) -> list[Polynomial] | None:
    """Split a homogeneous polynomial by dehomogenizing one variable.

    ``x^3 + y^3 -> (x + y)(x^2 - x*y + y^2)`` via factoring ``x^3 + 1``
    and re-homogenizing each factor (factors of a homogeneous
    polynomial are homogeneous).  Returns ``None`` when the trick does
    not apply or finds nothing to split.
    """
    if not _is_homogeneous(poly):
        return None
    pivot = poly.variables[-1]
    dehomogenized = poly.substitute({pivot: 1}).primitive_part()
    if dehomogenized.is_constant():
        return None
    parts = _factor_multivariate_or_uni(dehomogenized)
    if len(parts) <= 1:
        return None
    rebuilt = Polynomial.one()
    factors = []
    for part in parts:
        lifted = _homogenize(part, pivot).primitive_part()
        factors.append(lifted)
        rebuilt = rebuilt * lifted
    try:
        cofactor = exact_divide(poly, rebuilt, _LEX)
    except SymbolicError:
        return None   # lift failed to reproduce the input; keep whole
    # The cofactor is c * pivot^k (degree lost in dehomogenization).
    k = cofactor.degree_in(pivot)
    factors.extend([Polynomial.variable(pivot)] * max(k, 0))
    return factors


def _factor_multivariate_or_uni(poly: Polynomial) -> list[Polynomial]:
    if poly.is_constant():
        return []
    if len(poly.variables) == 1:
        return _factor_univariate(poly, poly.variables[0])
    return _factor_multivariate(poly)


def _factor_univariate(poly: Polynomial, var: str) -> list[Polynomial]:
    """Rational roots + quadratic + binomial patterns, recursively."""
    poly = poly.primitive_part()
    degree = poly.degree_in(var)
    if degree <= 1:
        return [poly]

    factors: list[Polynomial] = []
    work = poly
    # Exhaust rational roots.
    root = _find_rational_root(work, var)
    while root is not None and work.degree_in(var) > 1:
        linear = (Polynomial.variable(var) * root.denominator
                  - Polynomial.constant(root.numerator))
        factors.append(linear.primitive_part())
        work = exact_divide(work, linear, _LEX).primitive_part()
        root = _find_rational_root(work, var)

    degree = work.degree_in(var)
    if degree == 2:
        factors.extend(_factor_quadratic(work, var))
    elif degree >= 2:
        binomial = _factor_binomial(work, var)
        if binomial is not None:
            factors.extend(binomial)
        elif degree >= 1:
            factors.append(work)
    elif degree == 1:
        factors.append(work)
    elif not work.is_constant() or work.constant_value() != 1:
        if not work.is_constant():
            factors.append(work)
    return [f for f in factors if not f.is_constant()]


def _coeff_list(poly: Polynomial, var: str) -> dict[int, Fraction]:
    out: dict[int, Fraction] = {}
    for power, coeff in poly.coefficients_in(var).items():
        if not coeff.is_constant():
            raise SymbolicError(f"{poly} is not univariate in {var}")
        out[power] = coeff.constant_value()
    return out


def _find_rational_root(poly: Polynomial, var: str) -> Fraction | None:
    """A rational root via the rational-root theorem, or None."""
    coeffs = _coeff_list(poly, var)
    degree = max(coeffs)
    low_power = min(coeffs)
    if low_power > 0:
        return Fraction(0)
    const = coeffs.get(0, Fraction(0))
    if const == 0:
        return Fraction(0)

    def divisors(n: int) -> list[int]:
        n = abs(n)
        out = [d for d in range(1, int(n ** 0.5) + 1) if n % d == 0]
        return sorted(set(out + [n // d for d in out]))

    # Clear denominators first so the theorem applies to integers.
    from math import lcm
    den = 1
    for c in coeffs.values():
        den = lcm(den, c.denominator)
    int_coeffs = {p: int(c * den) for p, c in coeffs.items()}
    p0 = int_coeffs.get(0, 0)
    pn = int_coeffs[degree]
    for num in divisors(p0):
        for d in divisors(pn):
            for sign in (1, -1):
                cand = Fraction(sign * num, d)
                if _eval_univariate(coeffs, cand) == 0:
                    return cand
    return None


def _eval_univariate(coeffs: dict[int, Fraction], x: Fraction) -> Fraction:
    total = Fraction(0)
    for power, coeff in coeffs.items():
        total += coeff * x ** power
    return total


def _factor_quadratic(poly: Polynomial, var: str) -> list[Polynomial]:
    """Split ``a x^2 + b x + c`` if the discriminant is a rational square."""
    coeffs = _coeff_list(poly, var)
    a = coeffs.get(2, Fraction(0))
    b = coeffs.get(1, Fraction(0))
    c = coeffs.get(0, Fraction(0))
    disc = b * b - 4 * a * c
    sqrt_disc = _fraction_sqrt(disc)
    if sqrt_disc is None:
        return [poly]
    x = Polynomial.variable(var)
    r1 = (-b + sqrt_disc) / (2 * a)
    r2 = (-b - sqrt_disc) / (2 * a)
    f1 = (x - Polynomial.constant(r1)).primitive_part()
    f2 = (x - Polynomial.constant(r2)).primitive_part()
    return [f1, f2]


def _fraction_sqrt(value: Fraction) -> Fraction | None:
    """Exact square root of a nonnegative rational, or None."""
    if value < 0:
        return None
    from math import isqrt
    num_root = isqrt(value.numerator)
    den_root = isqrt(value.denominator)
    if num_root * num_root == value.numerator and den_root * den_root == value.denominator:
        return Fraction(num_root, den_root)
    return None


def _factor_binomial(poly: Polynomial, var: str) -> list[Polynomial] | None:
    """Factor ``x^n - c`` (or ``+ c`` for odd n) one level via rational roots.

    Handles the difference-of-powers pattern: if ``c = r^n`` rationally,
    split off ``(x - r)``; also the difference of squares
    ``x^(2k) - c = (x^k - s)(x^k + s)`` when ``c = s^2``.
    """
    coeffs = _coeff_list(poly, var)
    if set(coeffs) - {0, max(coeffs)}:
        return None
    n = max(coeffs)
    lead = coeffs[n]
    const = coeffs.get(0, Fraction(0))
    if lead != 1 or const == 0 or n < 2:
        return None
    x = Polynomial.variable(var)
    if n % 2 == 0:
        s = _fraction_sqrt(-const)
        if s is not None:
            half = n // 2
            return (_factor_univariate(x ** half - Polynomial.constant(s), var)
                    + _factor_univariate(x ** half + Polynomial.constant(s), var))
    return None


def _merge(factors: list[tuple[Polynomial, int]]) -> list[tuple[Polynomial, int]]:
    """Combine equal bases and sort deterministically."""
    merged: dict[Polynomial, int] = {}
    for base, mult in factors:
        merged[base] = merged.get(base, 0) + mult
    return sorted(merged.items(),
                  key=lambda item: (item[0].total_degree(), str(item[0])))
