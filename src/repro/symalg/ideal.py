"""Ideal operations: simplification modulo side relations, membership,
variable elimination.

``simplify_modulo`` reproduces the Maple call the paper builds its
mapping algorithm around::

    > S := x + x^3*y^2 - 2*x*y^3
    > simplify(S, {p = x^2 - 2*y}, [x, y, p]);
    x + y^2*x*p

A *side relation* names a new symbol (``p``) and equates it to a
polynomial in the program variables.  Simplifying a target ``S`` modulo
a set of side relations rewrites as much of ``S`` as possible in terms
of the new symbols: we adjoin generators ``p - (x^2 - 2y)`` to an ideal,
compute its Groebner basis under a lex order in which the program
variables outrank the new symbols, and take the normal form of ``S``.
Because the program variables are "expensive" under that order, the
reduction eagerly replaces them with the library symbols — exactly the
rewriting step of the DAC'02 library-mapping algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Mapping, Sequence

from repro.errors import GroebnerExplosion, SymbolicError
from repro.symalg.division import reduce as nf_reduce
from repro.symalg.groebner import (DEFAULT_MAX_BASIS,
                                   DEFAULT_MAX_PAIRS, groebner_basis)
from repro.symalg.ordering import TermOrder
from repro.symalg.polynomial import Polynomial

__all__ = ["SideRelation", "simplify_modulo", "ideal_membership",
           "eliminate", "normal_form", "clear_ideal_caches"]


@lru_cache(maxsize=1024)
def _basis_or_explosion(generators: tuple[Polynomial, ...],
                        order: TermOrder,
                        max_basis: int, max_pairs: int):
    """Basis tuple, or the explosion message as a plain ``str`` sentinel.

    Explosions are cached too: the mapping search retries the same
    side-relation ideal across many nodes, and re-running Buchberger to
    its work limit on every retry would cost the full explosion each
    time.  (``lru_cache`` cannot memoize raised exceptions directly.)
    """
    try:
        return tuple(groebner_basis(generators, order,
                                    max_basis=max_basis,
                                    max_pairs=max_pairs))
    except GroebnerExplosion as exc:
        return str(exc)


def _cached_groebner_basis(generators: tuple[Polynomial, ...],
                           order: TermOrder,
                           max_basis: int, max_pairs: int
                           ) -> tuple[Polynomial, ...]:
    """Memoized Groebner basis of an ideal.

    The mapping search reduces against the *same* side-relation ideal at
    every node of a decomposition path; polynomials are immutable and
    hashable, so the basis is computed once per (generators, order)
    pair — and a cached explosion re-raises in O(1).
    """
    result = _basis_or_explosion(generators, order, max_basis, max_pairs)
    if isinstance(result, str):
        raise GroebnerExplosion(result)
    return result


def clear_ideal_caches() -> None:
    """Drop the memoized Groebner bases (mainly for benchmarks/tests)."""
    _basis_or_explosion.cache_clear()


@dataclass(frozen=True)
class SideRelation:
    """``name = polynomial``: a library element viewed as a rewrite rule.

    ``name`` is the fresh symbol standing for the element's output;
    ``polynomial`` is the element's polynomial representation over the
    program variables (and possibly other side-relation symbols).
    """

    name: str
    polynomial: Polynomial

    def __post_init__(self) -> None:
        if self.name in self.polynomial.variables:
            raise SymbolicError(
                f"side relation symbol {self.name!r} occurs in its own definition")

    def generator(self) -> Polynomial:
        """The ideal generator ``name - polynomial``."""
        return Polynomial.variable(self.name) - self.polynomial

    def __str__(self) -> str:
        return f"{self.name} = {self.polynomial}"


def _elimination_order(target: Polynomial,
                       relations: Sequence[SideRelation],
                       variable_order: Sequence[str] | None) -> TermOrder:
    """Lex order with program variables ahead of side-relation symbols.

    If ``variable_order`` is given it is used verbatim (the Maple
    convention, e.g. ``[x, y, p]``); otherwise program variables sort by
    name followed by relation symbols in relation order.
    """
    if variable_order is not None:
        return TermOrder("lex", tuple(variable_order))
    program_vars: set[str] = set(target.variables)
    for rel in relations:
        program_vars.update(rel.polynomial.variables)
    rel_names = [rel.name for rel in relations]
    program_vars -= set(rel_names)
    precedence = tuple(sorted(program_vars)) + tuple(rel_names)
    return TermOrder("lex", precedence)


def simplify_modulo(target: Polynomial,
                    relations: Iterable[SideRelation] | Mapping[str, Polynomial],
                    variable_order: Sequence[str] | None = None,
                    *,
                    max_basis: int = DEFAULT_MAX_BASIS,
                    max_pairs: int = DEFAULT_MAX_PAIRS) -> Polynomial:
    """Rewrite ``target`` in terms of the side-relation symbols.

    Parameters
    ----------
    target:
        Polynomial over the program variables.
    relations:
        Side relations, either as :class:`SideRelation` objects or as a
        ``{name: polynomial}`` mapping.
    variable_order:
        Optional explicit lex precedence (program variables first, then
        side-relation symbols), mirroring Maple's third argument.

    Returns the normal form of ``target`` modulo the Groebner basis of
    the side-relation ideal.  May raise
    :class:`~repro.errors.GroebnerExplosion` on pathological inputs.

    >>> from repro.symalg.polynomial import symbols
    >>> x, y = symbols("x y")
    >>> s = x + x**3 * y**2 - 2 * x * y**3
    >>> str(simplify_modulo(s, {"p": x**2 - 2*y}, ["x", "y", "p"]))
    'p*x*y^2 + x'

    (Maple prints the same polynomial as ``x + y^2*x*p``.)
    """
    rel_list = _as_relations(relations)
    if not rel_list:
        return target
    order = _elimination_order(target, rel_list, variable_order)
    basis = _cached_groebner_basis(
        tuple(rel.generator() for rel in rel_list), order,
        max_basis, max_pairs)
    return nf_reduce(target, basis, order)


def normal_form(poly: Polynomial, generators: Sequence[Polynomial],
                order: TermOrder) -> Polynomial:
    """Normal form of ``poly`` modulo the ideal of ``generators``.

    Computes a Groebner basis first (memoized) so the result is
    canonical.
    """
    basis = _cached_groebner_basis(tuple(generators), order,
                                   DEFAULT_MAX_BASIS, DEFAULT_MAX_PAIRS)
    return nf_reduce(poly, basis, order)


def ideal_membership(poly: Polynomial, generators: Sequence[Polynomial],
                     order: TermOrder | None = None) -> bool:
    """True iff ``poly`` lies in the ideal generated by ``generators``."""
    if poly.is_zero():
        return True
    if order is None:
        order = TermOrder("grevlex")
    return normal_form(poly, generators, order).is_zero()


def eliminate(generators: Sequence[Polynomial],
              drop: Sequence[str]) -> list[Polynomial]:
    """Generators of the elimination ideal with ``drop`` variables removed.

    Computes a lex Groebner basis with the dropped variables most
    significant and keeps the elements free of them.
    """
    keep: set[str] = set()
    for g in generators:
        keep.update(g.variables)
    keep -= set(drop)
    precedence = tuple(drop) + tuple(sorted(keep))
    order = TermOrder("lex", precedence)
    basis = groebner_basis(generators, order)
    dropped = set(drop)
    return [g for g in basis if not dropped & set(g.variables)]


def _as_relations(relations: Iterable[SideRelation] | Mapping[str, Polynomial]
                  ) -> list[SideRelation]:
    if isinstance(relations, Mapping):
        return [SideRelation(name, poly) for name, poly in relations.items()]
    return list(relations)
