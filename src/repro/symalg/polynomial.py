"""Sparse multivariate polynomials over exact rationals.

This module is the heart of the from-scratch symbolic engine that
replaces Maple V in the DAC'02 methodology.  A :class:`Polynomial` is an
immutable mapping from exponent tuples to nonzero
:class:`~fractions.Fraction` coefficients, together with the tuple of
variable names the exponents refer to.

Design rules
------------
* **Canonical form.**  Variables are stored sorted by name, exponent
  tuples carry one entry per variable, zero coefficients are dropped,
  and variables that no term uses are pruned.  Two polynomials are equal
  iff they represent the same function, so ``==`` and ``hash`` are
  structural.
* **Exact arithmetic.**  Coefficients are ``Fraction``; ``float`` inputs
  are converted exactly (every binary float is a rational).  Numeric
  tolerance only appears in :meth:`Polynomial.max_coefficient_distance`,
  which the library matcher uses for the paper's "within an acceptable
  tolerance" test.
* **No hidden term order.**  Leading terms depend on a
  :class:`~repro.symalg.ordering.TermOrder` passed explicitly by the
  division/Groebner layers.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Callable, Iterable, Iterator, Mapping, Sequence, Union

from repro.errors import SymbolicError
from repro.symalg.ordering import GREVLEX, TermOrder

__all__ = ["Polynomial", "symbols", "Coefficient", "Scalar"]

#: Types accepted wherever a coefficient is expected.
Scalar = Union[int, float, Fraction]
Coefficient = Fraction


def _to_fraction(value: Scalar) -> Fraction:
    """Convert an accepted scalar to an exact Fraction."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SymbolicError(f"non-finite coefficient {value!r}")
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value.numerator, value.denominator)
    raise SymbolicError(f"cannot use {type(value).__name__} as a polynomial coefficient")


class Polynomial:
    """An immutable sparse multivariate polynomial with rational coefficients.

    Construct via :meth:`constant`, :meth:`variable`, :func:`symbols`,
    :meth:`from_dict`, or the parser in :mod:`repro.symalg.parser`; then
    combine with ``+ - * **``.

    >>> x, y = symbols("x y")
    >>> p = (x + y) * (x - y)
    >>> p
    Polynomial('x^2 - y^2')
    >>> p.evaluate({"x": 3, "y": 2})
    Fraction(5, 1)
    """

    __slots__ = ("_variables", "_terms", "_hash")

    def __init__(self, variables: Sequence[str], terms: Mapping[tuple[int, ...], Scalar]):
        """Build a polynomial; prefer the named constructors.

        ``variables`` and ``terms`` are canonicalized: coefficients are
        converted to ``Fraction``, zero terms dropped, variables sorted
        and pruned.
        """
        variables = tuple(variables)
        cleaned: dict[tuple[int, ...], Fraction] = {}
        for exps, coeff in terms.items():
            frac = _to_fraction(coeff)
            if frac == 0:
                continue
            exps = tuple(exps)
            if len(exps) != len(variables):
                raise SymbolicError(
                    f"exponent tuple {exps} does not match variables {variables}")
            if any(e < 0 for e in exps):
                raise SymbolicError(f"negative exponent in {exps}")
            cleaned[exps] = cleaned.get(exps, Fraction(0)) + frac
        cleaned = {e: c for e, c in cleaned.items() if c != 0}

        # Prune unused variables and sort the rest by name.
        used = [i for i in range(len(variables))
                if any(exps[i] for exps in cleaned)]
        pruned_vars = tuple(variables[i] for i in used)
        order = sorted(range(len(pruned_vars)), key=lambda i: pruned_vars[i])
        self._variables: tuple[str, ...] = tuple(pruned_vars[i] for i in order)
        remap = [used[i] for i in order]
        self._terms: dict[tuple[int, ...], Fraction] = {
            tuple(exps[i] for i in remap): coeff for exps, coeff in cleaned.items()
        }
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: Scalar) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls((), {(): value} if _to_fraction(value) != 0 else {})

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls((), {})

    @classmethod
    def one(cls) -> "Polynomial":
        """The constant polynomial 1."""
        return cls.constant(1)

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``name``."""
        if not name or not isinstance(name, str):
            raise SymbolicError(f"invalid variable name {name!r}")
        return cls((name,), {(1,): 1})

    @classmethod
    def monomial(cls, powers: Mapping[str, int], coefficient: Scalar = 1) -> "Polynomial":
        """A single term, e.g. ``monomial({'x': 2, 'y': 1}, 3)`` is ``3*x^2*y``."""
        names = tuple(powers)
        exps = tuple(powers[n] for n in names)
        return cls(names, {exps: coefficient})

    @classmethod
    def from_dict(cls, terms: Mapping[tuple[int, ...], Scalar],
                  variables: Sequence[str]) -> "Polynomial":
        """Build from an ``{exponent_tuple: coefficient}`` mapping."""
        return cls(variables, terms)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """Variable names actually used, sorted."""
        return self._variables

    @property
    def terms(self) -> Mapping[tuple[int, ...], Fraction]:
        """Read-only view of the term map (do not mutate)."""
        return self._terms

    def __len__(self) -> int:
        """Number of (nonzero) terms."""
        return len(self._terms)

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self._terms

    def is_constant(self) -> bool:
        """True iff no variables occur."""
        return not self._variables

    def constant_value(self) -> Fraction:
        """The value of a constant polynomial (raises if non-constant)."""
        if not self.is_constant():
            raise SymbolicError(f"{self} is not constant")
        return self._terms.get((), Fraction(0))

    def total_degree(self) -> int:
        """Maximum total degree over all terms (zero polynomial: -1)."""
        if not self._terms:
            return -1
        return max(sum(exps) for exps in self._terms)

    def degree_in(self, var: str) -> int:
        """Maximum exponent of ``var`` (0 if absent, -1 for the zero poly)."""
        if not self._terms:
            return -1
        if var not in self._variables:
            return 0
        i = self._variables.index(var)
        return max(exps[i] for exps in self._terms)

    def coefficient(self, powers: Mapping[str, int]) -> Fraction:
        """Coefficient of the monomial given by ``powers`` (0 if absent)."""
        full = {v: 0 for v in self._variables}
        for name, power in powers.items():
            if power and name not in full:
                return Fraction(0)
            if name in full:
                full[name] = power
        exps = tuple(full[v] for v in self._variables)
        return self._terms.get(exps, Fraction(0))

    def iter_terms(self) -> Iterator[tuple[dict[str, int], Fraction]]:
        """Yield ``({var: exponent}, coefficient)`` pairs."""
        for exps, coeff in self._terms.items():
            yield ({v: e for v, e in zip(self._variables, exps) if e}, coeff)

    # ------------------------------------------------------------------
    # Alignment helper
    # ------------------------------------------------------------------
    def _aligned(self, other: "Polynomial") -> tuple[tuple[str, ...],
                                                     dict[tuple[int, ...], Fraction],
                                                     dict[tuple[int, ...], Fraction]]:
        """Re-express both term maps over the union of the variable sets."""
        if self._variables == other._variables:
            return self._variables, self._terms, other._terms
        union = tuple(sorted(set(self._variables) | set(other._variables)))

        def remap(poly: "Polynomial") -> dict[tuple[int, ...], Fraction]:
            pos = [union.index(v) for v in poly._variables]
            out: dict[tuple[int, ...], Fraction] = {}
            for exps, coeff in poly._terms.items():
                full = [0] * len(union)
                for p, e in zip(pos, exps):
                    full[p] = e
                out[tuple(full)] = coeff
            return out

        return union, remap(self), remap(other)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        union, a, b = self._aligned(other)
        out = dict(a)
        for exps, coeff in b.items():
            out[exps] = out.get(exps, Fraction(0)) + coeff
        return Polynomial(union, out)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(self._variables, {e: -c for e, c in self._terms.items()})

    def __sub__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: Scalar) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other + (-self)

    def __mul__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        union, a, b = self._aligned(other)
        out: dict[tuple[int, ...], Fraction] = {}
        for e1, c1 in a.items():
            for e2, c2 in b.items():
                key = tuple(x + y for x, y in zip(e1, e2))
                out[key] = out.get(key, Fraction(0)) + c1 * c2
        return Polynomial(union, out)

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "Polynomial":
        """Division by a nonzero scalar only; use :mod:`division` for polynomials."""
        if isinstance(other, Polynomial):
            if other.is_constant():
                other = other.constant_value()
            else:
                raise SymbolicError(
                    "use repro.symalg.division for polynomial/polynomial division")
        frac = _to_fraction(other)
        if frac == 0:
            raise SymbolicError("division by zero")
        return Polynomial(self._variables,
                          {e: c / frac for e, c in self._terms.items()})

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise SymbolicError(f"polynomial exponent must be a nonnegative int, got {exponent!r}")
        result = Polynomial.one()
        base = self
        n = exponent
        while n:
            if n & 1:
                result = result * base
            base = base * base if n > 1 else base
            n >>= 1
        return result

    # ------------------------------------------------------------------
    # Calculus / evaluation / substitution
    # ------------------------------------------------------------------
    def derivative(self, var: str) -> "Polynomial":
        """Partial derivative with respect to ``var``."""
        if var not in self._variables:
            return Polynomial.zero()
        i = self._variables.index(var)
        out: dict[tuple[int, ...], Fraction] = {}
        for exps, coeff in self._terms.items():
            if exps[i] == 0:
                continue
            new = list(exps)
            new[i] -= 1
            out[tuple(new)] = out.get(tuple(new), Fraction(0)) + coeff * exps[i]
        return Polynomial(self._variables, out)

    def evaluate(self, env: Mapping[str, Scalar]) -> Union[Fraction, float]:
        """Evaluate at a point.  Missing variables raise.

        Returns a ``Fraction`` when all inputs are exact, otherwise a
        ``float``.
        """
        missing = [v for v in self._variables if v not in env]
        if missing:
            raise SymbolicError(f"no value for variable(s) {missing}")
        exact = all(not isinstance(env[v], float) for v in self._variables)
        values = [env[v] if isinstance(env[v], float) else _to_fraction(env[v])
                  for v in self._variables]
        total: Union[Fraction, float] = Fraction(0) if exact else 0.0
        for exps, coeff in self._terms.items():
            term: Union[Fraction, float] = coeff if exact else float(coeff)
            for value, e in zip(values, exps):
                if e:
                    term = term * value ** e
            total = total + term
        return total

    def substitute(self, mapping: Mapping[str, Union["Polynomial", Scalar]]) -> "Polynomial":
        """Replace variables by polynomials (or scalars) simultaneously.

        >>> x, y = symbols("x y")
        >>> (x * x + y).substitute({"x": y + 1})
        Polynomial('y^2 + 3*y + 1')
        """
        subs: dict[str, Polynomial] = {}
        for name, value in mapping.items():
            subs[name] = value if isinstance(value, Polynomial) else Polynomial.constant(value)
        result = Polynomial.zero()
        for exps, coeff in self._terms.items():
            term = Polynomial.constant(coeff)
            for var, e in zip(self._variables, exps):
                if not e:
                    continue
                base = subs.get(var, Polynomial.variable(var))
                term = term * base ** e
            result = result + term
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables (must stay distinct)."""
        new_names = [mapping.get(v, v) for v in self._variables]
        if len(set(new_names)) != len(new_names):
            raise SymbolicError(f"rename {mapping} collapses distinct variables")
        return Polynomial(tuple(new_names), dict(self._terms))

    def map_coefficients(self, fn: Callable[[Fraction], Scalar]) -> "Polynomial":
        """Apply ``fn`` to every coefficient."""
        return Polynomial(self._variables, {e: fn(c) for e, c in self._terms.items()})

    # ------------------------------------------------------------------
    # Term-order-dependent views
    # ------------------------------------------------------------------
    def leading_term(self, order: TermOrder = GREVLEX) -> tuple[tuple[int, ...], Fraction]:
        """``(exponents, coefficient)`` of the leading term under ``order``."""
        if not self._terms:
            raise SymbolicError("zero polynomial has no leading term")
        exps = order.max_monomial(self._terms.keys(), self._variables)
        return exps, self._terms[exps]

    def leading_monomial(self, order: TermOrder = GREVLEX) -> "Polynomial":
        """The leading term as a (monic) polynomial."""
        exps, _ = self.leading_term(order)
        return Polynomial(self._variables, {exps: 1})

    def leading_coefficient(self, order: TermOrder = GREVLEX) -> Fraction:
        """Coefficient of the leading term."""
        return self.leading_term(order)[1]

    def monic(self, order: TermOrder = GREVLEX) -> "Polynomial":
        """Scale so the leading coefficient is 1."""
        if self.is_zero():
            return self
        return self / self.leading_coefficient(order)

    def sorted_terms(self, order: TermOrder = GREVLEX
                     ) -> list[tuple[tuple[int, ...], Fraction]]:
        """Terms sorted leading-first."""
        exps_sorted = order.sorted_monomials(self._terms.keys(), self._variables)
        return [(e, self._terms[e]) for e in exps_sorted]

    # ------------------------------------------------------------------
    # Univariate views (used by Horner, factorization, GCD)
    # ------------------------------------------------------------------
    def coefficients_in(self, var: str) -> dict[int, "Polynomial"]:
        """View as a univariate polynomial in ``var``: power -> coefficient poly."""
        if var not in self._variables:
            return {0: self} if not self.is_zero() else {}
        i = self._variables.index(var)
        rest = tuple(v for j, v in enumerate(self._variables) if j != i)
        buckets: dict[int, dict[tuple[int, ...], Fraction]] = {}
        for exps, coeff in self._terms.items():
            power = exps[i]
            rest_exps = tuple(e for j, e in enumerate(exps) if j != i)
            buckets.setdefault(power, {})[rest_exps] = coeff
        return {p: Polynomial(rest, t) for p, t in buckets.items()}

    @staticmethod
    def from_univariate(coeffs: Mapping[int, "Polynomial"], var: str) -> "Polynomial":
        """Inverse of :meth:`coefficients_in`."""
        x = Polynomial.variable(var)
        result = Polynomial.zero()
        for power, coeff in coeffs.items():
            result = result + coeff * x ** power
        return result

    def content(self) -> Fraction:
        """Rational content: gcd of numerators over lcm of denominators.

        Sign convention: the content carries the sign of the leading
        (grevlex) coefficient, so the primitive part has positive
        leading coefficient.
        """
        if self.is_zero():
            return Fraction(0)
        from math import gcd, lcm
        nums = [abs(c.numerator) for c in self._terms.values()]
        dens = [c.denominator for c in self._terms.values()]
        g = 0
        for n in nums:
            g = gcd(g, n)
        m = 1
        for d in dens:
            m = lcm(m, d)
        magnitude = Fraction(g, m)
        sign = 1 if self.leading_coefficient(GREVLEX) > 0 else -1
        return magnitude * sign

    def primitive_part(self) -> "Polynomial":
        """``self / self.content()`` (integer coefficients, positive leading)."""
        if self.is_zero():
            return self
        return self / self.content()

    # ------------------------------------------------------------------
    # Numeric comparison (library matching tolerance)
    # ------------------------------------------------------------------
    def max_coefficient_distance(self, other: "Polynomial") -> float:
        """Max absolute difference between aligned coefficients.

        This is the metric behind the paper's "within an acceptable
        tolerance of the polynomial representation of a library
        element".
        """
        _, a, b = self._aligned(other)
        keys = set(a) | set(b)
        if not keys:
            return 0.0
        return max(abs(float(a.get(k, 0)) - float(b.get(k, 0))) for k in keys)

    def almost_equal(self, other: "Polynomial", tolerance: float = 1e-9) -> bool:
        """True iff all aligned coefficients differ by at most ``tolerance``."""
        return self.max_coefficient_distance(other) <= tolerance

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._variables == other._variables and self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._variables, frozenset(self._terms.items())))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts: list[str] = []
        for exps, coeff in self.sorted_terms(GREVLEX):
            factors = []
            for var, e in zip(self._variables, exps):
                if e == 1:
                    factors.append(var)
                elif e > 1:
                    factors.append(f"{var}^{e}")
            mag = abs(coeff)
            if not factors:
                body = str(mag)
            elif mag == 1:
                body = "*".join(factors)
            else:
                body = "*".join([str(mag)] + factors)
            sign = "-" if coeff < 0 else "+"
            parts.append((sign, body))
        first_sign, first_body = parts[0]
        text = ("-" if first_sign == "-" else "") + first_body
        for sign, body in parts[1:]:
            text += f" {sign} {body}"
        return text

    def __repr__(self) -> str:
        return f"Polynomial({str(self)!r})"


def _coerce(value: Union[Polynomial, Scalar]) -> Polynomial:
    """Coerce scalars to polynomials; NotImplemented for foreign types."""
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float, Fraction, Rational)):
        return Polynomial.constant(value)
    return NotImplemented


def symbols(names: str) -> tuple[Polynomial, ...]:
    """Create variable polynomials from a space- or comma-separated string.

    >>> x, y = symbols("x y")
    >>> (x + y).total_degree()
    1
    """
    parts = [n for chunk in names.replace(",", " ").split() for n in [chunk] if n]
    if not parts:
        raise SymbolicError(f"no variable names in {names!r}")
    return tuple(Polynomial.variable(n) for n in parts)
