"""Sparse multivariate polynomials over exact rationals.

This module is the heart of the from-scratch symbolic engine that
replaces Maple V in the DAC'02 methodology.  A :class:`Polynomial` is an
immutable sparse polynomial: publicly a mapping from exponent tuples to
nonzero :class:`~fractions.Fraction` coefficients over a sorted tuple of
variable names; internally each monomial is a *packed integer code*
(see :mod:`repro.symalg.monomials`) and integer coefficients stay plain
``int`` until a denominator actually appears.

Design rules
------------
* **Canonical form.**  Variables are stored sorted by name, each term is
  one packed code carrying one exponent field per variable, zero
  coefficients are dropped, and variables that no term uses are pruned.
  Two polynomials are equal iff they represent the same function, so
  ``==`` and ``hash`` are structural.
* **Exact arithmetic.**  Coefficients are rationals; ``float`` inputs
  are converted exactly (every binary float is a rational).  Integral
  coefficients are kept as machine ``int`` — the fast path — and only
  become ``Fraction`` when a division introduces a denominator.  Numeric
  tolerance only appears in :meth:`Polynomial.max_coefficient_distance`,
  which the library matcher uses for the paper's "within an acceptable
  tolerance" test.
* **No hidden term order.**  Leading terms depend on a
  :class:`~repro.symalg.ordering.TermOrder` passed explicitly by the
  division/Groebner layers; per-order leading terms are cached on the
  instance (polynomials are immutable, so the cache never invalidates).
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Callable, Iterator, Mapping, Sequence, Union

from repro.errors import SymbolicError
from repro.symalg.monomials import (MASK, MAX_EXPONENT, SHIFT, pack, remap,
                                    remap_table, unpack)
from repro.symalg.ordering import GREVLEX, TermOrder

__all__ = ["Polynomial", "symbols", "Coefficient", "Scalar"]

#: Types accepted wherever a coefficient is expected.
Scalar = Union[int, float, Fraction]
Coefficient = Fraction

#: Internal coefficient type: ``int`` on the fast path, else ``Fraction``.
_Coeff = Union[int, Fraction]


def _to_fraction(value: Scalar) -> Fraction:
    """Convert an accepted scalar to an exact Fraction."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SymbolicError(f"non-finite coefficient {value!r}")
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value.numerator, value.denominator)
    raise SymbolicError(f"cannot use {type(value).__name__} as a polynomial coefficient")


def _to_coeff(value: Scalar) -> _Coeff:
    """Convert a scalar to the internal coefficient type (int fast path)."""
    if type(value) is int:
        return value
    frac = _to_fraction(value)
    return frac.numerator if frac.denominator == 1 else frac


def _as_fraction(value: _Coeff) -> Fraction:
    """Present an internal coefficient as the public ``Fraction`` type."""
    return value if type(value) is Fraction else Fraction(value)


class Polynomial:
    """An immutable sparse multivariate polynomial with rational coefficients.

    Construct via :meth:`constant`, :meth:`variable`, :func:`symbols`,
    :meth:`from_dict`, or the parser in :mod:`repro.symalg.parser`; then
    combine with ``+ - * **``.

    >>> x, y = symbols("x y")
    >>> p = (x + y) * (x - y)
    >>> p
    Polynomial('x^2 - y^2')
    >>> p.evaluate({"x": 3, "y": 2})
    Fraction(5, 1)
    """

    __slots__ = ("_variables", "_codes", "_hash", "_terms_cache",
                 "_lt_cache", "_degree_cache")

    def __init__(self, variables: Sequence[str], terms: Mapping[tuple[int, ...], Scalar]):
        """Build a polynomial; prefer the named constructors.

        ``variables`` and ``terms`` are canonicalized: coefficients are
        converted to exact rationals, zero terms dropped, variables
        sorted and pruned.
        """
        variables = tuple(variables)
        n = len(variables)
        cleaned: dict[tuple[int, ...], _Coeff] = {}
        for exps, coeff in terms.items():
            val = _to_coeff(coeff)
            if val == 0:
                continue
            exps = tuple(exps)
            if len(exps) != n:
                raise SymbolicError(
                    f"exponent tuple {exps} does not match variables {variables}")
            for e in exps:
                if e < 0:
                    raise SymbolicError(f"negative exponent in {exps}")
                if e >= MAX_EXPONENT:
                    raise SymbolicError(
                        f"exponent {e} exceeds the supported maximum {MAX_EXPONENT - 1}")
            prev = cleaned.get(exps)
            if prev is not None:
                val = prev + val
                if type(val) is Fraction and val.denominator == 1:
                    val = val.numerator
            cleaned[exps] = val
        cleaned = {e: c for e, c in cleaned.items() if c != 0}

        # Prune unused variables and sort the rest by name.
        used = [i for i in range(n) if any(exps[i] for exps in cleaned)]
        pruned_vars = tuple(variables[i] for i in used)
        order = sorted(range(len(pruned_vars)), key=lambda i: pruned_vars[i])
        self._variables: tuple[str, ...] = tuple(pruned_vars[i] for i in order)
        remap_positions = [used[i] for i in order]
        self._codes: dict[int, _Coeff] = {
            pack([exps[i] for i in remap_positions]): coeff
            for exps, coeff in cleaned.items()
        }
        self._hash: int | None = None
        self._terms_cache: dict[tuple[int, ...], Fraction] | None = None
        self._lt_cache: dict[TermOrder, tuple[int, ...]] | None = None
        self._degree_cache: int | None = None

    # ------------------------------------------------------------------
    # Internal fast constructors (packed representation)
    # ------------------------------------------------------------------
    @classmethod
    def _from_codes(cls, variables: tuple[str, ...],
                    codes: dict[int, _Coeff]) -> "Polynomial":
        """Adopt a packed term dict without re-validation.

        Caller contract: ``variables`` is sorted, coefficients are
        nonzero ``int``/``Fraction``.  Denominator-1 fractions are
        normalized back to ``int`` and unused variables are pruned here.
        """
        for code, coeff in codes.items():
            if type(coeff) is Fraction and coeff.denominator == 1:
                codes[code] = coeff.numerator

        n = len(variables)
        if n:
            if not codes:
                variables = ()
            else:
                or_all = 0
                for code in codes:
                    or_all |= code
                used = [i for i in range(n)
                        if (or_all >> (SHIFT * (n - 1 - i))) & MASK]
                if len(used) != n:
                    kept = tuple(variables[i] for i in used)
                    n_kept = len(kept)
                    table = tuple(
                        (SHIFT * (n - 1 - old_i), SHIFT * (n_kept - 1 - new_i))
                        for new_i, old_i in enumerate(used))
                    codes = {remap(c, table): v for c, v in codes.items()}
                    variables = kept

        self = object.__new__(cls)
        self._variables = variables
        self._codes = codes
        self._hash = None
        self._terms_cache = None
        self._lt_cache = None
        self._degree_cache = None
        return self

    @classmethod
    def _from_frame(cls, frame: tuple[str, ...],
                    codes: dict[int, _Coeff]) -> "Polynomial":
        """Like :meth:`_from_codes` for a frame in arbitrary (e.g.
        precedence) order: codes are re-packed onto the sorted frame."""
        ordered = tuple(sorted(frame))
        if ordered != frame:
            table = remap_table(frame, ordered)
            codes = {remap(c, table): v for c, v in codes.items()}
        return cls._from_codes(ordered, codes)

    def _codes_on(self, frame: tuple[str, ...]) -> dict[int, _Coeff]:
        """This polynomial's packed terms re-expressed over ``frame``.

        ``frame`` must contain every variable of the polynomial; it may
        be in any order.  Returns the internal dict itself when the
        frame already matches — callers must not mutate the result.
        """
        if frame == self._variables:
            return self._codes
        table = remap_table(self._variables, frame)
        return {remap(c, table): v for c, v in self._codes.items()}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: Scalar) -> "Polynomial":
        """The constant polynomial ``value``."""
        coeff = _to_coeff(value)
        return cls._from_codes((), {0: coeff} if coeff != 0 else {})

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls._from_codes((), {})

    @classmethod
    def one(cls) -> "Polynomial":
        """The constant polynomial 1."""
        return cls._from_codes((), {0: 1})

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``name``."""
        if not name or not isinstance(name, str):
            raise SymbolicError(f"invalid variable name {name!r}")
        return cls._from_codes((name,), {1: 1})

    @classmethod
    def monomial(cls, powers: Mapping[str, int], coefficient: Scalar = 1) -> "Polynomial":
        """A single term, e.g. ``monomial({'x': 2, 'y': 1}, 3)`` is ``3*x^2*y``."""
        names = tuple(powers)
        exps = tuple(powers[n] for n in names)
        return cls(names, {exps: coefficient})

    @classmethod
    def from_dict(cls, terms: Mapping[tuple[int, ...], Scalar],
                  variables: Sequence[str]) -> "Polynomial":
        """Build from an ``{exponent_tuple: coefficient}`` mapping."""
        return cls(variables, terms)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """Variable names actually used, sorted."""
        return self._variables

    @property
    def terms(self) -> Mapping[tuple[int, ...], Fraction]:
        """Read-only view of the term map (do not mutate).

        Decoded lazily from the packed representation and cached; keys
        are exponent tuples aligned with :attr:`variables`.
        """
        if self._terms_cache is None:
            n = len(self._variables)
            self._terms_cache = {unpack(code, n): _as_fraction(coeff)
                                 for code, coeff in self._codes.items()}
        return self._terms_cache

    def __len__(self) -> int:
        """Number of (nonzero) terms."""
        return len(self._codes)

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self._codes

    def is_constant(self) -> bool:
        """True iff no variables occur."""
        return not self._variables

    def constant_value(self) -> Fraction:
        """The value of a constant polynomial (raises if non-constant)."""
        if not self.is_constant():
            raise SymbolicError(f"{self} is not constant")
        return _as_fraction(self._codes.get(0, 0))

    def total_degree(self) -> int:
        """Maximum total degree over all terms (zero polynomial: -1).

        Cached on the instance: the multiplication overflow guard asks
        for it on every product.

        >>> x, y = symbols("x y")
        >>> (x**2 * y + y).total_degree()
        3
        """
        if self._degree_cache is not None:
            return self._degree_cache
        if not self._codes:
            self._degree_cache = -1
            return -1
        best = 0
        for code in self._codes:
            total = 0
            while code:
                total += code & MASK
                code >>= SHIFT
            if total > best:
                best = total
        self._degree_cache = best
        return best

    def degree_in(self, var: str) -> int:
        """Maximum exponent of ``var`` (0 if absent, -1 for the zero poly)."""
        if not self._codes:
            return -1
        if var not in self._variables:
            return 0
        shift = self._field_shift(self._variables.index(var))
        return max((code >> shift) & MASK for code in self._codes)

    def coefficient(self, powers: Mapping[str, int]) -> Fraction:
        """Coefficient of the monomial given by ``powers`` (0 if absent)."""
        full = {v: 0 for v in self._variables}
        for name, power in powers.items():
            if power and name not in full:
                return Fraction(0)
            if name in full:
                full[name] = power
        code = pack([full[v] for v in self._variables])
        return _as_fraction(self._codes.get(code, 0))

    def iter_terms(self) -> Iterator[tuple[dict[str, int], Fraction]]:
        """Yield ``({var: exponent}, coefficient)`` pairs."""
        n = len(self._variables)
        for code, coeff in self._codes.items():
            exps = unpack(code, n)
            yield ({v: e for v, e in zip(self._variables, exps) if e},
                   _as_fraction(coeff))

    def _field_shift(self, index: int) -> int:
        """Bit offset of variable ``index``'s exponent field."""
        return SHIFT * (len(self._variables) - 1 - index)

    # ------------------------------------------------------------------
    # Alignment helper
    # ------------------------------------------------------------------
    def _aligned(self, other: "Polynomial") -> tuple[tuple[str, ...],
                                                     dict[int, _Coeff],
                                                     dict[int, _Coeff]]:
        """Re-express both packed term maps over the union variable frame."""
        if self._variables == other._variables:
            return self._variables, self._codes, other._codes
        union = tuple(sorted(set(self._variables) | set(other._variables)))
        return union, self._codes_on(union), other._codes_on(union)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if not isinstance(other, Polynomial):
            other = _coerce(other)
            if other is NotImplemented:
                return NotImplemented
        union, a, b = self._aligned(other)
        out = dict(a)
        get = out.get
        for code, coeff in b.items():
            val = get(code, 0) + coeff
            if val:
                out[code] = val
            else:
                del out[code]
        return Polynomial._from_codes(union, out)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial._from_codes(
            self._variables, {c: -v for c, v in self._codes.items()})

    def __sub__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if not isinstance(other, Polynomial):
            other = _coerce(other)
            if other is NotImplemented:
                return NotImplemented
        union, a, b = self._aligned(other)
        out = dict(a)
        get = out.get
        for code, coeff in b.items():
            val = get(code, 0) - coeff
            if val:
                out[code] = val
            else:
                del out[code]
        return Polynomial._from_codes(union, out)

    def __rsub__(self, other: Scalar) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other - self

    def __mul__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if not isinstance(other, Polynomial):
            other = _coerce(other)
            if other is NotImplemented:
                return NotImplemented
        # Degree-bound overflow guard: every exponent field of a product
        # monomial is at most deg(self) + deg(other), so staying under
        # the guard bit keeps packed addition carry-free.  (Same bound
        # __pow__ checks; realistic inputs never get near 2^31.)
        if self._codes and other._codes and \
                self.total_degree() + other.total_degree() >= 1 << (SHIFT - 1):
            raise SymbolicError(
                "product would overflow the packed exponent range")
        union, a, b = self._aligned(other)
        if len(a) > len(b):
            a, b = b, a
        out: dict[int, _Coeff] = {}
        get = out.get
        for e1, c1 in a.items():
            for e2, c2 in b.items():
                key = e1 + e2
                val = get(key, 0) + c1 * c2
                if val:
                    out[key] = val
                else:
                    del out[key]
        return Polynomial._from_codes(union, out)

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "Polynomial":
        """Division by a nonzero scalar only; use :mod:`division` for polynomials."""
        if isinstance(other, Polynomial):
            if other.is_constant():
                other = other.constant_value()
            else:
                raise SymbolicError(
                    "use repro.symalg.division for polynomial/polynomial division")
        value = _to_coeff(other)
        if value == 0:
            raise SymbolicError("division by zero")
        if value == 1:
            return self
        out: dict[int, _Coeff] = {}
        for code, coeff in self._codes.items():
            if type(coeff) is int and type(value) is int:
                q, r = divmod(coeff, value)
                out[code] = q if r == 0 else Fraction(coeff, value)
            else:
                out[code] = coeff / value
        return Polynomial._from_codes(self._variables, out)

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise SymbolicError(f"polynomial exponent must be a nonnegative int, got {exponent!r}")
        if exponent and self._codes:
            worst = max(max(unpack(code, len(self._variables)), default=0)
                        for code in self._codes)
            if worst * exponent >= 1 << (SHIFT - 1):
                raise SymbolicError(
                    f"power {exponent} would overflow the packed exponent range")
        result = Polynomial.one()
        base = self
        n = exponent
        while n:
            if n & 1:
                result = result * base
            base = base * base if n > 1 else base
            n >>= 1
        return result

    # ------------------------------------------------------------------
    # Calculus / evaluation / substitution
    # ------------------------------------------------------------------
    def derivative(self, var: str) -> "Polynomial":
        """Partial derivative with respect to ``var``.

        >>> x, y = symbols("x y")
        >>> (x**3 * y).derivative("x")
        Polynomial('3*x^2*y')
        """
        if var not in self._variables:
            return Polynomial.zero()
        shift = self._field_shift(self._variables.index(var))
        one = 1 << shift
        out: dict[int, _Coeff] = {}
        get = out.get
        for code, coeff in self._codes.items():
            e = (code >> shift) & MASK
            if e == 0:
                continue
            key = code - one
            val = get(key, 0) + coeff * e
            if val:
                out[key] = val
            else:
                del out[key]
        return Polynomial._from_codes(self._variables, out)

    def evaluate(self, env: Mapping[str, Scalar]) -> Union[Fraction, float]:
        """Evaluate at a point.  Missing variables raise.

        Returns a ``Fraction`` when all inputs are exact, otherwise a
        ``float``.
        """
        missing = [v for v in self._variables if v not in env]
        if missing:
            raise SymbolicError(f"no value for variable(s) {missing}")
        exact = all(not isinstance(env[v], float) for v in self._variables)
        values = [env[v] if isinstance(env[v], float) else _to_fraction(env[v])
                  for v in self._variables]
        n = len(self._variables)
        total: Union[Fraction, float] = Fraction(0) if exact else 0.0
        for code, coeff in self._codes.items():
            term: Union[Fraction, float] = (_as_fraction(coeff) if exact
                                            else float(coeff))
            for value, e in zip(values, unpack(code, n)):
                if e:
                    term = term * value ** e
            total = total + term
        return total

    def substitute(self, mapping: Mapping[str, Union["Polynomial", Scalar]]) -> "Polynomial":
        """Replace variables by polynomials (or scalars) simultaneously.

        A mapping that only renames variables (every value a single
        distinct variable) takes the cheap :meth:`rename` path.

        >>> x, y = symbols("x y")
        >>> (x * x + y).substitute({"x": y + 1})
        Polynomial('y^2 + 3*y + 1')
        """
        subs: dict[str, Polynomial] = {}
        for name, value in mapping.items():
            subs[name] = value if isinstance(value, Polynomial) else Polynomial.constant(value)

        relevant = {name: poly for name, poly in subs.items()
                    if name in self._variables}
        if not relevant:
            return self
        rename_map: dict[str, str] = {}
        for name, poly in relevant.items():
            if len(poly._codes) == 1 and poly._codes.get(1) == 1 \
                    and len(poly._variables) == 1:
                rename_map[name] = poly._variables[0]
        if len(rename_map) == len(relevant):
            new_names = [rename_map.get(v, v) for v in self._variables]
            if len(set(new_names)) == len(new_names):
                return self.rename(rename_map)

        n = len(self._variables)
        result = Polynomial.zero()
        for code, coeff in self._codes.items():
            term = Polynomial.constant(coeff)
            for var, e in zip(self._variables, unpack(code, n)):
                if not e:
                    continue
                base = subs.get(var, Polynomial.variable(var))
                term = term * base ** e
            result = result + term
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables (must stay distinct).

        >>> x, y = symbols("x y")
        >>> (x + 2 * y).rename({"x": "a"})
        Polynomial('a + 2*y')
        """
        new_names = tuple(mapping.get(v, v) for v in self._variables)
        if len(set(new_names)) != len(new_names):
            raise SymbolicError(f"rename {mapping} collapses distinct variables")
        if new_names == self._variables:
            return self
        return Polynomial._from_frame(new_names, dict(self._codes))

    def map_coefficients(self, fn: Callable[[Fraction], Scalar]) -> "Polynomial":
        """Apply ``fn`` to every coefficient."""
        out: dict[int, _Coeff] = {}
        for code, coeff in self._codes.items():
            val = _to_coeff(fn(_as_fraction(coeff)))
            if val:
                out[code] = val
        return Polynomial._from_codes(self._variables, out)

    # ------------------------------------------------------------------
    # Term-order-dependent views
    # ------------------------------------------------------------------
    def leading_term(self, order: TermOrder = GREVLEX) -> tuple[tuple[int, ...], Fraction]:
        """``(exponents, coefficient)`` of the leading term under ``order``.

        Cached per order: polynomials are immutable and the Groebner
        layer asks for the same leading term thousands of times.
        """
        if not self._codes:
            raise SymbolicError("zero polynomial has no leading term")
        cache = self._lt_cache
        if cache is None:
            cache = self._lt_cache = {}
        exps = cache.get(order)
        if exps is None:
            # Select directly on packed codes (arranged onto the order's
            # precedence frame) so the full terms dict is never
            # materialized just to find one leading monomial.
            n = len(self._variables)
            frame = order.frame(self._variables)
            ckey = order.code_key(n)
            if frame == self._variables:
                best = max(self._codes) if ckey is None \
                    else max(self._codes, key=ckey)
                exps = unpack(best, n)
            else:
                table = remap_table(self._variables, frame)
                arranged = {remap(c, table): c for c in self._codes}
                best = max(arranged) if ckey is None \
                    else max(arranged, key=ckey)
                exps = unpack(arranged[best], n)
            cache[order] = exps
        return exps, _as_fraction(self._codes[pack(exps)])

    def leading_monomial(self, order: TermOrder = GREVLEX) -> "Polynomial":
        """The leading term as a (monic) polynomial."""
        exps, _ = self.leading_term(order)
        return Polynomial._from_codes(self._variables, {pack(exps): 1})

    def leading_coefficient(self, order: TermOrder = GREVLEX) -> Fraction:
        """Coefficient of the leading term."""
        return self.leading_term(order)[1]

    def monic(self, order: TermOrder = GREVLEX) -> "Polynomial":
        """Scale so the leading coefficient is 1."""
        if self.is_zero():
            return self
        return self / self.leading_coefficient(order)

    def sorted_terms(self, order: TermOrder = GREVLEX
                     ) -> list[tuple[tuple[int, ...], Fraction]]:
        """Terms sorted leading-first."""
        terms = self.terms
        exps_sorted = order.sorted_monomials(terms.keys(), self._variables)
        return [(e, terms[e]) for e in exps_sorted]

    # ------------------------------------------------------------------
    # Univariate views (used by Horner, factorization, GCD)
    # ------------------------------------------------------------------
    def coefficients_in(self, var: str) -> dict[int, "Polynomial"]:
        """View as a univariate polynomial in ``var``: power -> coefficient poly."""
        if var not in self._variables:
            return {0: self} if not self.is_zero() else {}
        i = self._variables.index(var)
        shift = self._field_shift(i)
        rest = tuple(v for j, v in enumerate(self._variables) if j != i)
        low_mask = (1 << shift) - 1
        buckets: dict[int, dict[int, _Coeff]] = {}
        for code, coeff in self._codes.items():
            power = (code >> shift) & MASK
            rest_code = ((code >> (shift + SHIFT)) << shift) | (code & low_mask)
            buckets.setdefault(power, {})[rest_code] = coeff
        return {p: Polynomial._from_codes(rest, t) for p, t in buckets.items()}

    @staticmethod
    def from_univariate(coeffs: Mapping[int, "Polynomial"], var: str) -> "Polynomial":
        """Inverse of :meth:`coefficients_in`."""
        x = Polynomial.variable(var)
        result = Polynomial.zero()
        for power, coeff in coeffs.items():
            result = result + coeff * x ** power
        return result

    def content(self) -> Fraction:
        """Rational content: gcd of numerators over lcm of denominators.

        Sign convention: the content carries the sign of the leading
        (grevlex) coefficient, so the primitive part has positive
        leading coefficient.
        """
        if self.is_zero():
            return Fraction(0)
        from math import gcd, lcm
        g = 0
        m = 1
        for c in self._codes.values():
            g = gcd(g, abs(c.numerator))
            m = lcm(m, c.denominator)
        magnitude = Fraction(g, m)
        sign = 1 if self.leading_coefficient(GREVLEX) > 0 else -1
        return magnitude * sign

    def primitive_part(self) -> "Polynomial":
        """``self / self.content()`` (integer coefficients, positive leading)."""
        if self.is_zero():
            return self
        return self / self.content()

    # ------------------------------------------------------------------
    # Numeric comparison (library matching tolerance)
    # ------------------------------------------------------------------
    def max_coefficient_distance(self, other: "Polynomial") -> float:
        """Max absolute difference between aligned coefficients.

        This is the metric behind the paper's "within an acceptable
        tolerance of the polynomial representation of a library
        element".
        """
        _, a, b = self._aligned(other)
        if not a and not b:
            return 0.0
        worst = 0.0
        for code, coeff in a.items():
            delta = abs(float(coeff) - float(b.get(code, 0)))
            if delta > worst:
                worst = delta
        for code, coeff in b.items():
            if code not in a:
                delta = abs(float(coeff))
                if delta > worst:
                    worst = delta
        return worst

    def almost_equal(self, other: "Polynomial", tolerance: float = 1e-9) -> bool:
        """True iff all aligned coefficients differ by at most ``tolerance``."""
        return self.max_coefficient_distance(other) <= tolerance

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        """Pickle only the canonical core: ``(variables, codes)``.

        The lazy caches (hash, decoded terms, per-order leading terms,
        degree) are deliberately dropped — they rebuild on demand — so
        pickles are small, stable across sessions, and never carry
        per-process artifacts.  This is the serialization contract the
        batch-mapping engine and the on-disk cache tier rely on.
        """
        return (self._variables, self._codes)

    def __setstate__(self, state: tuple) -> None:
        variables, codes = state
        self._variables = tuple(variables)
        self._codes = dict(codes)
        self._hash = None
        self._terms_cache = None
        self._lt_cache = None
        self._degree_cache = None

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._variables == other._variables and self._codes == other._codes

    def __hash__(self) -> int:
        # int and denominator-1 Fraction coefficients hash identically,
        # so mixed representations cannot split equal polynomials.
        if self._hash is None:
            self._hash = hash((self._variables, frozenset(self._codes.items())))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._codes)

    def __str__(self) -> str:
        if not self._codes:
            return "0"
        parts: list[tuple[str, str]] = []
        for exps, coeff in self.sorted_terms(GREVLEX):
            factors = []
            for var, e in zip(self._variables, exps):
                if e == 1:
                    factors.append(var)
                elif e > 1:
                    factors.append(f"{var}^{e}")
            mag = abs(coeff)
            if not factors:
                body = str(mag)
            elif mag == 1:
                body = "*".join(factors)
            else:
                body = "*".join([str(mag)] + factors)
            sign = "-" if coeff < 0 else "+"
            parts.append((sign, body))
        first_sign, first_body = parts[0]
        text = ("-" if first_sign == "-" else "") + first_body
        for sign, body in parts[1:]:
            text += f" {sign} {body}"
        return text

    def __repr__(self) -> str:
        return f"Polynomial({str(self)!r})"


def _coerce(value: Union[Polynomial, Scalar]) -> Polynomial:
    """Coerce scalars to polynomials; NotImplemented for foreign types."""
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float, Fraction, Rational)):
        return Polynomial.constant(value)
    return NotImplemented


def symbols(names: str) -> tuple[Polynomial, ...]:
    """Create variable polynomials from a space- or comma-separated string.

    >>> x, y = symbols("x y")
    >>> (x + y).total_degree()
    1
    """
    parts = [n for chunk in names.replace(",", " ").split() for n in [chunk] if n]
    if not parts:
        raise SymbolicError(f"no variable names in {names!r}")
    return tuple(Polynomial.variable(n) for n in parts)
