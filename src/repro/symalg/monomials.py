"""Packed integer monomial encodings — the symalg speed substrate.

A monomial over an ordered variable frame ``(v0, .., v_{n-1})`` is
encoded as a single Python int: ``SHIFT``-bit exponent fields packed
big-endian (``v0`` in the most significant field).  The encoding turns
the three monomial operations the division and Groebner layers hammer
into integer arithmetic:

* **multiply** — ``code_a + code_b`` (fields add without carries while
  every exponent stays below the guard bit);
* **exact divide** — ``code_b - code_a`` once divisibility is known;
* **divisibility** — the *guard-bit trick*: with a mask holding the top
  bit of every field, ``a`` divides ``b`` iff
  ``((b | guard) - a) & guard == guard``.  Borrowing ``2**(SHIFT-1)``
  into each field makes every per-field subtraction self-contained, so
  a cleared guard bit pinpoints a field where ``b``'s exponent was
  smaller.

Packing big-endian means that for a *lex* order whose precedence equals
the frame order, monomial comparison is plain int comparison — no key
function at all.  :meth:`repro.symalg.ordering.TermOrder.code_key`
exploits this.

Exponents must stay below ``MAX_EXPONENT`` (:class:`Polynomial`
enforces this at construction; products may grow fields up to the guard
bit at ``2**(SHIFT-1)``).  Doctest smoke:

>>> code = pack((2, 0, 1))
>>> unpack(code, 3)
(2, 0, 1)
>>> degree(code)
3
>>> divides(pack((1, 0, 1)), code, guard_mask(3))
True
>>> divides(pack((0, 1, 0)), code, guard_mask(3))
False
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

__all__ = [
    "SHIFT", "MASK", "MAX_EXPONENT",
    "pack", "unpack", "degree", "guard_mask", "divides", "lcm", "coprime",
    "remap_table", "remap",
]

#: Bits per exponent field.  32 bits keeps even 32-variable frames
#: (the polyphase matrixing block) at a 1024-bit int — still fast —
#: while leaving enormous exponent headroom.
SHIFT = 32

#: Mask of one exponent field.
MASK = (1 << SHIFT) - 1

#: Construction-time exponent ceiling.  Far below the ``2**(SHIFT-1)``
#: guard bit so that products of realistic chains never overflow a field.
MAX_EXPONENT = 1 << 20


def pack(exps: Sequence[int]) -> int:
    """Pack an exponent tuple into one int (first variable most significant)."""
    code = 0
    for e in exps:
        code = (code << SHIFT) | e
    return code


def unpack(code: int, n: int) -> tuple[int, ...]:
    """Inverse of :func:`pack` for an ``n``-variable frame."""
    return tuple((code >> (SHIFT * (n - 1 - i))) & MASK for i in range(n))


def degree(code: int) -> int:
    """Total degree: the sum of all exponent fields."""
    total = 0
    while code:
        total += code & MASK
        code >>= SHIFT
    return total


@lru_cache(maxsize=256)
def guard_mask(n: int) -> int:
    """The guard bits (top bit of each field) for an ``n``-variable frame."""
    mask = 0
    for i in range(n):
        mask |= 1 << (SHIFT * i + SHIFT - 1)
    return mask


def divides(a: int, b: int, guard: int) -> bool:
    """True iff monomial ``a`` divides monomial ``b`` (same frame).

    ``guard`` must be ``guard_mask(n)`` for the shared frame.  The
    quotient monomial, when this returns True, is simply ``b - a``.
    """
    return ((b | guard) - a) & guard == guard


def lcm(a: int, b: int) -> int:
    """Least common multiple: the per-field maximum of two codes."""
    out = 0
    shift = 0
    while a or b:
        fa = a & MASK
        fb = b & MASK
        out |= (fa if fa >= fb else fb) << shift
        a >>= SHIFT
        b >>= SHIFT
        shift += SHIFT
    return out


def coprime(a: int, b: int) -> bool:
    """True iff the two monomials share no variable."""
    while a and b:
        if (a & MASK) and (b & MASK):
            return False
        a >>= SHIFT
        b >>= SHIFT
    return True


@lru_cache(maxsize=4096)
def remap_table(src: tuple[str, ...], dst: tuple[str, ...]
                ) -> tuple[tuple[int, int], ...]:
    """Field-shift pairs that move codes from frame ``src`` into ``dst``.

    ``dst`` must contain every variable of ``src`` (in any order).
    Memoized: polynomial operations re-align the same variable frames
    over and over.
    """
    dst_index = {name: i for i, name in enumerate(dst)}
    n_src = len(src)
    n_dst = len(dst)
    table = []
    for i, name in enumerate(src):
        src_shift = SHIFT * (n_src - 1 - i)
        dst_shift = SHIFT * (n_dst - 1 - dst_index[name])
        table.append((src_shift, dst_shift))
    return tuple(table)


def remap(code: int, table: tuple[tuple[int, int], ...]) -> int:
    """Apply a :func:`remap_table` to one code."""
    out = 0
    for src_shift, dst_shift in table:
        field = (code >> src_shift) & MASK
        if field:
            out |= field << dst_shift
    return out
