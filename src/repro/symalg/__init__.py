"""``repro.symalg`` — the from-scratch symbolic algebra engine.

This package plays the role Maple V played in the paper: sparse exact
multivariate polynomials, term orders, multivariate division, Groebner
bases, simplification modulo side relations, Horner forms,
factorization, series approximation, and expression trees.

Quick tour:

>>> from repro.symalg import symbols, simplify_modulo
>>> x, y = symbols("x y")
>>> s = x + x**3 * y**2 - 2 * x * y**3
>>> str(simplify_modulo(s, {"p": x**2 - 2*y}, ["x", "y", "p"]))
'p*x*y^2 + x'
"""

from repro.symalg.division import DivisionResult, divide, exact_divide, reduce
from repro.symalg.expression import (Add, Call, Const, Expression, Mul,
                                     OpCount, Pow, Var, const, flatten,
                                     to_source, var)
from repro.symalg.factor import Factorization, factor, square_free_decomposition
from repro.symalg.gcdtools import polynomial_gcd, polynomial_lcm
from repro.symalg.groebner import groebner_basis, is_groebner_basis, s_polynomial
from repro.symalg.horner import horner, horner_op_count
from repro.symalg.ideal import (SideRelation, eliminate, ideal_membership,
                                normal_form, simplify_modulo)
from repro.symalg.ordering import GREVLEX, GRLEX, LEX, TermOrder
from repro.symalg.parser import parse_expression, parse_polynomial
from repro.symalg.polynomial import Polynomial, symbols
from repro.symalg.series import (SUPPORTED_TAYLOR, approximation_error,
                                 chebyshev_fit, taylor)
from repro.symalg.treeheight import reduce_tree_height

__all__ = [
    "Polynomial", "symbols",
    "TermOrder", "LEX", "GRLEX", "GREVLEX",
    "divide", "reduce", "exact_divide", "DivisionResult",
    "groebner_basis", "is_groebner_basis", "s_polynomial",
    "SideRelation", "simplify_modulo", "normal_form", "ideal_membership",
    "eliminate",
    "polynomial_gcd", "polynomial_lcm",
    "factor", "square_free_decomposition", "Factorization",
    "horner", "horner_op_count",
    "taylor", "chebyshev_fit", "approximation_error", "SUPPORTED_TAYLOR",
    "Expression", "Const", "Var", "Add", "Mul", "Pow", "Call", "OpCount",
    "const", "var", "flatten", "to_source",
    "parse_expression", "parse_polynomial",
    "reduce_tree_height",
]
