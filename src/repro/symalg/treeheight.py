"""Tree-height reduction of expression trees.

One of the manipulations Table 2 of the paper applies to the target
expression (`"The algorithm also applies tree-height reduction,
factorization, substitution, expansion, and Horner-based transform"`).
Left-associated chains like ``((((a+b)+c)+d)+e)`` are rebalanced into
log-depth binary trees, which both exposes instruction-level
parallelism on the target and produces a differently-shaped candidate
for the side-relation selection heuristics.

Balancing never changes the multiset of leaves of an Add/Mul chain, so
the value is preserved exactly (rational arithmetic is associative and
commutative here).
"""

from __future__ import annotations

from repro.symalg.expression import (Add, Call, Expression, Mul, Pow,
                                     flatten)

__all__ = ["reduce_tree_height"]


def reduce_tree_height(expr: Expression) -> Expression:
    """Rebalance Add/Mul chains into minimum-height binary trees.

    >>> from repro.symalg.expression import var
    >>> a, b, c, d = (var(n) for n in "abcd")
    >>> chain = ((a + b) + c) + d
    >>> chain.depth()
    3
    >>> reduce_tree_height(chain).depth()
    2
    """
    expr = flatten(expr)
    return _balance(expr)


def _balance(expr: Expression) -> Expression:
    if isinstance(expr, (Add, Mul)):
        args = [_balance(a) for a in expr.args]
        return _build_balanced(type(expr), args)
    if isinstance(expr, Pow):
        return Pow(_balance(expr.base), expr.exponent)
    if isinstance(expr, Call):
        return Call(expr.function, tuple(_balance(a) for a in expr.args))
    return expr


def _build_balanced(node_type, args: list[Expression]) -> Expression:
    """Pairwise combine until one node remains (log-depth)."""
    if len(args) == 1:
        return args[0]
    while len(args) > 1:
        paired: list[Expression] = []
        for i in range(0, len(args) - 1, 2):
            paired.append(node_type((args[i], args[i + 1])))
        if len(args) % 2:
            paired.append(args[-1])
        args = paired
    return args[0]
