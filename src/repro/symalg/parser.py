"""A small expression parser: text -> expression tree -> polynomial.

Grammar (recursive descent)::

    expr    :=  term (("+" | "-") term)*
    term    :=  unary (("*" | "/") unary)*
    unary   :=  "-" unary | power
    power   :=  atom (("^" | "**") integer)?
    atom    :=  NUMBER | NAME | NAME "(" expr ("," expr)* ")" | "(" expr ")"

Numbers may be integers, decimals (parsed exactly as rationals), or
rationals written as divisions of integers.  Division is only allowed
when the divisor folds to a nonzero constant — this is a polynomial
front end, not a rational-function engine.

Used throughout the library for library-element polynomial
specifications and in tests to transcribe the paper's Maple snippets.
"""

from __future__ import annotations

import re
from decimal import Decimal
from fractions import Fraction

from repro.errors import ParseError
from repro.symalg.expression import (Add, Call, Const, Expression, Mul, Pow,
                                     Var, flatten)
from repro.symalg.polynomial import Polynomial

__all__ = ["parse_expression", "parse_polynomial"]

_TOKEN_RE = re.compile(r"""
    (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\*\*|[-+*/^(),])
  | (?P<ws>\s+)
""", re.VERBOSE)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at column {pos} in {text!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("end", ""))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        kind, text = self.peek()
        if text != value:
            raise ParseError(f"expected {value!r}, found {text or 'end of input'!r} in {self.text!r}")
        self.advance()

    def parse(self) -> Expression:
        expr = self.expr()
        kind, text = self.peek()
        if kind != "end":
            raise ParseError(f"trailing input {text!r} in {self.text!r}")
        return expr

    def expr(self) -> Expression:
        node = self.term()
        while self.peek()[1] in ("+", "-"):
            op = self.advance()[1]
            right = self.term()
            if op == "+":
                node = Add((node, right))
            else:
                node = Add((node, Mul((Const(Fraction(-1)), right))))
        return node

    def term(self) -> Expression:
        node = self.unary()
        while self.peek()[1] in ("*", "/"):
            op = self.advance()[1]
            right = self.unary()
            if op == "*":
                node = Mul((node, right))
            else:
                folded = flatten(right)
                if not isinstance(folded, Const):
                    raise ParseError(
                        f"division by non-constant {right} in {self.text!r}")
                if folded.value == 0:
                    raise ParseError(f"division by zero in {self.text!r}")
                node = Mul((node, Const(1 / folded.value)))
        return node

    def unary(self) -> Expression:
        if self.peek()[1] == "-":
            self.advance()
            return Mul((Const(Fraction(-1)), self.unary()))
        if self.peek()[1] == "+":
            self.advance()
            return self.unary()
        return self.power()

    def power(self) -> Expression:
        base = self.atom()
        if self.peek()[1] in ("^", "**"):
            self.advance()
            if self.peek()[1] == "-":
                raise ParseError(f"negative exponents are not polynomial in {self.text!r}")
            kind, text = self.advance()
            if kind != "number" or "." in text:
                raise ParseError(f"exponent must be a nonnegative integer in {self.text!r}")
            return Pow(base, int(text))
        return base

    def atom(self) -> Expression:
        kind, text = self.advance()
        if kind == "number":
            if "." in text:
                dec = Decimal(text)
                return Const(Fraction(dec))
            return Const(Fraction(int(text)))
        if kind == "name":
            if self.peek()[1] == "(":
                self.advance()
                args = [self.expr()]
                while self.peek()[1] == ",":
                    self.advance()
                    args.append(self.expr())
                self.expect(")")
                return Call(text, tuple(args))
            return Var(text)
        if text == "(":
            node = self.expr()
            self.expect(")")
            return node
        raise ParseError(f"unexpected {text or 'end of input'!r} in {self.text!r}")


def parse_expression(text: str) -> Expression:
    """Parse ``text`` into an expression tree (flattened).

    >>> str(parse_expression("exp(x) + 2*x"))
    '(exp(x) + 2 * x)'
    """
    return flatten(_Parser(text).parse())


def parse_polynomial(text: str) -> Polynomial:
    """Parse ``text`` directly into a polynomial (no Call nodes allowed).

    >>> parse_polynomial("(x+1)*(x-1)")
    Polynomial('x^2 - 1')
    """
    return parse_expression(text).to_polynomial()
