"""Expression trees: the operational view of arithmetic code.

The symbolic engine has two representations:

* :class:`~repro.symalg.polynomial.Polynomial` — canonical, for algebra
  (Groebner, factor, matching);
* :class:`Expression` — structural, for *code*: it preserves operation
  order and sharing decisions, so it can be costed (operation counts)
  and emitted back as source.

The frontend lowers target code into expressions; ``to_polynomial``
canonicalizes them for the mapping search; Horner and tree-height
reduction return new expressions whose operation counts feed the
platform cost model.

Nonlinear calls (``exp``, ``log``...) appear as :class:`Call` nodes.
``to_polynomial`` either rejects them (strict mode) or substitutes a
polynomial approximation supplied by the caller — the paper's
Taylor/Chebyshev step.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping, Union

from repro.errors import SymbolicError
from repro.symalg.polynomial import Polynomial, Scalar

__all__ = ["Expression", "Const", "Var", "Add", "Mul", "Pow", "Call",
           "OpCount", "const", "var", "flatten", "to_source"]


@dataclass(frozen=True)
class OpCount:
    """Operation counts of an expression tree (the cost-model currency)."""

    adds: int = 0
    muls: int = 0
    divs: int = 0
    calls: int = 0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(self.adds + other.adds, self.muls + other.muls,
                       self.divs + other.divs, self.calls + other.calls)

    def total(self) -> int:
        """Total number of arithmetic operations."""
        return self.adds + self.muls + self.divs + self.calls


class Expression:
    """Abstract base of expression-tree nodes (immutable)."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, Union[float, Fraction]],
                 functions: Mapping[str, Callable] | None = None):
        """Numerically evaluate; ``functions`` supplies Call semantics."""
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        """Immediate sub-expressions."""
        raise NotImplementedError

    def to_polynomial(self,
                      approximations: Mapping[str, Polynomial] | None = None
                      ) -> Polynomial:
        """Canonicalize to a polynomial.

        ``approximations`` maps a function name to a univariate
        polynomial in the reserved variable ``_arg`` which is substituted
        for each call (the Taylor/Chebyshev step); without an entry a
        :class:`Call` raises :class:`~repro.errors.SymbolicError`.
        """
        raise NotImplementedError

    def op_count(self) -> OpCount:
        """Count arithmetic operations as written (no re-association)."""
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 0)."""
        kids = self.children()
        if not kids:
            return 0
        return 1 + max(child.depth() for child in kids)

    def free_variables(self) -> frozenset[str]:
        """All variable names appearing in the tree."""
        out: set[str] = set()
        stack: list[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                out.add(node.name)
            stack.extend(node.children())
        return frozenset(out)

    # Operator sugar so expressions compose naturally.
    def __add__(self, other): return Add((self, _as_expr(other)))
    def __radd__(self, other): return Add((_as_expr(other), self))
    def __sub__(self, other): return Add((self, Mul((Const(Fraction(-1)), _as_expr(other)))))
    def __rsub__(self, other): return Add((_as_expr(other), Mul((Const(Fraction(-1)), self))))
    def __mul__(self, other): return Mul((self, _as_expr(other)))
    def __rmul__(self, other): return Mul((_as_expr(other), self))
    def __neg__(self): return Mul((Const(Fraction(-1)), self))

    def __pow__(self, exponent: int):
        if not isinstance(exponent, int) or exponent < 0:
            raise SymbolicError("expression exponent must be a nonnegative int")
        return Pow(self, exponent)


def _as_expr(value) -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float, Fraction)):
        return Const(Fraction(value))
    raise SymbolicError(f"cannot use {value!r} in an expression")


@dataclass(frozen=True)
class Const(Expression):
    """A rational constant leaf."""

    value: Fraction

    def evaluate(self, env, functions=None):
        return self.value

    def children(self):
        return ()

    def to_polynomial(self, approximations=None):
        return Polynomial.constant(self.value)

    def op_count(self):
        return OpCount()

    def __str__(self):
        return to_source(self)


@dataclass(frozen=True)
class Var(Expression):
    """A variable leaf."""

    name: str

    def evaluate(self, env, functions=None):
        if self.name not in env:
            raise SymbolicError(f"no value bound for variable {self.name!r}")
        return env[self.name]

    def children(self):
        return ()

    def to_polynomial(self, approximations=None):
        return Polynomial.variable(self.name)

    def op_count(self):
        return OpCount()

    def __str__(self):
        return to_source(self)


@dataclass(frozen=True)
class Add(Expression):
    """An n-ary sum (n >= 1); written left-associated when costed."""

    args: tuple[Expression, ...]

    def __post_init__(self):
        if not self.args:
            raise SymbolicError("Add needs at least one argument")

    def evaluate(self, env, functions=None):
        total = self.args[0].evaluate(env, functions)
        for arg in self.args[1:]:
            total = total + arg.evaluate(env, functions)
        return total

    def children(self):
        return self.args

    def to_polynomial(self, approximations=None):
        total = Polynomial.zero()
        for arg in self.args:
            total = total + arg.to_polynomial(approximations)
        return total

    def op_count(self):
        count = OpCount(adds=len(self.args) - 1)
        for arg in self.args:
            count = count + arg.op_count()
        return count

    def __str__(self):
        return to_source(self)


@dataclass(frozen=True)
class Mul(Expression):
    """An n-ary product (n >= 1)."""

    args: tuple[Expression, ...]

    def __post_init__(self):
        if not self.args:
            raise SymbolicError("Mul needs at least one argument")

    def evaluate(self, env, functions=None):
        total = self.args[0].evaluate(env, functions)
        for arg in self.args[1:]:
            total = total * arg.evaluate(env, functions)
        return total

    def children(self):
        return self.args

    def to_polynomial(self, approximations=None):
        total = Polynomial.one()
        for arg in self.args:
            total = total * arg.to_polynomial(approximations)
        return total

    def op_count(self):
        count = OpCount(muls=len(self.args) - 1)
        for arg in self.args:
            count = count + arg.op_count()
        return count

    def __str__(self):
        return to_source(self)


@dataclass(frozen=True)
class Pow(Expression):
    """Integer power ``base ** exponent`` (exponent >= 0)."""

    base: Expression
    exponent: int

    def evaluate(self, env, functions=None):
        return self.base.evaluate(env, functions) ** self.exponent

    def children(self):
        return (self.base,)

    def to_polynomial(self, approximations=None):
        return self.base.to_polynomial(approximations) ** self.exponent

    def op_count(self):
        # Costed as repeated multiplication (exponent - 1 muls), the way
        # a compiler without a pow intrinsic would emit it.
        muls = max(self.exponent - 1, 0)
        return OpCount(muls=muls) + self.base.op_count()

    def __str__(self):
        return to_source(self)


@dataclass(frozen=True)
class Call(Expression):
    """A call to a named (nonlinear) function, e.g. ``exp(x)``."""

    function: str
    args: tuple[Expression, ...]

    def evaluate(self, env, functions=None):
        if functions is None or self.function not in functions:
            raise SymbolicError(f"no implementation bound for function {self.function!r}")
        values = [arg.evaluate(env, functions) for arg in self.args]
        return functions[self.function](*values)

    def children(self):
        return self.args

    def to_polynomial(self, approximations=None):
        if approximations is None or self.function not in approximations:
            raise SymbolicError(
                f"cannot polynomialize call to {self.function!r} without an approximation")
        if len(self.args) != 1:
            raise SymbolicError(
                f"approximation substitution supports unary calls, got {len(self.args)}")
        series = approximations[self.function]
        inner = self.args[0].to_polynomial(approximations)
        if series.variables and series.variables != ("_arg",):
            raise SymbolicError(
                f"approximation for {self.function!r} must use the variable '_arg'")
        return series.substitute({"_arg": inner})

    def op_count(self):
        count = OpCount(calls=1)
        for arg in self.args:
            count = count + arg.op_count()
        return count

    def __str__(self):
        return to_source(self)


def to_source(expr: Expression) -> str:
    """Render an expression as minimally-parenthesized infix source.

    Uses ``^`` for powers (the Maple convention used throughout the
    paper); the code rewriter converts to the target language's idiom.
    """
    return _format(expr, 0)


_PREC_ADD = 1
_PREC_MUL = 2
_PREC_POW = 3
_PREC_ATOM = 4


def _format(expr: Expression, parent_prec: int) -> str:
    if isinstance(expr, Const):
        if expr.value.denominator == 1:
            text = str(expr.value.numerator)
        else:
            text = f"{expr.value.numerator}/{expr.value.denominator}"
        needs_parens = (expr.value < 0 or expr.value.denominator != 1) and parent_prec > _PREC_ADD
        return f"({text})" if needs_parens else text
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Add):
        parts = [_format(arg, _PREC_ADD + 1) for arg in expr.args]
        body = parts[0]
        for part in parts[1:]:
            if part.startswith("-"):
                body += f" - {part[1:]}"
            else:
                body += f" + {part}"
        return f"({body})" if parent_prec > _PREC_ADD else body
    if isinstance(expr, Mul):
        # Hoist a leading -1 into a prefix minus.
        args = list(expr.args)
        prefix = ""
        if args and isinstance(args[0], Const) and args[0].value == -1 and len(args) > 1:
            prefix = "-"
            args = args[1:]
        body = prefix + " * ".join(_format(arg, _PREC_MUL + 1) for arg in args)
        return f"({body})" if parent_prec > _PREC_MUL else body
    if isinstance(expr, Pow):
        base = _format(expr.base, _PREC_POW + 1)
        text = f"{base}^{expr.exponent}"
        return f"({text})" if parent_prec > _PREC_POW else text
    if isinstance(expr, Call):
        inner = ", ".join(_format(arg, 0) for arg in expr.args)
        return f"{expr.function}({inner})"
    raise SymbolicError(f"unknown expression node {type(expr).__name__}")


def const(value: Scalar) -> Const:
    """Constant-node helper."""
    return Const(Fraction(value))


def var(name: str) -> Var:
    """Variable-node helper."""
    return Var(name)


def flatten(expr: Expression) -> Expression:
    """Flatten nested Add-of-Add and Mul-of-Mul and fold constants.

    Keeps the tree small and makes operation counts honest (no
    double-counted parentheses).  Pure structural simplification — no
    algebraic rewriting beyond constant folding and identity removal.
    """
    if isinstance(expr, Add):
        args: list[Expression] = []
        constant = Fraction(0)
        pending = list(expr.args)
        while pending:
            arg = flatten(pending.pop(0))
            if isinstance(arg, Add):
                pending = list(arg.args) + pending
            elif isinstance(arg, Const):
                constant += arg.value
            else:
                args.append(arg)
        if constant != 0 or not args:
            args.append(Const(constant))
        return args[0] if len(args) == 1 else Add(tuple(args))
    if isinstance(expr, Mul):
        args = []
        constant = Fraction(1)
        pending = list(expr.args)
        while pending:
            arg = flatten(pending.pop(0))
            if isinstance(arg, Mul):
                pending = list(arg.args) + pending
            elif isinstance(arg, Const):
                constant *= arg.value
            else:
                args.append(arg)
        if constant == 0:
            return Const(Fraction(0))
        if constant != 1 or not args:
            args.insert(0, Const(constant))
        return args[0] if len(args) == 1 else Mul(tuple(args))
    if isinstance(expr, Pow):
        base = flatten(expr.base)
        if expr.exponent == 0:
            return Const(Fraction(1))
        if expr.exponent == 1:
            return base
        if isinstance(base, Const):
            return Const(base.value ** expr.exponent)
        return Pow(base, expr.exponent)
    if isinstance(expr, Call):
        return Call(expr.function, tuple(flatten(a) for a in expr.args))
    return expr
