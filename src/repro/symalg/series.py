"""Polynomial approximation of nonlinear functions.

Section 3.2 of the paper: "When a section of the procedure implements a
nonlinear function, we use an approximation, such as the Taylor or
Chebyshev series expansion, as its polynomial representation."

Two constructions are provided:

* :func:`taylor` — exact rational Maclaurin/Taylor coefficients for the
  standard embedded-math functions (``exp``, ``log1p``, ``sin``, ...);
* :func:`chebyshev_fit` — numeric Chebyshev interpolation of an
  arbitrary callable on an interval, the standard way real fixed-point
  math libraries (e.g. Crenshaw's toolkit, ref. [14]) derive their
  kernels.  Coefficients are floats converted exactly to rationals.

All results are univariate polynomials in a caller-chosen variable
(default ``_arg``, the name :meth:`Expression.to_polynomial` substitutes
call arguments into).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable

import numpy as np

from repro.errors import SymbolicError
from repro.symalg.polynomial import Polynomial

__all__ = ["taylor", "chebyshev_fit", "approximation_error",
           "SUPPORTED_TAYLOR"]


def _maclaurin_exp(n: int) -> Fraction:
    return Fraction(1, math.factorial(n))


def _maclaurin_log1p(n: int) -> Fraction:
    if n == 0:
        return Fraction(0)
    return Fraction((-1) ** (n + 1), n)


def _maclaurin_sin(n: int) -> Fraction:
    if n % 2 == 0:
        return Fraction(0)
    return Fraction((-1) ** ((n - 1) // 2), math.factorial(n))


def _maclaurin_cos(n: int) -> Fraction:
    if n % 2 == 1:
        return Fraction(0)
    return Fraction((-1) ** (n // 2), math.factorial(n))


def _maclaurin_sinh(n: int) -> Fraction:
    if n % 2 == 0:
        return Fraction(0)
    return Fraction(1, math.factorial(n))


def _maclaurin_cosh(n: int) -> Fraction:
    if n % 2 == 1:
        return Fraction(0)
    return Fraction(1, math.factorial(n))


def _maclaurin_atan(n: int) -> Fraction:
    if n % 2 == 0:
        return Fraction(0)
    return Fraction((-1) ** ((n - 1) // 2), n)


def _binomial_coefficient(alpha: Fraction, n: int) -> Fraction:
    out = Fraction(1)
    for k in range(n):
        out *= (alpha - k)
    return out / math.factorial(n)


def _maclaurin_sqrt1p(n: int) -> Fraction:
    return _binomial_coefficient(Fraction(1, 2), n)


def _maclaurin_inv1p(n: int) -> Fraction:
    return Fraction((-1) ** n)


#: function name -> nth Maclaurin coefficient
_TAYLOR_TABLES: dict[str, Callable[[int], Fraction]] = {
    "exp": _maclaurin_exp,
    "log1p": _maclaurin_log1p,
    "sin": _maclaurin_sin,
    "cos": _maclaurin_cos,
    "sinh": _maclaurin_sinh,
    "cosh": _maclaurin_cosh,
    "atan": _maclaurin_atan,
    "sqrt1p": _maclaurin_sqrt1p,
    "inv1p": _maclaurin_inv1p,
}

#: Names :func:`taylor` accepts.
SUPPORTED_TAYLOR = tuple(sorted(_TAYLOR_TABLES))


def taylor(function: str, degree: int, variable: str = "_arg") -> Polynomial:
    """Exact Maclaurin polynomial of ``function`` up to ``degree``.

    ``log1p``, ``sqrt1p`` and ``inv1p`` are the shifted forms
    ``log(1+x)``, ``sqrt(1+x)``, ``1/(1+x)`` that embedded math kernels
    use after argument reduction.

    >>> taylor("exp", 3)
    Polynomial('1/6*_arg^3 + 1/2*_arg^2 + _arg + 1')
    """
    if function not in _TAYLOR_TABLES:
        raise SymbolicError(
            f"no Taylor table for {function!r}; supported: {SUPPORTED_TAYLOR}")
    if degree < 0:
        raise SymbolicError("degree must be nonnegative")
    table = _TAYLOR_TABLES[function]
    terms = {(n,): table(n) for n in range(degree + 1)}
    return Polynomial((variable,), terms)


def chebyshev_fit(func: Callable[[float], float], lower: float, upper: float,
                  degree: int, variable: str = "_arg") -> Polynomial:
    """Chebyshev interpolation of ``func`` on ``[lower, upper]``.

    Interpolates at the ``degree + 1`` Chebyshev nodes and re-expands in
    the monomial basis — near-minimax behaviour without the Remez
    machinery, which is how practical fixed-point kernels are derived.
    """
    if not lower < upper:
        raise SymbolicError(f"bad interval [{lower}, {upper}]")
    if degree < 0:
        raise SymbolicError("degree must be nonnegative")
    n = degree + 1
    k = np.arange(n)
    nodes = np.cos((2 * k + 1) * np.pi / (2 * n))
    scaled = 0.5 * (upper - lower) * nodes + 0.5 * (upper + lower)
    values = np.array([func(float(x)) for x in scaled])
    cheb = np.polynomial.chebyshev.Chebyshev.fit(scaled, values, degree,
                                                 domain=[lower, upper])
    mono = cheb.convert(kind=np.polynomial.Polynomial)
    terms = {(i,): Fraction(float(c)) for i, c in enumerate(mono.coef)}
    return Polynomial((variable,), terms)


def approximation_error(poly: Polynomial, func: Callable[[float], float],
                        lower: float, upper: float, samples: int = 256) -> float:
    """Max absolute error of ``poly`` against ``func`` on a sample grid."""
    if len(poly.variables) > 1:
        raise SymbolicError("approximation_error expects a univariate polynomial")
    variable = poly.variables[0] if poly.variables else "_arg"
    xs = np.linspace(lower, upper, samples)
    worst = 0.0
    for x in xs:
        approx = float(poly.evaluate({variable: float(x)}))
        worst = max(worst, abs(approx - func(float(x))))
    return worst
