"""Monomial (term) orders for multivariate polynomials.

A term order decides which monomial is the *leading* one, which drives
the multivariate division algorithm and Buchberger's algorithm.  Three
classic orders are provided:

* ``lex`` — pure lexicographic.  Used for variable elimination: with
  precedence ``[x, y, p]`` every reduction prefers to rewrite ``x`` and
  ``y`` away in favour of ``p``, which is exactly what the paper's
  ``simplify(S, {p = ...}, [x, y, p])`` Maple call does.
* ``grlex`` — graded lexicographic (total degree, ties by lex).
* ``grevlex`` — graded reverse lexicographic; usually the fastest order
  for Groebner bases.

An order is attached to a *precedence*: a tuple of variable names from
most to least significant.  Variables a polynomial uses that are absent
from the precedence are appended (sorted by name) at the end, so a
partial precedence like ``("x",)`` is legal.

Performance contract
--------------------
Key functions are *memoized*: :meth:`TermOrder.sort_key`,
:meth:`TermOrder.arrangement` and :meth:`TermOrder.frame` cache per
``(order, variables)`` pair, and :meth:`TermOrder.code_key` caches the
packed-code comparators the division layer runs on.  ``TermOrder`` is a
frozen (hashable) dataclass precisely so these caches can key on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from repro.symalg.monomials import MASK, SHIFT

__all__ = ["TermOrder", "LEX", "GRLEX", "GREVLEX"]

_KINDS = ("lex", "grlex", "grevlex")


@dataclass(frozen=True)
class TermOrder:
    """A monomial order: a comparison kind plus a variable precedence.

    Parameters
    ----------
    kind:
        One of ``"lex"``, ``"grlex"``, ``"grevlex"``.
    precedence:
        Variable names from most significant to least significant.  May
        be empty, in which case variables compare in sorted-name order.

    >>> TermOrder("lex", ("y",)).frame(("x", "y"))
    ('y', 'x')
    """

    kind: str = "grevlex"
    precedence: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown term order kind {self.kind!r}; expected one of {_KINDS}")
        if len(set(self.precedence)) != len(self.precedence):
            raise ValueError(f"duplicate variable in precedence {self.precedence!r}")

    def with_precedence(self, precedence: Iterable[str]) -> "TermOrder":
        """Return a copy of this order using ``precedence``."""
        return TermOrder(self.kind, tuple(precedence))

    def arrangement(self, variables: Sequence[str]) -> tuple[int, ...]:
        """Indices that rearrange ``variables`` into precedence order.

        Variables named in :attr:`precedence` come first (in that
        order); remaining variables follow sorted by name.  Memoized.
        """
        return _arrangement(self.precedence, tuple(variables))

    def frame(self, variables: Sequence[str]) -> tuple[str, ...]:
        """``variables`` rearranged into precedence order (memoized).

        Packing exponents along this frame makes lex comparison under
        this order plain integer comparison of packed codes.
        """
        variables = tuple(variables)
        return tuple(variables[i] for i in _arrangement(self.precedence, variables))

    def sort_key(self, variables: Sequence[str]):
        """Return ``key(exponents) -> sortable`` for monomials over ``variables``.

        Larger key means larger monomial under this order.  The key
        function is memoized per ``(order, variables)`` — it is built
        once and applied to many exponent tuples.
        """
        return _sort_key(self.kind, self.precedence, tuple(variables))

    def code_key(self, n: int):
        """Comparator for *packed* codes over an ``n``-variable arranged frame.

        The frame must already be in precedence order (see
        :meth:`frame`).  Returns ``None`` for lex — packed codes then
        compare correctly as plain ints, so callers can skip the key
        function entirely — and a ``code -> sortable`` function for the
        graded orders.  Memoized.
        """
        return _code_key(self.kind, n)

    def max_monomial(self, exponents: Iterable[tuple[int, ...]],
                     variables: Sequence[str]) -> tuple[int, ...]:
        """Return the largest exponent tuple under this order."""
        key = self.sort_key(variables)
        return max(exponents, key=key)

    def sorted_monomials(self, exponents: Iterable[tuple[int, ...]],
                         variables: Sequence[str],
                         reverse: bool = True) -> list[tuple[int, ...]]:
        """Sort exponent tuples; by default descending (leading first)."""
        key = self.sort_key(variables)
        return sorted(exponents, key=key, reverse=reverse)


@lru_cache(maxsize=4096)
def _arrangement(precedence: tuple[str, ...],
                 variables: tuple[str, ...]) -> tuple[int, ...]:
    index_of = {name: i for i, name in enumerate(variables)}
    arranged: list[int] = []
    seen: set[str] = set()
    for name in precedence:
        if name in index_of:
            arranged.append(index_of[name])
            seen.add(name)
    for name in sorted(index_of):
        if name not in seen:
            arranged.append(index_of[name])
    return tuple(arranged)


@lru_cache(maxsize=4096)
def _sort_key(kind: str, precedence: tuple[str, ...],
              variables: tuple[str, ...]):
    arranged = _arrangement(precedence, variables)

    if kind == "lex":
        def key(exps: tuple[int, ...]):
            return tuple(exps[i] for i in arranged)
    elif kind == "grlex":
        def key(exps: tuple[int, ...]):
            return (sum(exps), tuple(exps[i] for i in arranged))
    else:  # grevlex
        def key(exps: tuple[int, ...]):
            return (sum(exps), tuple(-exps[i] for i in reversed(arranged)))
    return key


@lru_cache(maxsize=256)
def _code_key(kind: str, n: int):
    if kind == "lex":
        return None  # big-endian packing makes raw int order lex order

    if kind == "grlex":
        def key(code: int):
            total = 0
            c = code
            while c:
                total += c & MASK
                c >>= SHIFT
            return (total, code)
        return key

    # grevlex: total degree, ties by *smallest* exponent in the *least*
    # significant variable winning — fields from the LSB end, negated.
    def key(code: int):
        total = 0
        fields = []
        c = code
        for _ in range(n):
            f = c & MASK
            fields.append(-f)
            total += f
            c >>= SHIFT
        return (total, tuple(fields))
    return key


#: Ready-made orders with empty precedence (sorted-name tie-breaking).
LEX = TermOrder("lex")
GRLEX = TermOrder("grlex")
GREVLEX = TermOrder("grevlex")
