"""Monomial (term) orders for multivariate polynomials.

A term order decides which monomial is the *leading* one, which drives
the multivariate division algorithm and Buchberger's algorithm.  Three
classic orders are provided:

* ``lex`` — pure lexicographic.  Used for variable elimination: with
  precedence ``[x, y, p]`` every reduction prefers to rewrite ``x`` and
  ``y`` away in favour of ``p``, which is exactly what the paper's
  ``simplify(S, {p = ...}, [x, y, p])`` Maple call does.
* ``grlex`` — graded lexicographic (total degree, ties by lex).
* ``grevlex`` — graded reverse lexicographic; usually the fastest order
  for Groebner bases.

An order is attached to a *precedence*: a tuple of variable names from
most to least significant.  Variables a polynomial uses that are absent
from the precedence are appended (sorted by name) at the end, so a
partial precedence like ``("x",)`` is legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["TermOrder", "LEX", "GRLEX", "GREVLEX"]

_KINDS = ("lex", "grlex", "grevlex")


@dataclass(frozen=True)
class TermOrder:
    """A monomial order: a comparison kind plus a variable precedence.

    Parameters
    ----------
    kind:
        One of ``"lex"``, ``"grlex"``, ``"grevlex"``.
    precedence:
        Variable names from most significant to least significant.  May
        be empty, in which case variables compare in sorted-name order.
    """

    kind: str = "grevlex"
    precedence: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown term order kind {self.kind!r}; expected one of {_KINDS}")
        if len(set(self.precedence)) != len(self.precedence):
            raise ValueError(f"duplicate variable in precedence {self.precedence!r}")

    def with_precedence(self, precedence: Iterable[str]) -> "TermOrder":
        """Return a copy of this order using ``precedence``."""
        return TermOrder(self.kind, tuple(precedence))

    def arrangement(self, variables: Sequence[str]) -> tuple[int, ...]:
        """Indices that rearrange ``variables`` into precedence order.

        Variables named in :attr:`precedence` come first (in that
        order); remaining variables follow sorted by name.
        """
        index_of = {name: i for i, name in enumerate(variables)}
        arranged: list[int] = []
        seen: set[str] = set()
        for name in self.precedence:
            if name in index_of:
                arranged.append(index_of[name])
                seen.add(name)
        for name in sorted(index_of):
            if name not in seen:
                arranged.append(index_of[name])
        return tuple(arranged)

    def sort_key(self, variables: Sequence[str]):
        """Return ``key(exponents) -> sortable`` for monomials over ``variables``.

        Larger key means larger monomial under this order.  The key is
        built once per polynomial operation and applied to many
        exponent tuples, so it closes over the precomputed arrangement.
        """
        arranged = self.arrangement(variables)
        kind = self.kind

        if kind == "lex":
            def key(exps: tuple[int, ...]):
                return tuple(exps[i] for i in arranged)
        elif kind == "grlex":
            def key(exps: tuple[int, ...]):
                return (sum(exps), tuple(exps[i] for i in arranged))
        else:  # grevlex
            def key(exps: tuple[int, ...]):
                return (sum(exps), tuple(-exps[i] for i in reversed(arranged)))
        return key

    def max_monomial(self, exponents: Iterable[tuple[int, ...]],
                     variables: Sequence[str]) -> tuple[int, ...]:
        """Return the largest exponent tuple under this order."""
        key = self.sort_key(variables)
        return max(exponents, key=key)

    def sorted_monomials(self, exponents: Iterable[tuple[int, ...]],
                         variables: Sequence[str],
                         reverse: bool = True) -> list[tuple[int, ...]]:
        """Sort exponent tuples; by default descending (leading first)."""
        key = self.sort_key(variables)
        return sorted(exponents, key=key, reverse=reverse)


#: Ready-made orders with empty precedence (sorted-name tie-breaking).
LEX = TermOrder("lex")
GRLEX = TermOrder("grlex")
GREVLEX = TermOrder("grevlex")
