"""Buchberger's algorithm for Groebner bases.

The paper's core symbolic operation — *simplification modulo a set of
polynomials* — is normal-form reduction with respect to a Groebner
basis of the side-relation ideal.  This module computes reduced
Groebner bases with Buchberger's algorithm plus the two classic
pair-pruning criteria:

* the **product (first) criterion**: S-polynomials of pairs with
  coprime leading monomials reduce to zero and are skipped;
* the **chain (second) criterion**: a pair ``(i, j)`` is skipped when
  some ``k`` has ``LT(g_k)`` dividing ``lcm(LT(g_i), LT(g_j))`` and the
  pairs ``(i, k)`` and ``(j, k)`` were already handled.

Pair selection is pluggable (``selection=``): **normal selection**
processes pairs by ascending lcm total degree; **sugar selection**
(Giovini et al., "One sugar cube, please") orders by the *sugar
degree* — the degree the S-polynomial would have had if the inputs
were homogenized, a guard against the degree spikes normal selection
can hit on inhomogeneous ideals.  The reduced basis is canonical, so
both strategies return identical results; only the amount of
intermediate work differs.  The default
(:data:`DEFAULT_SELECTION`) was chosen by benchmarking both on the
paper's Table-2 side-relation ideals — see
``benchmarks/bench_groebner_selection.py`` and the note on the
constant.

Since the computation is worst-case doubly exponential, work limits
(basis size / pair count) guard against runaway instances and raise
:class:`~repro.errors.GroebnerExplosion`; the mapping search treats
that as a pruned branch.

Hot path
--------
The whole computation runs on *packed* monomial codes over one shared
variable frame (arranged into the order's precedence): basis elements
live as plain dicts, leading terms are computed once per element and
cached in a parallel list, S-pairs sit in a heap keyed by the total
degree of their lcm (normal selection), and S-polynomial construction
plus reduction reuse the packed division core — no intermediate
:class:`Polynomial` objects anywhere in the loop.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.errors import DivisionError, GroebnerExplosion
from repro.symalg.division import _coeff_div, _leading, _reduce_codes
from repro.symalg.monomials import coprime, degree, divides, guard_mask, lcm
from repro.symalg.ordering import GREVLEX, TermOrder
from repro.symalg.polynomial import Polynomial

__all__ = ["s_polynomial", "groebner_basis", "is_groebner_basis",
           "DEFAULT_MAX_BASIS", "DEFAULT_MAX_PAIRS", "DEFAULT_SELECTION"]

#: Default work limits, shared with the callers that memoize bases
#: (see :mod:`repro.symalg.ideal`) so cache keys stay consistent.
DEFAULT_MAX_BASIS = 200
DEFAULT_MAX_PAIRS = 5000

#: Default S-pair selection strategy, chosen by benchmarking both on
#: the Table-2 side-relation ideals plus heavier stress ideals
#: (``benchmarks/bench_groebner_selection.py``): on the side-relation
#: ideals the two are within noise (<2%), and on the inhomogeneous
#: degree-4 stress case normal selection wins by ~15%, so normal stays
#: the default.  Sugar remains available for workloads with the deep
#: inhomogeneous elimination chains it was designed for.
DEFAULT_SELECTION = "normal"

_SELECTIONS = ("normal", "sugar")


def s_polynomial(f: Polynomial, g: Polynomial,
                 order: TermOrder = GREVLEX) -> Polynomial:
    """The S-polynomial ``S(f, g)`` under ``order``.

    ``S(f,g) = (lcm/LT(f))*f - (lcm/LT(g))*g`` where ``lcm`` is the least
    common multiple of the two leading monomials; it cancels the leading
    terms against each other.

    >>> from repro.symalg.polynomial import symbols
    >>> x, y = symbols("x y")
    >>> str(s_polynomial(x**2 + y, x * y + 1))
    'y^2 - x'
    """
    union = tuple(sorted(set(f.variables) | set(g.variables)))
    frame = order.frame(union)
    key = order.code_key(len(frame))
    f_codes = f._codes_on(frame)
    g_codes = g._codes_on(frame)
    s = _s_poly_codes(f_codes, _leading(f_codes, key),
                      g_codes, _leading(g_codes, key),
                      guard_mask(len(frame)))
    return Polynomial._from_frame(frame, s)


def _s_poly_codes(f_codes: dict, f_lt: int, g_codes: dict, g_lt: int,
                  guard: int) -> dict:
    """Packed S-polynomial of two term dicts on a shared frame.

    ``guard`` is the frame's guard mask; a cofactor addition that sets a
    guard bit would corrupt a neighbouring exponent field and raises
    instead (same contract as the division core).
    """
    common = lcm(f_lt, g_lt)
    cof_f = common - f_lt
    cof_g = common - g_lt
    f_lc = f_codes[f_lt]
    g_lc = g_codes[g_lt]
    out: dict = {}
    for code, coeff in f_codes.items():
        k = code + cof_f
        if k & guard:
            raise GroebnerExplosion(
                "S-polynomial exponent overflowed the packed monomial range")
        out[k] = _coeff_div(coeff, f_lc)
    get = out.get
    for code, coeff in g_codes.items():
        k = code + cof_g
        if k & guard:
            raise GroebnerExplosion(
                "S-polynomial exponent overflowed the packed monomial range")
        v = get(k, 0) - _coeff_div(coeff, g_lc)
        if v:
            out[k] = v
        else:
            del out[k]
    return out


def _monic_codes(codes: dict, lt: int) -> dict:
    """Scale a packed term dict so the leading coefficient is 1."""
    lc = codes[lt]
    if lc == 1:
        return codes
    return {code: _coeff_div(coeff, lc) for code, coeff in codes.items()}


def groebner_basis(generators: Iterable[Polynomial],
                   order: TermOrder = GREVLEX,
                   *,
                   max_basis: int = DEFAULT_MAX_BASIS,
                   max_pairs: int = DEFAULT_MAX_PAIRS,
                   selection: str = DEFAULT_SELECTION) -> list[Polynomial]:
    """Compute the reduced Groebner basis of the ideal of ``generators``.

    The result is monic, inter-reduced, and sorted leading-term
    descending, hence canonical for the given order — independent of
    the ``selection`` strategy ("normal", the default, or "sugar"),
    which only decides the order S-pairs are processed in and thus how
    much intermediate work the computation does.

    >>> from repro.symalg.polynomial import symbols
    >>> x, y = symbols("x y")
    >>> [str(p) for p in groebner_basis([x**2 - y, y**2 - 1])]
    ['x^2 - y', 'y^2 - 1']

    Raises
    ------
    GroebnerExplosion
        If the basis grows beyond ``max_basis`` elements or more than
        ``max_pairs`` S-pairs are processed.
    """
    if selection not in _SELECTIONS:
        raise ValueError(f"unknown selection strategy {selection!r}; "
                         f"expected one of {_SELECTIONS}")
    use_sugar = selection == "sugar"
    gens = [g for g in generators if not g.is_zero()]
    if not gens:
        return []

    union = sorted({v for g in gens for v in g.variables})
    frame = order.frame(tuple(union))
    n = len(frame)
    guard = guard_mask(n)
    key = order.code_key(n)

    basis: list[dict] = []
    lts: list[int] = []
    #: Sugar degree per basis element: for an input generator, its true
    #: total degree; for a computed element, the sugar of the pair that
    #: produced it (the degree it would have under homogenization).
    sugars: list[int] = []
    # The division view of the basis, grown in lockstep with it.
    divisors: list[tuple[int, object, dict]] = []
    for g in gens:
        codes = g._codes_on(frame)
        lt = _leading(codes, key)
        monic = _monic_codes(codes, lt)
        basis.append(monic)
        lts.append(lt)
        sugars.append(max(degree(code) for code in codes))
        divisors.append((lt, 1, monic))

    # S-pairs in a heap.  Entry: (primary, secondary, i, j, pair_sugar).
    # Normal selection keys on the lcm's total degree; sugar selection
    # keys on the pair's sugar degree, tie-broken by lcm degree.
    pair_heap: list[tuple[int, int, int, int, int]] = []

    def push_pair(i: int, j: int) -> None:
        common = lcm(lts[i], lts[j])
        lcm_deg = degree(common)
        pair_sugar = max(sugars[i] + lcm_deg - degree(lts[i]),
                         sugars[j] + lcm_deg - degree(lts[j]))
        if use_sugar:
            entry = (pair_sugar, lcm_deg, i, j, pair_sugar)
        else:
            entry = (lcm_deg, 0, i, j, pair_sugar)
        heapq.heappush(pair_heap, entry)

    for i in range(len(basis)):
        for j in range(i):
            push_pair(i, j)
    done: set[tuple[int, int]] = set()
    processed = 0

    while pair_heap:
        processed += 1
        if processed > max_pairs:
            raise GroebnerExplosion(
                f"Buchberger exceeded {max_pairs} S-pairs")
        _, _, i, j, pair_sugar = heapq.heappop(pair_heap)
        done.add((i, j))

        if coprime(lts[i], lts[j]):
            continue  # product criterion
        if _chain_criterion(i, j, lts, guard, done):
            continue

        s_codes = _s_poly_codes(basis[i], lts[i], basis[j], lts[j], guard)
        try:
            remainder = _reduce_codes(s_codes, divisors, key, guard)
        except DivisionError as exc:
            # Runaway intermediate degrees are an explosion to callers
            # (the mapping search treats it as a pruned branch).
            raise GroebnerExplosion(str(exc)) from exc
        if not remainder:
            continue
        lt = _leading(remainder, key)
        monic = _monic_codes(remainder, lt)
        basis.append(monic)
        lts.append(lt)
        # Reduction cannot raise the homogenized degree: the pair's
        # sugar bounds the new element's (floored by its true degree).
        sugars.append(max(pair_sugar,
                          max(degree(code) for code in remainder)))
        divisors.append((lt, 1, monic))
        if len(basis) > max_basis:
            raise GroebnerExplosion(
                f"Groebner basis grew beyond {max_basis} elements")
        new_index = len(basis) - 1
        for k in range(new_index):
            push_pair(new_index, k)

    return _reduce_basis(basis, lts, frame, key, guard)


def _chain_criterion(i: int, j: int, lts: Sequence[int], guard: int,
                     done: set[tuple[int, int]]) -> bool:
    """Buchberger's second criterion for pair (i, j)."""
    lcm_ij = lcm(lts[i], lts[j])
    for k in range(len(lts)):
        if k in (i, j):
            continue
        if not divides(lts[k], lcm_ij, guard):
            continue
        pair_ik = (max(i, k), min(i, k))
        pair_jk = (max(j, k), min(j, k))
        if pair_ik in done and pair_jk in done:
            return True
    return False


def _reduce_basis(basis: list[dict], lts: list[int], frame: tuple[str, ...],
                  key, guard: int) -> list[Polynomial]:
    """Minimize then inter-reduce the basis (reduced Groebner basis)."""
    # Minimal: drop g whose leading term is divisible by another's.
    minimal: list[tuple[dict, int]] = []
    for i, (g, lt_g) in enumerate(zip(basis, lts)):
        dominated = False
        for j, lt_h in enumerate(lts):
            if i == j:
                continue
            if divides(lt_h, lt_g, guard) and not (lt_h == lt_g and j > i):
                dominated = True
                break
        if not dominated:
            minimal.append((g, lt_g))

    # Reduced: replace each element by its normal form modulo the others.
    reduced: list[tuple[dict, int]] = []
    for i, (g, _lt) in enumerate(minimal):
        others = [(lt, 1, codes) for k, (codes, lt) in enumerate(minimal)
                  if k != i]
        if others:
            g = _reduce_codes(dict(g), others, key, guard)
        if g:
            lt = _leading(g, key)
            reduced.append((_monic_codes(g, lt), lt))

    # Sorting leading-first makes the output deterministic.
    sort_key = key or (lambda code: code)
    reduced.sort(key=lambda item: sort_key(item[1]), reverse=True)
    return [Polynomial._from_frame(frame, dict(codes)) for codes, _ in reduced]


def is_groebner_basis(basis: Sequence[Polynomial],
                      order: TermOrder = GREVLEX) -> bool:
    """Check the Buchberger criterion: all S-polynomials reduce to zero."""
    from repro.symalg.division import reduce as nf_reduce
    basis = [g for g in basis if not g.is_zero()]
    for i in range(len(basis)):
        for j in range(i):
            s_poly = s_polynomial(basis[i], basis[j], order)
            if not nf_reduce(s_poly, basis, order).is_zero():
                return False
    return True
