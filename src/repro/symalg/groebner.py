"""Buchberger's algorithm for Groebner bases.

The paper's core symbolic operation — *simplification modulo a set of
polynomials* — is normal-form reduction with respect to a Groebner
basis of the side-relation ideal.  This module computes reduced
Groebner bases with Buchberger's algorithm plus the two classic
pair-pruning criteria:

* the **product (first) criterion**: S-polynomials of pairs with
  coprime leading monomials reduce to zero and are skipped;
* the **chain (second) criterion**: a pair ``(i, j)`` is skipped when
  some ``k`` has ``LT(g_k)`` dividing ``lcm(LT(g_i), LT(g_j))`` and the
  pairs ``(i, k)`` and ``(j, k)`` were already handled.

Since the computation is worst-case doubly exponential, work limits
(basis size / pair count) guard against runaway instances and raise
:class:`~repro.errors.GroebnerExplosion`; the mapping search treats
that as a pruned branch.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GroebnerExplosion
from repro.symalg.division import reduce as nf_reduce
from repro.symalg.ordering import GREVLEX, TermOrder
from repro.symalg.polynomial import Polynomial

__all__ = ["s_polynomial", "groebner_basis", "is_groebner_basis"]


def _lt_map(poly: Polynomial, order: TermOrder) -> dict[str, int]:
    exps, _ = poly.leading_term(order)
    return {v: e for v, e in zip(poly.variables, exps) if e}


def _lcm_map(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
    out = dict(a)
    for var, e in b.items():
        out[var] = max(out.get(var, 0), e)
    return out


def _divides(a: dict[str, int], b: dict[str, int]) -> bool:
    return all(b.get(var, 0) >= e for var, e in a.items())


def _coprime(a: dict[str, int], b: dict[str, int]) -> bool:
    return all(b.get(var, 0) == 0 for var in a)


def s_polynomial(f: Polynomial, g: Polynomial,
                 order: TermOrder = GREVLEX) -> Polynomial:
    """The S-polynomial ``S(f, g)`` under ``order``.

    ``S(f,g) = (lcm/LT(f))*f - (lcm/LT(g))*g`` where ``lcm`` is the least
    common multiple of the two leading monomials; it cancels the leading
    terms against each other.
    """
    f_exps, f_coeff = f.leading_term(order)
    g_exps, g_coeff = g.leading_term(order)
    f_lt = {v: e for v, e in zip(f.variables, f_exps) if e}
    g_lt = {v: e for v, e in zip(g.variables, g_exps) if e}
    lcm = _lcm_map(f_lt, g_lt)

    def cofactor(lt: dict[str, int]) -> Polynomial:
        powers = {v: lcm[v] - lt.get(v, 0) for v in lcm}
        powers = {v: e for v, e in powers.items() if e}
        return Polynomial.monomial(powers, 1)

    return cofactor(f_lt) * f / f_coeff - cofactor(g_lt) * g / g_coeff


def groebner_basis(generators: Iterable[Polynomial],
                   order: TermOrder = GREVLEX,
                   *,
                   max_basis: int = 200,
                   max_pairs: int = 5000) -> list[Polynomial]:
    """Compute the reduced Groebner basis of the ideal of ``generators``.

    The result is monic, inter-reduced, and sorted leading-term
    descending, hence canonical for the given order.

    Raises
    ------
    GroebnerExplosion
        If the basis grows beyond ``max_basis`` elements or more than
        ``max_pairs`` S-pairs are processed.
    """
    basis = [g for g in generators if not g.is_zero()]
    if not basis:
        return []
    basis = [g.monic(order) for g in basis]

    pairs = {(i, j) for i in range(len(basis)) for j in range(i)}
    done: set[tuple[int, int]] = set()
    processed = 0

    while pairs:
        processed += 1
        if processed > max_pairs:
            raise GroebnerExplosion(
                f"Buchberger exceeded {max_pairs} S-pairs")
        # Prefer pairs with the smallest lcm degree (normal selection).
        i, j = min(pairs, key=lambda ij: sum(
            _lcm_map(_lt_map(basis[ij[0]], order),
                     _lt_map(basis[ij[1]], order)).values()))
        pairs.discard((i, j))
        done.add((i, j))

        lt_i = _lt_map(basis[i], order)
        lt_j = _lt_map(basis[j], order)
        if _coprime(lt_i, lt_j):
            continue  # product criterion
        if _chain_criterion(i, j, basis, order, done):
            continue

        s_poly = s_polynomial(basis[i], basis[j], order)
        remainder = nf_reduce(s_poly, basis, order)
        if remainder.is_zero():
            continue
        remainder = remainder.monic(order)
        basis.append(remainder)
        if len(basis) > max_basis:
            raise GroebnerExplosion(
                f"Groebner basis grew beyond {max_basis} elements")
        new_index = len(basis) - 1
        pairs.update((new_index, k) for k in range(new_index))

    return _reduce_basis(basis, order)


def _chain_criterion(i: int, j: int, basis: Sequence[Polynomial],
                     order: TermOrder, done: set[tuple[int, int]]) -> bool:
    """Buchberger's second criterion for pair (i, j)."""
    lt_i = _lt_map(basis[i], order)
    lt_j = _lt_map(basis[j], order)
    lcm_ij = _lcm_map(lt_i, lt_j)
    for k in range(len(basis)):
        if k in (i, j):
            continue
        if not _divides(_lt_map(basis[k], order), lcm_ij):
            continue
        pair_ik = (max(i, k), min(i, k))
        pair_jk = (max(j, k), min(j, k))
        if pair_ik in done and pair_jk in done:
            return True
    return False


def _reduce_basis(basis: list[Polynomial], order: TermOrder) -> list[Polynomial]:
    """Minimize then inter-reduce the basis (reduced Groebner basis)."""
    # Minimal: drop g whose leading term is divisible by another's.
    minimal: list[Polynomial] = []
    for i, g in enumerate(basis):
        lt_g = _lt_map(g, order)
        dominated = False
        for j, h in enumerate(basis):
            if i == j:
                continue
            lt_h = _lt_map(h, order)
            if _divides(lt_h, lt_g) and not (lt_h == lt_g and j > i):
                dominated = True
                break
        if not dominated:
            minimal.append(g)

    # Reduced: replace each element by its normal form modulo the others.
    reduced: list[Polynomial] = []
    for i, g in enumerate(minimal):
        others = minimal[:i] + minimal[i + 1:]
        if others:
            g = nf_reduce(g, others, order)
        if not g.is_zero():
            reduced.append(g.monic(order))

    def lead_key(p: Polynomial):
        exps, _ = p.leading_term(order)
        return order.sort_key(p.variables)(exps)

    # Sorting leading-first makes the output deterministic.  Keys from
    # different variable sets are not directly comparable, so sort on a
    # common variable frame.
    frame = tuple(sorted({v for p in reduced for v in p.variables}))

    def framed_key(p: Polynomial):
        exps, _ = p.leading_term(order)
        full = {v: e for v, e in zip(p.variables, exps)}
        framed = tuple(full.get(v, 0) for v in frame)
        return order.sort_key(frame)(framed)

    reduced.sort(key=framed_key, reverse=True)
    return reduced


def is_groebner_basis(basis: Sequence[Polynomial],
                      order: TermOrder = GREVLEX) -> bool:
    """Check the Buchberger criterion: all S-polynomials reduce to zero."""
    basis = [g for g in basis if not g.is_zero()]
    for i in range(len(basis)):
        for j in range(i):
            s_poly = s_polynomial(basis[i], basis[j], order)
            if not nf_reduce(s_poly, basis, order).is_zero():
                return False
    return True
