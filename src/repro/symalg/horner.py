"""Horner (nested) form of multivariate polynomials.

The paper uses Horner transforms both as a candidate-generation
manipulation and to cost residual polynomial code after mapping: the
Horner form of a polynomial evaluates with the minimal number of
multiplications among nesting schemes over a fixed variable order.

The multivariate algorithm follows Maple's ``convert(S, 'horner',
[x, y])``: collect by powers of the first variable, recursively Horner
each coefficient in the remaining variables, then nest:

    S = y^2*x + y*x^2 + 4*x*y + x^2 + 2*x
    convert(S, 'horner', [x, y])  =  (2 + (4 + y)*y + (y + 1)*x)*x
"""

from __future__ import annotations

from typing import Sequence

from repro.symalg.expression import (Add, Const, Expression, Mul, OpCount,
                                     Var, flatten)
from repro.symalg.polynomial import Polynomial

__all__ = ["horner", "horner_op_count"]


def horner(poly: Polynomial, variable_order: Sequence[str] | None = None
           ) -> Expression:
    """Return the nested (Horner) expression of ``poly``.

    ``variable_order`` selects nesting priority; variables not listed
    are appended sorted by name.  The returned expression evaluates to
    the same function as ``poly``.

    >>> from repro.symalg.parser import parse_polynomial
    >>> s = parse_polynomial("y^2*x + y*x^2 + 4*x*y + x^2 + 2*x")
    >>> str(horner(s, ["x", "y"]))
    '((y + 1) * x + (y + 4) * y + 2) * x'

    (Term order aside, this is Maple's ``(2+(4+y)*y+(y+1)*x)*x``.)
    """
    order = _full_order(poly, variable_order)
    return flatten(_horner(poly, order))


def horner_op_count(poly: Polynomial,
                    variable_order: Sequence[str] | None = None) -> OpCount:
    """Operation count of the Horner form (cost-model input)."""
    return horner(poly, variable_order).op_count()


def _full_order(poly: Polynomial, variable_order: Sequence[str] | None
                ) -> list[str]:
    listed = list(variable_order) if variable_order else []
    rest = sorted(set(poly.variables) - set(listed))
    return [v for v in listed if v in poly.variables] + rest


def _horner(poly: Polynomial, order: list[str]) -> Expression:
    if poly.is_constant():
        return Const(poly.constant_value())
    if not order:
        raise AssertionError("variable order exhausted before polynomial became constant")
    var_name, *rest = order
    coeffs = poly.coefficients_in(var_name)
    max_power = max(coeffs)
    if max_power == 0:
        return _horner(poly, rest)

    # Nest from the highest power down:  (((c_n) x + c_{n-1}) x + ...)
    # skipping absent powers by multiplying with x^gap (costed as
    # repeated multiplication, like the emitted code would be).
    x = Var(var_name)
    powers = sorted(coeffs, reverse=True)
    acc: Expression | None = None
    previous_power = None
    for power in powers:
        coeff_expr = _horner(coeffs[power], _full_order(coeffs[power], rest))
        if acc is None:
            acc = coeff_expr
        else:
            gap = previous_power - power
            acc = Add((Mul((acc, _power(x, gap))), coeff_expr))
        previous_power = power
    if previous_power:
        acc = Mul((acc, _power(x, previous_power)))
    return acc


def _power(base: Expression, exponent: int) -> Expression:
    if exponent == 1:
        return base
    return Mul(tuple([base] * exponent))
