"""Multivariate polynomial division with remainder.

Implements the generalized division algorithm (Cox-Little-O'Shea ch. 2):
given ``f`` and an ordered list of divisors ``g_1..g_s`` and a term
order, produce quotients ``q_i`` and a remainder ``r`` with

    f = q_1*g_1 + ... + q_s*g_s + r

such that no term of ``r`` is divisible by any leading term ``LT(g_i)``.
When the divisors form a Groebner basis, ``r`` is the unique *normal
form* of ``f`` modulo the ideal — the operation the paper calls
``simplify`` modulo a set of side relations.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import DivisionError
from repro.symalg.ordering import GREVLEX, TermOrder
from repro.symalg.polynomial import Polynomial

__all__ = ["divide", "reduce", "exact_divide", "DivisionResult"]


class DivisionResult:
    """Quotients and remainder of a multivariate division.

    Attributes
    ----------
    quotients:
        One quotient polynomial per divisor, in divisor order.
    remainder:
        The remainder; no term is divisible by any divisor's leading term.
    """

    __slots__ = ("quotients", "remainder")

    def __init__(self, quotients: list[Polynomial], remainder: Polynomial):
        self.quotients = quotients
        self.remainder = remainder

    def reconstruct(self, divisors: Sequence[Polynomial]) -> Polynomial:
        """Return ``sum(q_i * g_i) + r`` (should equal the dividend)."""
        total = self.remainder
        for q, g in zip(self.quotients, divisors):
            total = total + q * g
        return total


def _monomial_divides(a: dict[str, int], b: dict[str, int]) -> bool:
    """True iff monomial ``a`` divides monomial ``b`` (var->exp maps)."""
    return all(b.get(var, 0) >= e for var, e in a.items())


def _term_as_map(poly: Polynomial, exps: tuple[int, ...]) -> dict[str, int]:
    return {v: e for v, e in zip(poly.variables, exps) if e}


def _quotient_monomial(num: dict[str, int], den: dict[str, int],
                       coeff: Fraction) -> Polynomial:
    powers = dict(num)
    for var, e in den.items():
        powers[var] = powers.get(var, 0) - e
    powers = {v: e for v, e in powers.items() if e}
    return Polynomial.monomial(powers, coeff)


def divide(dividend: Polynomial, divisors: Sequence[Polynomial],
           order: TermOrder = GREVLEX) -> DivisionResult:
    """Divide ``dividend`` by the ordered list ``divisors`` under ``order``.

    Raises :class:`~repro.errors.DivisionError` if any divisor is zero.

    >>> from repro.symalg.polynomial import symbols
    >>> x, y = symbols("x y")
    >>> res = divide(x**2 * y + x * y**2 + y**2, [x * y - 1, y**2 - 1])
    >>> str(res.remainder)
    'x + y + 1'
    """
    if any(g.is_zero() for g in divisors):
        raise DivisionError("cannot divide by the zero polynomial")

    leading = []
    for g in divisors:
        exps, coeff = g.leading_term(order)
        leading.append((_term_as_map(g, exps), coeff))

    quotients = [Polynomial.zero() for _ in divisors]
    remainder = Polynomial.zero()
    p = dividend

    while not p.is_zero():
        exps, coeff = p.leading_term(order)
        lt_map = _term_as_map(p, exps)
        for i, (g_lt, g_coeff) in enumerate(leading):
            if _monomial_divides(g_lt, lt_map):
                factor = _quotient_monomial(lt_map, g_lt, coeff / g_coeff)
                quotients[i] = quotients[i] + factor
                p = p - factor * divisors[i]
                break
        else:
            term = Polynomial.monomial(lt_map, coeff)
            remainder = remainder + term
            p = p - term
    return DivisionResult(quotients, remainder)


def reduce(poly: Polynomial, divisors: Sequence[Polynomial],
           order: TermOrder = GREVLEX) -> Polynomial:
    """Normal form: the remainder of :func:`divide` (drops the quotients)."""
    if not divisors:
        return poly
    return divide(poly, divisors, order).remainder


def exact_divide(dividend: Polynomial, divisor: Polynomial,
                 order: TermOrder = GREVLEX) -> Polynomial:
    """Exact division; raises if ``divisor`` does not divide ``dividend``.

    Used by content/primitive-part computations in the GCD and
    factorization layers, where divisibility is known in advance.
    """
    result = divide(dividend, [divisor], order)
    if not result.remainder.is_zero():
        raise DivisionError(f"{divisor} does not exactly divide {dividend}")
    return result.quotients[0]
