"""Multivariate polynomial division with remainder.

Implements the generalized division algorithm (Cox-Little-O'Shea ch. 2):
given ``f`` and an ordered list of divisors ``g_1..g_s`` and a term
order, produce quotients ``q_i`` and a remainder ``r`` with

    f = q_1*g_1 + ... + q_s*g_s + r

such that no term of ``r`` is divisible by any leading term ``LT(g_i)``.
When the divisors form a Groebner basis, ``r`` is the unique *normal
form* of ``f`` modulo the ideal — the operation the paper calls
``simplify`` modulo a set of side relations.

Hot path
--------
The loop never allocates intermediate :class:`Polynomial` objects.  All
inputs are re-packed once onto a shared *frame* (the union of their
variables, arranged into the term order's precedence), after which every
step is packed-int monomial arithmetic on plain dicts: leading-term
selection by (at worst) a memoized key function — for lex orders packed
codes compare as raw ints — divisibility by the guard-bit trick, and
coefficient updates that stay machine-``int`` until a denominator
appears.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import DivisionError
from repro.symalg.monomials import guard_mask
from repro.symalg.ordering import GREVLEX, TermOrder
from repro.symalg.polynomial import Polynomial

__all__ = ["divide", "reduce", "exact_divide", "DivisionResult"]


class DivisionResult:
    """Quotients and remainder of a multivariate division.

    Attributes
    ----------
    quotients:
        One quotient polynomial per divisor, in divisor order.
    remainder:
        The remainder; no term is divisible by any divisor's leading term.
    """

    __slots__ = ("quotients", "remainder")

    def __init__(self, quotients: list[Polynomial], remainder: Polynomial):
        self.quotients = quotients
        self.remainder = remainder

    def reconstruct(self, divisors: Sequence[Polynomial]) -> Polynomial:
        """Return ``sum(q_i * g_i) + r`` (should equal the dividend)."""
        total = self.remainder
        for q, g in zip(self.quotients, divisors):
            total = total + q * g
        return total


def _coeff_div(a, b):
    """Exact coefficient quotient ``a / b`` on the int-fast-path types."""
    if type(a) is int and type(b) is int:
        q, r = divmod(a, b)
        return q if r == 0 else Fraction(a, b)
    q = a / b
    return q.numerator if q.denominator == 1 else q


def _division_frame(dividend: Polynomial, divisors: Sequence[Polynomial],
                    order: TermOrder) -> tuple[tuple[str, ...], int, object]:
    """Shared arranged frame, guard mask and code key for one division."""
    union = set(dividend.variables)
    for g in divisors:
        union.update(g.variables)
    frame = order.frame(tuple(sorted(union)))
    return frame, guard_mask(len(frame)), order.code_key(len(frame))


def _leading(codes: dict, key) -> int:
    """Leading monomial code of a nonzero packed term dict."""
    return max(codes) if key is None else max(codes, key=key)


def _prepare_divisors(divisors: Sequence[Polynomial],
                      frame: tuple[str, ...], key) -> list[tuple[int, object, dict]]:
    """``(lt_code, lt_coeff, codes)`` per divisor, on the shared frame."""
    prepared = []
    for g in divisors:
        codes = g._codes_on(frame)
        lt = _leading(codes, key)
        prepared.append((lt, codes[lt], codes))
    return prepared


def _reduce_codes(p: dict, divisors: list[tuple[int, object, dict]],
                  key, guard: int, quotients: list[dict] | None = None) -> dict:
    """Core division loop on packed dicts.  Consumes ``p``; returns remainder.

    ``divisors`` entries are ``(lt_code, lt_coeff, codes)`` on the same
    frame as ``p``.  When ``quotients`` is given (one dict per divisor),
    quotient monomials are accumulated into it.
    """
    remainder: dict = {}
    while p:
        lead = _leading(p, key)
        coeff = p[lead]
        lead_guarded = lead | guard
        for i, (g_lt, g_coeff, g_codes) in enumerate(divisors):
            shifted = lead_guarded - g_lt
            if shifted & guard == guard:
                q_code = shifted ^ guard        # == lead - g_lt, fieldwise
                q_coeff = _coeff_div(coeff, g_coeff)
                if quotients is not None:
                    q = quotients[i]
                    q[q_code] = q.get(q_code, 0) + q_coeff
                get = p.get
                for code, value in g_codes.items():
                    k = q_code + code
                    # Guard-clean inputs keep every field below 2^31, so
                    # a set guard bit here pinpoints the first addition
                    # that would silently corrupt a neighbouring field
                    # (possible under non-graded orders, where reduction
                    # can grow intermediate degrees without bound).
                    if k & guard:
                        raise DivisionError(
                            "intermediate exponent overflowed the packed "
                            "monomial range during reduction")
                    v = get(k, 0) - q_coeff * value
                    if v:
                        p[k] = v
                    else:
                        p.pop(k, None)
                break
        else:
            remainder[lead] = coeff
            del p[lead]
    return remainder


def divide(dividend: Polynomial, divisors: Sequence[Polynomial],
           order: TermOrder = GREVLEX) -> DivisionResult:
    """Divide ``dividend`` by the ordered list ``divisors`` under ``order``.

    Raises :class:`~repro.errors.DivisionError` if any divisor is zero.

    >>> from repro.symalg.polynomial import symbols
    >>> x, y = symbols("x y")
    >>> res = divide(x**2 * y + x * y**2 + y**2, [x * y - 1, y**2 - 1])
    >>> str(res.remainder)
    'x + y + 1'
    """
    if any(g.is_zero() for g in divisors):
        raise DivisionError("cannot divide by the zero polynomial")

    frame, guard, key = _division_frame(dividend, divisors, order)
    prepared = _prepare_divisors(divisors, frame, key)
    p = dict(dividend._codes_on(frame))
    quotient_codes: list[dict] = [{} for _ in divisors]
    remainder = _reduce_codes(p, prepared, key, guard, quotient_codes)
    return DivisionResult(
        [Polynomial._from_frame(frame, q) for q in quotient_codes],
        Polynomial._from_frame(frame, remainder))


def reduce(poly: Polynomial, divisors: Sequence[Polynomial],
           order: TermOrder = GREVLEX) -> Polynomial:
    """Normal form: the remainder of :func:`divide` (drops the quotients).

    >>> from repro.symalg.polynomial import symbols
    >>> x, y = symbols("x y")
    >>> str(reduce(x**2 * y, [x * y - 1]))
    'x'
    """
    if not divisors:
        return poly
    if any(g.is_zero() for g in divisors):
        raise DivisionError("cannot divide by the zero polynomial")
    frame, guard, key = _division_frame(poly, divisors, order)
    prepared = _prepare_divisors(divisors, frame, key)
    p = dict(poly._codes_on(frame))
    remainder = _reduce_codes(p, prepared, key, guard)
    return Polynomial._from_frame(frame, remainder)


def exact_divide(dividend: Polynomial, divisor: Polynomial,
                 order: TermOrder = GREVLEX) -> Polynomial:
    """Exact division; raises if ``divisor`` does not divide ``dividend``.

    Used by content/primitive-part computations in the GCD and
    factorization layers, where divisibility is known in advance.
    """
    result = divide(dividend, [divisor], order)
    if not result.remainder.is_zero():
        raise DivisionError(f"{divisor} does not exactly divide {dividend}")
    return result.quotients[0]
