"""Polynomial GCD over the rationals (univariate and multivariate).

The factorization and square-free routines need GCDs.  We implement the
classic primitive polynomial-remainder-sequence (PRS) algorithm:

* univariate GCD by the Euclidean algorithm on monic remainders;
* multivariate GCD recursively: view both inputs as univariate in a
  main variable with polynomial coefficients, split off contents
  (which are GCDs in one fewer variable), and run a primitive PRS with
  pseudo-division.

GCDs over a field are defined up to a unit; we normalize results to be
primitive with positive leading (grevlex) coefficient, except that the
GCD of the rational contents is folded back in so that
``gcd(6x, 4x) == 2x`` matches integer intuition.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import gcd as int_gcd
from math import lcm as int_lcm

from repro.errors import SymbolicError
from repro.symalg.division import exact_divide
from repro.symalg.ordering import TermOrder
from repro.symalg.polynomial import Polynomial

__all__ = ["polynomial_gcd", "polynomial_lcm", "content_in", "primitive_in",
           "pseudo_remainder", "clear_gcd_caches"]

_LEX = TermOrder("lex")


def clear_gcd_caches() -> None:
    """Drop the memoized GCD results (mainly for benchmarks/tests)."""
    _cached_gcd.cache_clear()


def _fraction_gcd(a: Fraction, b: Fraction) -> Fraction:
    """GCD of two rationals: gcd of numerators over lcm of denominators."""
    if a == 0:
        return abs(b)
    if b == 0:
        return abs(a)
    num = int_gcd(abs(a.numerator), abs(b.numerator))
    den = int_lcm(a.denominator, b.denominator)
    return Fraction(num, den)


def pseudo_remainder(dividend: Polynomial, divisor: Polynomial,
                     var: str) -> Polynomial:
    """Pseudo-remainder of ``dividend`` by ``divisor`` w.r.t. ``var``.

    Multiplies the dividend by ``lc(divisor)^(deg f - deg g + 1)`` so the
    division needs no coefficient fractions; the result is ``prem(f, g)``
    with ``deg_var(prem) < deg_var(g)``.
    """
    deg_f = dividend.degree_in(var)
    deg_g = divisor.degree_in(var)
    if deg_g < 0:
        raise SymbolicError("pseudo-division by zero polynomial")
    if deg_f < deg_g:
        return dividend
    g_coeffs = divisor.coefficients_in(var)
    lead_g = g_coeffs[deg_g]
    x = Polynomial.variable(var)

    remainder = dividend * lead_g ** (deg_f - deg_g + 1)
    while not remainder.is_zero() and remainder.degree_in(var) >= deg_g:
        deg_r = remainder.degree_in(var)
        lead_r = remainder.coefficients_in(var).get(deg_r, Polynomial.zero())
        # lead_g divides lead_r by construction of the pre-multiplication.
        factor = exact_divide(lead_r, lead_g, _LEX) * x ** (deg_r - deg_g)
        remainder = remainder - factor * divisor
    return remainder


def content_in(poly: Polynomial, var: str) -> Polynomial:
    """Content of ``poly`` seen as univariate in ``var``.

    The GCD of its coefficient polynomials (which live in the other
    variables).  For a univariate polynomial this is its rational
    content as a constant polynomial.
    """
    if poly.is_zero():
        return Polynomial.zero()
    coeffs = list(poly.coefficients_in(var).values())
    result = coeffs[0]
    for c in coeffs[1:]:
        result = polynomial_gcd(result, c)
        if result.is_constant() and result.constant_value() == 1:
            break
    return result


def primitive_in(poly: Polynomial, var: str) -> Polynomial:
    """``poly`` divided by its content in ``var``."""
    if poly.is_zero():
        return poly
    cont = content_in(poly, var)
    return exact_divide(poly, cont, _LEX)


def polynomial_gcd(a: Polynomial, b: Polynomial) -> Polynomial:
    """GCD of two polynomials over Q, normalized primitive-positive.

    Memoized: the square-free and factorization layers recompute GCDs
    of the same (immutable) pairs, and the candidate generator calls
    them once per search node.

    >>> from repro.symalg.polynomial import symbols
    >>> x, y = symbols("x y")
    >>> polynomial_gcd((x + y) * (x - y), (x + y) ** 2)
    Polynomial('x + y')
    """
    return _cached_gcd(a, b)


@lru_cache(maxsize=4096)
def _cached_gcd(a: Polynomial, b: Polynomial) -> Polynomial:
    if a.is_zero():
        return _normalize(b)
    if b.is_zero():
        return _normalize(a)
    if a.is_constant() or b.is_constant():
        return Polynomial.constant(_fraction_gcd(a.content(), b.content()))

    rational_content = _fraction_gcd(a.content(), b.content())
    a = a.primitive_part()
    b = b.primitive_part()

    shared = set(a.variables) & set(b.variables)
    if not shared:
        # No common variable: gcd of primitive parts is a constant.
        return Polynomial.constant(rational_content)

    var = sorted(shared)[0]
    # Contents w.r.t. the main variable live in fewer variables.
    cont_a = content_in(a, var)
    cont_b = content_in(b, var)
    cont_gcd = polynomial_gcd(cont_a, cont_b)
    f = exact_divide(a, cont_a, _LEX)
    g = exact_divide(b, cont_b, _LEX)

    if f.degree_in(var) < g.degree_in(var):
        f, g = g, f
    while not g.is_zero():
        rem = pseudo_remainder(f, g, var)
        f = g
        if rem.is_zero():
            g = rem
        else:
            # Primitive PRS: strip content each step to stop coefficient blowup.
            g = primitive_in(rem, var) if rem.degree_in(var) >= 0 else rem
            if g.degree_in(var) == 0 and not g.is_constant():
                g = g.primitive_part()
    result = _normalize(f)
    if result.degree_in(var) == 0 and not result.is_constant():
        # PRS terminated in a polynomial free of the main variable: the
        # univariate parts are coprime.
        result = Polynomial.one()
    if result.is_constant():
        result = Polynomial.one()
    return _normalize(result * cont_gcd) * rational_content


def polynomial_lcm(a: Polynomial, b: Polynomial) -> Polynomial:
    """Least common multiple: ``a*b / gcd(a, b)`` (zero if either is zero)."""
    if a.is_zero() or b.is_zero():
        return Polynomial.zero()
    g = polynomial_gcd(a, b)
    return _normalize(exact_divide(a * b, g, _LEX))


def _normalize(poly: Polynomial) -> Polynomial:
    """Primitive part with positive leading coefficient."""
    if poly.is_zero():
        return poly
    return poly.primitive_part()
