"""``repro.api`` — the public session facade.

One typed entry point for the whole methodology: build a
:class:`MappingSession` (optionally from an explicit, immutable
:class:`SessionConfig`) and call ``map`` / ``pareto`` / ``batch`` /
``sweep`` / ``flow`` on it.  Sessions own all cross-cutting state —
cache tiers, worker fan-out, platform registry, request defaults — so
two sessions with different cache directories coexist in one process,
and every frontend (library use, the ``python -m repro`` CLI, the
batch engine, the HTTP service) shares this one surface.

The wire format is defined here too: :class:`MapResult` /
:class:`ParetoResult` render the exact canonical JSON the HTTP service
serves, so answers from any surface can be compared byte-for-byte.

>>> from repro.api import MappingSession
>>> session = MappingSession()
>>> "SA-1110" in session.platforms()
True
"""

from repro.api.catalog import ResourceCatalog
from repro.api.config import SessionConfig
from repro.api.session import MappingSession, default_session
from repro.api.types import (
    DEFAULT_LIBRARY,
    DEFAULT_PLATFORM,
    DEFAULT_WORKLOAD,
    LIBRARY_TAGS,
    MapRequest,
    MapResult,
    ParetoResult,
    SweepRequest,
    VerifyResult,
    canonical_json,
)
from repro.mapping.batch import BatchItem, BatchReport
from repro.mapping.cache import CacheTiers
from repro.mapping.flow import SweepReport

__all__ = [
    "MappingSession",
    "SessionConfig",
    "default_session",
    "MapRequest",
    "MapResult",
    "ParetoResult",
    "SweepRequest",
    "VerifyResult",
    "SweepReport",
    "ResourceCatalog",
    "CacheTiers",
    "BatchItem",
    "BatchReport",
    "canonical_json",
    "LIBRARY_TAGS",
    "DEFAULT_LIBRARY",
    "DEFAULT_PLATFORM",
    "DEFAULT_WORKLOAD",
]
