"""Typed, immutable session configuration.

One frozen dataclass replaces the configuration triangle the first
four PRs grew — ``configure()`` module globals, ``REPRO_*`` environment
variables, and per-call keyword arguments — with a single precedence
rule, applied once, at construction:

    explicit ``SessionConfig`` field  >  environment  >  built-in default

``SessionConfig(...)`` is fully explicit: the environment is ignored.
``SessionConfig.from_env(...)`` reads the environment first and lets
keyword overrides win; it is what :class:`~repro.api.MappingSession`
builds when no config is passed, so a bare session behaves exactly
like the legacy module-level entry points.  The full precedence table
lives in ``docs/architecture.md`` ("Public API & sessions").

Recognized environment variables:

==================  ====================================================
``REPRO_CACHE_DIR``  directory of the persistent disk cache tier
``REPRO_NO_CACHE``   any non-empty value disables the disk tier
``REPRO_WORKERS``    default worker-process count for batch fan-out
==================  ====================================================
"""

from __future__ import annotations

import math
import os
from concurrent.futures import Executor
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.api.types import DEFAULT_LIBRARY, DEFAULT_PLATFORM
from repro.platform.registry import DEFAULT_REGISTRY, ProcessorRegistry
from repro.workload.registry import (
    DEFAULT_WORKLOAD,
    DEFAULT_WORKLOAD_REGISTRY,
    WorkloadRegistry,
)

__all__ = ["SessionConfig"]


@dataclass(frozen=True)
class SessionConfig:
    """Everything cross-cutting a :class:`~repro.api.MappingSession` owns.

    Immutable by design: a session's behaviour is fixed at construction
    and cannot drift under it mid-request.  Derive variants with
    :meth:`with_options` (or :func:`dataclasses.replace`).

    ``cache_dir``/``disk_cache`` govern the persistent tier;
    ``decompose_lru``/``map_block_lru`` size the session's in-memory
    caches; ``workers``/``executor`` configure batch fan-out
    (``executor`` wins when both are set — see
    :func:`~repro.mapping.batch.run_batch`); ``registry`` is the
    platform catalog requests resolve against and ``workloads`` the
    workload catalog block names resolve in; ``library``/
    ``platform``/``workload``/``tolerance``/``accuracy_budget`` are
    the request defaults ``session.map()`` and friends fall back to.
    """

    cache_dir: "str | os.PathLike[str] | None" = None
    disk_cache: bool = True
    decompose_lru: int = 512
    map_block_lru: int = 256
    workers: int | None = None
    executor: Executor | None = None
    registry: ProcessorRegistry = field(default=DEFAULT_REGISTRY, repr=False)
    workloads: WorkloadRegistry = field(default=DEFAULT_WORKLOAD_REGISTRY, repr=False)
    library: tuple[str, ...] = DEFAULT_LIBRARY
    platform: str = DEFAULT_PLATFORM
    workload: str = DEFAULT_WORKLOAD
    tolerance: float = 1e-6
    accuracy_budget: float = math.inf

    def __post_init__(self) -> None:
        if self.decompose_lru <= 0 or self.map_block_lru <= 0:
            raise ValueError(
                f"LRU sizes must be positive, got decompose_lru="
                f"{self.decompose_lru}, map_block_lru={self.map_block_lru}"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0 or None, got {self.workers}")
        if not self.library:
            raise ValueError("library must name at least one catalog tag")
        if not self.workload:
            raise ValueError("workload must be a non-empty registry key")
        if not (self.tolerance > 0):
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")
        # Tags arrive as any iterable of strings; store canonically.
        object.__setattr__(self, "library", tuple(self.library))

    @classmethod
    def from_env(
        cls, environ: "Mapping[str, str] | None" = None, **overrides
    ) -> "SessionConfig":
        """A config resolved as *explicit overrides > environment > defaults*.

        ``environ`` defaults to ``os.environ`` (injectable for tests).
        ``REPRO_NO_CACHE`` beats ``REPRO_CACHE_DIR`` within the
        environment layer, mirroring the legacy resolution order; an
        explicit ``disk_cache=True`` override beats both.
        """
        env = os.environ if environ is None else environ
        values: dict = {}
        cache_dir = env.get("REPRO_CACHE_DIR")
        if cache_dir:
            values["cache_dir"] = cache_dir
        if env.get("REPRO_NO_CACHE"):
            values["disk_cache"] = False
        workers = env.get("REPRO_WORKERS")
        if workers:
            try:
                values["workers"] = int(workers)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {workers!r}"
                ) from None
        values.update(overrides)
        return cls(**values)

    def with_options(self, **overrides) -> "SessionConfig":
        """A copy with ``overrides`` applied (the config itself is frozen)."""
        return replace(self, **overrides)

    @property
    def effective_cache_dir(self) -> "str | os.PathLike[str] | None":
        """The disk-tier directory after the off-switch: ``None`` when
        persistence is disabled or no directory is configured."""
        return self.cache_dir if self.disk_cache else None
