"""The session facade: one typed entry point for the whole methodology.

``MappingSession`` owns every piece of cross-cutting state the mapping
flow reads — cache tiers, worker fan-out, platform registry, request
defaults — behind an immutable :class:`~repro.api.SessionConfig`.  All
frontends share it: library code calls the methods directly, the CLI
(``python -m repro``) builds one per invocation, and the HTTP service
holds exactly one for its process lifetime.  Two sessions with
different cache directories coexist in one process with fully isolated
statistics, because each owns its
:class:`~repro.mapping.cache.CacheTiers`.

>>> from repro.api import MappingSession, SessionConfig
>>> session = MappingSession(SessionConfig())
>>> session.config.platform
'SA-1110'
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

from repro.api.catalog import ResourceCatalog
from repro.api.config import SessionConfig
from repro.api.types import MapRequest, MapResult, ParetoResult, VerifyResult
from repro.frontend.extract import TargetBlock
from repro.library.catalog import Library
from repro.mapping.batch import BatchItem, BatchReport, run_batch
from repro.mapping.cache import DEFAULT_TIERS, CacheTiers, clear_shared_caches
from repro.mapping.cache import shared_cache_stats as _shared_cache_stats
from repro.mapping.decompose import (
    DecomposeResult,
    _decompose_cached,
    _map_block_cached,
    _map_block_pareto_cached,
)
from repro.mapping.flow import MethodologyFlow, SweepReport
from repro.platform.badge4 import Badge4
from repro.symalg.polynomial import Polynomial

__all__ = ["MappingSession", "default_session"]


class MappingSession:
    """A scoped instance of the paper's characterize→identify→map flow.

    Parameters
    ----------
    config:
        The session's :class:`~repro.api.SessionConfig`.  ``None``
        resolves from the environment
        (:meth:`SessionConfig.from_env`), which makes a bare
        ``MappingSession()`` behave like the legacy module-level entry
        points.
    blocks:
        Optional pre-extracted target blocks for the catalog (tests
        and embedders inject cheap blocks; the service injects its
        shared catalog so extraction happens once per process).
    tiers:
        Optional pre-built cache tiers.  :func:`default_session` binds
        the process-wide default tiers here; ordinary sessions build
        private tiers from the config, which is what isolates them.

    Resource arguments throughout accept *names or live objects*: a
    block is a catalog name or a ``TargetBlock``; a library is a tag
    tuple, a ``"+"``-joined combo string, or a ``Library``; a platform
    is a registry key or a live platform.  Unknown names raise
    :class:`~repro.errors.ServiceError` (the HTTP status is attached
    for transports).
    """

    def __init__(
        self,
        config: "SessionConfig | None" = None,
        *,
        blocks: "Mapping[str, TargetBlock] | None" = None,
        tiers: "CacheTiers | None" = None,
    ):
        self.config = config if config is not None else SessionConfig.from_env()
        if tiers is not None:
            self.tiers = tiers
        else:
            self.tiers = CacheTiers(
                cache_dir=self.config.effective_cache_dir,
                decompose_lru=self.config.decompose_lru,
                map_block_lru=self.config.map_block_lru,
            )
        self.catalog = ResourceCatalog(
            blocks=blocks,
            registry=self.config.registry,
            workloads=self.config.workloads,
            default_workload=self.config.workload,
        )
        self._flow: "MethodologyFlow | None" = None
        self._flow_lock = threading.Lock()

    # -- resolution -------------------------------------------------------
    def _resolve_workload(self, workload) -> str:
        key = workload if workload is not None else self.config.workload
        self.catalog.workload(key)  # unknown keys fail fast (404)
        return key

    def _resolve_block(self, block, workload=None) -> tuple[str, TargetBlock]:
        if isinstance(block, TargetBlock):
            return block.name, block
        return block, self.catalog.block(block, workload)

    def _resolve_library(self, library) -> tuple[tuple[str, ...], Library]:
        if library is None:
            library = self.config.library
        if isinstance(library, Library):
            return (library.name,), library
        if isinstance(library, str):
            tags = tuple(t for t in library.replace(",", "+").split("+") if t)
        else:
            tags = tuple(library)
        return tags, self.catalog.library(tags)

    def _resolve_platform(self, platform) -> tuple[str, Badge4]:
        if platform is None:
            platform = self.config.platform
        if isinstance(platform, str):
            return platform, self.catalog.platform(platform)
        return self.config.registry.label_for(platform), platform

    def _knobs(self, tolerance, accuracy_budget) -> tuple[float, float]:
        if tolerance is None:
            tolerance = self.config.tolerance
        if accuracy_budget is None:
            accuracy_budget = self.config.accuracy_budget
        return tolerance, accuracy_budget

    # -- the methodology --------------------------------------------------
    def map(
        self,
        block,
        library=None,
        platform=None,
        *,
        tolerance: "float | None" = None,
        accuracy_budget: "float | None" = None,
        workload: "str | None" = None,
    ) -> MapResult:
        """Scalar block mapping: the cheapest adequate complex element.

        The session form of the paper's ``map_block`` — same search,
        same cache keys, session-owned tiers — returning a typed
        :class:`~repro.api.MapResult` whose ``to_json()`` is the
        service's ``/v1/map`` wire format.  ``workload`` selects the
        registry entry the block name resolves in (default: the
        session's, normally ``"mp3"``).
        """
        tolerance, accuracy_budget = self._knobs(tolerance, accuracy_budget)
        workload_key = self._resolve_workload(workload)
        block_name, block_obj = self._resolve_block(block, workload_key)
        tags, library_obj = self._resolve_library(library)
        label, platform_obj = self._resolve_platform(platform)
        request = MapRequest(
            block=block_name,
            library=tags,
            platform=label,
            tolerance=tolerance,
            accuracy_budget=accuracy_budget,
            workload=workload_key,
        )
        winner, matches = _map_block_cached(
            block_obj, library_obj, platform_obj, tolerance, accuracy_budget, self.tiers
        )
        return MapResult(
            request=request,
            platform=platform_obj,
            winner=winner,
            matches=tuple(matches),
        )

    def pareto(
        self,
        block,
        library=None,
        platform=None,
        *,
        tolerance: "float | None" = None,
        accuracy_budget: "float | None" = None,
        workload: "str | None" = None,
        measure: bool = False,
    ) -> ParetoResult:
        """Multi-objective mapping: the (cycles, energy, accuracy) front.

        Shares the cached match list with :meth:`map` (same key, same
        value); energy is scored fresh per call — the derived-front
        contract — so fronts can never be served stale across
        energy-model changes.

        ``measure=True`` runs every candidate's generated kernel on
        the workload's deterministic stimulus and attaches
        ``measured_accuracy``/``snr_db`` to each front point (see
        :mod:`repro.codegen.verify`).  Measurement is derived like
        energy — never cached, never part of the cache key — and the
        default (unmeasured) wire bytes are unchanged.
        """
        tolerance, accuracy_budget = self._knobs(tolerance, accuracy_budget)
        workload_key = self._resolve_workload(workload)
        block_name, block_obj = self._resolve_block(block, workload_key)
        tags, library_obj = self._resolve_library(library)
        label, platform_obj = self._resolve_platform(platform)
        request = MapRequest(
            block=block_name,
            library=tags,
            platform=label,
            tolerance=tolerance,
            accuracy_budget=accuracy_budget,
            workload=workload_key,
        )
        stimulus = None
        if measure:
            from repro.codegen.verify import stimulus_for_block

            stimulus = stimulus_for_block(block_obj, workload_key)
        result = _map_block_pareto_cached(
            block_obj,
            library_obj,
            platform_obj,
            tolerance,
            accuracy_budget,
            self.tiers,
            measure=measure,
            stimulus=stimulus,
        )
        return ParetoResult(request=request, result=result)

    def verify(
        self,
        block,
        library=None,
        platform=None,
        *,
        tolerance: "float | None" = None,
        accuracy_budget: "float | None" = None,
        workload: "str | None" = None,
        stimulus=None,
    ) -> VerifyResult:
        """Measure the scalar winner's generated kernel (the accuracy loop).

        Maps the block exactly like :meth:`map` (same cache lines),
        generates fixed-point code for the winning element
        (:mod:`repro.codegen`), runs it against the exact float64
        reference on the workload's deterministic stimulus, and reports
        RMS / max error / SNR classified into the ISO 11172-4
        compliance bands.  ``stimulus`` overrides the input vectors.
        Returns a typed :class:`~repro.api.VerifyResult` whose
        ``to_json()`` is the service's ``/v1/verify`` wire format.
        """
        tolerance, accuracy_budget = self._knobs(tolerance, accuracy_budget)
        workload_key = self._resolve_workload(workload)
        block_name, block_obj = self._resolve_block(block, workload_key)
        tags, library_obj = self._resolve_library(library)
        label, platform_obj = self._resolve_platform(platform)
        request = MapRequest(
            block=block_name,
            library=tags,
            platform=label,
            tolerance=tolerance,
            accuracy_budget=accuracy_budget,
            workload=workload_key,
        )
        winner, _matches = _map_block_cached(
            block_obj, library_obj, platform_obj, tolerance, accuracy_budget, self.tiers
        )
        measurement = None
        if winner is not None:
            from repro.codegen.verify import measure_match, stimulus_for_block

            vectors = (
                tuple(stimulus)
                if stimulus is not None
                else stimulus_for_block(block_obj, workload_key)
            )
            measurement = measure_match(block_obj, winner, stimulus=vectors)
        return VerifyResult(
            request=request, platform=platform_obj, measurement=measurement
        )

    def decompose(
        self,
        target: Polynomial,
        library=None,
        platform=None,
        *,
        tolerance: float = 1e-9,
        accuracy_budget: float = float("inf"),
        max_depth: int = 3,
        max_nodes: int = 500,
        use_hints: bool = True,
        use_bounding: bool = True,
    ) -> DecomposeResult:
        """The scalar Decompose search (Table 2), session-cached.

        Knob defaults mirror :func:`repro.mapping.decompose.decompose`
        exactly, so session and module-level calls share cache lines.
        """
        _tags, library_obj = self._resolve_library(library)
        _label, platform_obj = self._resolve_platform(platform)
        return _decompose_cached(
            target,
            library_obj,
            platform_obj,
            tolerance=tolerance,
            accuracy_budget=accuracy_budget,
            max_depth=max_depth,
            max_nodes=max_nodes,
            use_hints=use_hints,
            use_bounding=use_bounding,
            tiers=self.tiers,
        )

    def batch(
        self,
        items: Iterable[BatchItem],
        *,
        workers: "int | None" = None,
        executor=None,
    ) -> BatchReport:
        """Resolve a batch of work items against this session's tiers.

        ``workers``/``executor`` default to the session config; an
        explicit argument wins for this call only.
        """
        return run_batch(
            list(items),
            workers=self.config.workers if workers is None else workers,
            executor=self.config.executor if executor is None else executor,
            tiers=self.tiers,
        )

    def sweep(
        self,
        platforms: "Sequence[str | Badge4] | None" = None,
        libraries=None,
        blocks=None,
        *,
        tolerance: "float | None" = None,
        accuracy_budget: "float | None" = None,
        workers: "int | None" = None,
        executor=None,
        workload: "str | None" = None,
    ) -> SweepReport:
        """Map every block against every library on every platform.

        ``libraries`` accepts ``Library`` objects and/or combo strings
        (``"REF+LM+IH"``); ``blocks`` accepts block names and/or a
        ``{name: TargetBlock}`` mapping, resolved inside ``workload``
        (default: the session's).  ``None`` everywhere means
        "everything the catalog knows", with the paper's library
        ladder.  Returns the canonical
        :class:`~repro.mapping.flow.SweepReport` (byte-stable
        ``to_json()``).
        """
        tolerance, accuracy_budget = self._knobs(tolerance, accuracy_budget)
        workload_key = self._resolve_workload(workload)
        libs = None
        if libraries is not None:
            libs = []
            for library in libraries:
                if isinstance(library, Library):
                    libs.append(library)
                else:
                    libs.append(self.catalog.library_combo(library))
        # Blocks resolve through the catalog (memoized extraction) and
        # travel to the flow as an explicit dict, so a non-default
        # workload never re-extracts inside the flow.
        if blocks is None:
            block_map = dict(self.catalog.blocks(workload_key))
        elif isinstance(blocks, Mapping):
            block_map = dict(blocks)
        else:
            block_map = {
                name: self.catalog.block(name, workload_key) for name in blocks
            }
        overrides: dict = {}
        if workers is not None:
            overrides["workers"] = workers
        if executor is not None:
            overrides["executor"] = executor
        return self.flow().sweep(
            platforms=platforms,
            libraries=libs,
            blocks=block_map,
            tolerance=tolerance,
            accuracy_budget=accuracy_budget,
            workload=workload_key,
            **overrides,
        )

    def flow(
        self,
        platform: "Badge4 | None" = None,
        critical_threshold_percent: float = 5.0,
    ) -> MethodologyFlow:
        """A session-bound :class:`~repro.mapping.flow.MethodologyFlow`.

        Wired with this session's tiers, worker count, executor and
        block catalog.  The default flow (no arguments) is memoized —
        repeated :meth:`sweep` calls share one — while explicit
        platform/threshold arguments build a fresh instance.
        """
        if platform is None and critical_threshold_percent == 5.0:
            with self._flow_lock:
                if self._flow is None:
                    self._flow = self._build_flow(None, 5.0)
                return self._flow
        return self._build_flow(platform, critical_threshold_percent)

    def _build_flow(self, platform, threshold) -> MethodologyFlow:
        return MethodologyFlow(
            platform=platform,
            critical_threshold_percent=threshold,
            workers=self.config.workers,
            executor=self.config.executor,
            blocks=self.catalog.blocks(),
            tiers=self.tiers,
            registry=self.config.registry,
            workload=self.config.workload,
            workloads=self.config.workloads,
        )

    def cached_map(self, key: tuple, digest: "str | None" = None):
        """The cached ``(winner, matches)`` for a prebuilt map key, or
        ``None`` — memory, then the shared disk tier; never computes.

        The fleet front's shard router peeks here before forwarding:
        a warm hit (this worker's LRU, or any worker's write-through
        into the shared sqlite tier) is served locally, so only cold
        work pays the cross-worker hop.  ``key`` is the tuple
        :func:`repro.mapping.decompose._map_block_key` builds;
        ``digest`` optionally carries its precomputed
        :func:`~repro.mapping.cache.stable_digest`.
        """
        return self.tiers.lookup_map_block(key, digest)

    def cache_counters(self) -> dict:
        """Flat, summable cache counters for cross-worker aggregation.

        The fleet's ``GET /metrics`` endpoint merges one of these per
        worker by elementwise addition, so the dict carries only
        numbers: LRU size/hit/miss/eviction counts per tier and the
        disk tier's hit/miss/write counts (``enabled`` is 0/1 — the
        merged value counts workers with persistence on).  The full,
        non-summable shape (paths, hit rates, breaker state) stays on
        :meth:`stats`.
        """
        stats = self.tiers.stats()
        counters = {}
        for tier in ("decompose", "map_block"):
            counters[tier] = {
                field: stats[tier][field]
                for field in ("size", "hits", "misses", "evictions")
            }
        disk = stats["disk"]
        counters["disk"] = {
            "enabled": 1 if disk.get("enabled") else 0,
            "hits": disk.get("hits", 0),
            "misses": disk.get("misses", 0),
            "writes": disk.get("writes", 0),
        }
        return counters

    # -- observability / lifecycle ----------------------------------------
    def stats(self) -> dict:
        """This session's cache statistics, in the canonical shape.

        The tiers' ``{"decompose", "map_block", "disk"}`` plus a
        ``"shared"`` sub-dict for the process-wide pure-function caches
        (instantiations, manipulations, hints) every session shares.
        """
        stats = self.tiers.stats()
        stats["shared"] = _shared_cache_stats()
        return stats

    def clear_caches(self, *, shared: bool = True) -> None:
        """Empty this session's tiers (memory + its disk stores).

        ``shared=True`` (default) also clears the process-wide
        pure-function caches; other sessions' tiers are never touched.
        """
        self.tiers.clear()
        if shared:
            clear_shared_caches()

    def platforms(self) -> list[str]:
        """Registry keys this session resolves platforms against."""
        return self.config.registry.names()

    def workloads(self) -> list[str]:
        """Workload keys this session resolves block names against."""
        return list(self.catalog.workload_keys())

    def workloads_payload(self) -> dict:
        """The workload listing every surface serves, pre-serialization.

        The CLI's ``repro workloads --json`` and the service's
        ``/v1/workloads`` both render exactly this dict through
        :func:`~repro.api.types.canonical_json`, which is what makes
        their bytes comparable with ``==``.  Uses the declared block
        names (no extraction), so listing stays cheap.
        """
        return {
            "default": self.config.workload,
            "workloads": [
                {
                    "key": key,
                    "title": self.catalog.workload(key).workload.title,
                    "description": self.catalog.workload(key).workload.description,
                    "blocks": list(self.catalog.workload(key).block_names()),
                }
                for key in self.catalog.workload_keys()
            ],
        }

    def blocks(self, workload: "str | None" = None) -> "dict[str, TargetBlock]":
        """One workload's named target blocks (extracted on first use)."""
        return self.catalog.blocks(workload)

    def __repr__(self) -> str:
        disk = self.config.effective_cache_dir
        return f"MappingSession(platform={self.config.platform!r}, disk={disk!r})"


_DEFAULT_SESSION: "MappingSession | None" = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> MappingSession:
    """The process-wide session bound to the legacy default tiers.

    Every deprecated module-level entry point and this session resolve
    against the same :data:`~repro.mapping.cache.DEFAULT_TIERS`, so
    mixing old and new call styles keeps one coherent cache pool.
    Built lazily, once, from the environment.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = MappingSession(
                SessionConfig.from_env(), tiers=DEFAULT_TIERS
            )
        return _DEFAULT_SESSION
