"""Typed requests and results: the one wire format every surface shares.

The canonical JSON shapes the HTTP service serves are *derived from*
these dataclasses, not the other way around: ``MapResult.to_json()``
is byte-for-byte the ``/v1/map`` response body, ``ParetoResult`` the
``/v1/pareto`` body, and a sweep's canonical form remains
:meth:`~repro.mapping.flow.SweepReport.to_json`.  The CLI prints the
same bytes.  One source of truth means session, legacy, CLI and
service answers to the same request can be compared with ``==`` on
bytes — and the test suite does exactly that.

* **Canonical JSON** — :func:`canonical_json` renders sorted keys, no
  whitespace, ``repr``-exact floats, NaN/Infinity rejected.
* **Request dataclasses** — :class:`MapRequest` and
  :class:`SweepRequest` parse and validate JSON payloads, raising
  :class:`~repro.errors.ServiceError` with the HTTP status a transport
  should answer (400 malformed, 404 unknown resource).
* **Result dataclasses** — :class:`MapResult` and :class:`ParetoResult`
  pair a request with its mapping outcome and render the wire payload.
  Deliberately free of timings and cache statistics, so cold, warm and
  coalesced answers to the same request are byte-identical.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.mapping.match import BlockMatch
from repro.mapping.pareto import BlockParetoResult
from repro.platform.badge4 import Badge4
from repro.workload.registry import DEFAULT_WORKLOAD

__all__ = [
    "LIBRARY_TAGS",
    "DEFAULT_LIBRARY",
    "DEFAULT_PLATFORM",
    "DEFAULT_WORKLOAD",
    "ACCURACY_BUDGET_MESSAGE",
    "canonical_json",
    "MapRequest",
    "SweepRequest",
    "MapResult",
    "ParetoResult",
    "VerifyResult",
]

#: Library tags a request may combine, in canonical order.
LIBRARY_TAGS = ("REF", "LM", "IH", "IPP")

#: The default mapping ladder: everything the paper's final pass uses.
DEFAULT_LIBRARY = ("REF", "LM", "IH", "IPP")

#: The paper's processor, and the registry's first entry.
DEFAULT_PLATFORM = "SA-1110"

#: The one wording for a negative accuracy budget, shared verbatim by
#: the CLI (argparse error) and the service (HTTP 400) so both
#: surfaces refuse identically instead of silently returning an empty
#: front.
ACCURACY_BUDGET_MESSAGE = "field 'accuracy_budget' must be a nonnegative number"


def canonical_json(payload) -> bytes:
    """The one JSON encoding responses use: sorted, compact, ASCII.

    ``allow_nan=False`` turns an accidental NaN/Infinity in a payload
    into a loud ``ValueError`` instead of invalid JSON on the wire —
    canonical responses must parse everywhere.
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    ).encode("ascii")


def _require_object(payload) -> dict:
    if not isinstance(payload, dict):
        raise ServiceError(400, "request body must be a JSON object")
    return payload


def _reject_unknown(payload: dict, known: tuple) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ServiceError(400, f"unknown request field(s): {unknown}")


def _string(payload: dict, key: str, default=None) -> str:
    value = payload.get(key, default)
    if not isinstance(value, str) or not value:
        raise ServiceError(400, f"field {key!r} must be a non-empty string")
    return value


def _number(payload: dict, key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(400, f"field {key!r} must be a number")
    return float(value)


def _accuracy_budget(payload: dict, default: float) -> float:
    value = _number(payload, "accuracy_budget", default)
    if value < 0 or math.isnan(value):
        raise ServiceError(400, ACCURACY_BUDGET_MESSAGE)
    return value


def _string_tuple(payload: dict, key: str, default) -> tuple:
    value = payload.get(key, default)
    if value is default:
        return default
    if (
        not isinstance(value, (list, tuple))
        or not value
        or not all(isinstance(v, str) and v for v in value)
    ):
        raise ServiceError(400, f"field {key!r} must be a non-empty list of strings")
    duplicates = sorted({v for v in value if list(value).count(v) > 1})
    if duplicates:
        # Every list field names a set of resources; a duplicate would
        # either conflate report cells (sweep labels) or silently
        # collapse — reject it here, before any heavy work runs,
        # instead of letting the registry raise deep in a worker.
        raise ServiceError(400, f"field {key!r} has duplicate entries: {duplicates}")
    return tuple(value)


@dataclass(frozen=True)
class MapRequest:
    """One block-mapping request (``/v1/map`` / ``/v1/pareto``), validated.

    ``library`` is a tuple of catalog tags (subset of
    :data:`LIBRARY_TAGS`) combined with
    :meth:`~repro.library.catalog.Library.union`; ``platform`` a
    processor-registry key; ``workload`` the workload-registry key the
    block name resolves in (default ``"mp3"``, so pre-registry clients
    keep their wire format).  The tolerance/accuracy knobs mirror
    :func:`~repro.mapping.decompose.map_block` exactly, so a service
    request, a session call, and a direct call share cache lines.
    """

    block: str
    library: tuple = DEFAULT_LIBRARY
    platform: str = DEFAULT_PLATFORM
    tolerance: float = 1e-6
    accuracy_budget: float = math.inf
    workload: str = DEFAULT_WORKLOAD

    _FIELDS = (
        "block",
        "library",
        "platform",
        "tolerance",
        "accuracy_budget",
        "workload",
    )

    @classmethod
    def from_payload(cls, payload) -> "MapRequest":
        payload = _require_object(payload)
        _reject_unknown(payload, cls._FIELDS)
        return cls(
            block=_string(payload, "block"),
            library=_string_tuple(payload, "library", DEFAULT_LIBRARY),
            platform=_string(payload, "platform", DEFAULT_PLATFORM),
            tolerance=_number(payload, "tolerance", 1e-6),
            accuracy_budget=_accuracy_budget(payload, math.inf),
            workload=_string(payload, "workload", DEFAULT_WORKLOAD),
        )

    def to_payload(self) -> dict:
        """The JSON form a client sends (defaults elided)."""
        payload: dict = {"block": self.block}
        if self.library != DEFAULT_LIBRARY:
            payload["library"] = list(self.library)
        if self.platform != DEFAULT_PLATFORM:
            payload["platform"] = self.platform
        if self.tolerance != 1e-6:
            payload["tolerance"] = self.tolerance
        if not math.isinf(self.accuracy_budget):
            payload["accuracy_budget"] = self.accuracy_budget
        if self.workload != DEFAULT_WORKLOAD:
            payload["workload"] = self.workload
        return payload


@dataclass(frozen=True)
class SweepRequest:
    """One multi-platform sweep request (``/v1/sweep``), validated.

    ``platforms``/``blocks`` default to ``None`` — "everything the
    catalog knows": all registered processors, every block of the
    selected ``workload`` (default ``"mp3"``).  ``libraries`` holds
    ``"+"``-joined tag combos (e.g. ``"REF+LM+IH"``), defaulting to
    the paper's ladder.
    """

    platforms: "tuple | None" = None
    libraries: "tuple | None" = None
    blocks: "tuple | None" = None
    tolerance: float = 1e-6
    accuracy_budget: float = math.inf
    workload: str = DEFAULT_WORKLOAD

    _FIELDS = (
        "platforms",
        "libraries",
        "blocks",
        "tolerance",
        "accuracy_budget",
        "workload",
    )

    @classmethod
    def from_payload(cls, payload) -> "SweepRequest":
        payload = _require_object(payload)
        _reject_unknown(payload, cls._FIELDS)
        return cls(
            platforms=_string_tuple(payload, "platforms", None),
            libraries=_string_tuple(payload, "libraries", None),
            blocks=_string_tuple(payload, "blocks", None),
            tolerance=_number(payload, "tolerance", 1e-6),
            accuracy_budget=_accuracy_budget(payload, math.inf),
            workload=_string(payload, "workload", DEFAULT_WORKLOAD),
        )

    def to_payload(self) -> dict:
        payload: dict = {}
        if self.platforms is not None:
            payload["platforms"] = list(self.platforms)
        if self.libraries is not None:
            payload["libraries"] = list(self.libraries)
        if self.blocks is not None:
            payload["blocks"] = list(self.blocks)
        if self.tolerance != 1e-6:
            payload["tolerance"] = self.tolerance
        if not math.isinf(self.accuracy_budget):
            payload["accuracy_budget"] = self.accuracy_budget
        if self.workload != DEFAULT_WORKLOAD:
            payload["workload"] = self.workload
        return payload


@dataclass(frozen=True)
class MapResult:
    """A scalar block-mapping outcome, bound to its request.

    ``platform`` is the live platform object the matches were priced
    on, kept so :meth:`to_payload` can render per-match cycles without
    re-resolving anything.  ``to_json()`` is the service's ``/v1/map``
    wire format, byte for byte.
    """

    request: MapRequest
    platform: Badge4
    winner: BlockMatch | None
    matches: tuple[BlockMatch, ...]

    @property
    def mapped(self) -> bool:
        """True iff some adequate element covers the block."""
        return self.winner is not None

    @property
    def winner_name(self) -> str | None:
        """The winning element's name, or ``None`` when unmapped."""
        return self.winner.element.name if self.winner is not None else None

    def to_payload(self) -> dict:
        """The wire payload: scalar winner plus every match, priced."""
        cycles = self.platform.cost_model.cycles
        return {
            "block": self.request.block,
            "platform": self.request.platform,
            "processor": self.platform.processor.name,
            "library": "+".join(self.request.library),
            "workload": self.request.workload,
            "mapped": self.mapped,
            "winner": self.winner_name,
            "matches": [
                {
                    "element": m.element.name,
                    "element_library": m.element.library,
                    "cycles": cycles(m.element.cost),
                    "accuracy": m.element.accuracy,
                }
                for m in self.matches
            ],
        }

    def to_json(self) -> bytes:
        """Canonical bytes — identical to the ``/v1/map`` response body."""
        return canonical_json(self.to_payload())


@dataclass(frozen=True)
class ParetoResult:
    """A multi-objective block-mapping outcome, bound to its request.

    Wraps the derived :class:`~repro.mapping.pareto.BlockParetoResult`
    (fronts are computed fresh per call — the derived-front contract);
    ``to_json()`` is the service's ``/v1/pareto`` wire format.
    """

    request: MapRequest
    result: BlockParetoResult

    @property
    def front(self):
        """The non-dominated (cycles, energy, accuracy) points."""
        return self.result.front

    @property
    def cycles_winner(self) -> BlockMatch | None:
        """The scalar projection: ``MapResult.winner`` for this block."""
        return self.result.cycles_winner

    @property
    def winner_name(self) -> str | None:
        winner = self.result.cycles_winner
        return winner.element.name if winner is not None else None

    def to_payload(self) -> dict:
        """The wire payload: the front of the shared cached match list.

        ``measured_accuracy``/``snr_db`` appear on a front entry only
        when the underlying point carries a measurement (sessions pass
        ``measure=True``), so unmeasured responses stay byte-identical
        to the pre-codegen wire format.
        """
        front = []
        for p in self.front:
            entry = {
                "element": p.element_name,
                "element_library": p.library,
                "cycles": p.objectives.cycles,
                "energy_j": p.objectives.energy_j,
                "accuracy": p.objectives.accuracy,
            }
            if p.objectives.measured_accuracy is not None:
                entry["measured_accuracy"] = p.objectives.measured_accuracy
            if p.objectives.snr_db is not None:
                entry["snr_db"] = p.objectives.snr_db
            front.append(entry)
        return {
            "block": self.request.block,
            "platform": self.request.platform,
            "processor": self.result.platform_name,
            "library": "+".join(self.request.library),
            "workload": self.request.workload,
            "winner": self.winner_name,
            "front": front,
        }

    def to_json(self) -> bytes:
        """Canonical bytes — identical to the ``/v1/pareto`` response body."""
        return canonical_json(self.to_payload())


@dataclass(frozen=True)
class VerifyResult:
    """A measured-accuracy outcome for one mapped block.

    Pairs the request with the scalar winner's
    :class:`~repro.codegen.verify.BlockMeasurement` (or ``None`` for
    an unmapped block).  ``to_json()`` is the service's ``/v1/verify``
    wire format, byte for byte — same contract as the other results.
    """

    request: MapRequest
    platform: Badge4
    measurement: "object | None"

    @property
    def mapped(self) -> bool:
        """True iff some adequate element covers the block."""
        return self.measurement is not None

    def to_payload(self) -> dict:
        payload = {
            "block": self.request.block,
            "platform": self.request.platform,
            "processor": self.platform.processor.name,
            "library": "+".join(self.request.library),
            "workload": self.request.workload,
            "mapped": self.mapped,
        }
        if self.measurement is not None:
            payload.update(self.measurement.to_payload())
        else:
            payload["element"] = None
        return payload

    def to_json(self) -> bytes:
        """Canonical bytes — identical to the ``/v1/verify`` response body."""
        return canonical_json(self.to_payload())
