"""Named-resource resolution: block names, library tags, platform keys.

A session (and through it, the HTTP service) addresses resources by
short stable names — ``"inv_mdctL"``, ``("REF", "IH")``,
``"SA-1110"`` — and the catalog turns those into live objects,
memoized per instance:

* **blocks** are extracted once (frontend symbolic execution is the
  expensive part of a cold start) and the *same* ``TargetBlock``
  objects reused for every request;
* **libraries** are assembled once per tag combination and reused, so
  the per-instance fingerprint memo
  (:func:`~repro.mapping.cache.fingerprint_library`) and the batch
  engine's per-object pickle memo both stay hot;
* **platforms** come from the session's
  :class:`~repro.platform.registry.ProcessorRegistry` and are
  instantiated once per key.

Unknown names raise :class:`~repro.errors.ServiceError` carrying the
HTTP status a transport should answer (404 unknown resource, 400
malformed combination) — library callers can treat it as an ordinary
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

from repro.api.types import LIBRARY_TAGS
from repro.errors import ServiceError
from repro.frontend.extract import TargetBlock
from repro.library.builtin import (
    inhouse_library,
    ipp_library,
    linux_math_library,
    reference_library,
)
from repro.library.catalog import Library
from repro.platform.badge4 import Badge4
from repro.platform.registry import DEFAULT_REGISTRY, ProcessorRegistry

__all__ = ["ResourceCatalog"]

_BUILDERS = {
    "REF": reference_library,
    "LM": linux_math_library,
    "IH": inhouse_library,
    "IPP": ipp_library,
}


class ResourceCatalog:
    """Named resources one session serves, memoized per instance."""

    def __init__(
        self,
        blocks: "dict[str, TargetBlock] | None" = None,
        registry: "ProcessorRegistry | None" = None,
    ):
        self._blocks: "dict[str, TargetBlock] | None" = (
            dict(blocks) if blocks is not None else None
        )
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._libraries: dict[tuple, Library] = {}
        self._platforms: dict[str, Badge4] = {}

    # -- blocks ---------------------------------------------------------
    def blocks(self) -> "dict[str, TargetBlock]":
        """Every named block (extracting lazily on first use)."""
        if self._blocks is None:
            from repro.mapping.flow import methodology_blocks

            self._blocks = methodology_blocks()
        return self._blocks

    def block(self, name: str) -> TargetBlock:
        blocks = self.blocks()
        if name not in blocks:
            raise ServiceError(404, f"unknown block {name!r}; known: {sorted(blocks)}")
        return blocks[name]

    def block_subset(self, names) -> "dict[str, TargetBlock]":
        """``{name: block}`` for ``names`` (``None`` = every block)."""
        if names is None:
            return dict(self.blocks())
        return {name: self.block(name) for name in names}

    # -- libraries ------------------------------------------------------
    def library(self, tags: tuple) -> Library:
        """The (memoized) union library of catalog ``tags``."""
        tags = tuple(tags)
        unknown = sorted(set(tags) - set(_BUILDERS))
        if unknown:
            raise ServiceError(
                404,
                f"unknown library tag(s) {unknown}; known: {list(LIBRARY_TAGS)}",
            )
        if len(set(tags)) != len(tags):
            raise ServiceError(400, f"duplicate library tag in {list(tags)}")
        library = self._libraries.get(tags)
        if library is None:
            library = Library.union(*(_BUILDERS[tag]() for tag in tags))
            self._libraries[tags] = library
        return library

    def library_combo(self, combo: str) -> Library:
        """A library from a ``"+"``-joined combo string (sweep form)."""
        return self.library(tuple(combo.split("+")))

    # -- platforms ------------------------------------------------------
    def platform(self, key: str) -> Badge4:
        """The (memoized) platform registered under ``key``."""
        if key not in self._registry:
            raise ServiceError(
                404, f"unknown platform {key!r}; known: {self._registry.names()}"
            )
        platform = self._platforms.get(key)
        if platform is None:
            platform = self._registry.platform(key)
            self._platforms[key] = platform
        return platform

    def platform_keys(self, keys) -> tuple:
        """Validated registry keys (``None`` = every registered one)."""
        if keys is None:
            return tuple(self._registry.names())
        for key in keys:
            self.platform(key)
        return tuple(keys)
