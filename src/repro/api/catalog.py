"""Named-resource resolution: blocks, workloads, library tags, platforms.

A session (and through it, the HTTP service) addresses resources by
short stable names — ``"inv_mdctL"``, ``("REF", "IH")``,
``"SA-1110"``, ``"jpeg_idct"`` — and the catalog turns those into
live objects, memoized per instance:

* **blocks** belong to a workload
  (:class:`~repro.workload.WorkloadRegistry` entries); each workload's
  set is extracted once (frontend symbolic execution is the expensive
  part of a cold start) and the *same* ``TargetBlock`` objects reused
  for every request.  The default workload is the session's
  (``"mp3"`` unless configured otherwise), so pre-registry callers
  see exactly the set they always did;
* **libraries** are assembled once per tag combination and reused, so
  the per-instance fingerprint memo
  (:func:`~repro.mapping.cache.fingerprint_library`) and the batch
  engine's per-object pickle memo both stay hot;
* **platforms** come from the session's
  :class:`~repro.platform.registry.ProcessorRegistry` and are
  instantiated once per key.

Unknown names raise :class:`~repro.errors.ServiceError` carrying the
HTTP status a transport should answer (404 unknown resource, 400
malformed combination) — library callers can treat it as an ordinary
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

from repro.api.types import LIBRARY_TAGS
from repro.errors import ServiceError
from repro.frontend.extract import TargetBlock
from repro.library.builtin import (
    inhouse_library,
    ipp_library,
    linux_math_library,
    reference_library,
)
from repro.library.catalog import Library
from repro.platform.badge4 import Badge4
from repro.platform.registry import DEFAULT_REGISTRY, ProcessorRegistry
from repro.workload import (
    DEFAULT_WORKLOAD,
    DEFAULT_WORKLOAD_REGISTRY,
    WorkloadEntry,
    WorkloadRegistry,
)

__all__ = ["ResourceCatalog"]

_BUILDERS = {
    "REF": reference_library,
    "LM": linux_math_library,
    "IH": inhouse_library,
    "IPP": ipp_library,
}


class ResourceCatalog:
    """Named resources one session serves, memoized per instance.

    ``blocks`` (when given) pre-seeds the *default workload's* block
    set — the test/service injection seam — while other workloads
    still resolve through the workload registry on first use.
    """

    def __init__(
        self,
        blocks: "dict[str, TargetBlock] | None" = None,
        registry: "ProcessorRegistry | None" = None,
        workloads: "WorkloadRegistry | None" = None,
        default_workload: "str | None" = None,
    ):
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._workloads = (
            workloads if workloads is not None else DEFAULT_WORKLOAD_REGISTRY
        )
        self._default_workload = (
            default_workload if default_workload is not None else DEFAULT_WORKLOAD
        )
        self._blocks: dict[str, dict[str, TargetBlock]] = {}
        if blocks is not None:
            self._blocks[self._default_workload] = dict(blocks)
        self._libraries: dict[tuple, Library] = {}
        self._platforms: dict[str, Badge4] = {}

    # -- workloads ------------------------------------------------------
    def workload(self, key: "str | None" = None) -> WorkloadEntry:
        """The workload entry for ``key`` (``None`` = the default)."""
        key = key if key is not None else self._default_workload
        if key not in self._workloads:
            raise ServiceError(
                404, f"unknown workload {key!r}; known: {self._workloads.names()}"
            )
        return self._workloads.get(key)

    def workload_keys(self) -> tuple:
        """Registered workload keys, in registration order."""
        return tuple(self._workloads.names())

    # -- blocks ---------------------------------------------------------
    def blocks(self, workload: "str | None" = None) -> "dict[str, TargetBlock]":
        """One workload's named blocks (extracted lazily on first use).

        ``workload=None`` means the catalog's default workload, which
        keeps every pre-registry call site — service warm-up included —
        on the MP3 set it always served.
        """
        key = workload if workload is not None else self._default_workload
        cached = self._blocks.get(key)
        if cached is None:
            cached = self.workload(key).blocks()
            self._blocks[key] = cached
        return cached

    def block(self, name: str, workload: "str | None" = None) -> TargetBlock:
        blocks = self.blocks(workload)
        if name not in blocks:
            key = workload if workload is not None else self._default_workload
            raise ServiceError(
                404,
                f"unknown block {name!r} in workload {key!r}; known: {sorted(blocks)}",
            )
        return blocks[name]

    def block_subset(
        self, names, workload: "str | None" = None
    ) -> "dict[str, TargetBlock]":
        """``{name: block}`` for ``names`` (``None`` = the whole workload)."""
        if names is None:
            return dict(self.blocks(workload))
        return {name: self.block(name, workload) for name in names}

    # -- libraries ------------------------------------------------------
    def library(self, tags: tuple) -> Library:
        """The (memoized) union library of catalog ``tags``."""
        tags = tuple(tags)
        unknown = sorted(set(tags) - set(_BUILDERS))
        if unknown:
            raise ServiceError(
                404,
                f"unknown library tag(s) {unknown}; known: {list(LIBRARY_TAGS)}",
            )
        if len(set(tags)) != len(tags):
            raise ServiceError(400, f"duplicate library tag in {list(tags)}")
        library = self._libraries.get(tags)
        if library is None:
            library = Library.union(*(_BUILDERS[tag]() for tag in tags))
            self._libraries[tags] = library
        return library

    def library_combo(self, combo: str) -> Library:
        """A library from a ``"+"``-joined combo string (sweep form)."""
        return self.library(tuple(combo.split("+")))

    # -- platforms ------------------------------------------------------
    def platform(self, key: str) -> Badge4:
        """The (memoized) platform registered under ``key``."""
        if key not in self._registry:
            raise ServiceError(
                404, f"unknown platform {key!r}; known: {self._registry.names()}"
            )
        platform = self._platforms.get(key)
        if platform is None:
            platform = self._registry.platform(key)
            self._platforms[key] = platform
        return platform

    def platform_keys(self, keys) -> tuple:
        """Validated registry keys (``None`` = every registered one)."""
        if keys is None:
            return tuple(self._registry.names())
        for key in keys:
            self.platform(key)
        return tuple(keys)
