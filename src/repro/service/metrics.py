"""Service metrics: per-endpoint latency histograms, mergeable across
a fleet.

The operational surface ROADMAP item 1 asks for: every request a
:class:`~repro.service.server.MappingService` answers is recorded in a
fixed-bucket latency histogram keyed by endpoint, together with a
status-class tally.  The representation is chosen for *mergeability* —
bucket counts and counters add elementwise — because the fleet front
(:mod:`repro.service.fleet`) answers ``GET /metrics`` by summing the
snapshots of every live worker into one fleet-wide view.

Design points:

* **Fixed log-spaced bounds** (:data:`BUCKET_BOUNDS_SECONDS`, upper
  bounds in seconds, ``inf``-terminated).  Fixed bounds are what make
  two workers' histograms — or tonight's and last night's — addable
  without resampling.
* **Quantiles are estimates**: :meth:`LatencyHistogram.quantile`
  interpolates inside the winning bucket.  Good enough to watch p50 /
  p99 drift; the benchmarks record exact timings.
* **Plain-dict snapshots**: everything returned here is canonical-JSON
  renderable (no NaN/inf in values; the terminal bucket bound is the
  string ``"inf"`` on the wire).

>>> hist = LatencyHistogram()
>>> hist.observe(0.004)
>>> hist.observe(0.004)
>>> hist.observe(2.0)
>>> hist.count, round(hist.sum_seconds, 3)
(3, 2.008)
>>> merged = merge_histograms([hist.snapshot(), hist.snapshot()])
>>> merged["count"]
6
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["BUCKET_BOUNDS_SECONDS", "LatencyHistogram",
           "MetricsRegistry", "merge_histograms", "merge_metrics",
           "merge_counters"]

#: Upper bucket bounds, seconds.  Spans the service's dynamic range:
#: ~0.5ms warm cache hits up to the 300s default request timeout; the
#: terminal bucket is unbounded.  Changing these bounds changes the
#: /metrics wire shape — treat like a schema bump.
BUCKET_BOUNDS_SECONDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, float("inf"),
)

#: The wire rendering of the bounds (canonical JSON refuses non-finite
#: floats, so the terminal bound travels as a string).
BUCKET_BOUNDS_WIRE = tuple(
    "inf" if bound == float("inf") else bound
    for bound in BUCKET_BOUNDS_SECONDS)


class LatencyHistogram:
    """A fixed-bucket latency histogram (counts per upper bound).

    Buckets are *non-cumulative* — ``buckets[i]`` counts observations
    in ``(bounds[i-1], bounds[i]]`` — which keeps merging a plain
    elementwise sum.  Thread-safe: the service observes from its event
    loop, but tests and future callers may not.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.buckets = [0] * len(BUCKET_BOUNDS_SECONDS)
        self.count = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        index = bisect_left(BUCKET_BOUNDS_SECONDS, seconds)
        if index >= len(self.buckets):      # inf bound: unreachable,
            index = len(self.buckets) - 1   # kept as a guard
        with self._lock:
            self.buckets[index] += 1
            self.count += 1
            self.sum_seconds += seconds

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile seconds (linear inside the bucket).

        Zero when empty; the terminal (unbounded) bucket reports its
        lower bound — an under-estimate, flagged by the bucket counts
        themselves.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            buckets = list(self.buckets)
        return _bucket_quantile(buckets, total, q)

    def snapshot(self) -> dict:
        """A mergeable plain-dict view (see :func:`merge_histograms`)."""
        with self._lock:
            return {"count": self.count,
                    "sum_seconds": self.sum_seconds,
                    "buckets": list(self.buckets)}


def _bucket_quantile(buckets, total: int, q: float) -> float:
    if not total:
        return 0.0
    rank = q * total
    seen = 0
    for index, bucket in enumerate(buckets):
        if not bucket:
            continue
        if seen + bucket >= rank:
            upper = BUCKET_BOUNDS_SECONDS[index]
            lower = BUCKET_BOUNDS_SECONDS[index - 1] if index else 0.0
            if upper == float("inf"):
                return lower
            fraction = (rank - seen) / bucket
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        seen += bucket
    return BUCKET_BOUNDS_SECONDS[-2]        # numeric guard


def _histogram_payload(snapshot: dict) -> dict:
    """The /metrics rendering of one histogram snapshot."""
    return {"count": snapshot["count"],
            "sum_seconds": snapshot["sum_seconds"],
            "buckets": list(snapshot["buckets"]),
            "p50_seconds": _bucket_quantile(snapshot["buckets"],
                                            snapshot["count"], 0.50),
            "p99_seconds": _bucket_quantile(snapshot["buckets"],
                                            snapshot["count"], 0.99)}


class MetricsRegistry:
    """Per-endpoint request metrics for one service process.

    ``observe(endpoint, seconds, status)`` is the single recording
    call the request loop makes; :meth:`snapshot` renders the
    canonical per-endpoint payload ``GET /metrics`` serves (histogram
    + status-class counts), in the shape :func:`merge_metrics`
    aggregates across fleet workers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: "dict[str, dict]" = {}

    def _entry(self, endpoint: str) -> dict:
        entry = self._endpoints.get(endpoint)
        if entry is None:
            entry = self._endpoints[endpoint] = {
                "latency": LatencyHistogram(), "statuses": {}}
        return entry

    def observe(self, endpoint: str, seconds: float, status: int) -> None:
        """Record one answered request."""
        with self._lock:
            entry = self._entry(endpoint)
        entry["latency"].observe(seconds)
        klass = f"{status // 100}xx"
        with self._lock:
            entry["statuses"][klass] = entry["statuses"].get(klass, 0) + 1

    def snapshot(self) -> dict:
        """``{endpoint: {latency payload + statuses}}``, sorted."""
        with self._lock:
            items = sorted(self._endpoints.items())
        endpoints = {}
        for endpoint, entry in items:
            payload = _histogram_payload(entry["latency"].snapshot())
            with self._lock:
                payload["statuses"] = dict(sorted(entry["statuses"].items()))
            endpoints[endpoint] = payload
        return endpoints


# ----------------------------------------------------------------------
# Merging: the fleet-aggregation primitives
# ----------------------------------------------------------------------
def merge_histograms(snapshots) -> dict:
    """Elementwise sum of histogram snapshots, quantiles recomputed."""
    merged = {"count": 0, "sum_seconds": 0.0,
              "buckets": [0] * len(BUCKET_BOUNDS_SECONDS)}
    for snapshot in snapshots:
        merged["count"] += snapshot.get("count", 0)
        merged["sum_seconds"] += snapshot.get("sum_seconds", 0.0)
        for index, value in enumerate(snapshot.get("buckets", ())):
            if index < len(merged["buckets"]):
                merged["buckets"][index] += value
    return _histogram_payload(merged)


def merge_counters(dicts) -> dict:
    """Recursive sum of numeric counter dicts (non-numeric: last wins).

    The shape every worker reports is identical, so summing values at
    equal paths is the whole aggregation story — admission counters,
    single-flight counters and cache hit/miss counts all merge through
    this one helper.
    """
    merged: dict = {}
    for entry in dicts:
        if not isinstance(entry, dict):
            continue
        for key, value in entry.items():
            if isinstance(value, bool):
                merged[key] = value
            elif isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            elif isinstance(value, dict):
                seen = merged.get(key)
                merged[key] = merge_counters(
                    [seen if isinstance(seen, dict) else {}, value])
            else:
                merged[key] = value
    return merged


def merge_metrics(endpoint_snapshots) -> dict:
    """Merge per-endpoint snapshots from several workers into one.

    Input: an iterable of :meth:`MetricsRegistry.snapshot` dicts.
    Output: the same shape, histograms bucket-summed and status
    classes added — the fleet-wide ``endpoints`` payload.
    """
    by_endpoint: "dict[str, list]" = {}
    for snapshot in endpoint_snapshots:
        if not isinstance(snapshot, dict):
            continue
        for endpoint, payload in snapshot.items():
            by_endpoint.setdefault(endpoint, []).append(payload)
    merged = {}
    for endpoint in sorted(by_endpoint):
        payloads = by_endpoint[endpoint]
        entry = merge_histograms(payloads)
        entry["statuses"] = merge_counters(
            [p.get("statuses", {}) for p in payloads])
        merged[endpoint] = entry
    return merged
