"""``repro.service`` — mapping-as-a-service.

The long-running front-end over the memoized mapping flow: a
stdlib-only asyncio HTTP/JSON server (`python -m repro.service`)
exposing scalar mapping, Pareto fronts and the multi-platform sweep,
with single-flight request coalescing and write-through into the
LRU/disk cache tiers.  ``--workers N`` scales it out as a pre-forked
fleet behind one port (:mod:`repro.service.fleet`: consistent-hash
shard routing, fleet-wide ``/metrics``, rolling restarts).  See
:mod:`repro.service.server` for the request lifecycle and
``docs/architecture.md`` ("Service layer" / "Fleet front") for how it
sits on the batch engine.
"""

from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.fleet import FleetSupervisor, FleetWorker, HashRing
from repro.service.protocol import (DEFAULT_LIBRARY, DEFAULT_PLATFORM,
                                    MapRequest, ServiceCatalog,
                                    SweepRequest, canonical_json)
from repro.service.server import DEFAULT_PORT, MappingService, ServiceThread
from repro.service.singleflight import SingleFlight

__all__ = [
    "MappingService", "ServiceThread", "ServiceClient", "SingleFlight",
    "FleetSupervisor", "FleetWorker", "HashRing",
    "MapRequest", "SweepRequest", "ServiceCatalog", "ServiceError",
    "canonical_json", "DEFAULT_PORT", "DEFAULT_LIBRARY",
    "DEFAULT_PLATFORM",
]
