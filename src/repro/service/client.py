"""A thin blocking client for the mapping service (stdlib ``urllib``).

One class, no dependencies: CI smoke steps, benchmarks and examples
talk to a running :class:`~repro.service.server.MappingService`
through it.  Payloads are built by the request dataclasses in
:mod:`repro.service.protocol`, so a client request and the server's
validation can never drift apart.

>>> client = ServiceClient("http://127.0.0.1:8357")   # doctest: +SKIP
>>> client.map_block("inv_mdctL")["winner"]           # doctest: +SKIP
'IppsMDCTInv_MP3_32s'
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError
from repro.resilience import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.service.protocol import (DEFAULT_LIBRARY, DEFAULT_PLATFORM,
                                    MapRequest, SweepRequest,
                                    canonical_json)

__all__ = ["ServiceClient"]


def _retry_after_hint(headers) -> "float | None":
    """The response's ``Retry-After`` seconds, when present and sane."""
    value = headers.get("Retry-After") if headers is not None else None
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None          # HTTP-date form: let the backoff decide
    return seconds if seconds >= 0 else None


class ServiceClient:
    """Blocking HTTP/JSON access to one service instance.

    The high-level methods (:meth:`map_block`, :meth:`pareto`,
    :meth:`sweep`, ...) return the parsed response payload and raise
    :class:`~repro.errors.ServiceError` on any non-200 answer;
    :meth:`request` and :meth:`request_bytes` expose the raw
    ``(status, payload)`` layer for tests and smoke checks that assert
    on status codes and exact bytes.

    Transient failure is handled here, once, for every caller: the
    transport retries connection-level errors (refused, reset, DNS)
    with the capped jittered backoff of ``retry`` (a
    :class:`~repro.resilience.RetryPolicy`), and the high-level
    methods additionally retry the service's shedding statuses
    (429/503), honoring its ``Retry-After`` hint as a floor.  A
    request that exhausts the budget raises
    :class:`~repro.errors.ServiceError` carrying the full attempt
    history — never a raw ``urllib`` exception.  ``retry_seed`` pins
    the jitter sequence for deterministic tests.
    """

    def __init__(self, base_url: str = "http://127.0.0.1:8357",
                 timeout: float = 60.0, *,
                 retry: "RetryPolicy | None" = None,
                 retry_seed: "int | None" = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self._rng = random.Random(retry_seed)

    # -- transport -------------------------------------------------------
    def _request_once(self, method: str, url: str, data):
        """One wire round trip: ``(status, headers, raw body bytes)``."""
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.headers, resp.read()
        except urllib.error.HTTPError as err:
            with err:
                return err.code, err.headers, err.read()

    def request_bytes(self, method: str, path: str, payload=None, *,
                      retry_statuses=()) -> "tuple[int, bytes]":
        """``(status, raw body bytes)`` of one request.

        Connection-level errors are retried per the client's policy
        and, exhausted, raise :class:`~repro.errors.ServiceError`
        (status 503) naming the URL and every attempt.  Statuses are
        returned as-is — tests assert on 429/503 through this layer —
        unless listed in ``retry_statuses``, which is how the
        high-level methods opt into waiting out shed load.

        ``payload`` may be pre-rendered bytes, sent verbatim — the
        byte-parity tests use this to replay one exact wire body
        against several servers.
        """
        if isinstance(payload, (bytes, bytearray)):
            data = bytes(payload)
        else:
            data = canonical_json(payload) if payload is not None else None
        url = self.base_url + path
        policy = self.retry
        attempts: "list[str]" = []
        for attempt in range(policy.attempts):
            last = attempt + 1 >= policy.attempts
            try:
                status, headers, body = self._request_once(method, url, data)
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError) as err:
                reason = getattr(err, "reason", None) or err
                attempts.append(f"connection error: {reason}")
                if last:
                    raise ServiceError(
                        503,
                        f"{method} {url} failed after {len(attempts)} "
                        f"attempt(s): {reason}",
                        attempts=attempts) from err
            else:
                if status not in retry_statuses or last:
                    return status, body
                attempts.append(f"shed with {status}")
                hint = _retry_after_hint(headers)
                time.sleep(policy.backoff(attempt, self._rng,
                                          retry_after=hint))
                continue
            time.sleep(policy.backoff(attempt, self._rng))
        raise AssertionError("unreachable: retry loop always returns")

    def request(self, method: str, path: str, payload=None, *,
                retry_statuses=()) -> "tuple[int, object]":
        """``(status, parsed JSON)``; malformed response JSON raises."""
        status, body = self.request_bytes(method, path, payload,
                                          retry_statuses=retry_statuses)
        return status, json.loads(body)

    def _call(self, method: str, path: str, payload=None):
        status, parsed = self.request(
            method, path, payload,
            retry_statuses=self.retry.retry_statuses)
        if status != 200:
            message = parsed.get("error", str(parsed)) \
                if isinstance(parsed, dict) else str(parsed)
            raise ServiceError(status, f"{path} -> {status}: {message}")
        return parsed

    # -- endpoints -------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def platforms(self) -> dict:
        return self._call("GET", "/v1/platforms")

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def metrics(self) -> dict:
        """Latency histograms + counters; fleet-wide behind a fleet."""
        return self._call("GET", "/metrics")

    def map_block(self, block: str, library=DEFAULT_LIBRARY,
                  platform: str = DEFAULT_PLATFORM, *,
                  tolerance: float = 1e-6,
                  accuracy_budget: float = float("inf")) -> dict:
        """Scalar mapping of ``block``: the ``/v1/map`` round trip."""
        request = MapRequest(block=block, library=tuple(library),
                             platform=platform, tolerance=tolerance,
                             accuracy_budget=accuracy_budget)
        return self._call("POST", "/v1/map", request.to_payload())

    def pareto(self, block: str, library=DEFAULT_LIBRARY,
               platform: str = DEFAULT_PLATFORM, *,
               tolerance: float = 1e-6,
               accuracy_budget: float = float("inf")) -> dict:
        """The (cycles, energy, accuracy) front: ``/v1/pareto``."""
        request = MapRequest(block=block, library=tuple(library),
                             platform=platform, tolerance=tolerance,
                             accuracy_budget=accuracy_budget)
        return self._call("POST", "/v1/pareto", request.to_payload())

    def sweep(self, platforms=None, libraries=None, blocks=None, *,
              tolerance: float = 1e-6,
              accuracy_budget: float = float("inf")) -> dict:
        """The multi-platform sweep: ``/v1/sweep`` (canonical JSON)."""
        request = SweepRequest(
            platforms=tuple(platforms) if platforms is not None else None,
            libraries=tuple(libraries) if libraries is not None else None,
            blocks=tuple(blocks) if blocks is not None else None,
            tolerance=tolerance, accuracy_budget=accuracy_budget)
        return self._call("POST", "/v1/sweep", request.to_payload())

    # -- readiness -------------------------------------------------------
    def wait_healthy(self, deadline: float = 30.0,
                     interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until it answers, for up to ``deadline``
        seconds (the CI smoke step's startup gate)."""
        end = time.monotonic() + deadline
        while True:
            try:
                return self.health()
            except (ServiceError, urllib.error.URLError,
                    ConnectionError, OSError):
                if time.monotonic() >= end:
                    raise
                time.sleep(interval)
