"""A thin blocking client for the mapping service (stdlib ``urllib``).

One class, no dependencies: CI smoke steps, benchmarks and examples
talk to a running :class:`~repro.service.server.MappingService`
through it.  Payloads are built by the request dataclasses in
:mod:`repro.service.protocol`, so a client request and the server's
validation can never drift apart.

>>> client = ServiceClient("http://127.0.0.1:8357")   # doctest: +SKIP
>>> client.map_block("inv_mdctL")["winner"]           # doctest: +SKIP
'IppsMDCTInv_MP3_32s'
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError
from repro.service.protocol import (DEFAULT_LIBRARY, DEFAULT_PLATFORM,
                                    MapRequest, SweepRequest,
                                    canonical_json)

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking HTTP/JSON access to one service instance.

    The high-level methods (:meth:`map_block`, :meth:`pareto`,
    :meth:`sweep`, ...) return the parsed response payload and raise
    :class:`~repro.errors.ServiceError` on any non-200 answer;
    :meth:`request` and :meth:`request_bytes` expose the raw
    ``(status, payload)`` layer for tests and smoke checks that assert
    on status codes and exact bytes.
    """

    def __init__(self, base_url: str = "http://127.0.0.1:8357",
                 timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def request_bytes(self, method: str, path: str,
                      payload=None) -> "tuple[int, bytes]":
        """``(status, raw body bytes)`` of one request."""
        data = canonical_json(payload) if payload is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as err:
            with err:
                return err.code, err.read()

    def request(self, method: str, path: str,
                payload=None) -> "tuple[int, object]":
        """``(status, parsed JSON)``; malformed response JSON raises."""
        status, body = self.request_bytes(method, path, payload)
        return status, json.loads(body)

    def _call(self, method: str, path: str, payload=None):
        status, parsed = self.request(method, path, payload)
        if status != 200:
            message = parsed.get("error", str(parsed)) \
                if isinstance(parsed, dict) else str(parsed)
            raise ServiceError(status, f"{path} -> {status}: {message}")
        return parsed

    # -- endpoints -------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def platforms(self) -> dict:
        return self._call("GET", "/v1/platforms")

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def map_block(self, block: str, library=DEFAULT_LIBRARY,
                  platform: str = DEFAULT_PLATFORM, *,
                  tolerance: float = 1e-6,
                  accuracy_budget: float = float("inf")) -> dict:
        """Scalar mapping of ``block``: the ``/v1/map`` round trip."""
        request = MapRequest(block=block, library=tuple(library),
                             platform=platform, tolerance=tolerance,
                             accuracy_budget=accuracy_budget)
        return self._call("POST", "/v1/map", request.to_payload())

    def pareto(self, block: str, library=DEFAULT_LIBRARY,
               platform: str = DEFAULT_PLATFORM, *,
               tolerance: float = 1e-6,
               accuracy_budget: float = float("inf")) -> dict:
        """The (cycles, energy, accuracy) front: ``/v1/pareto``."""
        request = MapRequest(block=block, library=tuple(library),
                             platform=platform, tolerance=tolerance,
                             accuracy_budget=accuracy_budget)
        return self._call("POST", "/v1/pareto", request.to_payload())

    def sweep(self, platforms=None, libraries=None, blocks=None, *,
              tolerance: float = 1e-6,
              accuracy_budget: float = float("inf")) -> dict:
        """The multi-platform sweep: ``/v1/sweep`` (canonical JSON)."""
        request = SweepRequest(
            platforms=tuple(platforms) if platforms is not None else None,
            libraries=tuple(libraries) if libraries is not None else None,
            blocks=tuple(blocks) if blocks is not None else None,
            tolerance=tolerance, accuracy_budget=accuracy_budget)
        return self._call("POST", "/v1/sweep", request.to_payload())

    # -- readiness -------------------------------------------------------
    def wait_healthy(self, deadline: float = 30.0,
                     interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until it answers, for up to ``deadline``
        seconds (the CI smoke step's startup gate)."""
        end = time.monotonic() + deadline
        while True:
            try:
                return self.health()
            except (urllib.error.URLError, ConnectionError, OSError):
                if time.monotonic() >= end:
                    raise
                time.sleep(interval)
