"""Mapping-as-a-service: the asyncio HTTP/JSON front-end.

``MappingService`` turns the in-process mapping flow into a
long-running engine (GiNaC-style: a symbolic system embedded behind a
stable interface rather than an interactive script).  One process
serves:

====================  ======  =========================================
``/healthz``          GET     liveness probe
``/metrics``          GET     per-endpoint latency histograms + counters
``/v1/platforms``     GET     the processor registry, as JSON
``/v1/workloads``     GET     the workload registry, as JSON
``/v1/stats``         GET     cache tiers + single-flight counters
``/v1/map``           POST    scalar block mapping (cycles winner)
``/v1/pareto``        POST    the (cycles, energy, accuracy) front
``/v1/verify``        POST    measured accuracy of the winner's kernel
``/v1/sweep``         POST    the multi-platform sweep, canonical JSON
====================  ======  =========================================

The multi-process front (``python -m repro.service --workers N``) puts
N of these services behind one port; see :mod:`repro.service.fleet`
for the shard router, the supervisor, and the fleet-wide ``/metrics``
aggregation.

``/v1/map``, ``/v1/pareto`` and ``/v1/sweep`` accept a ``workload``
field selecting the workload-registry entry block names resolve in
(default ``"mp3"``).

Request lifecycle, stated once (and documented in
``docs/architecture.md``):

1. **admit** — the request passes the
   :class:`~repro.resilience.AdmissionController`: past
   ``max_inflight`` it is shed immediately with ``429`` +
   ``Retry-After`` (a draining service answers ``503``), so overload
   costs the cheapest possible work;
2. **parse** — strict JSON validation into request dataclasses
   (:mod:`repro.service.protocol`); malformed input answers 400,
   unknown resources 404, nothing heavy has run yet;
3. **fingerprint** — the request resolves to the *same* cache key a
   direct ``map_block`` call builds, digested with
   :func:`~repro.mapping.cache.stable_digest`;
4. **single-flight** — concurrent identical requests coalesce onto one
   in-flight computation (:mod:`repro.service.singleflight`);
5. **batch engine** — the flight leader dispatches the work off the
   event loop onto a worker-thread executor, where it runs through
   :func:`~repro.mapping.batch.run_batch` (optionally fanning cold
   items across a shared, service-owned process pool);
6. **cache write-through** — the engine merges results into the LRU
   and disk tiers, so the next identical request — this process or the
   next — is a cache hit, not a computation;
7. **canonical JSON** — responses are rendered byte-stably, so cold,
   warm and coalesced answers are byte-identical.

Failure is part of the contract: a timed-out dispatch answers ``503``
with a ``Retry-After`` hint (not a hung or severed connection), a
draining service answers ``503`` and closes, a shed request answers
``429`` — a client sees exactly ``200 | 4xx | 503``, never silence.
The ``service.accept`` / ``service.dispatch`` fault sites
(:func:`repro.resilience.inject`) let the chaos suite prove that.

The server is stdlib-only by design (asyncio streams + a minimal
HTTP/1.1 reader): the repo's no-new-dependencies rule applies to the
service tier too.
"""

from __future__ import annotations

import asyncio
import inspect
import logging
import math
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.api import MappingSession, SessionConfig, default_session
from repro.errors import ServiceError
from repro.mapping.batch import BatchItem
from repro.mapping.cache import (SCHEMA_VERSION, fingerprint_block,
                                 fingerprint_library, stable_digest)
from repro.mapping.decompose import _map_block_key
from repro.mapping.pareto import BlockParetoResult
from repro.resilience import AdmissionController, inject
from repro.service.metrics import BUCKET_BOUNDS_WIRE, MetricsRegistry
from repro.service.protocol import (MapRequest, SweepRequest,
                                    canonical_json, map_response,
                                    pareto_response, parse_json_body,
                                    sweep_response)
from repro.service.singleflight import SingleFlight

__all__ = ["MappingService", "ServiceThread", "DEFAULT_PORT"]

logger = logging.getLogger("repro.service")

#: The service's conventional port (CI smoke and examples use it).
DEFAULT_PORT = 8357

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


class MappingService:
    """The long-running mapping engine behind an HTTP/JSON interface.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port; the bound
        one is readable as :attr:`port` after :meth:`start`.
    executor:
        Injectable request executor (any
        :class:`concurrent.futures.Executor`) that heavy work is
        dispatched onto, keeping the event loop free.  Defaults to a
        service-owned :class:`~concurrent.futures.ThreadPoolExecutor`
        of ``request_threads`` workers.  Injection is the test/bench
        seam: a gated executor makes coalescing deterministic.
    map_workers:
        When > 1, the service owns one shared
        :class:`~concurrent.futures.ProcessPoolExecutor` that every
        batch submission fans cold work across
        (``run_batch(executor=...)``) — one warm pool for the process
        lifetime instead of a fork per request.
    cache_dir:
        Pins the persistent disk tier for all service work by building
        the service a private :class:`~repro.api.MappingSession`
        around that directory — which is how two services in one
        process can run against different cache dirs with isolated
        statistics.  ``None`` shares the process default session
        (``REPRO_CACHE_DIR`` applies).
    session:
        An explicit :class:`~repro.api.MappingSession` to serve with,
        overriding ``cache_dir``.  The one object that owns the
        service's cross-cutting state: cache tiers, catalog, defaults.
    request_timeout:
        Per-request wall-clock bound, seconds.  Expiry answers ``503``
        with a ``Retry-After`` hint — slow work is shed like overload,
        because to the client it is the same condition.
    max_inflight:
        Admission bound: at most this many requests are in dispatch at
        once; excess requests are shed immediately with ``429`` +
        ``Retry-After`` instead of queueing behind the executor.
        ``None`` (the default) admits everything, unchanged from
        before admission control existed.
    retry_after_hint:
        Seconds advertised in ``Retry-After`` on 429/503 sheds.
    drain_grace:
        Default grace window :meth:`drain` waits for in-flight work.
    listen_socket:
        A pre-bound (not yet listening) socket to serve on instead of
        binding ``host``/``port``.  The fleet seam: the supervisor
        binds the shared/SO_REUSEPORT sockets before forking, and each
        worker passes its inherited socket here.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 *, executor=None, map_workers: "int | None" = None,
                 cache_dir: "str | None" = None,
                 session: "MappingSession | None" = None,
                 request_threads: int = 4,
                 request_timeout: float = 300.0,
                 max_request_bytes: int = 1 << 20,
                 max_inflight: "int | None" = None,
                 retry_after_hint: float = 1.0,
                 drain_grace: float = 30.0,
                 listen_socket=None):
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.max_request_bytes = max_request_bytes
        self.retry_after_hint = retry_after_hint
        self.drain_grace = drain_grace
        self.admission = AdmissionController(max_inflight)
        self.draining = False
        self.requests = 0
        self.errors = 0
        self._map_workers = map_workers
        self._request_threads = request_threads
        self._request_executor = executor
        self._owns_request_executor = executor is None
        self._map_executor: "ProcessPoolExecutor | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._listen_socket = listen_socket
        self._handlers: "set[asyncio.Task]" = set()
        self.metrics = MetricsRegistry()
        if session is not None:
            self.session = session
        elif cache_dir is None:
            self.session = default_session()
        else:
            self.session = MappingSession(SessionConfig.from_env(cache_dir=cache_dir))
        self.catalog = self.session.catalog
        self.flight = SingleFlight()
        self._routes = {"/healthz": ("GET", self._get_health),
                        "/metrics": ("GET", self._get_metrics),
                        "/v1/platforms": ("GET", self._get_platforms),
                        "/v1/workloads": ("GET", self._get_workloads),
                        "/v1/stats": ("GET", self._get_stats),
                        "/v1/map": ("POST", self._post_map),
                        "/v1/pareto": ("POST", self._post_pareto),
                        "/v1/verify": ("POST", self._post_verify),
                        "/v1/sweep": ("POST", self._post_sweep)}
        # Measured-accuracy responses keyed by the map digest:
        # measurement is deterministic (fixed stimulus, fixed formats),
        # so a verified block is answered from memory for the process
        # lifetime instead of re-running its kernels.
        self._verify_cache: "dict[str, dict]" = {}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Stand the executors up, warm the catalog, bind the socket.

        Frontend block extraction (the expensive part of a cold start,
        ~1.5s) runs on the request executor *before* the socket binds:
        an open port means ready, and the event loop never stalls on
        extraction under the first live request.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        if self._request_executor is None:
            self._request_executor = ThreadPoolExecutor(
                max_workers=self._request_threads,
                thread_name_prefix="repro-map")
        if self._map_workers and self._map_workers > 1:
            self._map_executor = ProcessPoolExecutor(
                max_workers=self._map_workers)
        # Deliberately not via _offload: the injectable request
        # executor is a test seam (it may gate request work), and
        # warming must not depend on it.
        await asyncio.get_running_loop().run_in_executor(
            None, self.catalog.blocks)
        if self._listen_socket is not None:
            self._server = await asyncio.start_server(
                self._handle, sock=self._listen_socket)
        else:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on http://%s:%s", self.host, self.port)

    async def shutdown(self) -> None:
        """Graceful stop: refuse new connections, drain, tear down.

        In-flight requests finish (bounded by ``request_timeout``);
        service-owned executors are shut down afterwards.  Idempotent.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)
        if self._map_executor is not None:
            self._map_executor.shutdown(wait=True)
            self._map_executor = None
        if self._owns_request_executor and self._request_executor is not None:
            self._request_executor.shutdown(wait=True)
            self._request_executor = None
        logger.info("service stopped")

    async def drain(self, grace: "float | None" = None) -> None:
        """The SIGTERM path: stop admitting, finish in-flight, stop.

        From the first moment of the drain every new request is
        answered ``503`` + ``Retry-After`` (with the usual
        ``Connection: close``); admitted work gets up to ``grace``
        seconds (default :attr:`drain_grace`) to finish before
        :meth:`shutdown` tears the listener down.  Idempotent, like
        :meth:`shutdown`.
        """
        if grace is None:
            grace = self.drain_grace
        self.draining = True
        logger.info("draining: refusing new work, %d in flight",
                    self.admission.inflight)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while self.admission.inflight and loop.time() < deadline:
            await asyncio.sleep(0.05)
        await self.shutdown()

    # -- connection handling ---------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            await self._handle_one(reader, writer)
        except Exception:
            logger.exception("connection handler failed")
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        # The timeout wraps reading and dispatch separately and never
        # the response write: a timed-out stage turns into exactly one
        # clean error response, instead of a second response racing a
        # partially-written one onto the wire.
        try:
            inject("service.accept")
            parsed = await asyncio.wait_for(self._read_request(reader),
                                            self.request_timeout)
        except asyncio.TimeoutError:
            self.errors += 1
            await self._respond(writer, 400,
                                {"error": "timed out reading request"})
            return
        except ServiceError as err:
            self.errors += 1
            await self._respond(writer, err.status, {"error": err.message},
                                retry_after=err.retry_after)
            return
        if parsed is None:       # peer connected and went away: no reply
            return
        method, path, body = parsed
        endpoint = path if path in self._routes else "other"
        self.requests += 1
        started = asyncio.get_running_loop().time()
        if self.draining:
            # Refusing with 503 + Retry-After (and the usual
            # Connection: close) lets well-behaved clients fail over
            # instead of piling onto a stopping process.
            self.errors += 1
            self.admission.shed(endpoint)
            self._observe(endpoint, started, 503)
            await self._respond(writer, 503, {"error": "service is draining"},
                                retry_after=self.retry_after_hint)
            return
        # The fleet-routing hook: a worker that is not a request's
        # shard owner answers with the owner's relayed response
        # instead of dispatching locally.  Routed-out requests bypass
        # the *local* admission gate deliberately — the owning
        # worker's gate is the one that must decide, and its 429
        # relays back through here.
        routed = await self._route(method, path, body)
        if routed is not None:
            status, payload, retry_after = routed
            if status >= 400:
                self.errors += 1
            self._observe(endpoint, started, status)
            await self._respond(writer, status, payload,
                                retry_after=retry_after)
            return
        if not self.admission.try_acquire(endpoint):
            self.errors += 1
            self._observe(endpoint, started, 429)
            await self._respond(writer, 429,
                                {"error": "service is over capacity"},
                                retry_after=self.retry_after_hint)
            return
        retry_after = None
        try:
            status, payload = await asyncio.wait_for(
                self._dispatch(method, path, body), self.request_timeout)
        except asyncio.TimeoutError:
            # Work still grinding past the bound is overload by
            # another name: shed it retryably rather than answering
            # 500 (a fault) or leaving the connection hanging.
            status, payload = 503, {"error": "request timed out"}
            retry_after = self.retry_after_hint
        except ServiceError as err:
            status, payload = err.status, {"error": err.message}
            retry_after = err.retry_after
        except Exception as exc:
            logger.exception("request %s %s failed", method, path)
            status = 500
            payload = {"error": f"internal error: {type(exc).__name__}"}
        finally:
            self.admission.release(endpoint)
        if status >= 400:
            self.errors += 1
        self._observe(endpoint, started, status)
        await self._respond(writer, status, payload, retry_after=retry_after)

    async def _route(self, method: str, path: str, body: bytes):
        """Shard-routing hook: ``None`` means "handle locally".

        The base service always handles locally; the fleet's
        :class:`~repro.service.fleet.FleetWorker` overrides this with
        the consistent-hash router and returns a
        ``(status, payload, retry_after)`` triple relayed from the
        owning worker when the request belongs elsewhere.
        """
        return None

    def _observe(self, endpoint: str, started: float, status: int) -> None:
        """Record one answered request in the latency metrics."""
        elapsed = asyncio.get_running_loop().time() - started
        self.metrics.observe(endpoint, elapsed, status)

    async def _read_request(self, reader: asyncio.StreamReader):
        """``(method, path, body)`` of one request, or ``None`` on a
        silently-closed connection; malformed input raises 400."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as err:
            if not err.partial:
                return None
            raise ServiceError(400, "malformed HTTP request") from None
        except asyncio.LimitOverrunError:
            raise ServiceError(400, "request head too large") from None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ServiceError(400, f"malformed request line "
                                    f"{request_line!r}")
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _sep, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServiceError(400, "malformed Content-Length") from None
        if length < 0 or length > self.max_request_bytes:
            raise ServiceError(413, "request body too large")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ServiceError(400, "truncated request body") from None
        return method.upper(), path, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload, *, retry_after: "float | None" = None) -> None:
        try:
            body = canonical_json(payload)
        except ValueError:
            status, body = 500, canonical_json(
                {"error": "non-finite value in response"})
        reason = _REASONS.get(status, "Error")
        # Retry-After is integral seconds per RFC 9110; rounding up
        # keeps a sub-second hint from becoming "retry immediately".
        hint = (f"Retry-After: {max(1, math.ceil(retry_after))}\r\n"
                if retry_after is not None else "")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{hint}"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass                 # peer vanished mid-reply: nothing to do

    # -- routing ---------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes):
        route = self._routes.get(path)
        if route is None:
            raise ServiceError(404, f"no such endpoint {path!r}")
        expected, handler = route
        if method != expected:
            raise ServiceError(405, f"{path} expects {expected}")
        if expected == "GET":
            result = handler()
            if inspect.isawaitable(result):
                # The fleet's aggregating /metrics handler is async
                # (it consults peers); plain GET handlers stay sync.
                result = await result
            return 200, result
        return 200, await handler(parse_json_body(body))

    # -- GET endpoints ----------------------------------------------------
    def _get_health(self) -> dict:
        return {"ok": True, "service": "repro.service",
                "schema_version": SCHEMA_VERSION}

    def _get_platforms(self) -> dict:
        # Rendered from the session (not module globals), so a service
        # built around a custom registry advertises exactly the keys
        # its /v1/map resolves — and matches `repro platforms --json`.
        return {"default": self.session.config.platform,
                "platforms": [{
                    "key": entry.key,
                    "processor": entry.spec.name,
                    "clock_hz": entry.spec.clock_hz,
                    "has_fpu": entry.spec.has_fpu,
                } for entry in self.session.config.registry]}

    def _get_workloads(self) -> dict:
        # The session's payload verbatim — the same dict the CLI's
        # `repro workloads --json` renders, which is what makes the
        # two surfaces byte-comparable.
        return self.session.workloads_payload()

    def _get_metrics(self):
        """The ``/metrics`` payload: per-endpoint latency histograms
        plus the admitted/shed/coalesced counters, in the mergeable
        shape documented in ``docs/architecture.md`` ("Fleet front").
        A single-process service reports ``workers: 1``; the fleet
        overrides this with the cross-worker aggregate.
        """
        return {"service": {"workers": 1,
                            "schema_version": SCHEMA_VERSION},
                "bucket_bounds_seconds": list(BUCKET_BOUNDS_WIRE),
                "endpoints": self.metrics.snapshot(),
                "requests": self.requests,
                "errors": self.errors,
                "admission": self.admission.stats(),
                "singleflight": self.flight.stats(),
                "caches": self.session.cache_counters()}

    def _get_stats(self) -> dict:
        return {"service": {"host": self.host, "port": self.port,
                            "requests": self.requests,
                            "errors": self.errors,
                            "map_workers": self._map_workers or 1,
                            "schema_version": SCHEMA_VERSION,
                            "singleflight": self.flight.stats(),
                            "admission": self.admission.stats(),
                            "draining": self.draining},
                "caches": self.session.stats()}

    # -- POST endpoints ---------------------------------------------------
    async def _post_map(self, payload) -> dict:
        request = MapRequest.from_payload(payload)
        winner, matches, platform = await self._resolve_map(request)
        return map_response(request, platform, winner, matches)

    async def _post_pareto(self, payload) -> dict:
        request = MapRequest.from_payload(payload)
        _winner, matches, platform = await self._resolve_map(request)
        # Fronts are derived in-process from the shared match list —
        # the same derived-front contract the sweep obeys — so energy
        # models are never baked into coalesced/cached values.
        result = BlockParetoResult.from_matches(request.block, platform,
                                                matches)
        return pareto_response(request, result)

    def _map_key(self, request: MapRequest):
        """``(cache key, block, library, platform)`` for one map or
        pareto request — the same key a direct ``map_block`` call
        builds, shared by the single-flight layer and the fleet's
        shard router (both digest it with ``stable_digest``)."""
        block = self.catalog.block(request.block, request.workload)
        library = self.catalog.library(request.library)
        platform = self.catalog.platform(request.platform)
        key = _map_block_key(block, library, platform,
                             request.tolerance, request.accuracy_budget)
        return key, block, library, platform

    async def _resolve_map(self, request: MapRequest):
        """Steps 2–5 of the request lifecycle for one block mapping."""
        key, block, library, platform = self._map_key(request)
        winner, matches = await self.flight.run(
            stable_digest(key),
            lambda: self._offload(self._map_work, request, block,
                                  library, platform))
        return winner, matches, platform

    def _map_work(self, request: MapRequest, block, library, platform):
        # The dispatch fault site fires on the executor thread: an
        # injected delay stalls the *work* (surfacing as a clean 503
        # timeout), never the event loop.
        inject("service.dispatch")
        report = self.session.batch(
            [BatchItem.for_block(block, library, platform,
                                 tolerance=request.tolerance,
                                 accuracy_budget=request.accuracy_budget)],
            executor=self._map_executor)
        return report.results[0]

    async def _post_verify(self, payload) -> dict:
        request = MapRequest.from_payload(payload)
        key, _block, _library, _platform = self._map_key(request)
        digest = stable_digest(("verify",) + key)
        cached = self._verify_cache.get(digest)
        if cached is not None:
            return cached
        response = await self.flight.run(
            digest,
            lambda: self._offload(self._verify_work, request))
        if len(self._verify_cache) >= 1024:
            self._verify_cache.pop(next(iter(self._verify_cache)))
        self._verify_cache[digest] = response
        return response

    def _verify_work(self, request: MapRequest) -> dict:
        inject("service.dispatch")
        # Name arguments from the validated request, so the session
        # resolves exactly like a CLI `repro verify` call and the two
        # surfaces stay byte-comparable.
        return self.session.verify(
            request.block, request.library, request.platform,
            tolerance=request.tolerance,
            accuracy_budget=request.accuracy_budget,
            workload=request.workload).to_payload()

    def _sweep_key(self, request: SweepRequest):
        """``(coalescing key, platform keys, libraries, blocks)`` for
        one sweep request; the fleet router digests the same key."""
        platform_keys = self.catalog.platform_keys(request.platforms)
        libraries = None
        if request.libraries is not None:
            libraries = [self.catalog.library_combo(combo)
                         for combo in request.libraries]
        blocks = self.catalog.block_subset(request.blocks, request.workload)
        # The workload key is part of the coalescing key even though the
        # block fingerprints cover the work: the report *labels* itself
        # with the workload, so same-blocks/different-label requests
        # must not share a flight.
        key = ("service_sweep", request.workload, platform_keys,
               tuple(fingerprint_library(lib) for lib in libraries or ()),
               request.libraries is None,
               tuple(fingerprint_block(b) for b in blocks.values()),
               request.tolerance, request.accuracy_budget)
        return key, platform_keys, libraries, blocks

    async def _post_sweep(self, payload) -> dict:
        request = SweepRequest.from_payload(payload)
        key, platform_keys, libraries, blocks = self._sweep_key(request)
        report = await self.flight.run(
            stable_digest(key),
            lambda: self._offload(self._sweep_work, request,
                                  platform_keys, libraries, blocks))
        return sweep_response(report)

    def _sweep_work(self, request: SweepRequest, platform_keys,
                    libraries, blocks):
        inject("service.dispatch")
        # The session's memoized flow: bound to its tiers and catalog.
        # Only override the flow's executor when the service owns a
        # map pool — an explicit None would *disable* a session-
        # configured executor through sweep's _UNSET sentinel.
        overrides = {}
        if self._map_executor is not None:
            overrides["executor"] = self._map_executor
        return self.session.flow().sweep(
            platforms=list(platform_keys), libraries=libraries,
            blocks=blocks, tolerance=request.tolerance,
            accuracy_budget=request.accuracy_budget,
            workload=request.workload, **overrides)

    def _offload(self, fn, *args):
        """Run ``fn`` on the request executor; awaitable result."""
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(self._request_executor, fn, *args)


class ServiceThread:
    """A :class:`MappingService` on a background event loop.

    The in-process harness tests, benchmarks and examples share: enter
    the context manager and the service is listening (``base_url``);
    exit and it has shut down gracefully.  The hosting thread owns a
    private event loop, so the caller's thread stays free for blocking
    clients.
    """

    def __init__(self, service: "MappingService | None" = None):
        self.service = service or MappingService(port=0)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service", daemon=True)
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:       # startup failed: report it
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        if not self._started.wait(timeout=60):
            raise TimeoutError("service failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *_exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(self.service.shutdown(),
                                                  self._loop)
        try:
            future.result(timeout=60)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=60)

    def run_coroutine(self, coro):
        """Run ``coro`` on the service loop; blocks for the result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout=60)
