"""``python -m repro.service`` — run the mapping service.

Binds the asyncio HTTP front-end and serves until SIGINT/SIGTERM, then
shuts down gracefully (in-flight requests finish, executors drain).
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal

from repro.service.server import DEFAULT_PORT, MappingService


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the symbolic library-mapping flow over "
                    "HTTP/JSON (see docs/architecture.md, 'Service "
                    "layer').")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="bind port; 0 picks an ephemeral one "
                             "(default: %(default)s)")
    parser.add_argument("--map-workers", type=int, default=None,
                        help="share one process pool of N workers "
                             "across all batch submissions (default: "
                             "in-thread serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="pin the persistent mapping cache tier "
                             "to this directory")
    parser.add_argument("--request-timeout", type=float, default=300.0,
                        help="per-request wall-clock bound, seconds "
                             "(default: %(default)s)")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level logging")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    service = MappingService(
        host=args.host, port=args.port, map_workers=args.map_workers,
        cache_dir=args.cache_dir, request_timeout=args.request_timeout)
    await service.start()
    print(f"repro.service listening on "
          f"http://{service.host}:{service.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:      # platforms without signal fds
            pass
    try:
        await stop.wait()
    finally:
        await service.shutdown()


def main(argv=None) -> None:
    args = _parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
