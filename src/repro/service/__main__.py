"""``python -m repro.service`` — run the mapping service.

Binds the asyncio HTTP front-end and serves until a signal arrives.
SIGTERM (the orchestrator's stop) *drains*: new requests are refused
with 503 + ``Retry-After`` while in-flight work gets up to
``--drain-grace`` seconds to finish.  SIGINT (an operator's ^C) skips
the grace window and shuts down immediately.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal

from repro.service.server import DEFAULT_PORT, MappingService


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the symbolic library-mapping flow over "
                    "HTTP/JSON (see docs/architecture.md, 'Service "
                    "layer').")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="bind port; 0 picks an ephemeral one "
                             "(default: %(default)s)")
    parser.add_argument("--map-workers", type=int, default=None,
                        help="share one process pool of N workers "
                             "across all batch submissions (default: "
                             "in-thread serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="pin the persistent mapping cache tier "
                             "to this directory")
    parser.add_argument("--request-timeout", type=float, default=300.0,
                        help="per-request wall-clock bound, seconds; "
                             "expiry answers 503 + Retry-After "
                             "(default: %(default)s)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="admission bound: shed requests past N "
                             "in flight with 429 + Retry-After "
                             "(default: unbounded)")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        help="seconds advertised in Retry-After on "
                             "429/503 sheds (default: %(default)s)")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds SIGTERM waits for in-flight "
                             "work before stopping "
                             "(default: %(default)s)")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level logging")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    service = MappingService(
        host=args.host, port=args.port, map_workers=args.map_workers,
        cache_dir=args.cache_dir, request_timeout=args.request_timeout,
        max_inflight=args.max_inflight, retry_after_hint=args.retry_after,
        drain_grace=args.drain_grace)
    await service.start()
    print(f"repro.service listening on "
          f"http://{service.host}:{service.port}", flush=True)

    stop = asyncio.Event()
    mode = {"drain": False}
    loop = asyncio.get_running_loop()

    def _stop(drain: bool) -> None:
        mode["drain"] = drain
        stop.set()

    try:
        loop.add_signal_handler(signal.SIGINT, _stop, False)
        loop.add_signal_handler(signal.SIGTERM, _stop, True)
    except NotImplementedError:          # platforms without signal fds
        pass
    try:
        await stop.wait()
    finally:
        if mode["drain"]:
            await service.drain()
        else:
            await service.shutdown()


def main(argv=None) -> None:
    args = _parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
