"""``python -m repro.service`` — run the mapping service.

Binds the asyncio HTTP front-end and serves until a signal arrives.
SIGTERM (the orchestrator's stop) *drains*: new requests are refused
with 503 + ``Retry-After`` while in-flight work gets up to
``--drain-grace`` seconds to finish.  SIGINT (an operator's ^C) skips
the grace window and shuts down immediately.

``--workers N`` (N >= 2) runs the multi-process fleet front instead:
a :class:`~repro.service.fleet.FleetSupervisor` forks N worker
processes behind one port (SO_REUSEPORT where available, a shared
inherited socket otherwise).  SIGTERM/SIGINT stop the fleet as above;
SIGHUP additionally triggers a graceful rolling restart — workers are
drained and replaced one at a time, so the port never goes dark.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal
import threading

from repro.service.fleet import FleetSupervisor
from repro.service.server import DEFAULT_PORT, MappingService


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the symbolic library-mapping flow over "
                    "HTTP/JSON (see docs/architecture.md, 'Service "
                    "layer').")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="bind port; 0 picks an ephemeral one "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=1,
                        help="fork N worker processes behind the port "
                             "(the fleet front; SIGHUP rolls them "
                             "over one at a time; default: one "
                             "in-process service)")
    parser.add_argument("--map-workers", type=int, default=None,
                        help="share one process pool of N workers "
                             "across all batch submissions (default: "
                             "in-thread serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="pin the persistent mapping cache tier "
                             "to this directory")
    parser.add_argument("--request-timeout", type=float, default=300.0,
                        help="per-request wall-clock bound, seconds; "
                             "expiry answers 503 + Retry-After "
                             "(default: %(default)s)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="admission bound: shed requests past N "
                             "in flight with 429 + Retry-After "
                             "(default: unbounded)")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        help="seconds advertised in Retry-After on "
                             "429/503 sheds (default: %(default)s)")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds SIGTERM waits for in-flight "
                             "work before stopping "
                             "(default: %(default)s)")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level logging")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    service = MappingService(
        host=args.host, port=args.port, map_workers=args.map_workers,
        cache_dir=args.cache_dir, request_timeout=args.request_timeout,
        max_inflight=args.max_inflight, retry_after_hint=args.retry_after,
        drain_grace=args.drain_grace)
    await service.start()
    print(f"repro.service listening on "
          f"http://{service.host}:{service.port}", flush=True)

    stop = asyncio.Event()
    mode = {"drain": False}
    loop = asyncio.get_running_loop()

    def _stop(drain: bool) -> None:
        mode["drain"] = drain
        stop.set()

    try:
        loop.add_signal_handler(signal.SIGINT, _stop, False)
        loop.add_signal_handler(signal.SIGTERM, _stop, True)
    except NotImplementedError:          # platforms without signal fds
        pass
    try:
        await stop.wait()
    finally:
        if mode["drain"]:
            await service.drain()
        else:
            await service.shutdown()


def _serve_fleet(args: argparse.Namespace) -> None:
    """The --workers N path: supervise, answer signals, never serve."""
    supervisor = FleetSupervisor(
        workers=args.workers, host=args.host, port=args.port,
        cache_dir=args.cache_dir, map_workers=args.map_workers,
        request_timeout=args.request_timeout,
        max_inflight=args.max_inflight,
        retry_after_hint=args.retry_after,
        drain_grace=args.drain_grace)
    supervisor.start()
    supervisor.wait_ready()
    # Same prefix as the single-process line: CI smoke steps parse the
    # bound port out of "listening on http://HOST:PORT".
    print(f"repro.service listening on "
          f"http://{supervisor.host}:{supervisor.port} "
          f"({supervisor.workers} workers, {supervisor.strategy})",
          flush=True)

    wake = threading.Event()
    state = {"stop": False, "drain": True, "hup": False}

    def _on_signal(signum, _frame) -> None:
        if signum == signal.SIGHUP:
            state["hup"] = True
        else:
            state["stop"] = True
            state["drain"] = signum == signal.SIGTERM
        wake.set()

    for signum in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP):
        signal.signal(signum, _on_signal)
    try:
        while True:
            wake.wait()
            wake.clear()
            if state["stop"]:
                break
            if state["hup"]:
                state["hup"] = False
                supervisor.rolling_restart()
                print("repro.service fleet rolled", flush=True)
    finally:
        supervisor.stop(drain=state["drain"])


def main(argv=None) -> None:
    args = _parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    if args.workers and args.workers > 1:
        try:
            _serve_fleet(args)
        except KeyboardInterrupt:
            pass
        return
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
