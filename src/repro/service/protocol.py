"""Wire protocol of the mapping service, re-derived from ``repro.api``.

Since the session facade landed, the canonical wire format lives in
:mod:`repro.api.types` — :func:`canonical_json`, the request
dataclasses (:class:`~repro.api.MapRequest`,
:class:`~repro.api.SweepRequest`) and the result payload builders
(:meth:`~repro.api.MapResult.to_payload`,
:meth:`~repro.api.ParetoResult.to_payload`) — and the named-resource
catalog in :mod:`repro.api.catalog`.  This module is the HTTP-facing
remainder: body parsing plus thin response-shaping wrappers, all
delegating to the api layer so a service response and a
``session.map(...).to_json()`` can never drift apart.

The historic names (``ServiceCatalog``, ``map_response``, ...) are
re-exported unchanged for existing imports.

Canonical JSON is also what makes the fleet's shard routing sound:
``canonical_json(json.loads(body)) == body`` for any canonical body,
so a response relayed worker-to-worker re-renders byte-identical to
one served directly (pinned by the fleet parity tests).
"""

from __future__ import annotations

import json

from repro.api.catalog import ResourceCatalog
from repro.api.types import (
    DEFAULT_LIBRARY,
    DEFAULT_PLATFORM,
    LIBRARY_TAGS,
    MapRequest,
    MapResult,
    ParetoResult,
    SweepRequest,
    canonical_json,
)
from repro.errors import ServiceError
from repro.platform.badge4 import Badge4

__all__ = [
    "canonical_json",
    "parse_json_body",
    "MapRequest",
    "SweepRequest",
    "ServiceCatalog",
    "map_response",
    "pareto_response",
    "sweep_response",
    "LIBRARY_TAGS",
    "DEFAULT_LIBRARY",
    "DEFAULT_PLATFORM",
]

#: The service's resource catalog is the session facade's, verbatim.
ServiceCatalog = ResourceCatalog


def parse_json_body(body: bytes):
    """Decode a request body, mapping every failure to a 400."""
    if not body:
        raise ServiceError(400, "request body must be a JSON object")
    try:
        return json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceError(400, f"malformed JSON body: {exc}") from None


# ----------------------------------------------------------------------
# Response payloads (dicts ready for canonical_json) — thin wrappers
# over the api result types, kept for the transport layer's call shape.
# ----------------------------------------------------------------------
def map_response(request: MapRequest, platform: Badge4, winner, matches) -> dict:
    """The ``/v1/map`` payload: exactly ``MapResult.to_payload()``."""
    result = MapResult(
        request=request, platform=platform, winner=winner, matches=tuple(matches)
    )
    return result.to_payload()


def pareto_response(request: MapRequest, result) -> dict:
    """The ``/v1/pareto`` payload: exactly ``ParetoResult.to_payload()``."""
    return ParetoResult(request=request, result=result).to_payload()


def sweep_response(report) -> dict:
    """The ``/v1/sweep`` payload: exactly the sweep's canonical JSON.

    Round-tripping through ``to_json()`` keeps the byte-parity
    guarantee :mod:`repro.mapping.flow` already proves for sweeps.
    """
    return json.loads(report.to_json())
