"""Wire protocol of the mapping service: requests, responses, canonical
JSON, and the named-resource catalog.

Everything that crosses the HTTP boundary is defined here so the
transport layer (:mod:`repro.service.server`) and the client
(:mod:`repro.service.client`) share one source of truth:

* **Canonical JSON** — :func:`canonical_json` renders sorted keys, no
  whitespace, ``repr``-exact floats, NaN/Infinity rejected.  Responses
  built from the same mapping result are therefore *byte-identical*
  regardless of which worker served them or which cache tier the
  result came from — the same parity contract
  :meth:`~repro.mapping.flow.SweepReport.to_json` already gives the
  sweep.
* **Request dataclasses** — :class:`MapRequest` and
  :class:`SweepRequest` parse and validate JSON payloads, raising
  :class:`~repro.errors.ServiceError` with the HTTP status the
  transport should answer (400 malformed, 404 unknown resource).
* **The catalog** — :class:`ServiceCatalog` resolves request names
  (block names, library tags, registry platform keys) to live objects,
  memoizing them per instance: reusing the *same* ``Library`` and
  ``TargetBlock`` objects across requests keeps the per-library
  fingerprint memo hot and lets the batch engine dedup identical work.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.frontend.extract import TargetBlock
from repro.library.builtin import (inhouse_library, ipp_library,
                                   linux_math_library, reference_library)
from repro.library.catalog import Library
from repro.mapping.flow import methodology_blocks
from repro.platform.badge4 import Badge4
from repro.platform.registry import DEFAULT_REGISTRY

__all__ = ["canonical_json", "parse_json_body",
           "MapRequest", "SweepRequest", "ServiceCatalog",
           "map_response", "pareto_response", "sweep_response",
           "LIBRARY_TAGS", "DEFAULT_LIBRARY", "DEFAULT_PLATFORM"]

#: Library tags a request may combine, in canonical order.
LIBRARY_TAGS = ("REF", "LM", "IH", "IPP")

#: The default /v1/map ladder: everything the paper's final pass uses.
DEFAULT_LIBRARY = ("REF", "LM", "IH", "IPP")

#: The paper's processor, and the registry's first entry.
DEFAULT_PLATFORM = "SA-1110"

_BUILDERS = {"REF": reference_library, "LM": linux_math_library,
             "IH": inhouse_library, "IPP": ipp_library}


def canonical_json(payload) -> bytes:
    """The one JSON encoding responses use: sorted, compact, ASCII.

    ``allow_nan=False`` turns an accidental NaN/Infinity in a payload
    into a loud ``ValueError`` instead of invalid JSON on the wire —
    canonical responses must parse everywhere.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False).encode("ascii")


def parse_json_body(body: bytes):
    """Decode a request body, mapping every failure to a 400."""
    if not body:
        raise ServiceError(400, "request body must be a JSON object")
    try:
        return json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceError(400, f"malformed JSON body: {exc}") from None


def _require_object(payload) -> dict:
    if not isinstance(payload, dict):
        raise ServiceError(400, "request body must be a JSON object")
    return payload


def _reject_unknown(payload: dict, known: tuple) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ServiceError(400, f"unknown request field(s): {unknown}")


def _string(payload: dict, key: str, default=None) -> str:
    value = payload.get(key, default)
    if not isinstance(value, str) or not value:
        raise ServiceError(400, f"field {key!r} must be a non-empty string")
    return value


def _number(payload: dict, key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(400, f"field {key!r} must be a number")
    return float(value)


def _string_tuple(payload: dict, key: str, default) -> tuple:
    value = payload.get(key, default)
    if value is default:
        return default
    if not isinstance(value, (list, tuple)) or not value \
            or not all(isinstance(v, str) and v for v in value):
        raise ServiceError(
            400, f"field {key!r} must be a non-empty list of strings")
    duplicates = sorted({v for v in value if list(value).count(v) > 1})
    if duplicates:
        # Every list field names a set of resources; a duplicate would
        # either conflate report cells (sweep labels) or silently
        # collapse — reject it here, before any heavy work runs,
        # instead of letting the registry raise deep in a worker.
        raise ServiceError(
            400, f"field {key!r} has duplicate entries: {duplicates}")
    return tuple(value)


@dataclass(frozen=True)
class MapRequest:
    """One ``/v1/map`` (or ``/v1/pareto``) request, validated.

    ``library`` is a tuple of catalog tags (subset of
    :data:`LIBRARY_TAGS`) combined with
    :meth:`~repro.library.catalog.Library.union`; ``platform`` a
    processor-registry key.  The tolerance/accuracy knobs mirror
    :func:`~repro.mapping.decompose.map_block` exactly, so a service
    request and a direct call share cache lines.
    """

    block: str
    library: tuple = DEFAULT_LIBRARY
    platform: str = DEFAULT_PLATFORM
    tolerance: float = 1e-6
    accuracy_budget: float = math.inf

    _FIELDS = ("block", "library", "platform", "tolerance",
               "accuracy_budget")

    @classmethod
    def from_payload(cls, payload) -> "MapRequest":
        payload = _require_object(payload)
        _reject_unknown(payload, cls._FIELDS)
        return cls(
            block=_string(payload, "block"),
            library=_string_tuple(payload, "library", DEFAULT_LIBRARY),
            platform=_string(payload, "platform", DEFAULT_PLATFORM),
            tolerance=_number(payload, "tolerance", 1e-6),
            accuracy_budget=_number(payload, "accuracy_budget", math.inf))

    def to_payload(self) -> dict:
        """The JSON form a client sends (defaults elided)."""
        payload: dict = {"block": self.block}
        if self.library != DEFAULT_LIBRARY:
            payload["library"] = list(self.library)
        if self.platform != DEFAULT_PLATFORM:
            payload["platform"] = self.platform
        if self.tolerance != 1e-6:
            payload["tolerance"] = self.tolerance
        if not math.isinf(self.accuracy_budget):
            payload["accuracy_budget"] = self.accuracy_budget
        return payload


@dataclass(frozen=True)
class SweepRequest:
    """One ``/v1/sweep`` request, validated.

    ``platforms``/``blocks`` default to ``None`` — "everything the
    service knows": all registered processors, both methodology
    blocks.  ``libraries`` holds ``"+"``-joined tag combos (e.g.
    ``"REF+LM+IH"``), defaulting to the paper's ladder.
    """

    platforms: "tuple | None" = None
    libraries: "tuple | None" = None
    blocks: "tuple | None" = None
    tolerance: float = 1e-6
    accuracy_budget: float = math.inf

    _FIELDS = ("platforms", "libraries", "blocks", "tolerance",
               "accuracy_budget")

    @classmethod
    def from_payload(cls, payload) -> "SweepRequest":
        payload = _require_object(payload)
        _reject_unknown(payload, cls._FIELDS)
        return cls(
            platforms=_string_tuple(payload, "platforms", None),
            libraries=_string_tuple(payload, "libraries", None),
            blocks=_string_tuple(payload, "blocks", None),
            tolerance=_number(payload, "tolerance", 1e-6),
            accuracy_budget=_number(payload, "accuracy_budget", math.inf))

    def to_payload(self) -> dict:
        payload: dict = {}
        if self.platforms is not None:
            payload["platforms"] = list(self.platforms)
        if self.libraries is not None:
            payload["libraries"] = list(self.libraries)
        if self.blocks is not None:
            payload["blocks"] = list(self.blocks)
        if self.tolerance != 1e-6:
            payload["tolerance"] = self.tolerance
        if not math.isinf(self.accuracy_budget):
            payload["accuracy_budget"] = self.accuracy_budget
        return payload


class ServiceCatalog:
    """Named resources one service instance serves, memoized.

    Blocks are extracted once (frontend symbolic execution is the
    expensive part of a cold start); each library combination is
    assembled once and the *same object* reused for every request, so
    the per-instance fingerprint memo
    (:func:`~repro.mapping.cache.fingerprint_library`) and the batch
    engine's per-object pickle memo both stay hot.
    """

    def __init__(self, blocks: "dict[str, TargetBlock] | None" = None):
        self._blocks: "dict[str, TargetBlock] | None" = \
            dict(blocks) if blocks is not None else None
        self._libraries: dict[tuple, Library] = {}
        self._platforms: dict[str, Badge4] = {}

    # -- blocks ---------------------------------------------------------
    def blocks(self) -> "dict[str, TargetBlock]":
        """Every named block (extracting lazily on first use)."""
        if self._blocks is None:
            self._blocks = methodology_blocks()
        return self._blocks

    def block(self, name: str) -> TargetBlock:
        blocks = self.blocks()
        if name not in blocks:
            raise ServiceError(
                404, f"unknown block {name!r}; known: {sorted(blocks)}")
        return blocks[name]

    def block_subset(self, names) -> "dict[str, TargetBlock]":
        """``{name: block}`` for ``names`` (``None`` = every block)."""
        if names is None:
            return dict(self.blocks())
        return {name: self.block(name) for name in names}

    # -- libraries ------------------------------------------------------
    def library(self, tags: tuple) -> Library:
        """The (memoized) union library of catalog ``tags``."""
        tags = tuple(tags)
        unknown = sorted(set(tags) - set(_BUILDERS))
        if unknown:
            raise ServiceError(
                404, f"unknown library tag(s) {unknown}; "
                     f"known: {list(LIBRARY_TAGS)}")
        if len(set(tags)) != len(tags):
            raise ServiceError(400, f"duplicate library tag in {list(tags)}")
        library = self._libraries.get(tags)
        if library is None:
            library = Library.union(*(_BUILDERS[tag]() for tag in tags))
            self._libraries[tags] = library
        return library

    def library_combo(self, combo: str) -> Library:
        """A library from a ``"+"``-joined combo string (sweep form)."""
        return self.library(tuple(combo.split("+")))

    # -- platforms ------------------------------------------------------
    def platform(self, key: str) -> Badge4:
        """The (memoized) platform registered under ``key``."""
        if key not in DEFAULT_REGISTRY:
            raise ServiceError(
                404, f"unknown platform {key!r}; "
                     f"known: {DEFAULT_REGISTRY.names()}")
        platform = self._platforms.get(key)
        if platform is None:
            platform = DEFAULT_REGISTRY.platform(key)
            self._platforms[key] = platform
        return platform

    def platform_keys(self, keys) -> tuple:
        """Validated registry keys (``None`` = every registered one)."""
        if keys is None:
            return tuple(DEFAULT_REGISTRY.names())
        for key in keys:
            self.platform(key)
        return tuple(keys)


# ----------------------------------------------------------------------
# Response payloads (dicts ready for canonical_json)
# ----------------------------------------------------------------------
def map_response(request: MapRequest, platform: Badge4,
                 winner, matches) -> dict:
    """The ``/v1/map`` payload: scalar winner plus every match, priced.

    Deliberately free of timings and cache statistics, so cold, warm
    and coalesced answers to the same request are byte-identical.
    """
    return {
        "block": request.block,
        "platform": request.platform,
        "processor": platform.processor.name,
        "library": "+".join(request.library),
        "mapped": winner is not None,
        "winner": winner.element.name if winner is not None else None,
        "matches": [{
            "element": m.element.name,
            "element_library": m.element.library,
            "cycles": platform.cost_model.cycles(m.element.cost),
            "accuracy": m.element.accuracy,
        } for m in matches],
    }


def pareto_response(request: MapRequest, result) -> dict:
    """The ``/v1/pareto`` payload: the non-dominated front of the same
    cached match list ``/v1/map`` serves (see
    :class:`~repro.mapping.pareto.BlockParetoResult`)."""
    return {
        "block": request.block,
        "platform": request.platform,
        "processor": result.platform_name,
        "library": "+".join(request.library),
        "winner": (result.cycles_winner.element.name
                   if result.cycles_winner is not None else None),
        "front": [{
            "element": p.element_name,
            "element_library": p.library,
            "cycles": p.objectives.cycles,
            "energy_j": p.objectives.energy_j,
            "accuracy": p.objectives.accuracy,
        } for p in result.front],
    }


def sweep_response(report) -> dict:
    """The ``/v1/sweep`` payload: exactly the sweep's canonical JSON.

    Round-tripping through ``to_json()`` keeps the byte-parity
    guarantee :mod:`repro.mapping.flow` already proves for sweeps.
    """
    return json.loads(report.to_json())
