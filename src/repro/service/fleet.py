"""The multi-process fleet front: N workers, one port, shard routing.

ROADMAP item 1's scaling step: one :class:`~repro.service.server.
MappingService` process saturates a single event loop at roughly
140 warm req/s, so ``python -m repro.service --workers N`` puts N
pre-forked service processes behind one listening port.  Three pieces:

**Socket strategy.**  The supervisor binds *before* forking.  Where
the platform has ``SO_REUSEPORT`` (Linux, modern BSDs) each worker
gets its own socket bound to the same address and the kernel balances
new connections across the listening set; where it does not, one
parent-bound socket is inherited by every worker and they share an
accept queue.  Either way the parent never listens — only workers
accept — and the chosen strategy is reported in ``/v1/stats`` and the
startup line.

**Shard router.**  Each worker owns a static slice of the request key
space via a :class:`HashRing` over worker indices, keyed on the same
:func:`~repro.mapping.cache.stable_digest` fingerprint the
single-flight layer coalesces on.  A worker that accepts a request it
does not own first *peeks* the shared cache (memory LRU, then the
sqlite disk tier every worker shares) — warm work is served locally,
because a cache hit is cheaper than a hop — and only forwards cold
work to the owner over the owner's internal loopback listener.  Thus
identical cold requests land on one worker and coalesce there, while
warm traffic scales with the worker count.  Forwarding is one hop by
construction (internal connections never re-route) and fails *open*:
a dead or draining owner means the accepting worker computes locally
rather than failing the request.

**Supervision.**  The parent process is a supervisor, not a proxy: it
forks workers, respawns crashed ones with exponential backoff, and
answers ``SIGHUP`` with a graceful rolling restart — one slot at a
time, SIGTERM (the worker drains via the PR-7 machinery and exits),
join, fork a replacement, wait for its internal ``/healthz``, then
the next slot — so a config rollout never drops below N-1 serving
workers.

Fleet-wide admission control is the per-worker
:class:`~repro.resilience.AdmissionController` applied at the owning
worker: routed requests deliberately skip the accepting worker's gate
and are judged by the owner's, whose 429 + ``Retry-After`` relays
back unchanged.  ``GET /metrics`` on any worker aggregates every
worker's histograms and counters (:mod:`repro.service.metrics`) into
one fleet-wide view.

The ``fleet.worker`` fault site (:func:`repro.resilience.inject`)
fires as a worker picks up a public request; a chaos rule arming it
kills the worker process mid-service (``os._exit``), which is how the
chaos suite proves crashed-worker respawn and router fall-back keep
the {200, 429, 503} response contract.
"""

from __future__ import annotations

import asyncio
import contextvars
import hashlib
import http.client
import json
import logging
import multiprocessing
import os
import signal
import socket
import tempfile
import threading
import time
import warnings

from repro.api import MappingSession, SessionConfig
from repro.mapping.cache import SCHEMA_VERSION, stable_digest
from repro.resilience import inject
from repro.service.metrics import (BUCKET_BOUNDS_WIRE, merge_counters,
                                   merge_metrics)
from repro.service.protocol import (MapRequest, SweepRequest,
                                    parse_json_body)
from repro.service.server import MappingService

__all__ = ["HashRing", "FleetWorker", "FleetSupervisor"]

logger = logging.getLogger("repro.service.fleet")

#: Virtual nodes per worker on the ring.  Enough that a 4-worker ring
#: is balanced to within a few percent; small enough that building the
#: ring is microseconds.
RING_REPLICAS = 64

#: True on connections arriving at a worker's *internal* loopback
#: listener (forwarded work, peer metrics scrapes, supervisor health
#: probes).  Internal requests are handled locally unconditionally —
#: this is what bounds forwarding to one hop.
_INTERNAL: "contextvars.ContextVar[bool]" = contextvars.ContextVar(
    "repro_fleet_internal", default=False)


class HashRing:
    """A consistent-hash ring mapping request digests to worker nodes.

    sha256-based and fully deterministic: the same node set always
    yields the same ring, across processes and restarts, so every
    worker computes identical ownership without coordination.  The
    consistent-hashing property bounds rebalancing: removing one of N
    nodes moves only that node's ~1/N share of the key space (keys
    owned by survivors never move), which the unit tests assert.

    >>> ring = HashRing([0, 1, 2, 3])
    >>> ring.owner("a-request-digest") in (0, 1, 2, 3)
    True
    >>> ring.owner("a-request-digest") == ring.owner("a-request-digest")
    True
    """

    def __init__(self, nodes=(), replicas: int = RING_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: "list[tuple[int, object]]" = []
        self._nodes: "set" = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")

    def add(self, node) -> None:
        """Place ``node`` on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            self._points.append((self._hash(f"{node}#{replica}"), node))
        self._points.sort()

    def remove(self, node) -> None:
        """Take ``node`` off the ring; its keys redistribute."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]

    @property
    def nodes(self) -> tuple:
        return tuple(sorted(self._nodes, key=repr))

    def owner(self, digest: str):
        """The node owning ``digest`` (first point clockwise)."""
        if not self._points:
            raise ValueError("empty hash ring")
        target = self._hash(digest)
        lo, hi = 0, len(self._points)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._points[mid][0] < target:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self._points):
            lo = 0
        return self._points[lo][1]


class FleetWorker(MappingService):
    """One fleet member: a :class:`MappingService` plus the router.

    Extends the base service with (a) an internal loopback listener
    that peers forward cold work to and scrape local metrics from,
    (b) the :meth:`_route` override implementing peek-then-forward
    shard routing, and (c) a fleet-aggregating ``GET /metrics``.

    Parameters beyond the base service's:

    worker_index:
        This worker's slot (also its ring node).
    internal_ports:
        Every worker's internal listener port, indexed by slot — the
        fleet's static membership map, fixed by the supervisor before
        forking.
    internal_socket:
        This worker's pre-bound internal listener socket.
    strategy:
        The supervisor's socket strategy string (``"so_reuseport"`` or
        ``"shared_socket"``), reported in stats.
    """

    #: Seconds an internal forward or metrics scrape may take before
    #: the accepting worker falls back to local handling.  Bounded
    #: separately from request_timeout so a wedged peer cannot pin a
    #: public request for the full request budget.
    FORWARD_TIMEOUT = 30.0
    SCRAPE_TIMEOUT = 5.0

    def __init__(self, *, worker_index: int = 0,
                 internal_ports=(0,), internal_socket=None,
                 strategy: str = "single", **kwargs):
        super().__init__(**kwargs)
        self.worker_index = worker_index
        self.internal_ports = tuple(internal_ports)
        self.strategy = strategy
        self._internal_socket = internal_socket
        self._internal_server: "asyncio.base_events.Server | None" = None
        self.ring = HashRing(range(len(self.internal_ports)))
        self.fleet_counters = {"routed_out": 0, "routed_in": 0,
                               "served_local_owner": 0,
                               "served_local_warm": 0,
                               "forward_fallback": 0}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        await super().start()
        if self._internal_socket is not None:
            self._internal_server = await asyncio.start_server(
                self._handle_internal, sock=self._internal_socket)

    async def shutdown(self) -> None:
        if self._internal_server is not None:
            self._internal_server.close()
            await self._internal_server.wait_closed()
            self._internal_server = None
        await super().shutdown()

    async def _handle_internal(self, reader, writer) -> None:
        # Each connection handler runs in its own task (own context
        # copy), so the flag scopes exactly to this request.
        _INTERNAL.set(True)
        await self._handle(reader, writer)

    # -- the shard router ------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes):
        if _INTERNAL.get():
            if method == "POST":             # not health/metrics probes
                self.fleet_counters["routed_in"] += 1
            return None                      # one hop: never re-forward
        try:
            inject("fleet.worker")
        except Exception:
            # The chaos contract for this site is a *crash*, not an
            # error response: the worker dies mid-service, the client
            # sees a severed connection and retries, and the
            # supervisor respawns the slot.
            os._exit(70)
        if method != "POST" or len(self.internal_ports) < 2:
            return None
        try:
            digest, map_key = self._shard_digest(path, body)
        except Exception:
            return None      # malformed request: local dispatch's 4xx
        owner = self.ring.owner(digest)
        if owner == self.worker_index:
            self.fleet_counters["served_local_owner"] += 1
            return None
        loop = asyncio.get_running_loop()
        if map_key is not None:
            try:
                hit = await loop.run_in_executor(
                    None, self.session.cached_map, map_key, digest)
            except Exception:
                hit = None
            if hit is not None:
                # Warm anywhere is warm here: the peek promoted the
                # entry into the local LRU, so local dispatch is a
                # cache hit and the hop is pure waste.
                self.fleet_counters["served_local_warm"] += 1
                return None
        try:
            status, payload, retry_after = await loop.run_in_executor(
                None, self._forward, owner, method, path, body)
        except Exception as exc:
            logger.warning("forward to worker %d failed (%s); "
                           "handling locally", owner, exc)
            self.fleet_counters["forward_fallback"] += 1
            return None
        if status == 503:
            # A draining or overloaded-to-timeout owner is the
            # router's problem, not the client's: fall back to local
            # computation.  (429 relays — admission is the owner's
            # decision to make.)
            self.fleet_counters["forward_fallback"] += 1
            return None
        self.fleet_counters["routed_out"] += 1
        return status, payload, retry_after

    def _shard_digest(self, path: str, body: bytes):
        """``(digest, map cache key | None)`` for a POST body.

        The digest is over the *same* key the single-flight layer
        uses, so shard ownership and coalescing agree; the map cache
        key (``/v1/map``, ``/v1/pareto``) feeds the warm peek.  Sweep
        keys coalesce but are not themselves cache entries, so sweeps
        return ``None`` and always forward when not owned.
        """
        payload = parse_json_body(body)
        if path in ("/v1/map", "/v1/pareto"):
            request = MapRequest.from_payload(payload)
            key, _block, _library, _platform = self._map_key(request)
            return stable_digest(key), key
        if path == "/v1/sweep":
            request = SweepRequest.from_payload(payload)
            key, _pk, _libs, _blocks = self._sweep_key(request)
            return stable_digest(key), None
        raise ValueError(f"unrouted path {path!r}")

    def _forward(self, owner: int, method: str, path: str, body: bytes):
        """Blocking one-hop relay to ``owner``'s internal listener.

        Runs on the default executor (never the request executor,
        which tests may gate).  The relayed body is re-parsed and
        re-rendered by ``_respond``; canonical JSON makes that a
        byte-identical round trip, which the parity tests pin.
        """
        port = self.internal_ports[owner]
        conn = http.client.HTTPConnection("127.0.0.1", port,
                                          timeout=self.FORWARD_TIMEOUT)
        try:
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            hint = response.getheader("Retry-After")
        finally:
            conn.close()
        retry_after = None
        if hint is not None:
            try:
                retry_after = float(hint)
            except ValueError:
                pass
        return response.status, json.loads(data), retry_after

    # -- observability ---------------------------------------------------
    def _local_metrics(self) -> dict:
        payload = MappingService._get_metrics(self)
        payload["fleet"] = dict(self.fleet_counters)
        return payload

    async def _get_metrics(self):
        """Fleet-wide ``/metrics``: every worker's local snapshot,
        merged.  Internal scrapes answer the local snapshot only —
        the aggregation never recurses.
        """
        if _INTERNAL.get():
            return self._local_metrics()
        loop = asyncio.get_running_loop()
        snapshots = [self._local_metrics()]
        missing = []
        peers = [index for index in range(len(self.internal_ports))
                 if index != self.worker_index]
        results = await asyncio.gather(
            *[loop.run_in_executor(None, self._scrape, index)
              for index in peers], return_exceptions=True)
        for index, result in zip(peers, results):
            if isinstance(result, dict):
                snapshots.append(result)
            else:
                missing.append(index)
        return {"service": {"workers": len(self.internal_ports),
                            "reporting": len(snapshots),
                            "missing_workers": missing,
                            "strategy": self.strategy,
                            "schema_version": SCHEMA_VERSION},
                "bucket_bounds_seconds": list(BUCKET_BOUNDS_WIRE),
                "endpoints": merge_metrics(
                    [s.get("endpoints", {}) for s in snapshots]),
                "requests": sum(s.get("requests", 0) for s in snapshots),
                "errors": sum(s.get("errors", 0) for s in snapshots),
                "admission": merge_counters(
                    [s.get("admission", {}) for s in snapshots]),
                "singleflight": merge_counters(
                    [s.get("singleflight", {}) for s in snapshots]),
                "caches": merge_counters(
                    [s.get("caches", {}) for s in snapshots]),
                "fleet": merge_counters(
                    [s.get("fleet", {}) for s in snapshots])}

    def _scrape(self, index: int) -> dict:
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.internal_ports[index],
            timeout=self.SCRAPE_TIMEOUT)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        if response.status != 200:
            raise RuntimeError(f"worker {index} metrics -> "
                               f"{response.status}")
        return json.loads(data)

    def _get_stats(self) -> dict:
        stats = super()._get_stats()
        stats["fleet"] = {"worker_index": self.worker_index,
                          "workers": len(self.internal_ports),
                          "strategy": self.strategy,
                          "counters": dict(self.fleet_counters)}
        return stats


# ----------------------------------------------------------------------
# The supervisor (parent process)
# ----------------------------------------------------------------------
def _worker_main(index, config, public_socket, internal_socket,
                 internal_ports, session, strategy):
    """Forked-child entry point: serve one fleet slot until signalled.

    Runs with everything inherited through fork — the pre-bound
    sockets, the supervisor-warmed session (catalog extraction already
    done), and any active chaos plan (which is how the chaos suite
    arms ``fleet.worker`` in children it never touches directly).
    """
    try:
        asyncio.run(_worker_serve(index, config, public_socket,
                                  internal_socket, internal_ports,
                                  session, strategy))
    except KeyboardInterrupt:
        pass


async def _worker_serve(index, config, public_socket, internal_socket,
                        internal_ports, session, strategy):
    worker = FleetWorker(worker_index=index,
                         internal_ports=internal_ports,
                         internal_socket=internal_socket,
                         listen_socket=public_socket,
                         session=session, strategy=strategy, **config)
    await worker.start()
    logger.info("fleet worker %d serving (pid %d)", index, os.getpid())

    stop = asyncio.Event()
    mode = {"drain": True}
    loop = asyncio.get_running_loop()

    def _stop(drain: bool) -> None:
        mode["drain"] = drain
        stop.set()

    try:
        loop.add_signal_handler(signal.SIGTERM, _stop, True)
        loop.add_signal_handler(signal.SIGINT, _stop, False)
    except NotImplementedError:              # platforms without signal fds
        pass
    try:
        await stop.wait()
    finally:
        if mode["drain"]:
            await worker.drain()
        else:
            await worker.shutdown()


class FleetSupervisor:
    """Bind, fork, watch: the fleet's parent process.

    ``start()`` binds the public socket(s) and one internal loopback
    socket per worker, warms the shared session's catalog once (the
    expensive frontend extraction is paid pre-fork and inherited), and
    forks ``workers`` children.  A monitor thread respawns crashed
    workers with exponential backoff; :meth:`rolling_restart` replaces
    workers one at a time without dropping the port.  The parent never
    listens and never serves.

    When ``cache_dir`` is ``None`` the supervisor creates a private
    shared cache directory (removed on :meth:`stop`), because the
    cross-worker warm path *requires* all workers to share one sqlite
    disk tier.
    """

    def __init__(self, workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0, *, cache_dir: "str | None" = None,
                 map_workers: "int | None" = None,
                 request_timeout: float = 300.0,
                 max_inflight: "int | None" = None,
                 retry_after_hint: float = 1.0,
                 drain_grace: float = 30.0,
                 respawn: bool = True,
                 respawn_backoff: float = 0.25,
                 respawn_backoff_cap: float = 5.0):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.host = host
        self.port = port
        self.strategy = "unbound"
        self.restarts = 0
        self.cache_dir = cache_dir
        self.drain_grace = drain_grace
        self._config = {"map_workers": map_workers,
                        "request_timeout": request_timeout,
                        "max_inflight": max_inflight,
                        "retry_after_hint": retry_after_hint,
                        "drain_grace": drain_grace}
        self._respawn = respawn
        self._respawn_backoff = respawn_backoff
        self._respawn_backoff_cap = respawn_backoff_cap
        self._owns_cache_dir = False
        self._session: "MappingSession | None" = None
        self._public_sockets: "list[socket.socket]" = []
        self._worker_sockets: "list[socket.socket]" = []
        self._internal_sockets: "list[socket.socket]" = []
        self.internal_ports: "tuple[int, ...]" = ()
        self._procs: "list" = [None] * workers
        self._crashes = [0] * workers
        self._lock = threading.Lock()
        self._replacing: "set[int]" = set()
        self._stopping = threading.Event()
        self._monitor_thread: "threading.Thread | None" = None

    # -- socket strategy -------------------------------------------------
    @staticmethod
    def _new_socket(reuseport: bool) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return sock

    def _bind_public(self) -> None:
        """One socket per worker via SO_REUSEPORT, else one shared.

        The parent binds but never listens: with SO_REUSEPORT the
        kernel balances only across *listening* sockets, so a bound
        non-listening parent copy never swallows connections.
        """
        if hasattr(socket, "SO_REUSEPORT"):
            sockets: "list[socket.socket]" = []
            try:
                first = self._new_socket(reuseport=True)
                first.bind((self.host, self.port))
                sockets.append(first)
                bound = first.getsockname()[1]
                for _ in range(self.workers - 1):
                    sock = self._new_socket(reuseport=True)
                    sock.bind((self.host, bound))
                    sockets.append(sock)
            except OSError:
                for sock in sockets:
                    sock.close()
            else:
                self.port = bound
                self.strategy = "so_reuseport"
                self._public_sockets = sockets
                self._worker_sockets = sockets
                return
        shared = self._new_socket(reuseport=False)
        shared.bind((self.host, self.port))
        self.port = shared.getsockname()[1]
        self.strategy = "shared_socket"
        self._public_sockets = [shared]
        self._worker_sockets = [shared] * self.workers

    def _bind_internal(self) -> None:
        ports = []
        for _ in range(self.workers):
            sock = self._new_socket(reuseport=False)
            sock.bind(("127.0.0.1", 0))
            self._internal_sockets.append(sock)
            ports.append(sock.getsockname()[1])
        self.internal_ports = tuple(ports)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Bind, warm, fork all workers, start the crash monitor."""
        if self._monitor_thread is not None or any(self._procs):
            raise RuntimeError("fleet already started")
        if self.cache_dir is None:
            self.cache_dir = tempfile.mkdtemp(prefix="repro-fleet-")
            self._owns_cache_dir = True
        self._session = MappingSession(
            SessionConfig.from_env(cache_dir=self.cache_dir))
        self._session.catalog.blocks()       # pay extraction once, pre-fork
        self._bind_public()
        self._bind_internal()
        for index in range(self.workers):
            self._procs[index] = self._spawn(index)
        if self._respawn:
            self._monitor_thread = threading.Thread(
                target=self._monitor, name="repro-fleet-monitor",
                daemon=True)
            self._monitor_thread.start()
        logger.info("fleet up: %d workers on %s:%d (%s)", self.workers,
                    self.host, self.port, self.strategy)

    def _spawn(self, index: int):
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_worker_main,
            args=(index, dict(self._config), self._worker_sockets[index],
                  self._internal_sockets[index], self.internal_ports,
                  self._session, self.strategy),
            name=f"repro-fleet-{index}", daemon=False)
        with warnings.catch_warnings():
            # 3.12 warns on fork-from-thread; the monitor thread's
            # respawn path is deliberate and the children exec nothing.
            warnings.simplefilter("ignore", DeprecationWarning)
            process.start()
        return process

    def _monitor(self) -> None:
        while not self._stopping.is_set():
            for index in range(self.workers):
                if self._stopping.is_set():
                    return
                with self._lock:
                    process = self._procs[index]
                    replacing = index in self._replacing
                if replacing or process is None or process.is_alive():
                    continue
                self._crashes[index] += 1
                delay = min(self._respawn_backoff_cap,
                            self._respawn_backoff
                            * (2 ** (self._crashes[index] - 1)))
                logger.warning(
                    "fleet worker %d died (exit %s); respawn #%d in %.2fs",
                    index, process.exitcode, self._crashes[index], delay)
                if self._stopping.wait(delay):
                    return
                with self._lock:
                    if self._stopping.is_set() or index in self._replacing:
                        continue
                    self._procs[index] = self._spawn(index)
                    self.restarts += 1
            self._stopping.wait(0.05)

    def _wait_ready(self, index: int, deadline: float = 60.0) -> None:
        """Block until worker ``index`` answers its internal /healthz."""
        end = time.monotonic() + deadline
        while True:
            try:
                conn = http.client.HTTPConnection(
                    "127.0.0.1", self.internal_ports[index], timeout=5)
                try:
                    conn.request("GET", "/healthz")
                    if conn.getresponse().status == 200:
                        return
                finally:
                    conn.close()
            except OSError:
                pass
            if time.monotonic() >= end:
                raise TimeoutError(f"fleet worker {index} not ready "
                                   f"after {deadline}s")
            time.sleep(0.05)

    def wait_ready(self, deadline: float = 60.0) -> None:
        """Block until every worker answers its internal /healthz."""
        for index in range(self.workers):
            self._wait_ready(index, deadline)

    # -- rolling restart -------------------------------------------------
    def rolling_restart(self) -> None:
        """The SIGHUP path: drain-and-replace one worker at a time.

        Per slot: SIGTERM (the worker stops accepting, drains
        in-flight work through the PR-7 machinery, exits), join, fork
        a replacement on the *same* inherited sockets, wait for its
        internal ``/healthz``.  The remaining N-1 workers keep serving
        the port throughout, so the fleet never goes dark.
        """
        logger.info("rolling restart: %d workers", self.workers)
        for index in range(self.workers):
            self._replace(index)
        logger.info("rolling restart complete")

    def _replace(self, index: int) -> None:
        with self._lock:
            self._replacing.add(index)
            process = self._procs[index]
        try:
            if process is not None and process.is_alive():
                os.kill(process.pid, signal.SIGTERM)
                process.join(timeout=self.drain_grace + 30.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            with self._lock:
                self._crashes[index] = 0
                self._procs[index] = self._spawn(index)
                self.restarts += 1
            self._wait_ready(index)
        finally:
            with self._lock:
                self._replacing.discard(index)

    # -- stop ------------------------------------------------------------
    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop every worker (gracefully when ``drain``), close sockets.

        Idempotent.  Escalates SIGTERM -> terminate -> kill so a
        wedged worker cannot hang the supervisor's exit.
        """
        self._stopping.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10.0)
            self._monitor_thread = None
        signum = signal.SIGTERM if drain else signal.SIGINT
        with self._lock:
            procs = list(self._procs)
        for process in procs:
            if process is not None and process.is_alive():
                try:
                    os.kill(process.pid, signum)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for process in procs:
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        self._procs = [None] * self.workers
        for sock in self._public_sockets + self._internal_sockets:
            try:
                sock.close()
            except OSError:
                pass
        self._public_sockets = []
        self._worker_sockets = []
        self._internal_sockets = []
        if self._owns_cache_dir and self.cache_dir is not None:
            import shutil
            shutil.rmtree(self.cache_dir, ignore_errors=True)
            self.cache_dir = None
            self._owns_cache_dir = False
        logger.info("fleet stopped")

    def status(self) -> dict:
        """A supervisor's-eye snapshot (pids, liveness, restarts)."""
        with self._lock:
            procs = list(self._procs)
        return {"workers": self.workers,
                "host": self.host, "port": self.port,
                "strategy": self.strategy,
                "internal_ports": list(self.internal_ports),
                "pids": [p.pid if p is not None else None for p in procs],
                "alive": [bool(p is not None and p.is_alive())
                          for p in procs],
                "restarts": self.restarts}

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        self.wait_ready()
        return self

    def __exit__(self, *_exc_info) -> None:
        self.stop()
