"""Single-flight coalescing: N concurrent identical requests, one
computation.

A mapping request is pure — the answer depends only on its fingerprint
— so when a second identical request arrives while the first is still
computing, starting a second search is pure waste.  The cache tiers
cannot help here: they only hold *finished* results, and the heavy
traffic pattern the service exists for (many clients asking for the
same hot mapping) produces its duplicates precisely while the first
computation is in flight.

:class:`SingleFlight` closes that gap.  Callers key their work with
the same :func:`~repro.mapping.cache.stable_digest` fingerprints the
cache tiers use; the first caller's computation is shared with every
later caller that arrives before it finishes, and the result lands in
the cache tiers exactly once.  This is the classic ``singleflight``
pattern (Go's ``golang.org/x/sync/singleflight``), restated for one
asyncio event loop — dict operations need no lock because the methods
never await between check and insert.
"""

from __future__ import annotations

import asyncio

from repro.errors import ServiceError

__all__ = ["SingleFlight"]


class SingleFlight:
    """Coalesce concurrent computations by key, on one event loop.

    ``run(key, compute)`` starts ``compute()`` (a coroutine factory)
    if no computation for ``key`` is in flight, otherwise awaits the
    existing one.  Every waiter — leader included — awaits through
    :func:`asyncio.shield`, so one cancelled request can never cancel
    the shared computation under its coalesced peers; failures
    propagate to every waiter and are forgotten (the next request
    retries).  A shared computation that is itself cancelled (leader
    torn down mid-flight) surfaces to every waiter as a retryable
    :class:`~repro.errors.ServiceError` (503) — an answer, never a
    hang or a severed connection.
    """

    def __init__(self) -> None:
        self._inflight: "dict[str, asyncio.Task]" = {}
        self.started = 0
        self.coalesced = 0

    @property
    def in_flight(self) -> int:
        """How many distinct computations are currently running."""
        return len(self._inflight)

    async def run(self, key: str, compute):
        """The shared result of ``compute()`` for ``key``.

        ``compute`` is only called by the flight leader; followers for
        the same key await the leader's task.  The in-flight entry is
        removed when the task settles (success, failure or
        cancellation), so a later identical request computes afresh —
        by then the cache tiers answer it anyway.
        """
        task = self._inflight.get(key)
        if task is None:
            self.started += 1
            task = asyncio.ensure_future(compute())
            self._inflight[key] = task
            task.add_done_callback(
                lambda _task: self._inflight.pop(key, None))
        else:
            self.coalesced += 1
        try:
            return await asyncio.shield(task)
        except asyncio.CancelledError:
            if task.cancelled():
                # The *shared* computation was cancelled (the leader's
                # handler died mid-flight, or shutdown reaped it) —
                # distinct from this waiter being cancelled.  Translate
                # to a retryable refusal: followers must get an answer,
                # never an escaped CancelledError that severs their
                # connection with no response.
                raise ServiceError(
                    503, "shared computation was cancelled; retry",
                    retry_after=1.0) from None
            raise

    def stats(self) -> dict:
        """``{"started", "coalesced", "in_flight"}`` counters."""
        return {"started": self.started, "coalesced": self.coalesced,
                "in_flight": self.in_flight}
