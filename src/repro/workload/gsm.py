"""The GSM-style MAC pipeline workload.

Two single-accumulator loops from speech coding: the long-term
predictor's weighted cross-correlation over 40 lags, and the vector
quantizer's energy (sum of squares) over an 8-sample window.  Both
are scalar-output blocks, so unlike the big linear transforms they
exercise the *decompose* path too: the correlation maps through the
bounded search's linear-binding shortcut, and the energy block is a
genuinely non-linear (degree-2) target.
"""

from __future__ import annotations

import numpy as np

from repro.frontend.extract import ArrayInput, TargetBlock, extract_block
from repro.workload import kernels
from repro.workload.registry import BlockSpec, Workload

__all__ = ["GsmMacWorkload", "xcorr_block", "energy_block"]


def xcorr_block(taps=None, name: str = "ltp_xcorr40") -> TargetBlock:
    """The weighted LTP cross-correlation: ``sum_k w[k] x[k]``."""
    taps = np.asarray(kernels.xcorr_taps() if taps is None else taps,
                      dtype=np.float64)
    return extract_block(
        kernels.xcorr_kernel_source(len(taps)),
        [
            ArrayInput("x", (len(taps),)),
            ArrayInput("w", (len(taps),), values=taps.tolist()),
        ],
        name=name,
    )


def energy_block(n: int = kernels.ENERGY_POINTS,
                 name: str = "vq_energy8") -> TargetBlock:
    """The codebook-search energy: ``sum_k x[k]^2`` (degree 2)."""
    return extract_block(
        kernels.energy_kernel_source(n),
        [ArrayInput("x", (n,))],
        name=name,
    )


class GsmMacWorkload(Workload):
    """GSM full-rate style speech coding: the MAC-bound search loops."""

    key = "gsm_mac"
    title = "GSM MAC pipeline"
    description = ("Speech-codec search loops: the 40-lag long-term "
                   "predictor cross-correlation and the 8-sample "
                   "codebook energy, both single-MAC-accumulator bound")

    def block_specs(self) -> tuple[BlockSpec, ...]:
        return (
            BlockSpec(
                name="ltp_xcorr40",
                description="weighted LTP cross-correlation over 40 lags",
                n_outputs=1,
                n_inputs=kernels.XCORR_LAG,
                builder=xcorr_block,
            ),
            BlockSpec(
                name="vq_energy8",
                description="sum-of-squares energy over 8 samples",
                n_outputs=1,
                n_inputs=kernels.ENERGY_POINTS,
                builder=energy_block,
            ),
        )
