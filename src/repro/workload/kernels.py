"""Shared numeric kernels for the built-in workloads.

One module owns every coefficient table the new workloads use — FIR
taps, IIR impulse responses, DFT/DCT basis matrices, LTP correlation
windows — so the two consumers that must agree on them *cannot drift*:

* the workload block builders (:mod:`repro.workload.dsp` and friends)
  feed these tables to the frontend as constant array inputs, and
* the built-in library elements (:mod:`repro.library.builtin`) build
  their polynomial representations from the same arrays via
  ``_linear_rows``.

That agreement is the whole point of the paper's matching step: an
element maps a block because their polynomials coincide coefficient
by coefficient, exactly as the MP3 blocks match the IMDCT/synthesis
elements through the shared ``repro.mp3.tables`` constants.

Everything here is deterministic (no RNG, no environment reads), so
block fingerprints and sweep JSON stay byte-stable across processes.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "FIR_ORDER",
    "FIR_OUTPUTS",
    "IIR_LENGTH",
    "RFFT_POINTS",
    "IDCT_POINTS",
    "XCORR_LAG",
    "ENERGY_POINTS",
    "fir_taps",
    "fir_matrix",
    "biquad_coefficients",
    "iir_impulse_matrix",
    "rfft_matrix",
    "idct_basis",
    "idct2_matrix",
    "xcorr_taps",
    "matrix_kernel_source",
    "fir_kernel_source",
    "iir_kernel_source",
    "idct2_kernel_source",
    "xcorr_kernel_source",
    "energy_kernel_source",
]

#: Canonical sizes of the built-in blocks (the library elements are
#: characterized at exactly these shapes).
FIR_ORDER = 16          # taps of the decimating low-pass
FIR_OUTPUTS = 8         # output samples per call
IIR_LENGTH = 8          # samples per biquad call
RFFT_POINTS = 8         # real-FFT length (packed real output)
IDCT_POINTS = 8         # 1-D IDCT length (JPEG uses 8)
XCORR_LAG = 40          # GSM long-term-predictor correlation window
ENERGY_POINTS = 8       # vector-quantizer energy window


# ----------------------------------------------------------------------
# Coefficient tables
# ----------------------------------------------------------------------
def fir_taps(n_taps: int = FIR_ORDER) -> np.ndarray:
    """Hamming-windowed sinc low-pass taps (cutoff at fs/8)."""
    k = np.arange(n_taps, dtype=np.float64)
    center = (n_taps - 1) / 2.0
    return np.hamming(n_taps) * np.sinc((k - center) / 4.0) / 4.0


def fir_matrix(taps: np.ndarray, n_out: int = FIR_OUTPUTS) -> np.ndarray:
    """The sliding-window FIR as a linear map: ``out[n] = sum_k h[k] x[n+k]``.

    Shape ``(n_out, n_out + len(taps) - 1)`` — each row is the tap
    vector shifted by one sample.
    """
    taps = np.asarray(taps, dtype=np.float64)
    n_in = n_out + len(taps) - 1
    matrix = np.zeros((n_out, n_in))
    for n in range(n_out):
        matrix[n, n:n + len(taps)] = taps
    return matrix


def biquad_coefficients() -> tuple[tuple[float, ...], tuple[float, ...]]:
    """``(b, a)`` of the canonical biquad: a stable dyadic low-pass.

    ``y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] + a0 y[n-1] + a1 y[n-2]``.
    All coefficients are dyadic rationals, so the float impulse-response
    unroll in :func:`iir_impulse_matrix` is *exact* and the element
    polynomials match the symbolically-expanded recurrence to the bit.
    """
    return (0.25, 0.5, 0.25), (0.5, -0.25)


def iir_impulse_matrix(b=None, a=None, n: int = IIR_LENGTH) -> np.ndarray:
    """The first ``n`` samples of the biquad as a (lower-triangular)
    linear map from input to output — the recurrence, unrolled."""
    if b is None or a is None:
        b, a = biquad_coefficients()
    matrix = np.zeros((n, n))
    for j in range(n):
        x = np.zeros(n)
        x[j] = 1.0
        y = np.zeros(n)
        for i in range(n):
            acc = b[0] * x[i]
            if i >= 1:
                acc += b[1] * x[i - 1] + a[0] * y[i - 1]
            if i >= 2:
                acc += b[2] * x[i - 2] + a[1] * y[i - 2]
            y[i] = acc
        matrix[:, j] = y
    return matrix


def rfft_matrix(n: int = RFFT_POINTS) -> np.ndarray:
    """The real DFT as an ``n x n`` matrix, packed real output.

    Row 0 is the DC term, rows ``2k-1``/``2k`` the real/imaginary
    parts of bin ``k`` for ``k = 1 .. n/2-1``, and the last row the
    Nyquist term — the layout fixed-point FFT routines return.
    """
    if n % 2 != 0:
        raise ValueError(f"rfft_matrix needs an even length, got {n}")
    i = np.arange(n, dtype=np.float64)
    matrix = np.zeros((n, n))
    matrix[0] = 1.0
    for k in range(1, n // 2):
        matrix[2 * k - 1] = np.cos(2.0 * math.pi * k * i / n)
        matrix[2 * k] = -np.sin(2.0 * math.pi * k * i / n)
    matrix[n - 1] = np.cos(math.pi * i)
    return matrix


def idct_basis(n: int = IDCT_POINTS) -> np.ndarray:
    """The 1-D inverse DCT-II basis: ``C[i, u] = alpha(u) cos((2i+1)u pi / 2n)``."""
    basis = np.zeros((n, n))
    for i in range(n):
        for u in range(n):
            alpha = math.sqrt(1.0 / n) if u == 0 else math.sqrt(2.0 / n)
            basis[i, u] = alpha * math.cos((2 * i + 1) * u * math.pi / (2 * n))
    return basis


def idct2_matrix(n: int = IDCT_POINTS) -> np.ndarray:
    """The separable 2-D IDCT as one ``n^2 x n^2`` linear map.

    Row index ``i*n + j`` (pixel), column ``u*n + v`` (coefficient):
    exactly the composition of the row pass then column pass of the
    two-pass kernel, i.e. ``kron(C, C)``.
    """
    basis = idct_basis(n)
    return np.kron(basis, basis)


def xcorr_taps(n: int = XCORR_LAG) -> np.ndarray:
    """The GSM long-term-predictor weighting window over ``n`` lags."""
    k = np.arange(n, dtype=np.float64)
    return 0.5 + 0.4 * np.cos(2.0 * math.pi * k / n)


# ----------------------------------------------------------------------
# Kernel sources (the frontend's restricted subset)
# ----------------------------------------------------------------------
def matrix_kernel_source(fn_name: str, n_out: int, n_in: int) -> str:
    """A dense matrix-vector MAC nest: the generic linear block."""
    return f"""
def {fn_name}(x, m):
    out = [0] * {n_out}
    for i in range({n_out}):
        s = 0
        for k in range({n_in}):
            s = s + m[i][k] * x[k]
        out[i] = s
    return out
"""


def fir_kernel_source(n_out: int, n_taps: int) -> str:
    """The sliding-window FIR loop nest (taps as constants)."""
    return f"""
def fir(x, h):
    out = [0] * {n_out}
    for n in range({n_out}):
        s = 0
        for k in range({n_taps}):
            s = s + h[k] * x[n + k]
        out[n] = s
    return out
"""


def iir_kernel_source(n: int) -> str:
    """The biquad recurrence itself (the realistic implementation form).

    The ``if`` guards fold to constants during loop unrolling, so the
    frontend expands the recurrence symbolically — the extracted block
    is the same lower-triangular map :func:`iir_impulse_matrix` builds.
    """
    return f"""
def iir_biquad(x, b, a):
    y = [0] * {n}
    for i in range({n}):
        acc = b[0] * x[i]
        if i >= 1:
            acc = acc + b[1] * x[i - 1] + a[0] * y[i - 1]
        if i >= 2:
            acc = acc + b[2] * x[i - 2] + a[1] * y[i - 2]
        y[i] = acc
    return y
"""


def idct2_kernel_source(n: int) -> str:
    """The separable two-pass 2-D IDCT (rows, then columns) on a
    flattened ``n x n`` coefficient array."""
    return f"""
def idct2(x, c):
    t = [0] * {n * n}
    for i in range({n}):
        for v in range({n}):
            s = 0
            for u in range({n}):
                s = s + c[i][u] * x[u * {n} + v]
            t[i * {n} + v] = s
    out = [0] * {n * n}
    for i in range({n}):
        for j in range({n}):
            s = 0
            for v in range({n}):
                s = s + c[j][v] * t[i * {n} + v]
            out[i * {n} + j] = s
    return out
"""


def xcorr_kernel_source(n: int) -> str:
    """The weighted long-term-prediction correlation MAC loop."""
    return f"""
def ltp_xcorr(x, w):
    acc = 0
    for k in range({n}):
        acc = acc + w[k] * x[k]
    return acc
"""


def energy_kernel_source(n: int) -> str:
    """The vector-quantizer energy (sum of squares) MAC loop."""
    return f"""
def vq_energy(x):
    acc = 0
    for k in range({n}):
        acc = acc + x[k] * x[k]
    return acc
"""
