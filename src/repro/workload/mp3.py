"""The MP3 decoder workload — the paper's evaluation target.

The two complex critical blocks of Section 4 (previously hardcoded in
``mapping/flow.py``), now the registry's default entry: the 36-point
IMDCT loop nest (Equation 1) and the polyphase matrixing core.  The
cosine tables come from :mod:`repro.mp3.tables` — the same constants
the library elements' polynomial rows use, which is what makes the
blocks match them exactly.
"""

from __future__ import annotations

from repro.frontend.extract import ArrayInput, TargetBlock, extract_block
from repro.mp3.tables import IMDCT_COS_36, POLYPHASE_N
from repro.workload.registry import BlockSpec, Workload

__all__ = ["Mp3Workload", "imdct_block", "matrixing_block"]

#: Reference kernel for the IMDCT loop nest (Equation 1), in the
#: frontend's restricted subset.  The cosine table arrives as constants.
_IMDCT_KERNEL = """
def inv_mdct_long(y, c):
    out = [0] * 36
    for i in range(36):
        s = 0
        for k in range(18):
            s = s + c[i][k] * y[k]
        out[i] = s
    return out
"""

#: Reference kernel for the polyphase matrixing core.
_MATRIXING_KERNEL = """
def subband_matrixing(s, n):
    v = [0] * 64
    for i in range(64):
        acc = 0
        for k in range(32):
            acc = acc + n[i][k] * s[k]
        v[i] = acc
    return v
"""


def _imdct_stimulus():
    """Compliance-stream spectral lines (lazy: pulls in the decoder)."""
    from repro.mp3.vectors import imdct_vectors
    return imdct_vectors()


def _matrixing_stimulus():
    """Compliance-stream subband steps (lazy: pulls in the decoder)."""
    from repro.mp3.vectors import matrixing_vectors
    return matrixing_vectors()


def imdct_block() -> TargetBlock:
    """A fresh extraction of the IMDCT loop nest (``inv_mdctL``)."""
    return extract_block(
        _IMDCT_KERNEL,
        [
            ArrayInput("y", (18,)),
            ArrayInput("c", (36, 18), values=IMDCT_COS_36.tolist()),
        ],
        name="inv_mdctL",
    )


def matrixing_block() -> TargetBlock:
    """A fresh extraction of the polyphase matrixing core."""
    return extract_block(
        _MATRIXING_KERNEL,
        [
            ArrayInput("s", (32,)),
            ArrayInput("n", (64, 32), values=POLYPHASE_N.tolist()),
        ],
        name="SubBandSynthesis",
    )


class Mp3Workload(Workload):
    """The MPEG-1 Layer III decoder (Section 4 of the paper)."""

    key = "mp3"
    title = "MP3 decoder"
    description = ("MPEG-1 Layer III decoding: the 36-point IMDCT loop "
                   "nest (Eq. 1) and the polyphase matrixing core, the "
                   "paper's Table 4/5 work set")

    def block_specs(self) -> tuple[BlockSpec, ...]:
        return (
            BlockSpec(
                name="inv_mdctL",
                description="36-point inverse MDCT over 18 spectral lines",
                n_outputs=36,
                n_inputs=18,
                builder=imdct_block,
                stimulus=_imdct_stimulus,
            ),
            BlockSpec(
                name="SubBandSynthesis",
                description="64-point polyphase matrixing over 32 subbands",
                n_outputs=64,
                n_inputs=32,
                builder=matrixing_block,
                stimulus=_matrixing_stimulus,
            ),
        )
