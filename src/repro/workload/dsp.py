"""The DSP kernel suite workload: FIR, IIR biquad, real FFT.

Three staples of embedded signal-processing loops, declared at the
shapes the built-in libraries characterize (16-tap FIR over 8 output
samples, 8-sample biquad, 8-point packed real FFT).  The block
builders are parameterizable — ``fir_block(taps=...)`` and friends —
so the property-based tests can vary coefficients and sizes; the
workload entry pins the canonical shapes.
"""

from __future__ import annotations

import numpy as np

from repro.frontend.extract import ArrayInput, TargetBlock, extract_block
from repro.workload import kernels
from repro.workload.registry import BlockSpec, Workload

__all__ = ["DspKernelsWorkload", "fir_block", "iir_biquad_block", "rfft_block"]


def fir_block(taps=None, n_out: int = kernels.FIR_OUTPUTS,
              name: str = "fir16") -> TargetBlock:
    """The sliding-window FIR: ``out[n] = sum_k h[k] x[n+k]``.

    ``taps`` defaults to the canonical windowed-sinc low-pass; any
    float sequence works (the property tests pass generated taps).
    """
    taps = np.asarray(kernels.fir_taps() if taps is None else taps,
                      dtype=np.float64)
    n_in = n_out + len(taps) - 1
    return extract_block(
        kernels.fir_kernel_source(n_out, len(taps)),
        [
            ArrayInput("x", (n_in,)),
            ArrayInput("h", (len(taps),), values=taps.tolist()),
        ],
        name=name,
    )


def iir_biquad_block(b=None, a=None, n: int = kernels.IIR_LENGTH,
                     name: str = "iir_biquad8") -> TargetBlock:
    """The biquad recurrence over ``n`` samples, expanded symbolically."""
    if b is None or a is None:
        b, a = kernels.biquad_coefficients()
    return extract_block(
        kernels.iir_kernel_source(n),
        [
            ArrayInput("x", (n,)),
            ArrayInput("b", (3,), values=list(b)),
            ArrayInput("a", (2,), values=list(a)),
        ],
        name=name,
    )


def rfft_block(n: int = kernels.RFFT_POINTS,
               name: str = "rfft8") -> TargetBlock:
    """The ``n``-point real DFT, packed real output layout."""
    matrix = kernels.rfft_matrix(n)
    return extract_block(
        kernels.matrix_kernel_source("rfft", n, n),
        [
            ArrayInput("x", (n,)),
            ArrayInput("m", (n, n), values=matrix.tolist()),
        ],
        name=name,
    )


class DspKernelsWorkload(Workload):
    """A front-end DSP chain: decimating FIR, biquad IIR, real FFT."""

    key = "dsp"
    title = "DSP kernel suite"
    description = ("FIR/IIR filtering plus an 8-point real FFT: the "
                   "inner loops of a generic software-defined "
                   "signal-processing front end")

    def block_specs(self) -> tuple[BlockSpec, ...]:
        return (
            BlockSpec(
                name="fir16",
                description="16-tap windowed-sinc FIR over 8 output samples",
                n_outputs=kernels.FIR_OUTPUTS,
                n_inputs=kernels.FIR_OUTPUTS + kernels.FIR_ORDER - 1,
                builder=fir_block,
            ),
            BlockSpec(
                name="iir_biquad8",
                description="biquad IIR recurrence unrolled over 8 samples",
                n_outputs=kernels.IIR_LENGTH,
                n_inputs=kernels.IIR_LENGTH,
                builder=iir_biquad_block,
            ),
            BlockSpec(
                name="rfft8",
                description="8-point real FFT (packed real output)",
                n_outputs=kernels.RFFT_POINTS,
                n_inputs=kernels.RFFT_POINTS,
                builder=rfft_block,
            ),
        )
