"""The JPEG-style 2-D IDCT workload.

The decode-side hot spot of every block-transform image codec: the
8-point 1-D inverse DCT row pass, and the full separable 8x8 2-D IDCT
written the way real decoders write it — two passes over the block
(rows, then columns) sharing one basis matrix.  The frontend expands
the two passes into one 64-output linear map, which is exactly
``kron(C, C)`` — the polynomial representation the library's 2-D IDCT
elements carry.
"""

from __future__ import annotations

from repro.frontend.extract import ArrayInput, TargetBlock, extract_block
from repro.workload import kernels
from repro.workload.registry import BlockSpec, Workload

__all__ = ["JpegIdctWorkload", "idct_row_block", "idct_block"]


def idct_row_block(n: int = kernels.IDCT_POINTS,
                   name: str = "idct_row8") -> TargetBlock:
    """The 1-D inverse DCT over one row of ``n`` coefficients."""
    basis = kernels.idct_basis(n)
    return extract_block(
        kernels.matrix_kernel_source("idct_row", n, n),
        [
            ArrayInput("x", (n,)),
            ArrayInput("m", (n, n), values=basis.tolist()),
        ],
        name=name,
    )


def idct_block(n: int = kernels.IDCT_POINTS,
               name: str | None = None) -> TargetBlock:
    """The separable two-pass ``n x n`` 2-D IDCT on a flattened block."""
    basis = kernels.idct_basis(n)
    return extract_block(
        kernels.idct2_kernel_source(n),
        [
            ArrayInput("x", (n * n,)),
            ArrayInput("c", (n, n), values=basis.tolist()),
        ],
        name=name if name is not None else f"idct{n}x{n}",
    )


class JpegIdctWorkload(Workload):
    """Baseline JPEG decode: the inverse DCT stage."""

    key = "jpeg_idct"
    title = "JPEG 2-D IDCT"
    description = ("Block-transform image decoding: the 8-point IDCT "
                   "row pass and the separable 8x8 2-D IDCT, the "
                   "dominant cost of baseline JPEG decode")

    def block_specs(self) -> tuple[BlockSpec, ...]:
        n = kernels.IDCT_POINTS
        return (
            BlockSpec(
                name="idct_row8",
                description="8-point 1-D inverse DCT (row pass)",
                n_outputs=n,
                n_inputs=n,
                builder=idct_row_block,
            ),
            BlockSpec(
                name="idct8x8",
                description="separable 8x8 2-D inverse DCT (two passes)",
                n_outputs=n * n,
                n_inputs=n * n,
                builder=idct_block,
            ),
        )
