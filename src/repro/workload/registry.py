"""The pluggable workload registry: target applications as a catalog.

The paper's methodology is workload-agnostic — characterize the
libraries once, then identify and map the critical blocks of *any*
embedded application.  The evaluation only exercises one (the MP3
decoder), and so did this repro until now: the complex target blocks
were hardcoded in ``mapping/flow.py``.  This module makes workloads
data, not code, mirroring the processor registry
(:mod:`repro.platform.registry`): a :class:`Workload` declares its
critical blocks — name, shape, description, and a builder that runs
the frontend — and a :class:`WorkloadRegistry` catalogs workloads
under short stable keys that every surface (session, CLI, service,
sweep reports) resolves against.

Declaring a new workload is a subclass plus one ``register_workload``
call:

>>> from repro.workload import registered_workloads, workload_named
>>> registered_workloads()[0]
'mp3'
>>> sorted(workload_named("mp3").block_names())
['SubBandSynthesis', 'inv_mdctL']

Block *extraction* (frontend symbolic execution) stays lazy:
``block_names()`` and the catalog listings read the declarations only,
so ``repro workloads`` and ``/v1/workloads`` answer without running
the frontend.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import WorkloadError
from repro.frontend.extract import TargetBlock

__all__ = [
    "DEFAULT_WORKLOAD",
    "default_stimulus",
    "BlockSpec",
    "Workload",
    "WorkloadEntry",
    "WorkloadRegistry",
    "DEFAULT_WORKLOAD_REGISTRY",
    "register_workload",
    "get_workload",
    "workload_named",
    "registered_workloads",
]

#: The registry's first entry and every surface's default: the paper's
#: evaluation workload.
DEFAULT_WORKLOAD = "mp3"


def default_stimulus(n_inputs: int, *, name: str = "", n_vectors: int = 16,
                     amplitude: float = 1.0) -> tuple[tuple[float, ...], ...]:
    """Deterministic pseudo-random stimulus for blocks without one.

    Every block the codegen verifier measures needs input vectors; a
    workload that declares none gets this fallback — ``n_vectors``
    uniform vectors in ``[-amplitude, amplitude)``, seeded from the
    block's identity so reruns (and CI machines) see identical bytes.
    The generator is a self-contained 64-bit LCG: no numpy, no shared
    ``random`` state to perturb.

    >>> default_stimulus(2, name="demo", n_vectors=2)[0] == \
            default_stimulus(2, name="demo", n_vectors=2)[0]
    True
    >>> len(default_stimulus(3, n_vectors=5))
    5
    """
    seed_bytes = hashlib.sha256(
        f"repro.stimulus/{name}/{n_inputs}".encode()).digest()[:8]
    state = int.from_bytes(seed_bytes, "big") or 1
    vectors = []
    for _ in range(n_vectors):
        row = []
        for _ in range(n_inputs):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            row.append(amplitude * ((state >> 11) / float(1 << 53) * 2.0 - 1.0))
        vectors.append(tuple(row))
    return tuple(vectors)


@dataclass(frozen=True)
class BlockSpec:
    """One declared critical block of a workload.

    ``builder`` runs the frontend and returns a fresh
    :class:`~repro.frontend.extract.TargetBlock`; the declarative
    fields (``name``, shape, ``description``) are readable without
    calling it, so catalog listings never pay for extraction.
    """

    name: str
    description: str
    n_outputs: int
    n_inputs: int
    builder: Callable[[], TargetBlock] = field(repr=False, compare=False)
    #: Optional verification stimulus: a zero-argument callable
    #: returning input vectors (each ``n_inputs`` floats, kernel input
    #: order).  Blocks without one fall back to
    #: :func:`default_stimulus`.
    stimulus: "Callable[[], Sequence[Sequence[float]]] | None" = field(
        default=None, repr=False, compare=False)

    def build(self) -> TargetBlock:
        """A fresh extraction, checked against the declaration."""
        block = self.builder()
        if block.name != self.name:
            raise WorkloadError(
                f"block builder for {self.name!r} returned a block named "
                f"{block.name!r}; declarations and extractions must agree")
        if len(block.outputs) != self.n_outputs:
            raise WorkloadError(
                f"block {self.name!r} declares {self.n_outputs} outputs "
                f"but extracted {len(block.outputs)}")
        return block


class Workload:
    """One target application: declared critical blocks plus metadata.

    Subclasses set ``key`` (the registry handle), ``title`` and
    ``description``, and implement :meth:`block_specs`.  Everything
    else — stable name listing, checked extraction,
    :meth:`methodology_blocks` — is derived here, so the conformance
    suite (``tests/workload/conformance.py``) can hold every workload
    to one contract.
    """

    key: str = ""
    title: str = ""
    description: str = ""

    def block_specs(self) -> tuple[BlockSpec, ...]:
        """The declared critical blocks, in stable order."""
        raise NotImplementedError

    def block_names(self) -> tuple[str, ...]:
        """Declared block names, without running the frontend."""
        return tuple(spec.name for spec in self.block_specs())

    def methodology_blocks(self) -> dict[str, TargetBlock]:
        """Fresh extractions of every declared block, by name.

        Each call re-runs the frontend (callers own their copies —
        the same contract :func:`repro.mapping.flow.methodology_blocks`
        always had); sessions memoize through their
        :class:`~repro.api.ResourceCatalog` instead.
        """
        specs = self.block_specs()
        duplicates = {s.name for s in specs
                      if [t.name for t in specs].count(s.name) > 1}
        if duplicates:
            raise WorkloadError(
                f"workload {self.key!r} declares duplicate block name(s) "
                f"{sorted(duplicates)}")
        return {spec.name: spec.build() for spec in specs}

    def stimulus(self, block_name: str) -> tuple[tuple[float, ...], ...]:
        """Deterministic verification stimulus for one declared block.

        Uses the block's declared ``stimulus`` hook when present
        (validated: non-empty, every vector ``n_inputs`` wide),
        otherwise :func:`default_stimulus` seeded from the workload and
        block identity.
        """
        for spec in self.block_specs():
            if spec.name == block_name:
                break
        else:
            raise WorkloadError(
                f"workload {self.key!r} declares no block named "
                f"{block_name!r}; known: {list(self.block_names())}")
        if spec.stimulus is None:
            return default_stimulus(
                spec.n_inputs, name=f"{self.key}/{block_name}")
        vectors = tuple(tuple(float(v) for v in row)
                        for row in spec.stimulus())
        if not vectors:
            raise WorkloadError(
                f"stimulus for block {block_name!r} returned no vectors")
        for row in vectors:
            if len(row) != spec.n_inputs:
                raise WorkloadError(
                    f"stimulus for block {block_name!r} produced a vector "
                    f"of {len(row)} values; declared n_inputs is "
                    f"{spec.n_inputs}")
        return vectors

    def __repr__(self) -> str:
        return f"{type(self).__name__}(key={self.key!r})"


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload under its registry key."""

    key: str
    workload: Workload

    def blocks(self) -> dict[str, TargetBlock]:
        """Fresh extractions of the workload's blocks (see
        :meth:`Workload.methodology_blocks`)."""
        return self.workload.methodology_blocks()

    def block_names(self) -> tuple[str, ...]:
        return self.workload.block_names()


class WorkloadRegistry:
    """A named catalog of workloads.

    Keys are short stable handles (``"mp3"``, ``"jpeg_idct"``, ...);
    iteration order is registration order, so "every registered
    workload" listings and CI matrices are deterministic — the same
    contract as :class:`~repro.platform.registry.ProcessorRegistry`.
    """

    def __init__(self) -> None:
        self._entries: dict[str, WorkloadEntry] = {}

    def register(self, workload: Workload, *,
                 key: str | None = None,
                 replace: bool = False) -> WorkloadEntry:
        """Add (or, with ``replace=True``, overwrite) a workload.

        ``key`` defaults to the workload's own ``key`` attribute.
        """
        key = key if key is not None else workload.key
        if not key:
            raise WorkloadError("registry key must be non-empty")
        if key in self._entries and not replace:
            raise WorkloadError(
                f"workload {key!r} is already registered "
                f"(pass replace=True to overwrite)")
        entry = WorkloadEntry(key, workload)
        self._entries[key] = entry
        return entry

    def get(self, key: str) -> WorkloadEntry:
        """The entry registered under ``key`` (raises on unknown keys)."""
        try:
            return self._entries[key]
        except KeyError:
            known = ", ".join(self._entries) or "<empty registry>"
            raise WorkloadError(
                f"no workload registered as {key!r}; known: {known}") from None

    def blocks(self, key: str) -> dict[str, TargetBlock]:
        """Fresh extractions of the blocks of workload ``key``."""
        return self.get(key).blocks()

    def names(self) -> list[str]:
        """Registered keys, in registration order."""
        return list(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"WorkloadRegistry({self.names()!r})"


#: The process-wide registry.  The MP3 decoder comes first: it is the
#: paper's evaluation workload and every surface's default, so "all
#: registered workloads" listings lead with it.  The built-in entries
#: are registered by :mod:`repro.workload` on import.
DEFAULT_WORKLOAD_REGISTRY = WorkloadRegistry()


def register_workload(workload: Workload, *, key: str | None = None,
                      replace: bool = False) -> WorkloadEntry:
    """Register a workload in the default registry (see
    :meth:`WorkloadRegistry.register`)."""
    return DEFAULT_WORKLOAD_REGISTRY.register(workload, key=key,
                                              replace=replace)


def get_workload(key: str) -> WorkloadEntry:
    """The default registry's entry for ``key``."""
    return DEFAULT_WORKLOAD_REGISTRY.get(key)


def workload_named(key: str) -> Workload:
    """The workload object registered under ``key``."""
    return DEFAULT_WORKLOAD_REGISTRY.get(key).workload


def registered_workloads() -> list[str]:
    """Keys of the default registry, in registration order."""
    return DEFAULT_WORKLOAD_REGISTRY.names()
