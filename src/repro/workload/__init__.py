"""``repro.workload`` — target applications as a pluggable registry.

The methodology's "target code" made data: each :class:`Workload`
declares its critical blocks (name, shape, description, frontend
builder) and registers under a short stable key, mirroring the
processor registry.  Every mapping surface — ``MethodologyFlow``,
``MappingSession``, the CLI (``repro map --workload jpeg_idct``,
``repro workloads``) and the service (``/v1/workloads``, the
``workload`` request field) — resolves workload keys against the
default registry built here.

Built-in entries, in registration order:

==============  =====================================================
``mp3``         the paper's MP3 decoder blocks (default)
``dsp``         FIR/IIR + real-FFT DSP kernel suite
``jpeg_idct``   JPEG-style 1-D row and separable 8x8 2-D IDCT
``gsm_mac``     GSM-style MAC loops (LTP correlation, VQ energy)
==============  =====================================================

Every entry passes the generic conformance suite in
``tests/workload/conformance.py``; registering a new workload means
subclassing :class:`Workload` and calling :func:`register_workload` —
the suite picks it up automatically.
"""

from repro.workload.dsp import DspKernelsWorkload
from repro.workload.gsm import GsmMacWorkload
from repro.workload.jpeg import JpegIdctWorkload
from repro.workload.mp3 import Mp3Workload
from repro.workload.registry import (
    DEFAULT_WORKLOAD,
    DEFAULT_WORKLOAD_REGISTRY,
    BlockSpec,
    Workload,
    WorkloadEntry,
    WorkloadRegistry,
    get_workload,
    register_workload,
    registered_workloads,
    workload_named,
)

__all__ = [
    "DEFAULT_WORKLOAD",
    "DEFAULT_WORKLOAD_REGISTRY",
    "BlockSpec",
    "Workload",
    "WorkloadEntry",
    "WorkloadRegistry",
    "get_workload",
    "register_workload",
    "registered_workloads",
    "workload_named",
]

# The built-in catalog, MP3 first (the default workload).
if "mp3" not in DEFAULT_WORKLOAD_REGISTRY:
    register_workload(Mp3Workload())
    register_workload(DspKernelsWorkload())
    register_workload(JpegIdctWorkload())
    register_workload(GsmMacWorkload())
