"""Smoke tests: every example script runs and prints its headline."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
SRC = Path(__file__).resolve().parents[2] / "src"


def run_example(name: str, *args: str) -> str:
    # The subprocess needs src/ on PYTHONPATH explicitly: pytest's
    # `pythonpath` ini option only patches sys.path in-process.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300, env=env)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "fx_log_poly" in out
        assert "accuracy <= 1e-12  ->  log_double" in out

    def test_imdct_mapping(self):
        out = run_example("imdct_mapping.py")
        assert "fixed_IMDCT" in out.split("Table 5 world")[0]
        assert "IppsMDCTInv_MP3_32s" in out
        assert out.count("<== selected") == 2

    def test_mp3_optimization(self):
        out = run_example("mp3_optimization.py", "2")
        assert "Profile after Original" in out
        assert "Profile after LM + IH mapping" in out
        assert "Profile after LM + IH + IPP mapping" in out
        assert "compliance: full" in out
        assert "faster than real time" in out

    def test_dvfs_energy(self):
        out = run_example("dvfs_energy.py")
        assert "DVFS sweep" in out
        assert "energy saving" in out

    def test_service_client(self):
        out = run_example("service_client.py")
        assert "winner: IppsMDCTInv_MP3_32s" in out
        assert "identical answer" in out
        assert "service shut down cleanly" in out

    def test_mac_decomposition(self):
        out = run_example("mac_decomposition.py")
        assert "fx_exp_out = fx_exp(x)" in out
        assert "['fx_exp']" in out
        # The complex element must beat the generic-code cost by >10x.
        import re
        costs = [int(c.replace(",", "")) for c in
                 re.findall(r"total cost: ([\d,]+) cycles", out)]
        assert costs[-1] * 10 < 3920
