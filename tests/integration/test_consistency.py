"""Cross-subsystem consistency: one cost model, many views.

The reproduction's credibility rests on the library characterization
(Table 1), the decoder profiles (Tables 3-5) and the mapping search all
pricing work through the *same* tallies.  These tests pin that
coherence.
"""

import numpy as np
import pytest

from repro.library import characterize, full_library
from repro.library.builtin import BLOCKS_PER_FRAME, STEPS_PER_FRAME
from repro.mapping import MethodologyFlow
from repro.mp3 import (IH_IPP_FULL, IH_LIBRARY, ORIGINAL, Mp3Decoder,
                       check_compliance, make_stream)
from repro.platform import Badge4


@pytest.fixture(scope="module")
def platform():
    return Badge4()


@pytest.fixture(scope="module")
def stream():
    return make_stream(n_frames=2, seed=99)


class TestLibraryDecoderCoherence:
    """Table 1 element costs equal the decoder's per-frame stage costs."""

    @pytest.mark.parametrize("element_name,stage_row,config", [
        ("float_SubBandSyn", "SubBandSynthesis", ORIGINAL),
        ("float_IMDCT", "inv_mdctL", ORIGINAL),
        ("fixed_SubBandSyn", "SubBandSynthesis", IH_LIBRARY),
        ("fixed_IMDCT", "inv_mdctL", IH_LIBRARY),
        ("ippsSynthPQMF_MP3_32s16s", "ippsSynthPQMF_MP3_32s16s", IH_IPP_FULL),
        ("IppsMDCTInv_MP3_32s", "IppsMDCTInv_MP3_32s", IH_IPP_FULL),
    ])
    def test_element_cost_matches_decoder_stage(self, element_name, stage_row,
                                                config, platform, stream):
        element = full_library().get(element_name)
        per_frame = characterize(element, platform).seconds_per_call

        decoder = Mp3Decoder(config, platform.profiler())
        decoder.decode(stream)
        row = decoder.profiler.report().row(stage_row)
        measured_per_frame = row.seconds / stream.n_frames

        assert measured_per_frame == pytest.approx(per_frame, rel=1e-6)

    def test_frame_constants(self):
        # 2 granules x 2 channels x 18 steps / x 32 subbands.
        assert STEPS_PER_FRAME == 2 * 2 * 18
        assert BLOCKS_PER_FRAME == 2 * 2 * 32


class TestDeterminism:
    def test_decode_deterministic_across_instances(self, stream):
        a = Mp3Decoder(IH_IPP_FULL).decode(stream)
        b = Mp3Decoder(IH_IPP_FULL).decode(stream)
        np.testing.assert_array_equal(a, b)

    def test_flow_deterministic(self, stream):
        r1 = MethodologyFlow().run_passes(stream)
        r2 = MethodologyFlow().run_passes(stream)
        for p1, p2 in zip(r1.passes, r2.passes):
            assert p1.seconds == p2.seconds
            assert p1.energy_j == p2.energy_j
            assert p1.compliance.rms_error == p2.compliance.rms_error


class TestAccuracyChain:
    def test_mapping_never_degrades_below_limited(self, platform, stream):
        reference = Mp3Decoder(ORIGINAL).decode(stream)
        report = MethodologyFlow().run_passes(stream)
        final_config = report.passes[-1].config
        pcm = Mp3Decoder(final_config).decode(stream)
        assert check_compliance(reference, pcm).level in ("full", "limited")

    def test_flow_profile_totals_add_up(self, stream):
        report = MethodologyFlow().run_passes(stream)
        for mapping_pass in report.passes:
            total = sum(r.seconds for r in mapping_pass.profile.rows)
            assert mapping_pass.seconds == pytest.approx(total)


class TestDecomposeVsBlockMatchAgreement:
    def test_scalar_and_block_paths_price_identically(self, platform):
        """The same element priced via decompose and via map_block."""
        from repro.mapping import map_block
        from repro.mapping.flow import _imdct_block
        library = full_library()
        winner, matches = map_block(_imdct_block(), library, platform)
        cycles = {m.element.name: platform.cost_model.cycles(m.element.cost)
                  for m in matches}
        assert cycles[winner.element.name] == min(cycles.values())
