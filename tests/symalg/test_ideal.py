"""Tests for simplification modulo side relations (the paper's core op)."""

import pytest
from hypothesis import given, settings

from repro.errors import SymbolicError
from repro.symalg import Polynomial, SideRelation, simplify_modulo, symbols

from .strategies import evaluation_points, nonzero_polynomials

x, y, z = symbols("x y z")


class TestPaperExample:
    def test_maple_simplify_snippet(self):
        """Section 3.3: simplify(x + x^3 y^2 - 2 x y^3, {p = x^2 - 2y}, [x,y,p])."""
        s = x + x ** 3 * y ** 2 - 2 * x * y ** 3
        result = simplify_modulo(s, {"p": x ** 2 - 2 * y}, ["x", "y", "p"])
        p = Polynomial.variable("p")
        assert result == x + x * y ** 2 * p

    def test_default_variable_order_matches_explicit(self):
        s = x + x ** 3 * y ** 2 - 2 * x * y ** 3
        explicit = simplify_modulo(s, {"p": x ** 2 - 2 * y}, ["x", "y", "p"])
        default = simplify_modulo(s, {"p": x ** 2 - 2 * y})
        assert explicit == default


class TestRewriting:
    def test_perfect_match_collapses_to_symbol(self):
        """When the target IS a library polynomial, result is the symbol."""
        target = x ** 2 + 2 * x + 1
        result = simplify_modulo(target, {"sq": x ** 2 + 2 * x + 1})
        assert result == Polynomial.variable("sq")

    def test_partial_match_leaves_residual(self):
        target = x ** 2 + 2 * x + 1 + y
        result = simplify_modulo(target, {"sq": x ** 2 + 2 * x + 1})
        assert result == Polynomial.variable("sq") + y

    def test_two_relations(self):
        """MAC-style decomposition: target = a*b + c via mac = a*b + c."""
        a, b, c = symbols("a b c")
        target = a * b + c
        result = simplify_modulo(target, {"mac": a * b + c})
        assert result == Polynomial.variable("mac")

    def test_nested_relations(self):
        """Second relation can reference the first relation's symbol."""
        t = Polynomial.variable("t")
        target = (x ** 2 + 1) ** 2
        relations = [SideRelation("t", x ** 2 + 1),
                     SideRelation("u", t ** 2)]
        result = simplify_modulo(target, relations, ["x", "t", "u"])
        assert result == Polynomial.variable("u")

    def test_no_relations_is_identity(self):
        assert simplify_modulo(x + y, {}) == x + y

    def test_unrelated_relation_leaves_target(self):
        assert simplify_modulo(x + 1, {"q": z ** 5}) == x + 1


class TestSemanticEquivalence:
    """Rewritten forms must agree with the original as functions."""

    @settings(max_examples=30, deadline=None)
    @given(nonzero_polynomials(max_terms=4), nonzero_polynomials(max_terms=3),
           evaluation_points)
    def test_substituting_back_recovers_value(self, target, rel_poly, point):
        result = simplify_modulo(target, {"p": rel_poly})
        rel_value = rel_poly.evaluate(point)
        env = dict(point)
        env["p"] = rel_value
        assert result.evaluate(env) == target.evaluate(point)


class TestSideRelation:
    def test_generator(self):
        rel = SideRelation("p", x ** 2)
        assert rel.generator() == Polynomial.variable("p") - x ** 2

    def test_self_referential_raises(self):
        p = Polynomial.variable("p")
        with pytest.raises(SymbolicError):
            SideRelation("p", p + 1)

    def test_str(self):
        assert str(SideRelation("p", x + 1)) == "p = x + 1"
