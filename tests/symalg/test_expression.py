"""Tests for expression trees."""

import math
from fractions import Fraction

import pytest

from repro.errors import SymbolicError
from repro.symalg import (Add, Call, Const, Mul, OpCount, Pow,
                          Var, const, flatten, symbols, taylor, to_source, var)

x_p, y_p = symbols("x y")


class TestEvaluation:
    def test_arithmetic(self):
        e = (var("x") + 2) * var("y")
        assert e.evaluate({"x": 3, "y": 4}) == 20

    def test_pow(self):
        e = Pow(var("x"), 3)
        assert e.evaluate({"x": 2}) == 8

    def test_call_with_function_table(self):
        e = Call("exp", (var("x"),))
        assert e.evaluate({"x": 1.0}, {"exp": math.exp}) == pytest.approx(math.e)

    def test_call_without_function_raises(self):
        e = Call("mystery", (var("x"),))
        with pytest.raises(SymbolicError):
            e.evaluate({"x": 1.0})

    def test_unbound_variable_raises(self):
        with pytest.raises(SymbolicError):
            var("q").evaluate({})


class TestToPolynomial:
    def test_simple(self):
        e = (var("x") + 1) * (var("x") - 1)
        assert e.to_polynomial() == x_p ** 2 - 1

    def test_pow(self):
        assert Pow(var("x"), 4).to_polynomial() == x_p ** 4

    def test_call_strict_raises(self):
        with pytest.raises(SymbolicError):
            Call("exp", (var("x"),)).to_polynomial()

    def test_call_with_approximation(self):
        approx = {"exp": taylor("exp", 2)}
        e = Call("exp", (var("x"),))
        got = e.to_polynomial(approx)
        assert got == x_p ** 2 / 2 + x_p + 1

    def test_call_approximation_composes_argument(self):
        approx = {"exp": taylor("exp", 2)}
        e = Call("exp", (Mul((const(2), var("x"))),))
        got = e.to_polynomial(approx)
        assert got == 2 * x_p ** 2 + 2 * x_p + 1


class TestOpCount:
    def test_add_chain(self):
        e = Add((var("a"), var("b"), var("c")))
        assert e.op_count() == OpCount(adds=2)

    def test_mixed(self):
        e = Mul((var("a"), Add((var("b"), const(1)))))
        count = e.op_count()
        assert count.muls == 1
        assert count.adds == 1

    def test_pow_counts_repeated_muls(self):
        assert Pow(var("x"), 5).op_count().muls == 4

    def test_call_counts_one_call(self):
        e = Call("exp", (Add((var("x"), const(1))),))
        count = e.op_count()
        assert count.calls == 1
        assert count.adds == 1

    def test_total(self):
        assert OpCount(adds=1, muls=2, divs=3, calls=4).total() == 10


class TestStructure:
    def test_depth_leaf(self):
        assert var("x").depth() == 0

    def test_depth_nested(self):
        e = ((var("a") + var("b")) + var("c")) + var("d")
        assert e.depth() == 3

    def test_free_variables(self):
        e = Call("f", (var("a") + var("b") * var("c"),))
        assert e.free_variables() == {"a", "b", "c"}

    def test_empty_add_raises(self):
        with pytest.raises(SymbolicError):
            Add(())


class TestFlatten:
    def test_nested_adds_merge(self):
        e = Add((Add((var("a"), var("b"))), var("c")))
        flat = flatten(e)
        assert isinstance(flat, Add)
        assert len(flat.args) == 3

    def test_constants_fold(self):
        e = Add((const(1), var("x"), const(2)))
        flat = flatten(e)
        assert flat.to_polynomial() == x_p + 3
        consts = [a for a in flat.args if isinstance(a, Const)]
        assert len(consts) == 1
        assert consts[0].value == 3

    def test_nested_constant_folds_through(self):
        e = Add((Add((const(1), const(2))), const(3)))
        assert flatten(e) == Const(Fraction(6))

    def test_mul_by_zero(self):
        e = Mul((const(0), var("x")))
        assert flatten(e) == Const(Fraction(0))

    def test_mul_identity_removed(self):
        e = Mul((const(1), var("x")))
        assert flatten(e) == Var("x")

    def test_pow_zero_one(self):
        assert flatten(Pow(var("x"), 0)) == Const(Fraction(1))
        assert flatten(Pow(var("x"), 1)) == Var("x")

    def test_const_pow_folds(self):
        assert flatten(Pow(const(3), 2)) == Const(Fraction(9))


class TestFormatting:
    def test_minimal_parens(self):
        e = Add((Mul((const(2), var("x"))), const(1)))
        assert to_source(e) == "2 * x + 1"

    def test_mul_of_add_parenthesized(self):
        e = Mul((Add((var("x"), const(1))), var("y")))
        assert to_source(e) == "(x + 1) * y"

    def test_negative_terms_render_as_subtraction(self):
        e = Add((var("x"), Mul((const(-1), var("y")))))
        assert to_source(e) == "x - y"

    def test_pow_rendering(self):
        assert to_source(Pow(var("x"), 3)) == "x^3"

    def test_pow_of_sum(self):
        assert to_source(Pow(Add((var("x"), const(1))), 2)) == "(x + 1)^2"

    def test_call_rendering(self):
        assert to_source(Call("exp", (var("x"),))) == "exp(x)"

    def test_fraction_constant_in_product(self):
        e = Mul((const(Fraction(1, 2)), var("x")))
        assert to_source(e) == "(1/2) * x"


class TestOperatorSugar:
    def test_sub(self):
        e = var("x") - 1
        assert e.to_polynomial() == x_p - 1

    def test_rsub(self):
        e = 1 - var("x")
        assert e.to_polynomial() == 1 - x_p

    def test_neg(self):
        assert (-var("x")).to_polynomial() == -x_p

    def test_pow_sugar(self):
        assert (var("x") ** 3).to_polynomial() == x_p ** 3

    def test_bad_operand_raises(self):
        with pytest.raises(SymbolicError):
            var("x") + "nope"  # type: ignore[operator]
