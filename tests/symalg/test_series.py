"""Tests for Taylor and Chebyshev polynomial approximations."""

import math
from fractions import Fraction

import pytest

from repro.errors import SymbolicError
from repro.symalg import (SUPPORTED_TAYLOR, approximation_error,
                          chebyshev_fit, taylor)


class TestTaylorTables:
    def test_exp(self):
        p = taylor("exp", 4)
        assert p.coefficient({"_arg": 0}) == 1
        assert p.coefficient({"_arg": 3}) == Fraction(1, 6)
        assert p.coefficient({"_arg": 4}) == Fraction(1, 24)

    def test_log1p(self):
        p = taylor("log1p", 4)
        assert p.coefficient({"_arg": 0}) == 0
        assert p.coefficient({"_arg": 1}) == 1
        assert p.coefficient({"_arg": 2}) == Fraction(-1, 2)
        assert p.coefficient({"_arg": 4}) == Fraction(-1, 4)

    def test_sin_odd_only(self):
        p = taylor("sin", 5)
        assert p.coefficient({"_arg": 2}) == 0
        assert p.coefficient({"_arg": 3}) == Fraction(-1, 6)
        assert p.coefficient({"_arg": 5}) == Fraction(1, 120)

    def test_cos_even_only(self):
        p = taylor("cos", 4)
        assert p.coefficient({"_arg": 1}) == 0
        assert p.coefficient({"_arg": 2}) == Fraction(-1, 2)
        assert p.coefficient({"_arg": 4}) == Fraction(1, 24)

    def test_sqrt1p(self):
        p = taylor("sqrt1p", 2)
        assert p.coefficient({"_arg": 0}) == 1
        assert p.coefficient({"_arg": 1}) == Fraction(1, 2)
        assert p.coefficient({"_arg": 2}) == Fraction(-1, 8)

    def test_inv1p_alternating(self):
        p = taylor("inv1p", 3)
        assert [p.coefficient({"_arg": n}) for n in range(4)] == [1, -1, 1, -1]

    def test_atan(self):
        p = taylor("atan", 5)
        assert p.coefficient({"_arg": 1}) == 1
        assert p.coefficient({"_arg": 3}) == Fraction(-1, 3)
        assert p.coefficient({"_arg": 5}) == Fraction(1, 5)

    def test_custom_variable(self):
        p = taylor("exp", 2, variable="t")
        assert p.variables == ("t",)

    def test_unknown_function_raises(self):
        with pytest.raises(SymbolicError):
            taylor("gamma", 3)

    def test_negative_degree_raises(self):
        with pytest.raises(SymbolicError):
            taylor("exp", -1)

    def test_supported_list_is_sorted(self):
        assert list(SUPPORTED_TAYLOR) == sorted(SUPPORTED_TAYLOR)


class TestTaylorAccuracy:
    """Truncated series must approach the function on small intervals."""

    @pytest.mark.parametrize("name,func", [
        ("exp", math.exp),
        ("sin", math.sin),
        ("cos", math.cos),
        ("log1p", math.log1p),
        ("atan", math.atan),
    ])
    def test_degree_eight_is_tight_on_small_interval(self, name, func):
        # Factorial-convergent series (exp/sin/cos) reach ~1e-11 here;
        # log1p/atan converge like x^9/9 ~ 4e-7 at |x| = 0.25.
        p = taylor(name, 8)
        err = approximation_error(p, func, -0.25, 0.25)
        assert err < 1e-6

    def test_error_decreases_with_degree(self):
        errs = [approximation_error(taylor("exp", d), math.exp, -0.5, 0.5)
                for d in (2, 4, 8)]
        assert errs[0] > errs[1] > errs[2]


class TestChebyshev:
    def test_fits_log_on_interval(self):
        p = chebyshev_fit(math.log, 0.5, 1.0, 8)
        assert approximation_error(p, math.log, 0.5, 1.0) < 1e-7

    def test_beats_taylor_on_wide_interval(self):
        """Chebyshev's minimax advantage on [0.5, 2] for log."""
        cheb = chebyshev_fit(math.log, 0.5, 2.0, 6)
        # log(1+t) Taylor re-centered: substitute x = 1 + t
        from repro.symalg import Polynomial
        t = Polynomial.variable("_arg")
        tay = taylor("log1p", 6).substitute({"_arg": t - 1})
        cheb_err = approximation_error(cheb, math.log, 0.5, 2.0)
        tay_err = approximation_error(tay, math.log, 0.5, 2.0)
        assert cheb_err < tay_err

    def test_exact_on_polynomials(self):
        p = chebyshev_fit(lambda v: 3 * v ** 2 + 1, -1.0, 1.0, 4)
        assert approximation_error(p, lambda v: 3 * v ** 2 + 1, -1.0, 1.0) < 1e-9

    def test_bad_interval_raises(self):
        with pytest.raises(SymbolicError):
            chebyshev_fit(math.exp, 1.0, 0.0, 4)

    def test_custom_variable(self):
        p = chebyshev_fit(math.exp, 0.0, 1.0, 3, variable="u")
        assert p.variables == ("u",)


class TestApproximationError:
    def test_zero_for_identical(self):
        from repro.symalg import Polynomial
        p = Polynomial.variable("_arg")
        assert approximation_error(p, lambda v: v, -1, 1) == 0.0

    def test_multivariate_raises(self):
        from repro.symalg import symbols
        x, y = symbols("x y")
        with pytest.raises(SymbolicError):
            approximation_error(x + y, math.exp, 0, 1)
