"""Differential tests against SymPy.

SymPy is used purely as an *oracle*: the repro library never imports it.
These tests cross-check our from-scratch engine (expand-style
arithmetic, factorization round-trips, Groebner bases) against an
independent implementation on randomized inputs.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

sympy = pytest.importorskip("sympy")

from repro.symalg import GREVLEX, LEX, Polynomial, factor, groebner_basis, symbols
from repro.symalg.ordering import TermOrder

from .strategies import polynomials, nonzero_polynomials

x, y, z = symbols("x y z")
sx, sy, sz = sympy.symbols("x y z")

settings.register_profile("differential", max_examples=25, deadline=None)
settings.load_profile("differential")


def to_sympy(p: Polynomial):
    expr = sympy.Integer(0)
    table = {"x": sx, "y": sy, "z": sz}
    for powers, coeff in p.iter_terms():
        term = sympy.Rational(coeff.numerator, coeff.denominator)
        for var, e in powers.items():
            term *= table[var] ** e
        expr += term
    return sympy.expand(expr)


def from_sympy(expr) -> Polynomial:
    expr = sympy.expand(expr)
    poly = sympy.Poly(expr, sx, sy, sz)
    terms = {}
    for exps, coeff in poly.terms():
        q = sympy.Rational(coeff)
        terms[tuple(int(e) for e in exps)] = Fraction(int(q.p), int(q.q))
    return Polynomial(("x", "y", "z"), terms)


class TestArithmeticAgainstSympy:
    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_product(self, p, q):
        ours = p * q
        theirs = from_sympy(to_sympy(p) * to_sympy(q))
        assert ours == theirs

    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_sum(self, p, q):
        assert p + q == from_sympy(to_sympy(p) + to_sympy(q))

    @given(polynomials(max_terms=3))
    def test_square(self, p):
        assert p ** 2 == from_sympy(to_sympy(p) ** 2)


class TestFactorAgainstSympy:
    @given(nonzero_polynomials(max_terms=3))
    def test_factor_count_not_worse_for_linears(self, p):
        """Wherever sympy finds rational linear factors, so must we.

        We compare the *number of linear factors* (with multiplicity),
        which our rational-root search is guaranteed to find.
        """
        ours = factor(p)
        theirs = sympy.factor_list(to_sympy(p))

        def linear_count(factors):
            count = 0
            for base, mult in factors:
                if sympy.total_degree(base) == 1:
                    count += mult
            return count

        ours_linear = sum(m for b, m in ours.factors if b.total_degree() == 1)
        assert ours_linear >= linear_count(theirs[1])


class TestGroebnerAgainstSympy:
    @pytest.mark.parametrize("gens", [
        [x ** 2 + y, x * y - 1],
        [x ** 2 + y ** 2 - 1, x * y - 2],
        [x ** 3 - 2 * x * y, x ** 2 * y - 2 * y ** 2 + x],
        [x - y ** 2, y - z ** 3],
    ])
    def test_reduced_gb_matches(self, gens):
        ours = groebner_basis(gens, GREVLEX)
        theirs = sympy.groebner([to_sympy(g) for g in gens], sx, sy, sz,
                                order="grevlex")
        theirs_polys = sorted([str(from_sympy(e.as_expr() / sympy.LC(e, order='grevlex')))
                               for e in theirs.polys], )
        ours_strs = sorted(str(g) for g in ours)
        assert ours_strs == theirs_polys

    @pytest.mark.parametrize("gens", [
        [x ** 2 + y, x * y - 1],
        [y - x ** 2, z - x ** 3],
    ])
    def test_lex_gb_matches(self, gens):
        order = LEX.with_precedence(["x", "y", "z"])
        ours = groebner_basis(gens, order)
        theirs = sympy.groebner([to_sympy(g) for g in gens], sx, sy, sz,
                                order="lex")
        theirs_strs = sorted(str(from_sympy(e.as_expr().as_poly(sx, sy, sz).monic().as_expr()))
                             for e in theirs.polys)
        ours_strs = sorted(str(g) for g in ours)
        assert ours_strs == theirs_strs
