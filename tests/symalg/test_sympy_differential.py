"""Differential tests against SymPy.

SymPy is used purely as an *oracle*: the repro library never imports it.
These tests cross-check our from-scratch engine (expand-style
arithmetic, factorization round-trips, Groebner bases) against an
independent implementation on randomized inputs.
"""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings

sympy = pytest.importorskip("sympy")

from repro.errors import GroebnerExplosion  # noqa: E402
from repro.symalg import (GREVLEX, LEX, Polynomial, factor,  # noqa: E402
                          groebner_basis, symbols)
from repro.symalg.division import divide  # noqa: E402
from repro.symalg.monomials import guard_mask  # noqa: E402

from .strategies import (ideal_polynomials, nonzero_polynomials,  # noqa: E402
                         polynomials)

x, y, z = symbols("x y z")
sx, sy, sz = sympy.symbols("x y z")

settings.register_profile("differential", max_examples=25, deadline=None)
settings.load_profile("differential")


def to_sympy(p: Polynomial):
    expr = sympy.Integer(0)
    table = {"x": sx, "y": sy, "z": sz}
    for powers, coeff in p.iter_terms():
        term = sympy.Rational(coeff.numerator, coeff.denominator)
        for var, e in powers.items():
            term *= table[var] ** e
        expr += term
    return sympy.expand(expr)


def from_sympy(expr) -> Polynomial:
    expr = sympy.expand(expr)
    poly = sympy.Poly(expr, sx, sy, sz)
    terms = {}
    for exps, coeff in poly.terms():
        q = sympy.Rational(coeff)
        terms[tuple(int(e) for e in exps)] = Fraction(int(q.p), int(q.q))
    return Polynomial(("x", "y", "z"), terms)


class TestArithmeticAgainstSympy:
    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_product(self, p, q):
        ours = p * q
        theirs = from_sympy(to_sympy(p) * to_sympy(q))
        assert ours == theirs

    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_sum(self, p, q):
        assert p + q == from_sympy(to_sympy(p) + to_sympy(q))

    @given(polynomials(max_terms=3))
    def test_square(self, p):
        assert p ** 2 == from_sympy(to_sympy(p) ** 2)


class TestFactorAgainstSympy:
    @given(nonzero_polynomials(max_terms=3))
    def test_factor_count_not_worse_for_linears(self, p):
        """Wherever sympy finds rational linear factors, so must we.

        We compare the *number of linear factors* (with multiplicity),
        which our rational-root search is guaranteed to find.
        """
        ours = factor(p)
        theirs = sympy.factor_list(to_sympy(p))

        def linear_count(factors):
            count = 0
            for base, mult in factors:
                if sympy.total_degree(base) == 1:
                    count += mult
            return count

        ours_linear = sum(m for b, m in ours.factors if b.total_degree() == 1)
        assert ours_linear >= linear_count(theirs[1])


class TestGroebnerAgainstSympy:
    @pytest.mark.parametrize("gens", [
        [x ** 2 + y, x * y - 1],
        [x ** 2 + y ** 2 - 1, x * y - 2],
        [x ** 3 - 2 * x * y, x ** 2 * y - 2 * y ** 2 + x],
        [x - y ** 2, y - z ** 3],
    ])
    def test_reduced_gb_matches(self, gens):
        ours = groebner_basis(gens, GREVLEX)
        theirs = sympy.groebner([to_sympy(g) for g in gens], sx, sy, sz,
                                order="grevlex")
        theirs_polys = sorted([str(from_sympy(e.as_expr() / sympy.LC(e, order='grevlex')))
                               for e in theirs.polys], )
        ours_strs = sorted(str(g) for g in ours)
        assert ours_strs == theirs_polys

    @pytest.mark.parametrize("gens", [
        [x ** 2 + y, x * y - 1],
        [y - x ** 2, z - x ** 3],
    ])
    def test_lex_gb_matches(self, gens):
        order = LEX.with_precedence(["x", "y", "z"])
        ours = groebner_basis(gens, order)
        theirs = sympy.groebner([to_sympy(g) for g in gens], sx, sy, sz,
                                order="lex")
        theirs_strs = sorted(str(from_sympy(e.as_expr().as_poly(sx, sy, sz).monic().as_expr()))
                             for e in theirs.polys)
        ours_strs = sorted(str(g) for g in ours)
        assert ours_strs == theirs_strs


def _sympy_grevlex_gb(gens):
    """Sympy's reduced monic grevlex basis, as sorted strings."""
    theirs = sympy.groebner([to_sympy(g) for g in gens], sx, sy, sz,
                            order="grevlex")
    return sorted(str(from_sympy(e.as_expr() / sympy.LC(e, order="grevlex")))
                  for e in theirs.polys)


class TestRandomGroebnerDifferential:
    """Randomized GB differential: both selection strategies vs sympy.

    The reduced monic basis is canonical for the order, so "normal" and
    "sugar" selection must agree with each other exactly *and* with an
    independent implementation — on ideals nobody hand-picked.
    """

    @given(ideal_polynomials(), ideal_polynomials())
    def test_random_ideal_gb_matches_sympy_both_selections(self, f, g):
        gens = [p for p in (f, g) if not p.is_zero()]
        assume(gens)
        try:
            normal = groebner_basis(gens, GREVLEX, selection="normal")
            sugar = groebner_basis(gens, GREVLEX, selection="sugar")
        except GroebnerExplosion:
            assume(False)
        assert [str(p) for p in normal] == [str(p) for p in sugar]
        assert sorted(str(p) for p in normal) == _sympy_grevlex_gb(gens)

    @given(ideal_polynomials(), ideal_polynomials(), ideal_polynomials())
    def test_random_three_generator_ideal(self, f, g, h):
        gens = [p for p in (f, g, h) if not p.is_zero()]
        assume(gens)
        try:
            ours = groebner_basis(gens, GREVLEX, selection="sugar")
        except GroebnerExplosion:
            assume(False)
        assert sorted(str(p) for p in ours) == _sympy_grevlex_gb(gens)


class TestDivisionAgainstSympy:
    """Randomized differential of multivariate division with remainder.

    Sympy's ``reduced`` implements the same Cox-Little-O'Shea ordered
    division, so quotient conventions and all, the remainders must be
    equal — and our result must satisfy the division identity plus the
    remainder-irreducibility invariant on its own.
    """

    @given(polynomials(max_terms=4), ideal_polynomials(),
           ideal_polynomials())
    def test_remainder_matches_sympy_reduced(self, f, g1, g2):
        divisors = [g for g in (g1, g2) if not g.is_zero()]
        assume(divisors)
        ours = divide(f, divisors, GREVLEX)
        assert ours.reconstruct(divisors) == f
        _quotients, r = sympy.reduced(
            to_sympy(f), [to_sympy(g) for g in divisors], sx, sy, sz,
            order="grevlex")
        assert ours.remainder == from_sympy(r)

    @given(polynomials(max_terms=4), ideal_polynomials())
    def test_no_remainder_term_is_divisible_by_a_leading_term(self, f, g):
        assume(not g.is_zero())
        remainder = divide(f, [g], GREVLEX).remainder
        frame = GREVLEX.frame(tuple(sorted({*f.variables, *g.variables})))
        guard = guard_mask(len(frame))
        key = GREVLEX.code_key(len(frame))
        g_codes = g._codes_on(frame)
        g_lt = max(g_codes) if key is None else max(g_codes, key=key)
        from repro.symalg.monomials import divides
        for code in remainder._codes_on(frame):
            assert not divides(g_lt, code, guard)
