"""Tests for the expression parser."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.symalg import Call, Polynomial, parse_expression, parse_polynomial, symbols

x, y = symbols("x y")


class TestBasics:
    def test_integer(self):
        assert parse_polynomial("42") == Polynomial.constant(42)

    def test_decimal_exact(self):
        assert parse_polynomial("0.25") == Polynomial.constant(Fraction(1, 4))

    def test_variable(self):
        assert parse_polynomial("x") == x

    def test_addition_subtraction(self):
        assert parse_polynomial("x + 1 - y") == x + 1 - y

    def test_multiplication(self):
        assert parse_polynomial("2*x*y") == 2 * x * y

    def test_division_by_constant(self):
        assert parse_polynomial("x/2") == x / 2

    def test_division_by_folded_constant(self):
        assert parse_polynomial("x/(1+1)") == x / 2

    def test_caret_power(self):
        assert parse_polynomial("x^3") == x ** 3

    def test_double_star_power(self):
        assert parse_polynomial("x**3") == x ** 3

    def test_unary_minus(self):
        assert parse_polynomial("-x") == -x

    def test_double_negation(self):
        assert parse_polynomial("--x") == x

    def test_unary_plus(self):
        assert parse_polynomial("+x") == x

    def test_parentheses(self):
        assert parse_polynomial("(x+1)*(x-1)") == x ** 2 - 1

    def test_whitespace_insensitive(self):
        assert parse_polynomial(" x +\t2 * y ") == x + 2 * y


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        assert parse_polynomial("1 + 2*x") == 2 * x + 1

    def test_pow_binds_tighter_than_mul(self):
        assert parse_polynomial("2*x^2") == 2 * x ** 2

    def test_unary_minus_with_power(self):
        # -x^2 parses as -(x^2)
        assert parse_polynomial("-x^2") == -(x ** 2)


class TestCalls:
    def test_function_call(self):
        e = parse_expression("exp(x)")
        assert isinstance(e, Call)
        assert e.function == "exp"

    def test_nested_call(self):
        e = parse_expression("f(g(x) + 1)")
        assert isinstance(e, Call)

    def test_multi_argument_call(self):
        e = parse_expression("mac(a, b, c)")
        assert isinstance(e, Call)
        assert len(e.args) == 3

    def test_call_not_polynomial(self):
        with pytest.raises(Exception):
            parse_polynomial("exp(x)")


class TestErrors:
    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_expression("(x + 1")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("x + 1 )")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_expression("x $ y")

    def test_division_by_variable(self):
        with pytest.raises(ParseError):
            parse_expression("x / y")

    def test_division_by_zero(self):
        with pytest.raises(ParseError):
            parse_expression("x / 0")

    def test_fractional_exponent(self):
        with pytest.raises(ParseError):
            parse_expression("x ^ 1.5")

    def test_negative_exponent(self):
        with pytest.raises(ParseError):
            parse_expression("x ^ -2")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_expression("")


class TestPaperPolynomials:
    def test_paper_factor_input(self):
        p = parse_polynomial("x^2*(x^14 + x^15 + 1)")
        assert p == parse_polynomial("x^16 + x^17 + x^2")

    def test_paper_simplify_input(self):
        p = parse_polynomial("x + x^3*y^2 - 2*x*y^3")
        assert p == x + x ** 3 * y ** 2 - 2 * x * y ** 3
