"""Golden tests: every Maple snippet from Section 3.3 of the paper.

These pin the engine to the exact behaviour the paper demonstrates.
"""

from repro.symalg import (Polynomial, factor, horner, parse_polynomial,
                          simplify_modulo, symbols)

x, y = symbols("x y")


class TestFactorExpandSnippet:
    """> S := x^2*(x^14+x^15+1);
       > P := expand(S);        P := x^16+x^17+x^2
       > factor(P);             x^2*(x^14+x^15+1)
    """

    def test_expand(self):
        s = parse_polynomial("x^2*(x^14 + x^15 + 1)")
        assert s == parse_polynomial("x^16 + x^17 + x^2")

    def test_factor_inverts_expand(self):
        p = parse_polynomial("x^16 + x^17 + x^2")
        result = factor(p)
        assert result.expand() == p
        assert (Polynomial.variable("x"), 2) in result.factors
        assert (parse_polynomial("x^14 + x^15 + 1"), 1) in result.factors


class TestHornerSnippet:
    """> S := y^2*x + y*x^2 + 4*x*y + x^2 + 2*x;
       > convert(S, 'horner', [x,y]);   (2+(4+y)*y+(y+1)*x)*x
    """

    def test_horner_form(self):
        s = parse_polynomial("y^2*x + y*x^2 + 4*x*y + x^2 + 2*x")
        nested = horner(s, ["x", "y"])
        assert nested.to_polynomial() == s
        # Maple's form costs 3 muls + 4 adds; ours must match that economy.
        assert nested.op_count().muls == 3
        assert nested.op_count().adds == 4
        # The outermost structure is (...) * x.
        assert str(nested).endswith("* x")


class TestSimplifySnippet:
    """> S := x + x^3*y^2 - 2*x*y^3
       > simplify(S, {p = x^2-2*y}, [x,y,p]);   x + y^2*x*p
    """

    def test_simplify(self):
        s = parse_polynomial("x + x^3*y^2 - 2*x*y^3")
        p_rel = parse_polynomial("x^2 - 2*y")
        result = simplify_modulo(s, {"p": p_rel}, ["x", "y", "p"])
        p = Polynomial.variable("p")
        assert result == x + y ** 2 * x * p

    def test_simplify_substitution_is_sound(self):
        """Substituting p = x^2 - 2y back must recover S."""
        s = parse_polynomial("x + x^3*y^2 - 2*x*y^3")
        p_rel = parse_polynomial("x^2 - 2*y")
        result = simplify_modulo(s, {"p": p_rel}, ["x", "y", "p"])
        assert result.substitute({"p": p_rel}) == s


class TestEquationOne:
    """Equation 1: the IMDCT polynomial

        x_i = sum_{k=0}^{n/2-1} y_k cos(pi/(2n) (2i + 1 + n/2)(2k + 1))

    With the cosines precomputed (as the paper notes) this is a linear
    form in the y_k; the symbolic engine must treat the cosine matrix as
    symbolic constants c_{i,k}.
    """

    def test_imdct_polynomial_is_linear_in_inputs(self):
        n = 12
        ys = symbols(" ".join(f"y{k}" for k in range(n // 2)))
        cs = symbols(" ".join(f"c{k}" for k in range(n // 2)))
        x_i = Polynomial.zero()
        for yk, ck in zip(ys, cs):
            x_i = x_i + ck * yk
        for yk in ys:
            assert x_i.degree_in(yk.variables[0]) == 1
        assert x_i.total_degree() == 2  # bilinear in (c, y)

    def test_imdct_row_matches_library_template_via_simplify(self):
        """A row of Eq. 1 collapses to one library symbol under simplify."""
        n = 12
        names_y = [f"y{k}" for k in range(n // 2)]
        names_c = [f"c{k}" for k in range(n // 2)]
        row = Polynomial.zero()
        for cn, yn in zip(names_c, names_y):
            row = row + Polynomial.variable(cn) * Polynomial.variable(yn)
        result = simplify_modulo(row, {"imdct_row": row})
        assert result == Polynomial.variable("imdct_row")
