"""Tests for monomial term orders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symalg.ordering import GREVLEX, GRLEX, LEX, TermOrder

VARS = ("x", "y", "z")
exps = st.tuples(*[st.integers(min_value=0, max_value=6)] * 3)


class TestConstruction:
    def test_bad_kind_raises(self):
        with pytest.raises(ValueError):
            TermOrder("degrevlexx")

    def test_duplicate_precedence_raises(self):
        with pytest.raises(ValueError):
            TermOrder("lex", ("x", "x"))

    def test_with_precedence(self):
        order = LEX.with_precedence(["y", "x"])
        assert order.precedence == ("y", "x")
        assert order.kind == "lex"


class TestArrangement:
    def test_default_sorted_by_name(self):
        assert GREVLEX.arrangement(("z", "x", "y")) == (1, 2, 0)

    def test_precedence_first(self):
        order = TermOrder("lex", ("z",))
        # z first, then remaining sorted: x, y
        assert order.arrangement(("x", "y", "z")) == (2, 0, 1)

    def test_precedence_with_absent_names(self):
        order = TermOrder("lex", ("q", "y"))
        assert order.arrangement(("x", "y")) == (1, 0)


class TestClassicExamples:
    """Cox-Little-O'Shea staple comparisons over (x, y, z)."""

    def test_lex(self):
        key = LEX.sort_key(VARS)
        assert key((1, 0, 0)) > key((0, 3, 4))      # x > y^3 z^4
        assert key((3, 2, 1)) > key((3, 2, 0))

    def test_grlex_degree_first(self):
        key = GRLEX.sort_key(VARS)
        assert key((0, 3, 4)) > key((1, 0, 0))      # degree 7 > 1
        assert key((2, 1, 0)) > key((1, 1, 1))      # same degree, lex tie-break

    def test_grevlex_vs_grlex_disagree(self):
        # Classic example: x^2 y z vs x y^3:  grlex and grevlex both
        # compare by degree (4 each)...
        grlex_key = GRLEX.sort_key(VARS)
        grevlex_key = GREVLEX.sort_key(VARS)
        a, b = (1, 1, 2), (0, 3, 1)
        # grlex: x beats y on the lex tie-break.
        assert grlex_key(a) > grlex_key(b)
        # grevlex: b has fewer z's, so b wins (smallest last exponent).
        assert grevlex_key(b) > grevlex_key(a)

    def test_grevlex_single_variables(self):
        key = GREVLEX.sort_key(VARS)
        assert key((1, 0, 0)) > key((0, 1, 0)) > key((0, 0, 1))


class TestOrderAxioms:
    @given(exps, exps)
    def test_total_order(self, a, b):
        for order in (LEX, GRLEX, GREVLEX):
            key = order.sort_key(VARS)
            assert (key(a) > key(b)) or (key(b) > key(a)) or a == b

    @given(exps, exps, exps)
    def test_multiplicative(self, a, b, c):
        """a > b implies a+c > b+c (compatibility with multiplication)."""
        for order in (LEX, GRLEX, GREVLEX):
            key = order.sort_key(VARS)
            if key(a) > key(b):
                ac = tuple(i + j for i, j in zip(a, c))
                bc = tuple(i + j for i, j in zip(b, c))
                assert key(ac) > key(bc)

    @given(exps)
    def test_one_is_minimal(self, a):
        """The constant monomial is the global minimum (well-ordering)."""
        for order in (LEX, GRLEX, GREVLEX):
            key = order.sort_key(VARS)
            if a != (0, 0, 0):
                assert key(a) > key((0, 0, 0))


class TestHelpers:
    def test_max_monomial(self):
        assert GREVLEX.max_monomial([(1, 0, 0), (0, 0, 2)], VARS) == (0, 0, 2)

    def test_sorted_monomials_descending_default(self):
        out = LEX.sorted_monomials([(0, 1, 0), (1, 0, 0)], VARS)
        assert out == [(1, 0, 0), (0, 1, 0)]
