"""Tests for Buchberger's algorithm and ideal operations."""

import pytest
from hypothesis import given, settings

from repro.errors import GroebnerExplosion
from repro.symalg import (GREVLEX, LEX, Polynomial, eliminate, groebner_basis,
                          ideal_membership, is_groebner_basis, normal_form,
                          reduce, s_polynomial, symbols)
from repro.symalg.ordering import TermOrder

from .strategies import nonzero_polynomials

x, y, z = symbols("x y z")


class TestSPolynomial:
    def test_cancels_leading_terms(self):
        order = GREVLEX
        f = x ** 3 * y ** 2 - x ** 2 * y ** 3 + x
        g = 3 * x ** 4 * y + y ** 2
        s = s_polynomial(f, g, order)
        # CLO ch.2 §6: S(f,g) = -x^3 y^3 + x^2 - (1/3) y^3
        expected = -(x ** 3) * y ** 3 + x ** 2 - y ** 3 / 3
        assert s == expected

    def test_self_s_polynomial_is_zero(self):
        f = x ** 2 + y
        assert s_polynomial(f, f).is_zero()


class TestGroebnerBasis:
    def test_single_generator(self):
        gb = groebner_basis([2 * x ** 2 + 2], GREVLEX)
        assert gb == [x ** 2 + 1]  # monic

    def test_clo_twisted_cubic(self):
        """Twisted cubic: lex GB of (y - x^2, z - x^3)."""
        order = LEX.with_precedence(["x", "y", "z"])
        gb = groebner_basis([y - x ** 2, z - x ** 3], order)
        assert is_groebner_basis(gb, order)
        # Elimination ideal must contain a polynomial free of x:
        free_of_x = [g for g in gb if "x" not in g.variables]
        assert any(g == y ** 3 - z ** 2 or g == -(y ** 3) + z ** 2 for g in free_of_x)

    def test_classic_example_is_gb(self):
        order = GREVLEX
        gb = groebner_basis([x ** 2 + y, x * y - 1], order)
        assert is_groebner_basis(gb, order)

    def test_non_gb_detected(self):
        order = LEX.with_precedence(["x", "y"])
        assert not is_groebner_basis([x * y - 1, x ** 2 + y], order)

    def test_empty_input(self):
        assert groebner_basis([]) == []

    def test_zero_generators_ignored(self):
        assert groebner_basis([Polynomial.zero(), x]) == [x]

    def test_reduced_basis_is_canonical(self):
        """Different generator orders give the same reduced GB."""
        order = GREVLEX
        gens = [x ** 2 + y ** 2 - 1, x * y - 2]
        gb1 = groebner_basis(gens, order)
        gb2 = groebner_basis(list(reversed(gens)), order)
        assert gb1 == gb2

    def test_normal_form_unique_modulo_gb(self):
        """With a GB, reduction order does not matter: NF is unique."""
        order = GREVLEX
        gb = groebner_basis([x ** 2 + y, x * y - 1], order)
        f = x ** 3 * y ** 2 + x * y + y
        nf1 = reduce(f, gb, order)
        nf2 = reduce(f, list(reversed(gb)), order)
        assert nf1 == nf2

    def test_inconsistent_system_gives_one(self):
        """(x, x+1) generates the unit ideal: GB == [1]."""
        gb = groebner_basis([x, x + 1])
        assert gb == [Polynomial.one()]

    def test_work_limit_raises(self):
        gens = [x ** 3 * y - z, y ** 3 * z - x, z ** 3 * x - y]
        with pytest.raises(GroebnerExplosion):
            groebner_basis(gens, GREVLEX, max_pairs=2)


class TestIdealMembership:
    def test_member(self):
        gens = [x ** 2 + y, x * y - 1]
        combo = (x + y) * gens[0] + (y ** 2) * gens[1]
        assert ideal_membership(combo, gens)

    def test_non_member(self):
        assert not ideal_membership(Polynomial.one(), [x ** 2 + y])

    def test_zero_is_member(self):
        assert ideal_membership(Polynomial.zero(), [x])

    @settings(max_examples=25, deadline=None)
    @given(nonzero_polynomials(max_terms=3), nonzero_polynomials(max_terms=2))
    def test_products_are_members(self, f, g):
        """f*g is in <g> for any f."""
        try:
            assert ideal_membership(f * g, [g])
        except GroebnerExplosion:
            pytest.skip("work limit hit")


class TestElimination:
    def test_eliminate_parameter(self):
        """Implicitize the parabola x = t, y = t^2 -> y - x^2."""
        t = Polynomial.variable("t")
        gens = [x - t, y - t ** 2]
        result = eliminate(gens, ["t"])
        assert any(g == y - x ** 2 or g == x ** 2 - y for g in result)

    def test_eliminate_keeps_only_free(self):
        gens = [x - t_poly() , y - t_poly() ** 3]
        for g in eliminate(gens, ["t"]):
            assert "t" not in g.variables


def t_poly():
    return Polynomial.variable("t")


class TestNormalForm:
    def test_matches_direct_reduction_on_gb(self):
        order = TermOrder("grevlex")
        gens = [x ** 2 - 1]
        f = x ** 5 + x
        assert normal_form(f, gens, order) == 2 * x


class TestSelectionStrategies:
    """The selection knob changes work order, never results."""

    IDEALS = [
        ([Polynomial.variable("p") - (x ** 2 - 2 * y)],
         TermOrder("lex", ("x", "y", "p"))),
        ([x ** 2 - y, y ** 2 - 1], GREVLEX),
        ([x + y + z, x * y + y * z + z * x, x * y * z - 1], GREVLEX),
        ([x ** 3 - 2 * x * y, x ** 2 * y - 2 * y ** 2 + x], GREVLEX),
    ]

    @pytest.mark.parametrize("index", range(len(IDEALS)))
    def test_sugar_equals_normal(self, index):
        gens, order = self.IDEALS[index]
        assert groebner_basis(gens, order, selection="sugar") == \
            groebner_basis(gens, order, selection="normal")

    def test_both_are_groebner_bases(self):
        gens = [x ** 2 - y, x * y - z]
        for sel in ("normal", "sugar"):
            basis = groebner_basis(gens, GREVLEX, selection=sel)
            assert is_groebner_basis(basis, GREVLEX)

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            groebner_basis([x ** 2 - y], GREVLEX, selection="bogus")
