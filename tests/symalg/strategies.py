"""Shared hypothesis strategies for symalg property tests."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import strategies as st

from repro.symalg.polynomial import Polynomial

VARIABLES = ("x", "y", "z")

coefficients = st.fractions(
    min_value=Fraction(-50), max_value=Fraction(50), max_denominator=8,
).filter(lambda f: f != 0)

exponent_tuples = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=4),
)


@st.composite
def polynomials(draw, max_terms: int = 6, allow_zero: bool = True):
    """A random small polynomial in up to three variables."""
    n_terms = draw(st.integers(min_value=0 if allow_zero else 1,
                               max_value=max_terms))
    terms = {}
    for _ in range(n_terms):
        exps = draw(exponent_tuples)
        coeff = draw(coefficients)
        terms[exps] = terms.get(exps, Fraction(0)) + coeff
    return Polynomial(VARIABLES, terms)


@st.composite
def nonzero_polynomials(draw, max_terms: int = 6):
    """A random nonzero polynomial."""
    poly = draw(polynomials(max_terms=max_terms, allow_zero=False))
    if poly.is_zero():
        poly = poly + 1
    return poly


#: Exponents for Groebner-sized inputs: total degree stays <= 6, which
#: keeps Buchberger well inside the work limits on random ideals.
small_exponent_tuples = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=2),
)


@st.composite
def ideal_polynomials(draw, max_terms: int = 3):
    """A small random polynomial sized for Groebner-basis ideals."""
    n_terms = draw(st.integers(min_value=1, max_value=max_terms))
    terms = {}
    for _ in range(n_terms):
        exps = draw(small_exponent_tuples)
        coeff = draw(coefficients)
        terms[exps] = terms.get(exps, Fraction(0)) + coeff
    return Polynomial(VARIABLES, terms)


evaluation_points = st.fixed_dictionaries({
    "x": st.fractions(min_value=Fraction(-5), max_value=Fraction(5), max_denominator=4),
    "y": st.fractions(min_value=Fraction(-5), max_value=Fraction(5), max_denominator=4),
    "z": st.fractions(min_value=Fraction(-5), max_value=Fraction(5), max_denominator=4),
})
