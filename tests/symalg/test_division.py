"""Tests for the multivariate division algorithm."""

import pytest
from hypothesis import given, settings

from repro.errors import DivisionError
from repro.symalg import GREVLEX, LEX, Polynomial, divide, exact_divide, reduce, symbols

from .strategies import nonzero_polynomials, polynomials

x, y, z = symbols("x y z")


class TestExamples:
    def test_cox_little_oshea_example(self):
        """CLO ch.2 §3 example 1: divide x^2 y + x y^2 + y^2 by [xy-1, y^2-1]."""
        f = x ** 2 * y + x * y ** 2 + y ** 2
        res = divide(f, [x * y - 1, y ** 2 - 1], LEX.with_precedence(["x", "y"]))
        assert res.quotients[0] == x + y
        assert res.quotients[1] == Polynomial.one()
        assert res.remainder == x + y + 1

    def test_divisor_order_changes_result(self):
        """Division remainder depends on divisor order for non-GB sets."""
        f = x ** 2 * y + x * y ** 2 + y ** 2
        order = LEX.with_precedence(["x", "y"])
        r1 = reduce(f, [x * y - 1, y ** 2 - 1], order)
        r2 = reduce(f, [y ** 2 - 1, x * y - 1], order)
        assert r1 != r2

    def test_single_divisor_univariate(self):
        f = x ** 3 - 2 * x + 5
        res = divide(f, [x - 1])
        assert res.remainder == Polynomial.constant(4)  # f(1) = 4

    def test_zero_dividend(self):
        res = divide(Polynomial.zero(), [x + 1])
        assert res.remainder.is_zero()
        assert res.quotients[0].is_zero()

    def test_zero_divisor_raises(self):
        with pytest.raises(DivisionError):
            divide(x, [Polynomial.zero()])

    def test_empty_divisor_list_reduce(self):
        assert reduce(x + 1, []) == x + 1


class TestExactDivision:
    def test_exact(self):
        assert exact_divide((x + y) * (x - y), x + y) == x - y

    def test_inexact_raises(self):
        with pytest.raises(DivisionError):
            exact_divide(x ** 2 + 1, x + 1)

    def test_constant_divisor(self):
        assert exact_divide(2 * x, Polynomial.constant(2)) == x


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(polynomials(), nonzero_polynomials(max_terms=3),
           nonzero_polynomials(max_terms=3))
    def test_reconstruction(self, f, g1, g2):
        """f == q1 g1 + q2 g2 + r, always."""
        res = divide(f, [g1, g2], GREVLEX)
        assert res.reconstruct([g1, g2]) == f

    @settings(max_examples=60, deadline=None)
    @given(polynomials(), nonzero_polynomials(max_terms=3))
    def test_remainder_irreducible(self, f, g):
        """No remainder term is divisible by LT(g)."""
        res = divide(f, [g], GREVLEX)
        lt_exps, _ = g.leading_term(GREVLEX)
        lt = {v: e for v, e in zip(g.variables, lt_exps) if e}
        for powers, _ in res.remainder.iter_terms():
            divisible = all(powers.get(v, 0) >= e for v, e in lt.items())
            assert not divisible

    @settings(max_examples=60, deadline=None)
    @given(polynomials(), nonzero_polynomials(max_terms=3))
    def test_reduce_idempotent(self, f, g):
        once = reduce(f, [g], GREVLEX)
        twice = reduce(once, [g], GREVLEX)
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(nonzero_polynomials(max_terms=4), nonzero_polynomials(max_terms=3))
    def test_product_reduces_to_zero(self, q, g):
        """q*g is in the ideal (g), so dividing by [g] leaves nothing."""
        assert reduce(q * g, [g], GREVLEX).is_zero()
