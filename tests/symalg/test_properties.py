"""Hypothesis property tests: the polynomial ring axioms and friends."""

from fractions import Fraction

from hypothesis import given, settings

from repro.symalg import Polynomial, symbols

from .strategies import evaluation_points, polynomials

settings.register_profile("symalg", max_examples=60, deadline=None)
settings.load_profile("symalg")


class TestRingAxioms:
    @given(polynomials(), polynomials())
    def test_addition_commutative(self, p, q):
        assert p + q == q + p

    @given(polynomials(), polynomials(), polynomials())
    def test_addition_associative(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials())
    def test_additive_identity(self, p):
        assert p + Polynomial.zero() == p

    @given(polynomials())
    def test_additive_inverse(self, p):
        assert (p + (-p)).is_zero()

    @given(polynomials(), polynomials())
    def test_multiplication_commutative(self, p, q):
        assert p * q == q * p

    @given(polynomials(max_terms=4), polynomials(max_terms=4), polynomials(max_terms=4))
    def test_multiplication_associative(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(polynomials())
    def test_multiplicative_identity(self, p):
        assert p * Polynomial.one() == p

    @given(polynomials(max_terms=4), polynomials(max_terms=4), polynomials(max_terms=4))
    def test_distributive(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials())
    def test_zero_annihilates(self, p):
        assert (p * Polynomial.zero()).is_zero()


class TestEvaluationHomomorphism:
    """evaluate() is a ring homomorphism: it commutes with + and *."""

    @given(polynomials(), polynomials(), evaluation_points)
    def test_add(self, p, q, point):
        assert (p + q).evaluate(point) == p.evaluate(point) + q.evaluate(point)

    @given(polynomials(max_terms=4), polynomials(max_terms=4), evaluation_points)
    def test_mul(self, p, q, point):
        assert (p * q).evaluate(point) == p.evaluate(point) * q.evaluate(point)

    @given(polynomials(max_terms=4), evaluation_points)
    def test_pow(self, p, point):
        assert (p ** 3).evaluate(point) == p.evaluate(point) ** 3


class TestDerivativeRules:
    @given(polynomials(), polynomials())
    def test_linearity(self, p, q):
        got = (p + q).derivative("x")
        assert got == p.derivative("x") + q.derivative("x")

    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_product_rule(self, p, q):
        got = (p * q).derivative("x")
        assert got == p.derivative("x") * q + p * q.derivative("x")

    @given(polynomials(max_terms=4))
    def test_mixed_partials_commute(self, p):
        assert p.derivative("x").derivative("y") == p.derivative("y").derivative("x")


class TestSubstitutionRules:
    @given(polynomials(max_terms=4), polynomials(max_terms=3), evaluation_points)
    def test_substitution_composes_with_evaluation(self, p, q, point):
        """p[x := q](pt) == p(x := q(pt), ...)."""
        substituted = p.substitute({"x": q})
        env = dict(point)
        env["x"] = q.evaluate(point)
        assert substituted.evaluate(point) == p.evaluate(env)

    @given(polynomials(max_terms=4))
    def test_identity_substitution(self, p):
        x = Polynomial.variable("x")
        assert p.substitute({"x": x}) == p


class TestDegreeLaws:
    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_degree_of_product(self, p, q):
        if p.is_zero() or q.is_zero():
            return
        assert (p * q).total_degree() == p.total_degree() + q.total_degree()

    @given(polynomials(), polynomials())
    def test_degree_of_sum_bounded(self, p, q):
        s = p + q
        if s.is_zero():
            return
        assert s.total_degree() <= max(p.total_degree(), q.total_degree())
