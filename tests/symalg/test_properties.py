"""Hypothesis property tests: the polynomial ring axioms, the packed
monomial encoding, and friends."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symalg import Polynomial
from repro.symalg.monomials import (coprime, degree, divides, guard_mask,
                                    lcm, pack, remap, remap_table, unpack)

from .strategies import evaluation_points, polynomials

settings.register_profile("symalg", max_examples=60, deadline=None)
settings.load_profile("symalg")

#: Random exponent vectors for the packed-monomial suite.  Exponents
#: range far beyond anything polynomials produce but stay below the
#: per-field guard bit at 2**(SHIFT-1), the encoding's stated domain.
exponents = st.integers(min_value=0, max_value=1 << 20)
frame_sizes = st.integers(min_value=1, max_value=6)


@st.composite
def exponent_vector_pairs(draw):
    """Two exponent vectors over one shared frame."""
    n = draw(frame_sizes)
    vec = st.lists(exponents, min_size=n, max_size=n)
    return tuple(draw(vec)), tuple(draw(vec))


class TestPackedMonomials:
    """The packed encoding agrees with a naive tuple reference."""

    @given(st.lists(exponents, min_size=1, max_size=6))
    def test_pack_unpack_roundtrip(self, exps):
        assert unpack(pack(exps), len(exps)) == tuple(exps)

    @given(st.lists(exponents, min_size=1, max_size=6))
    def test_degree_is_sum_of_exponents(self, exps):
        assert degree(pack(exps)) == sum(exps)

    @given(exponent_vector_pairs())
    def test_guard_bit_divisibility_matches_naive(self, pair):
        a, b = pair
        naive = all(ea <= eb for ea, eb in zip(a, b))
        assert divides(pack(a), pack(b), guard_mask(len(a))) == naive

    @given(exponent_vector_pairs())
    def test_exact_divide_is_code_subtraction(self, pair):
        """Construct a divisible pair (b = a * q fieldwise) directly so
        every frame width exercises the subtraction, rather than
        filtering random pairs (almost never divisible on wide frames)."""
        a, q = pair
        b = tuple(ea + eq for ea, eq in zip(a, q))
        assert divides(pack(a), pack(b), guard_mask(len(a)))
        assert unpack(pack(b) - pack(a), len(a)) == q

    @given(exponent_vector_pairs())
    def test_multiply_is_code_addition(self, pair):
        a, b = pair
        assert unpack(pack(a) + pack(b), len(a)) == \
            tuple(ea + eb for ea, eb in zip(a, b))

    @given(exponent_vector_pairs())
    def test_lcm_matches_fieldwise_max(self, pair):
        a, b = pair
        assert unpack(lcm(pack(a), pack(b)), len(a)) == \
            tuple(max(ea, eb) for ea, eb in zip(a, b))

    @given(exponent_vector_pairs())
    def test_lcm_is_commutative_and_divisible_by_both(self, pair):
        a, b = pair
        guard = guard_mask(len(a))
        code = lcm(pack(a), pack(b))
        assert code == lcm(pack(b), pack(a))
        assert divides(pack(a), code, guard)
        assert divides(pack(b), code, guard)

    @given(exponent_vector_pairs())
    def test_coprime_matches_naive(self, pair):
        a, b = pair
        naive = not any(ea and eb for ea, eb in zip(a, b))
        assert coprime(pack(a), pack(b)) == naive

    @given(st.data())
    def test_remap_preserves_exponents_across_frames(self, data):
        n = data.draw(frame_sizes)
        src = tuple(f"v{i}" for i in range(n))
        exps = data.draw(st.lists(exponents, min_size=n, max_size=n))
        extra = data.draw(st.integers(min_value=0, max_value=3))
        dst = list(src) + [f"w{i}" for i in range(extra)]
        data.draw(st.randoms(use_true_random=False)).shuffle(dst)
        dst = tuple(dst)
        moved = remap(pack(exps), remap_table(src, dst))
        by_name = dict(zip(src, exps))
        assert unpack(moved, len(dst)) == \
            tuple(by_name.get(name, 0) for name in dst)


class TestRingAxioms:
    @given(polynomials(), polynomials())
    def test_addition_commutative(self, p, q):
        assert p + q == q + p

    @given(polynomials(), polynomials(), polynomials())
    def test_addition_associative(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials())
    def test_additive_identity(self, p):
        assert p + Polynomial.zero() == p

    @given(polynomials())
    def test_additive_inverse(self, p):
        assert (p + (-p)).is_zero()

    @given(polynomials(), polynomials())
    def test_multiplication_commutative(self, p, q):
        assert p * q == q * p

    @given(polynomials(max_terms=4), polynomials(max_terms=4), polynomials(max_terms=4))
    def test_multiplication_associative(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(polynomials())
    def test_multiplicative_identity(self, p):
        assert p * Polynomial.one() == p

    @given(polynomials(max_terms=4), polynomials(max_terms=4), polynomials(max_terms=4))
    def test_distributive(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials())
    def test_zero_annihilates(self, p):
        assert (p * Polynomial.zero()).is_zero()


class TestEvaluationHomomorphism:
    """evaluate() is a ring homomorphism: it commutes with + and *."""

    @given(polynomials(), polynomials(), evaluation_points)
    def test_add(self, p, q, point):
        assert (p + q).evaluate(point) == p.evaluate(point) + q.evaluate(point)

    @given(polynomials(max_terms=4), polynomials(max_terms=4), evaluation_points)
    def test_mul(self, p, q, point):
        assert (p * q).evaluate(point) == p.evaluate(point) * q.evaluate(point)

    @given(polynomials(max_terms=4), evaluation_points)
    def test_pow(self, p, point):
        assert (p ** 3).evaluate(point) == p.evaluate(point) ** 3


class TestDerivativeRules:
    @given(polynomials(), polynomials())
    def test_linearity(self, p, q):
        got = (p + q).derivative("x")
        assert got == p.derivative("x") + q.derivative("x")

    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_product_rule(self, p, q):
        got = (p * q).derivative("x")
        assert got == p.derivative("x") * q + p * q.derivative("x")

    @given(polynomials(max_terms=4))
    def test_mixed_partials_commute(self, p):
        assert p.derivative("x").derivative("y") == p.derivative("y").derivative("x")


class TestSubstitutionRules:
    @given(polynomials(max_terms=4), polynomials(max_terms=3), evaluation_points)
    def test_substitution_composes_with_evaluation(self, p, q, point):
        """p[x := q](pt) == p(x := q(pt), ...)."""
        substituted = p.substitute({"x": q})
        env = dict(point)
        env["x"] = q.evaluate(point)
        assert substituted.evaluate(point) == p.evaluate(env)

    @given(polynomials(max_terms=4))
    def test_identity_substitution(self, p):
        x = Polynomial.variable("x")
        assert p.substitute({"x": x}) == p


class TestDegreeLaws:
    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_degree_of_product(self, p, q):
        if p.is_zero() or q.is_zero():
            return
        assert (p * q).total_degree() == p.total_degree() + q.total_degree()

    @given(polynomials(), polynomials())
    def test_degree_of_sum_bounded(self, p, q):
        s = p + q
        if s.is_zero():
            return
        assert s.total_degree() <= max(p.total_degree(), q.total_degree())
