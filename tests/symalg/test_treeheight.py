"""Tests for tree-height reduction."""

from hypothesis import given, settings

from repro.symalg import parse_expression, reduce_tree_height
from repro.symalg.expression import Call, Pow, var

from .strategies import evaluation_points, nonzero_polynomials


class TestBalancing:
    def test_add_chain_becomes_log_depth(self):
        chain = ((var("a") + var("b")) + var("c")) + var("d")
        assert chain.depth() == 3
        balanced = reduce_tree_height(chain)
        assert balanced.depth() == 2

    def test_eight_leaves_depth_three(self):
        names = "abcdefgh"
        expr = var(names[0])
        for n in names[1:]:
            expr = expr + var(n)
        balanced = reduce_tree_height(expr)
        assert balanced.depth() == 3

    def test_mul_chain(self):
        expr = var("a") * var("b") * var("c") * var("d")
        balanced = reduce_tree_height(expr)
        assert balanced.depth() == 2

    def test_leaf_unchanged(self):
        assert reduce_tree_height(var("x")) == var("x")

    def test_balances_inside_pow(self):
        chain = ((var("a") + var("b")) + var("c")) + var("d")
        expr = Pow(chain, 2)
        balanced = reduce_tree_height(expr)
        assert balanced.depth() == 3  # 2 for the sum + 1 for the pow

    def test_balances_inside_call(self):
        chain = ((var("a") + var("b")) + var("c")) + var("d")
        expr = Call("exp", (chain,))
        balanced = reduce_tree_height(expr)
        assert balanced.depth() == 3


class TestSemantics:
    def test_value_preserved(self):
        expr = parse_expression("a + b + c + d + e")
        env = {"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}
        assert reduce_tree_height(expr).evaluate(env) == expr.evaluate(env)

    @settings(max_examples=30, deadline=None)
    @given(nonzero_polynomials(max_terms=6), evaluation_points)
    def test_polynomial_expressions_preserved(self, poly, point):
        from repro.symalg import horner
        expr = horner(poly)
        balanced = reduce_tree_height(expr)
        assert balanced.evaluate(point) == poly.evaluate(point)

    @settings(max_examples=30, deadline=None)
    @given(nonzero_polynomials(max_terms=6))
    def test_polynomial_form_preserved(self, poly):
        from repro.symalg import horner
        balanced = reduce_tree_height(horner(poly))
        assert balanced.to_polynomial() == poly
