"""Tests for the Horner (nested form) transform."""

from hypothesis import given, settings

from repro.symalg import Polynomial, horner, horner_op_count, parse_polynomial, symbols

from .strategies import evaluation_points, nonzero_polynomials

x, y, z = symbols("x y z")


class TestPaperExample:
    def test_maple_horner_snippet(self):
        """Section 3.3: convert(y^2 x + y x^2 + 4xy + x^2 + 2x, horner, [x,y])."""
        s = parse_polynomial("y^2*x + y*x^2 + 4*x*y + x^2 + 2*x")
        nested = horner(s, ["x", "y"])
        # Same function...
        assert nested.to_polynomial() == s
        # ...with Maple's operation economy: (2+(4+y)*y+(y+1)*x)*x costs
        # 3 multiplications and 4 additions, and so must ours.
        count = nested.op_count()
        assert count.muls == 3
        assert count.adds == 4


class TestUnivariate:
    def test_cubic(self):
        p = parse_polynomial("2*x^3 - 6*x^2 + 2*x - 1")
        nested = horner(p)
        assert nested.to_polynomial() == p
        # ((2x - 6)x + 2)x - 1: 3 muls
        assert nested.op_count().muls == 3

    def test_monomial_power(self):
        p = parse_polynomial("x^5")
        nested = horner(p)
        assert nested.to_polynomial() == p

    def test_sparse_polynomial_gap_handling(self):
        p = parse_polynomial("x^6 + 1")
        nested = horner(p)
        assert nested.to_polynomial() == p

    def test_constant(self):
        nested = horner(Polynomial.constant(7))
        assert nested.to_polynomial() == Polynomial.constant(7)

    def test_zero(self):
        nested = horner(Polynomial.zero())
        assert nested.to_polynomial().is_zero()


class TestVariableOrder:
    def test_order_changes_shape_not_value(self):
        s = parse_polynomial("x^2*y + x*y^2 + x*y")
        h_xy = horner(s, ["x", "y"])
        h_yx = horner(s, ["y", "x"])
        assert h_xy.to_polynomial() == s
        assert h_yx.to_polynomial() == s

    def test_unlisted_variables_appended(self):
        s = parse_polynomial("x*y + y^2")
        nested = horner(s, ["x"])
        assert nested.to_polynomial() == s


class TestOpCount:
    def test_fewer_muls_than_expanded(self):
        """Horner's defining property: minimal multiplications for dense polys."""
        p = parse_polynomial("x^4 + x^3 + x^2 + x + 1")
        naive_muls = 4 + 3 + 2 + 1  # power-by-repeated-multiplication
        assert horner_op_count(p).muls < naive_muls
        # (((x + 1)*x + 1)*x + 1)*x + 1 with the leading 1*x folded: 3 muls.
        assert horner_op_count(p).muls == 3

    def test_op_count_helper_matches_expression(self):
        p = parse_polynomial("3*x^2 + 2*x + 1")
        assert horner_op_count(p) == horner(p).op_count()


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(nonzero_polynomials(max_terms=5), evaluation_points)
    def test_horner_evaluates_identically(self, p, point):
        nested = horner(p)
        assert nested.evaluate(point) == p.evaluate(point)

    @settings(max_examples=40, deadline=None)
    @given(nonzero_polynomials(max_terms=5))
    def test_horner_polynomial_roundtrip(self, p):
        assert horner(p).to_polynomial() == p
