"""Tests for polynomial GCD/LCM."""

from hypothesis import given, settings

from repro.symalg import Polynomial, polynomial_gcd, polynomial_lcm, symbols
from repro.symalg.division import reduce
from repro.symalg.gcdtools import content_in, primitive_in, pseudo_remainder
from repro.symalg.ordering import GREVLEX

from .strategies import nonzero_polynomials

x, y, z = symbols("x y z")


class TestUnivariate:
    def test_common_factor(self):
        f = (x + 1) * (x - 2)
        g = (x + 1) * (x + 3)
        assert polynomial_gcd(f, g) == x + 1

    def test_coprime(self):
        assert polynomial_gcd(x + 1, x + 2) == Polynomial.one()

    def test_integer_content(self):
        assert polynomial_gcd(6 * x, 4 * x) == 2 * x

    def test_gcd_with_zero(self):
        assert polynomial_gcd(Polynomial.zero(), x + 1) == x + 1
        assert polynomial_gcd(x + 1, Polynomial.zero()) == x + 1

    def test_gcd_of_constants(self):
        got = polynomial_gcd(Polynomial.constant(6), Polynomial.constant(4))
        assert got == Polynomial.constant(2)

    def test_repeated_roots(self):
        f = (x - 1) ** 3 * (x + 2)
        g = (x - 1) ** 2
        assert polynomial_gcd(f, g) == (x - 1) ** 2


class TestMultivariate:
    def test_shared_linear_factor(self):
        f = (x + y) * (x - y)
        g = (x + y) ** 2
        assert polynomial_gcd(f, g) == x + y

    def test_no_shared_variables(self):
        assert polynomial_gcd(x + 1, y + 1) == Polynomial.one()

    def test_three_variables(self):
        common = x * y + z
        f = common * (x + 1)
        g = common * (y + z)
        assert polynomial_gcd(f, g) == common

    def test_normalization_positive_leading(self):
        f = -(x + y)
        g = (x + y) * 3
        got = polynomial_gcd(f, g)
        assert got == x + y


class TestHelpers:
    def test_pseudo_remainder_degree_drop(self):
        f = x ** 3 * y + x
        g = x ** 2 + y
        rem = pseudo_remainder(f, g, "x")
        assert rem.degree_in("x") < g.degree_in("x")

    def test_pseudo_remainder_below_degree_identity(self):
        f = x + 1
        g = x ** 2
        assert pseudo_remainder(f, g, "x") == f

    def test_content_in(self):
        f = (y + 1) * x ** 2 + (y + 1) * x
        assert content_in(f, "x") == y + 1

    def test_primitive_in(self):
        f = (y + 1) * x ** 2 + (y + 1)
        assert primitive_in(f, "x") == x ** 2 + 1


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(nonzero_polynomials(max_terms=3), nonzero_polynomials(max_terms=3))
    def test_gcd_divides_both(self, f, g):
        d = polynomial_gcd(f, g)
        assert reduce(f, [d], GREVLEX).is_zero()
        assert reduce(g, [d], GREVLEX).is_zero()

    @settings(max_examples=30, deadline=None)
    @given(nonzero_polynomials(max_terms=2), nonzero_polynomials(max_terms=2),
           nonzero_polynomials(max_terms=2))
    def test_common_multiplier_appears(self, f, g, h):
        """h | gcd(f*h, g*h)."""
        d = polynomial_gcd(f * h, g * h)
        assert reduce(d, [h], GREVLEX).is_zero() or reduce(h, [d], GREVLEX).is_zero()
        # h divides d always:
        assert reduce(d, [h], GREVLEX).is_zero()

    @settings(max_examples=30, deadline=None)
    @given(nonzero_polynomials(max_terms=3), nonzero_polynomials(max_terms=3))
    def test_symmetry_up_to_equality(self, f, g):
        assert polynomial_gcd(f, g) == polynomial_gcd(g, f)

    @settings(max_examples=30, deadline=None)
    @given(nonzero_polynomials(max_terms=2), nonzero_polynomials(max_terms=2))
    def test_lcm_times_gcd_divides_product(self, f, g):
        d = polynomial_gcd(f, g)
        m = polynomial_lcm(f, g)
        # lcm * gcd == f * g up to a rational unit.
        prod = f * g
        ratio_num = m * d
        # both divide each other => equal up to constant
        assert reduce(prod, [ratio_num], GREVLEX).is_zero()
        assert reduce(ratio_num, [prod], GREVLEX).is_zero()
