"""Unit tests for the core Polynomial type."""

from fractions import Fraction

import pytest

from repro.errors import SymbolicError
from repro.symalg import GREVLEX, LEX, Polynomial, symbols

x, y, z = symbols("x y z")


class TestConstruction:
    def test_constant(self):
        p = Polynomial.constant(5)
        assert p.is_constant()
        assert p.constant_value() == 5

    def test_zero_constant_has_no_terms(self):
        assert Polynomial.constant(0).is_zero()
        assert len(Polynomial.constant(0)) == 0

    def test_variable(self):
        p = Polynomial.variable("x")
        assert p.variables == ("x",)
        assert p.total_degree() == 1

    def test_monomial(self):
        p = Polynomial.monomial({"x": 2, "y": 1}, 3)
        assert p.coefficient({"x": 2, "y": 1}) == 3
        assert p.total_degree() == 3

    def test_symbols_comma_separated(self):
        a, b = symbols("a, b")
        assert a.variables == ("a",)
        assert b.variables == ("b",)

    def test_symbols_empty_raises(self):
        with pytest.raises(SymbolicError):
            symbols("   ")

    def test_variables_are_sorted(self):
        p = Polynomial(("b", "a"), {(1, 1): 1})
        assert p.variables == ("a", "b")

    def test_unused_variables_pruned(self):
        p = Polynomial(("x", "y"), {(2, 0): 1})
        assert p.variables == ("x",)

    def test_zero_coefficients_dropped(self):
        p = Polynomial(("x",), {(1,): 0, (2,): 1})
        assert p.coefficient({"x": 1}) == 0
        assert len(p) == 1

    def test_duplicate_exponents_combine(self):
        # Construction-level combining (dict keys are unique, but the
        # canonicalizer must still sum when remapping collides).
        p = Polynomial(("x", "y"), {(1, 0): 2})
        q = Polynomial(("x",), {(1,): 3})
        assert (p + q).coefficient({"x": 1}) == 5

    def test_mismatched_exponent_length_raises(self):
        with pytest.raises(SymbolicError):
            Polynomial(("x",), {(1, 2): 1})

    def test_negative_exponent_raises(self):
        with pytest.raises(SymbolicError):
            Polynomial(("x",), {(-1,): 1})

    def test_float_coefficients_are_exact(self):
        p = Polynomial.constant(0.5)
        assert p.constant_value() == Fraction(1, 2)

    def test_nan_coefficient_raises(self):
        with pytest.raises(SymbolicError):
            Polynomial.constant(float("nan"))


class TestArithmetic:
    def test_addition_aligns_variables(self):
        p = x + y
        assert p.coefficient({"x": 1}) == 1
        assert p.coefficient({"y": 1}) == 1

    def test_scalar_addition_both_sides(self):
        assert (x + 1) == (1 + x)

    def test_subtraction(self):
        assert (x - x).is_zero()
        assert ((x + y) - y) == x

    def test_rsub(self):
        assert (1 - x) == -(x - 1)

    def test_multiplication(self):
        assert (x + 1) * (x - 1) == x ** 2 - 1

    def test_scalar_multiplication(self):
        assert 2 * x == x + x

    def test_scalar_division(self):
        assert (2 * x) / 2 == x

    def test_division_by_constant_polynomial(self):
        assert (2 * x) / Polynomial.constant(2) == x

    def test_division_by_zero_raises(self):
        with pytest.raises(SymbolicError):
            x / 0

    def test_division_by_polynomial_raises(self):
        with pytest.raises(SymbolicError):
            (x ** 2) / x

    def test_power(self):
        assert (x + 1) ** 2 == x ** 2 + 2 * x + 1

    def test_power_zero(self):
        assert (x + y) ** 0 == Polynomial.one()

    def test_negative_power_raises(self):
        with pytest.raises(SymbolicError):
            x ** -1

    def test_fractional_power_raises(self):
        with pytest.raises(SymbolicError):
            x ** 0.5  # type: ignore[operator]

    def test_negation(self):
        assert -(x - y) == y - x


class TestIntrospection:
    def test_total_degree(self):
        assert (x ** 2 * y + x).total_degree() == 3

    def test_total_degree_zero_poly(self):
        assert Polynomial.zero().total_degree() == -1

    def test_degree_in(self):
        p = x ** 2 * y + y ** 3
        assert p.degree_in("x") == 2
        assert p.degree_in("y") == 3
        assert p.degree_in("w") == 0

    def test_iter_terms(self):
        p = 2 * x * y + 3
        terms = dict()
        for powers, coeff in p.iter_terms():
            terms[tuple(sorted(powers.items()))] = coeff
        assert terms[(("x", 1), ("y", 1))] == 2
        assert terms[()] == 3

    def test_coefficient_of_absent_monomial(self):
        assert (x + y).coefficient({"x": 5}) == 0

    def test_constant_value_on_nonconstant_raises(self):
        with pytest.raises(SymbolicError):
            x.constant_value()


class TestCalculus:
    def test_derivative(self):
        p = x ** 3 + 2 * x * y
        assert p.derivative("x") == 3 * x ** 2 + 2 * y
        assert p.derivative("y") == 2 * x

    def test_derivative_absent_variable(self):
        assert (x ** 2).derivative("q").is_zero()

    def test_evaluate_exact(self):
        p = x ** 2 + y
        value = p.evaluate({"x": Fraction(1, 2), "y": 1})
        assert value == Fraction(5, 4)
        assert isinstance(value, Fraction)

    def test_evaluate_float(self):
        p = x * y
        assert p.evaluate({"x": 0.5, "y": 4}) == pytest.approx(2.0)

    def test_evaluate_missing_variable_raises(self):
        with pytest.raises(SymbolicError):
            (x + y).evaluate({"x": 1})

    def test_substitute_polynomial(self):
        p = x ** 2 + y
        q = p.substitute({"x": y + 1})
        assert q == y ** 2 + 3 * y + 1

    def test_substitute_scalar(self):
        assert (x ** 2 + 1).substitute({"x": 3}) == Polynomial.constant(10)

    def test_substitute_simultaneous(self):
        # x->y, y->x must swap, not chain.
        p = x + 2 * y
        q = p.substitute({"x": y, "y": x})
        assert q == y + 2 * x

    def test_rename(self):
        assert x.rename({"x": "t"}) == Polynomial.variable("t")

    def test_rename_collision_raises(self):
        with pytest.raises(SymbolicError):
            (x + y).rename({"x": "y"})


class TestOrderViews:
    def test_leading_term_lex_vs_grevlex(self):
        p = x * y ** 2 + x ** 2
        lex_exps, _ = p.leading_term(LEX)
        grevlex_exps, _ = p.leading_term(GREVLEX)
        assert lex_exps == (2, 0)       # x^2 wins under lex
        assert grevlex_exps == (1, 2)   # x*y^2 wins under grevlex (degree 3)

    def test_leading_term_zero_raises(self):
        with pytest.raises(SymbolicError):
            Polynomial.zero().leading_term()

    def test_monic(self):
        p = 3 * x ** 2 + 6
        assert p.monic(GREVLEX) == x ** 2 + 2

    def test_sorted_terms_descending(self):
        p = 1 + x + x ** 3
        exps = [e for e, _ in p.sorted_terms(GREVLEX)]
        assert exps == [(3,), (1,), (0,)]


class TestUnivariateViews:
    def test_coefficients_in(self):
        p = y ** 2 * x + y * x ** 2 + 4 * x * y + x ** 2 + 2 * x
        coeffs = p.coefficients_in("x")
        assert coeffs[2] == y + 1
        assert coeffs[1] == y ** 2 + 4 * y + 2

    def test_from_univariate_roundtrip(self):
        p = x ** 3 * y + x * y ** 2 + 7
        assert Polynomial.from_univariate(p.coefficients_in("x"), "x") == p

    def test_content_and_primitive(self):
        p = 6 * x + 4 * y
        assert p.content() == 2
        assert p.primitive_part() == 3 * x + 2 * y

    def test_content_sign_follows_leading(self):
        p = -6 * x - 4
        assert p.content() == -2
        assert p.primitive_part() == 3 * x + 2


class TestComparison:
    def test_equality_with_scalar(self):
        assert Polynomial.constant(3) == 3
        assert (x - x) == 0

    def test_hash_consistency(self):
        assert hash((x + 1) * (x - 1)) == hash(x ** 2 - 1)

    def test_usable_in_sets(self):
        assert len({x + y, y + x, x - y}) == 2

    def test_max_coefficient_distance(self):
        p = x + Polynomial.constant(1)
        q = x + Polynomial.constant(1.25)
        assert p.max_coefficient_distance(q) == pytest.approx(0.25)

    def test_almost_equal(self):
        p = Polynomial.constant(1.0)
        q = Polynomial.constant(1.0 + 1e-12)
        assert p.almost_equal(q, 1e-9)
        assert not p.almost_equal(q + 1, 1e-9)


class TestFormatting:
    def test_str_simple(self):
        assert str(x ** 2 - 1) == "x^2 - 1"

    def test_str_zero(self):
        assert str(Polynomial.zero()) == "0"

    def test_str_leading_negative(self):
        assert str(-x) == "-x"

    def test_str_fraction_coefficient(self):
        assert str(x / 2) == "1/2*x"

    def test_repr_roundtrippable_text(self):
        assert repr(x + 1) == "Polynomial('x + 1')"


class TestSerialization:
    """The pickle contract the batch engine and disk tier rely on."""

    def test_pickle_roundtrip_preserves_identity_semantics(self):
        import pickle
        p = x ** 3 * y - 2 * y + x / 2
        q = pickle.loads(pickle.dumps(p))
        assert q == p
        assert hash(q) == hash(p)
        assert str(q) == str(p)

    def test_pickle_drops_lazy_caches(self):
        import pickle
        from repro.symalg.ordering import LEX
        p = x ** 2 + y
        p.leading_term(LEX)          # populate per-order cache
        p.total_degree()
        hash(p)
        q = pickle.loads(pickle.dumps(p))
        assert q._hash is None
        assert q._lt_cache is None
        assert q._degree_cache is None
        assert q.leading_term(LEX) == p.leading_term(LEX)

    def test_deepcopy_goes_through_the_contract(self):
        import copy
        p = x ** 2 - y
        assert copy.deepcopy(p) == p
