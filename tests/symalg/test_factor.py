"""Tests for factorization and square-free decomposition."""

from hypothesis import given, settings

from repro.symalg import (Polynomial, factor, parse_polynomial,
                          square_free_decomposition, symbols)

from .strategies import nonzero_polynomials

x, y, z = symbols("x y z")


class TestPaperExample:
    def test_maple_factor_snippet(self):
        """Section 3.3: factor(x^16 + x^17 + x^2) = x^2 (x^15 + x^14 + 1)."""
        p = parse_polynomial("x^16 + x^17 + x^2")
        result = factor(p)
        assert result.expand() == p
        bases = {str(b): m for b, m in result}
        assert bases["x"] == 2
        assert "x^15 + x^14 + 1" in bases


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(nonzero_polynomials(max_terms=4))
    def test_expand_recovers_input(self, p):
        assert factor(p).expand() == p

    @settings(max_examples=20, deadline=None)
    @given(nonzero_polynomials(max_terms=2), nonzero_polynomials(max_terms=2))
    def test_product_roundtrip(self, f, g):
        assert factor(f * g).expand() == f * g


class TestUnivariate:
    def test_difference_of_squares(self):
        result = factor(x ** 2 - 1)
        bases = sorted(str(b) for b, _ in result)
        assert bases == ["x + 1", "x - 1"]

    def test_rational_roots(self):
        p = (2 * x - 1) * (x + 3)
        result = factor(p)
        assert result.expand() == p
        assert len(result.factors) == 2

    def test_repeated_factor_multiplicity(self):
        result = factor((x + 1) ** 3)
        assert result.factors == [(x + 1, 3)]

    def test_quadratic_irreducible_kept(self):
        result = factor(x ** 2 + 1)
        assert result.factors == [(x ** 2 + 1, 1)]

    def test_quadratic_with_rational_roots(self):
        p = 6 * x ** 2 + 5 * x + 1  # (2x+1)(3x+1)
        result = factor(p)
        assert result.expand() == p
        assert len(result.factors) == 2

    def test_difference_of_fourth_powers(self):
        p = x ** 4 - 16
        result = factor(p)
        assert result.expand() == p
        bases = sorted(str(b) for b, _ in result)
        assert "x + 2" in bases and "x - 2" in bases

    def test_constant(self):
        result = factor(Polynomial.constant(6))
        assert result.unit == 6
        assert result.factors == []

    def test_zero(self):
        result = factor(Polynomial.zero())
        assert result.unit == 0

    def test_unit_extraction(self):
        result = factor(4 * x + 8)
        assert result.unit == 4
        assert result.factors == [(x + 2, 1)]


class TestMultivariate:
    def test_monomial_content_multivar(self):
        p = x ** 2 * y + x * y  # x*y*(x+1)
        result = factor(p)
        assert result.expand() == p
        bases = {str(b) for b, _ in result}
        assert {"x", "y", "x + 1"} <= bases

    def test_content_split(self):
        p = (y + 1) * (x ** 2 - 1)
        result = factor(p)
        assert result.expand() == p
        bases = {str(b) for b, _ in result}
        assert "y + 1" in bases

    def test_square_in_two_variables(self):
        p = (x + y) ** 2
        result = factor(p)
        assert result.expand() == p
        assert (x + y, 2) in result.factors


class TestSquareFree:
    def test_simple(self):
        p = (x + 1) ** 2 * (x - 1)
        parts = square_free_decomposition(p)
        assert dict((m, b) for b, m in parts) == {2: x + 1, 1: x - 1}

    def test_square_free_input(self):
        p = (x + 1) * (x + 2)
        parts = square_free_decomposition(p)
        product = Polynomial.one()
        for base, mult in parts:
            product = product * base ** mult
        assert product == p

    def test_constant_returns_empty(self):
        assert square_free_decomposition(Polynomial.constant(5)) == []

    @settings(max_examples=25, deadline=None)
    @given(nonzero_polynomials(max_terms=3))
    def test_reconstruction(self, p):
        parts = square_free_decomposition(p)
        if not parts:
            return
        product = Polynomial.one()
        for base, mult in parts:
            product = product * base ** mult
        # product equals p up to rational content
        assert product.primitive_part() == p.primitive_part()


class TestFormatting:
    def test_str(self):
        text = str(factor((x + 1) ** 2 * 3))
        assert "(x + 1)^2" in text
        assert "3" in text


class TestHomogeneous:
    """Homogeneous forms split via dehomogenization (sum of cubes etc.)."""

    def test_sum_of_cubes(self):
        f = factor(x ** 3 + y ** 3)
        assert (x + y, 1) in f.factors
        assert f.expand() == x ** 3 + y ** 3

    def test_difference_of_squares(self):
        f = factor(x ** 2 - y ** 2)
        bases = {b for b, _ in f.factors}
        assert bases == {x + y, x - y}

    def test_monomial_content_then_homogeneous(self):
        p = x ** 4 * y + x * y ** 4
        f = factor(p)
        linear = sum(m for b, m in f.factors if b.total_degree() == 1)
        assert linear == 3          # x, y and (x + y)
        assert f.expand() == p

    def test_irreducible_forms_stay_whole(self):
        assert factor(x ** 2 + y ** 2).factors == [(x ** 2 + y ** 2, 1)]
