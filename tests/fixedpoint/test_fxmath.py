"""Tests for fixed-point math kernels."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import (Fixed, Q16_15, build_pow43_table,
                              cost_fx_exp, cost_fx_log2_bitwise,
                              cost_fx_log_poly, cost_fx_pow43, cost_fx_sin,
                              cost_fx_sqrt, fx_cos, fx_exp, fx_log2_bitwise,
                              fx_log_poly, fx_pow43, fx_sin, fx_sqrt)

EPS = float(Q16_15.epsilon)


def fx(value: float) -> Fixed:
    return Fixed.from_float(value, Q16_15)


class TestLog2Bitwise:
    @pytest.mark.parametrize("value", [1.0, 2.0, 4.0, 8.0, 1024.0])
    def test_exact_powers_of_two(self, value):
        got = fx_log2_bitwise(fx(value))
        assert got.to_float() == pytest.approx(math.log2(value), abs=1e-3)

    @pytest.mark.parametrize("value", [1.5, 3.0, 7.3, 100.0, 0.25, 0.01])
    def test_general_values(self, value):
        got = fx_log2_bitwise(fx(value))
        assert got.to_float() == pytest.approx(math.log2(value), abs=2e-3)

    def test_non_positive_raises(self):
        with pytest.raises(FixedPointError):
            fx_log2_bitwise(fx(0.0))
        with pytest.raises(FixedPointError):
            fx_log2_bitwise(fx(-1.0))

    def test_fewer_iterations_coarser(self):
        precise = fx_log2_bitwise(fx(3.0), frac_iterations=15)
        coarse = fx_log2_bitwise(fx(3.0), frac_iterations=4)
        truth = math.log2(3.0)
        assert abs(precise.to_float() - truth) <= abs(coarse.to_float() - truth) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.01, max_value=1000.0, allow_nan=False))
    def test_accuracy_bound(self, value):
        got = fx_log2_bitwise(fx(value))
        assert abs(got.to_float() - math.log2(value)) < 5e-3


class TestLogPoly:
    @pytest.mark.parametrize("value", [1.0, 1.5, 2.0, math.e, 10.0, 0.5, 0.1])
    def test_matches_math_log(self, value):
        got = fx_log_poly(fx(value))
        assert got.to_float() == pytest.approx(math.log(value), abs=5e-3)

    def test_non_positive_raises(self):
        with pytest.raises(FixedPointError):
            fx_log_poly(fx(0.0))

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.05, max_value=500.0, allow_nan=False))
    def test_accuracy_bound(self, value):
        got = fx_log_poly(fx(value))
        assert abs(got.to_float() - math.log(value)) < 1e-2


class TestExp:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.0, 2.5, -3.0, 0.1])
    def test_matches_math_exp(self, value):
        got = fx_exp(fx(value))
        rel = abs(got.to_float() - math.exp(value)) / max(math.exp(value), 1e-9)
        assert rel < 5e-3

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=-5.0, max_value=8.0, allow_nan=False))
    def test_relative_accuracy(self, value):
        got = fx_exp(fx(value))
        rel = abs(got.to_float() - math.exp(value)) / math.exp(value)
        assert rel < 2e-2


class TestTrig:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, math.pi / 2, 2.0, 3.0,
                                       -1.0, -math.pi / 2, 6.0, -6.0])
    def test_sin(self, value):
        got = fx_sin(fx(value))
        assert got.to_float() == pytest.approx(math.sin(value), abs=3e-3)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, math.pi, -2.0])
    def test_cos(self, value):
        got = fx_cos(fx(value))
        assert got.to_float() == pytest.approx(math.cos(value), abs=3e-3)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    def test_sin_bounded(self, value):
        got = fx_sin(fx(value)).to_float()
        assert -1.01 <= got <= 1.01

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=-4.0, max_value=4.0, allow_nan=False))
    def test_pythagorean_identity(self, value):
        s = fx_sin(fx(value)).to_float()
        c = fx_cos(fx(value)).to_float()
        assert s * s + c * c == pytest.approx(1.0, abs=2e-2)


class TestSqrt:
    @pytest.mark.parametrize("value", [0.0, 1.0, 4.0, 2.0, 0.25, 100.0])
    def test_matches_math_sqrt(self, value):
        got = fx_sqrt(fx(value))
        assert got.to_float() == pytest.approx(math.sqrt(value), abs=2e-3)

    def test_negative_raises(self):
        with pytest.raises(FixedPointError):
            fx_sqrt(fx(-1.0))

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
    def test_square_of_sqrt(self, value):
        got = fx_sqrt(fx(value)).to_float()
        assert got * got == pytest.approx(value, abs=0.05 + value * 1e-3)


class TestPow43:
    def test_table_values(self):
        table = build_pow43_table(16, Q16_15)
        for n in range(16):
            assert table[n].to_float() == pytest.approx(n ** (4 / 3), abs=2e-4)

    def test_negative_is_odd_extension(self):
        table = build_pow43_table(16, Q16_15)
        assert fx_pow43(-8, table).to_float() == pytest.approx(-(8 ** (4 / 3)), abs=1e-3)

    def test_out_of_range_raises(self):
        table = build_pow43_table(4, Q16_15)
        with pytest.raises(FixedPointError):
            fx_pow43(4, table)
        with pytest.raises(FixedPointError):
            fx_pow43(-4, table)


class TestCosts:
    """Cost tallies must be structurally sensible."""

    def test_bitwise_log_cost_grows_with_precision(self):
        cheap = cost_fx_log2_bitwise(Q16_15, frac_iterations=4)
        costly = cost_fx_log2_bitwise(Q16_15, frac_iterations=15)
        assert costly.total_ops() > cheap.total_ops()

    def test_poly_log_cheaper_than_bitwise_at_full_precision(self):
        """Polynomial expansion beats bit-by-bit extraction: that is why
        the library has both and the mapper must choose."""
        bitwise = cost_fx_log2_bitwise(Q16_15)
        poly = cost_fx_log_poly(Q16_15)
        assert poly.total_ops() < bitwise.total_ops()

    def test_all_costs_include_call_overhead(self):
        for cost in (cost_fx_log2_bitwise(), cost_fx_log_poly(), cost_fx_exp(),
                     cost_fx_sin(), cost_fx_sqrt()):
            assert cost.call == 1

    def test_pow43_is_trivial(self):
        assert cost_fx_pow43().total_ops() <= 5
