"""Tests for Q-format fixed-point arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import Fixed, Q15, Q16_15, Q31, Q5_26, QFormat


class TestQFormat:
    def test_q15_layout(self):
        assert Q15.total_bits == 16
        assert Q15.scale == 1 << 15
        assert Q15.max_value == Fraction((1 << 15) - 1, 1 << 15)
        assert Q15.min_value == -1

    def test_epsilon(self):
        assert Q15.epsilon == Fraction(1, 1 << 15)

    def test_negative_bits_raise(self):
        with pytest.raises(FixedPointError):
            QFormat(-1, 3)

    def test_zero_magnitude_raises(self):
        with pytest.raises(FixedPointError):
            QFormat(0, 0)

    def test_bad_overflow_mode_raises(self):
        with pytest.raises(FixedPointError):
            QFormat(1, 1, "explode")

    def test_str(self):
        assert str(Q5_26) == "Q5.26"


class TestOverflowPolicies:
    def test_saturate(self):
        fmt = QFormat(3, 4, "saturate")
        assert fmt.clamp_raw(10_000) == fmt.raw_max
        assert fmt.clamp_raw(-10_000) == fmt.raw_min

    def test_raise(self):
        fmt = QFormat(3, 4, "raise")
        with pytest.raises(FixedPointError):
            fmt.clamp_raw(10_000)

    def test_wrap(self):
        fmt = QFormat(3, 4, "wrap")
        # 8-bit word: raw 128 wraps to -128.
        assert fmt.clamp_raw(128) == -128
        assert fmt.clamp_raw(127) == 127

    def test_with_overflow(self):
        assert Q15.with_overflow("wrap").overflow == "wrap"


class TestConversions:
    def test_float_roundtrip_within_epsilon(self):
        value = 0.123456
        f = Fixed.from_float(value, Q15)
        assert abs(f.to_float() - value) <= float(Q15.epsilon)

    def test_fraction_roundtrip_exact_for_representable(self):
        value = Fraction(3, 8)
        f = Fixed.from_fraction(value, Q15)
        assert f.to_fraction() == value

    def test_from_int(self):
        f = Fixed.from_int(3, Q16_15)
        assert f.to_float() == 3.0

    def test_negative_int(self):
        assert Fixed.from_int(-2, Q16_15).to_float() == -2.0

    def test_convert_formats(self):
        f = Fixed.from_float(0.5, Q31)
        g = f.convert(Q15)
        assert g.to_float() == pytest.approx(0.5)

    def test_convert_rounds(self):
        f = Fixed(3, QFormat(0, 4))   # 3/16
        g = f.convert(QFormat(0, 3))  # nearest is 2/8
        assert g.raw == 2

    def test_one_saturates_in_q15(self):
        """Q15 cannot represent +1.0: saturates to max."""
        f = Fixed.one(Q15)
        assert f.raw == Q15.raw_max


class TestArithmetic:
    def test_add(self):
        a = Fixed.from_float(0.25, Q16_15)
        b = Fixed.from_float(0.5, Q16_15)
        assert (a + b).to_float() == pytest.approx(0.75)

    def test_add_scalar(self):
        a = Fixed.from_float(0.25, Q16_15)
        assert (a + 1).to_float() == pytest.approx(1.25)
        assert (1 + a).to_float() == pytest.approx(1.25)

    def test_sub(self):
        a = Fixed.from_float(1.0, Q16_15)
        b = Fixed.from_float(0.25, Q16_15)
        assert (a - b).to_float() == pytest.approx(0.75)
        assert (1.0 - b).to_float() == pytest.approx(0.75)

    def test_mul(self):
        a = Fixed.from_float(0.5, Q16_15)
        b = Fixed.from_float(0.5, Q16_15)
        assert (a * b).to_float() == pytest.approx(0.25)

    def test_mul_rounding(self):
        fmt = QFormat(4, 4)
        a = Fixed(1, fmt)  # 1/16
        b = Fixed(8, fmt)  # 1/2
        # product = 1/32 -> rounds to 1/16 (raw 8/16=0.5 -> raw 0.5 rounds up)
        assert (a * b).raw == 1

    def test_div(self):
        a = Fixed.from_float(1.0, Q16_15)
        b = Fixed.from_float(4.0, Q16_15)
        assert (a / b).to_float() == pytest.approx(0.25)

    def test_div_by_zero_raises(self):
        a = Fixed.from_float(1.0, Q16_15)
        with pytest.raises(FixedPointError):
            a / Fixed.zero(Q16_15)

    def test_mixed_formats_raise(self):
        with pytest.raises(FixedPointError):
            Fixed.from_float(0.5, Q15) + Fixed.from_float(0.5, Q31)

    def test_shifts(self):
        a = Fixed.from_int(1, Q16_15)
        assert (a << 2).to_float() == 4.0
        assert (a >> 1).to_float() == 0.5

    def test_neg_abs(self):
        a = Fixed.from_float(-0.5, Q16_15)
        assert (-a).to_float() == 0.5
        assert abs(a).to_float() == 0.5

    def test_saturating_add(self):
        big = Fixed(Q15.raw_max, Q15)
        result = big + big
        assert result.raw == Q15.raw_max

    def test_comparisons(self):
        a = Fixed.from_float(0.25, Q16_15)
        b = Fixed.from_float(0.5, Q16_15)
        assert a < b <= b
        assert b > a >= a
        assert a == Fixed.from_float(0.25, Q16_15)

    def test_immutability(self):
        a = Fixed.from_float(0.25, Q16_15)
        with pytest.raises(AttributeError):
            a.raw = 5  # type: ignore[misc]

    def test_hashable(self):
        assert len({Fixed.from_int(1, Q16_15), Fixed.from_int(1, Q16_15)}) == 1


class TestQuantizationProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-100.0, max_value=100.0,
                     allow_nan=False, allow_infinity=False))
    def test_quantization_error_bounded(self, value):
        f = Fixed.from_float(value, Q16_15)
        assert abs(f.to_float() - value) <= float(Q16_15.epsilon)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
           st.floats(min_value=-50.0, max_value=50.0, allow_nan=False))
    def test_addition_error_bounded(self, a, b):
        fa = Fixed.from_float(a, Q16_15)
        fb = Fixed.from_float(b, Q16_15)
        assert abs((fa + fb).to_float() - (a + b)) <= 3 * float(Q16_15.epsilon)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-8.0, max_value=8.0, allow_nan=False),
           st.floats(min_value=-8.0, max_value=8.0, allow_nan=False))
    def test_multiplication_error_bounded(self, a, b):
        fa = Fixed.from_float(a, Q16_15)
        fb = Fixed.from_float(b, Q16_15)
        # |error| <= eps/2 * (|a| + |b|) + eps quantization terms
        bound = float(Q16_15.epsilon) * (abs(a) + abs(b) + 2)
        assert abs((fa * fb).to_float() - a * b) <= bound
