"""Pinned rounding and saturation semantics.

``repro.codegen`` bakes these exact behaviours into emitted source as
integer literals, so they are load-bearing contracts, not
implementation details.  Every rule the emitter inlines is pinned here
explicitly:

* ``_round_shift`` rounds half **toward +infinity** (add half, shift
  right — arithmetic shift floors, so ties go up for both signs);
* ``from_float`` is ``floor(value * scale + 0.5)`` then clamp;
* ``from_fraction`` rounds exact rationals the same way;
* saturate / wrap / raise overflow policies behave as two's-complement
  hardware does.

If any of these change, the parity suite in ``tests/codegen`` and
every generated kernel change meaning — this file makes that loud.
"""

from fractions import Fraction

import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import Fixed, Q15, Q5_26, QFormat
from repro.fixedpoint.fixed import _round_shift
from repro.fixedpoint.fxmath import fx_sqrt


class TestRoundShift:
    """Half-up (toward +inf) rounding on arithmetic right shift."""

    def test_positive_tie_rounds_up(self):
        assert _round_shift(3, 1) == 2  # 1.5 -> 2

    def test_negative_tie_rounds_toward_plus_inf(self):
        assert _round_shift(-3, 1) == -1  # -1.5 -> -1

    def test_positive_below_tie_rounds_down(self):
        assert _round_shift(5, 2) == 1  # 1.25 -> 1

    def test_negative_below_tie_rounds_to_nearest(self):
        assert _round_shift(-5, 2) == -1  # -1.25 -> -1

    def test_zero_shift_is_identity(self):
        assert _round_shift(7, 0) == 7

    def test_negative_shift_is_left_shift(self):
        assert _round_shift(7, -3) == 56

    @pytest.mark.parametrize("value", range(-8, 9))
    def test_matches_float_half_up(self, value):
        import math
        assert _round_shift(value, 1) == math.floor(value / 2 + 0.5)


class TestFromFloat:
    def test_is_floor_scale_plus_half(self):
        # 0.3 * 2^15 = 9830.4 -> 9830
        assert Fixed.from_float(0.3, Q15).raw == 9830

    def test_tie_rounds_up(self):
        fmt = QFormat(3, 2)  # scale 4
        assert Fixed.from_float(0.375, fmt).raw == 2  # 1.5 -> 2

    def test_negative_tie_rounds_toward_plus_inf(self):
        fmt = QFormat(3, 2)
        assert Fixed.from_float(-0.375, fmt).raw == -1  # -1.5 -> -1

    def test_clamps_to_format_range(self):
        assert Fixed.from_float(2.0, Q15).raw == Q15.raw_max
        assert Fixed.from_float(-2.0, Q15).raw == Q15.raw_min


class TestFromFraction:
    def test_exact_dyadic_is_exact(self):
        assert Fixed.from_fraction(Fraction(3, 4), Q15).raw == 3 << 13

    def test_tie_rounds_up(self):
        fmt = QFormat(3, 2)
        assert Fixed.from_fraction(Fraction(3, 8), fmt).raw == 2

    def test_negative_tie_rounds_toward_plus_inf(self):
        fmt = QFormat(3, 2)
        assert Fixed.from_fraction(Fraction(-3, 8), fmt).raw == -1

    def test_agrees_with_from_float_on_representable_values(self):
        for numerator in range(-40, 41):
            value = Fraction(numerator, 16)
            assert Fixed.from_fraction(value, Q15).raw == \
                Fixed.from_float(float(value), Q15).raw


class TestArithmeticRounding:
    def test_mul_rounds_the_dropped_fraction_bits(self):
        fmt = QFormat(3, 4)  # scale 16
        # 3/16 * 1/2: product raw 3*8=24 -> (24+8)>>4 = 2 (0.1875*0.5
        # = 0.09375 = 1.5 LSB, tie rounds up).
        got = Fixed(3, fmt) * Fixed(8, fmt)
        assert got.raw == 2

    def test_add_is_exact_until_clamped(self):
        fmt = QFormat(3, 4)
        assert (Fixed(3, fmt) + Fixed(5, fmt)).raw == 8

    def test_convert_down_rounds_half_up(self):
        # Q5.26 raw 3<<10 is 3 * 2^-16: one and a half Q0.15 LSB.
        got = Fixed(3 << 10, Q5_26).convert(Q15)
        assert got.raw == 2

    def test_convert_up_is_exact(self):
        assert Fixed(1, Q15).convert(Q5_26).raw == 1 << 11


class TestOverflowPolicies:
    def test_constructor_clamps_raw(self):
        fmt = QFormat(3, 4)
        assert Fixed(10_000, fmt).raw == fmt.raw_max
        assert Fixed(-10_000, fmt).raw == fmt.raw_min

    def test_saturating_product(self):
        fmt = QFormat(2, 4)  # max 3.9375
        got = Fixed.from_float(3.5, fmt) * Fixed.from_float(3.5, fmt)
        assert got.raw == fmt.raw_max

    def test_wrap_is_twos_complement(self):
        fmt = QFormat(3, 4, "wrap")  # 8-bit word
        assert fmt.clamp_raw(128) == -128
        assert fmt.clamp_raw(255) == -1
        assert fmt.clamp_raw(256) == 0
        assert fmt.clamp_raw(-129) == 127

    def test_raise_mode_raises_on_overflow(self):
        fmt = QFormat(3, 4, "raise")
        with pytest.raises(FixedPointError):
            Fixed(fmt.raw_max + 1, fmt)

    def test_emitter_rejects_raise_mode(self):
        from repro.codegen.fixedpt import NumericFormat
        from repro.codegen.lower import lower_polynomials
        from repro.codegen.pysource import emit_python
        from repro.errors import CodegenError
        from repro.symalg.parser import parse_polynomial

        kernel = lower_polynomials(
            "sq", {"out": parse_polynomial("x^2")}, ("x",))
        fmt = NumericFormat("q3.4r", "fixed", QFormat(3, 4, "raise"))
        with pytest.raises(CodegenError, match="overflow='raise'"):
            emit_python(kernel, fmt, fmt)


class TestFxmathConsistency:
    def test_fx_sqrt_uses_the_same_rounding(self):
        # sqrt(0.25) = 0.5 exactly representable: converges to raw 2^14.
        got = fx_sqrt(Fixed.from_float(0.25, Q15))
        assert abs(got.to_float() - 0.5) <= 2 * float(Q15.epsilon)

    def test_fx_sqrt_of_zero_is_zero(self):
        assert fx_sqrt(Fixed(0, Q15)).raw == 0
