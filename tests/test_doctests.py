"""Run the doctests embedded in the public API docstrings.

The README and docs/architecture.md lean on docstring examples
(``symbols``, ``Polynomial`` arithmetic, the packed-monomial helpers,
the mapping cache); this test keeps every example executable.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro.symalg.polynomial",
    "repro.symalg.monomials",
    "repro.symalg.ordering",
    "repro.mapping.cache",
    "repro.mapping.pareto",
    "repro.platform.registry",
    "repro.resilience.faults",
    "repro.resilience.breaker",
    "repro.resilience.retry",
    "repro.resilience.admission",
    "repro.api",
    "repro.api.session",
    "repro.service.metrics",
    "repro.service.fleet",
    "repro.codegen.lower",
    "repro.codegen.fixedpt",
    "repro.codegen.pysource",
    "repro.codegen.verify",
    "repro.mp3.vectors",
    "repro.workload.registry",
]


@pytest.mark.parametrize("modname", MODULES)
def test_module_doctests(modname):
    module = importlib.import_module(modname)
    # Doctests assume the module's own names (symbols, pack, ...) are
    # in scope, as they are for a reader of the file.
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{modname} has no doctests to run"
    assert results.failed == 0
