"""The admission controller: bounded in-flight work, shed accounting."""

import pytest

from repro.resilience import AdmissionController


class TestBound:
    def test_admits_up_to_the_bound_then_sheds(self):
        gate = AdmissionController(max_inflight=2)
        assert gate.try_acquire("/v1/map")
        assert gate.try_acquire("/v1/map")
        assert not gate.try_acquire("/v1/map")
        assert gate.inflight == 2

    def test_release_frees_a_slot(self):
        gate = AdmissionController(max_inflight=1)
        assert gate.try_acquire("/v1/map")
        assert not gate.try_acquire("/v1/stats")
        gate.release("/v1/map")
        assert gate.try_acquire("/v1/stats")

    def test_unbounded_admits_everything_but_still_counts(self):
        gate = AdmissionController()
        for _ in range(100):
            assert gate.try_acquire("/v1/map")
        stats = gate.stats()
        assert stats["max_inflight"] is None
        assert stats["admitted"] == 100
        assert stats["inflight"] == 100

    def test_validation(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(max_inflight=0)


class TestAccounting:
    def test_per_endpoint_breakdown_is_sorted(self):
        gate = AdmissionController(max_inflight=1)
        gate.try_acquire("/v1/sweep")
        gate.try_acquire("/v1/map")      # shed: slot held
        gate.shed("/healthz")            # drain-path shed
        stats = gate.stats()
        assert list(stats["endpoints"]) == ["/healthz", "/v1/map",
                                            "/v1/sweep"]
        assert stats["endpoints"]["/v1/sweep"] == {"admitted": 1, "shed": 0}
        assert stats["endpoints"]["/v1/map"] == {"admitted": 0, "shed": 1}
        assert stats["endpoints"]["/healthz"] == {"admitted": 0, "shed": 1}
        assert stats["admitted"] == 1
        assert stats["shed"] == 2

    def test_stats_shape_identical_with_and_without_bound(self):
        bounded = AdmissionController(max_inflight=4)
        unbounded = AdmissionController()
        for gate in (bounded, unbounded):
            gate.try_acquire("/v1/map")
        assert set(bounded.stats()) == set(unbounded.stats())
