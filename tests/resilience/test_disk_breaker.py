"""The disk tier degrading through its circuit breaker, fault-driven."""

import sqlite3

from repro.mapping.cache import CacheTiers, DiskCache
from repro.resilience import FaultPlan, FaultRule


def _store(tmp_path, now, **kwargs):
    defaults = dict(failure_threshold=2, cooldown=10.0,
                    clock=lambda: now[0])
    defaults.update(kwargs)
    return DiskCache(tmp_path / "store.sqlite", **defaults)


def _read_fault(times, seed):
    return FaultPlan([FaultRule("disk_cache.read",
                                error=lambda: sqlite3.OperationalError(
                                    "injected: disk I/O error"),
                                times=times)], seed=seed)


class TestBreakerOpensAndHeals:
    def test_consecutive_read_failures_open_then_cooldown_heals(
            self, tmp_path, chaos_seed):
        now = [0.0]
        cache = _store(tmp_path, now)
        cache.put("k", {"v": 1})
        plan = _read_fault(times=2, seed=chaos_seed)
        with plan.activate():
            assert cache.get("k") is None       # failure 1: miss, not raise
            assert cache.get("k") is None       # failure 2: opens
            assert cache.breaker.state == "open"
            # Open circuit: lookups miss *without touching sqlite* — the
            # fault site records no further hits.
            assert cache.get("k") is None
            assert plan.counts()["hits"]["disk_cache.read"] == 2
            # Cooldown elapsed: the next access probes and heals (the
            # fault is exhausted, so the probe succeeds).
            now[0] = 11.0
            assert cache.get("k") == {"v": 1}
        assert cache.breaker.state == "closed"

    def test_failed_probe_reopens(self, tmp_path, chaos_seed):
        now = [0.0]
        cache = _store(tmp_path, now)
        cache.put("k", 1)
        plan = _read_fault(times=3, seed=chaos_seed)
        with plan.activate():
            cache.get("k"), cache.get("k")      # open (2 failures)
            now[0] = 11.0
            assert cache.get("k") is None       # probe fails (3rd fault)
            assert cache.breaker.state == "open"
            assert cache.breaker.stats()["trips"] == 2
            now[0] = 22.0
            assert cache.get("k") == 1          # second probe heals
        assert cache.breaker.state == "closed"

    def test_success_resets_the_consecutive_run(self, tmp_path, chaos_seed):
        now = [0.0]
        cache = _store(tmp_path, now, failure_threshold=3)
        cache.put("k", 1)
        # Fire, fire, pass, fire, fire: never 3 consecutive failures.
        plan = FaultPlan([
            FaultRule("disk_cache.read",
                      error=sqlite3.OperationalError, times=2),
            FaultRule("disk_cache.read",
                      error=sqlite3.OperationalError, after=3, times=2),
        ], seed=chaos_seed)
        with plan.activate():
            for _ in range(5):
                cache.get("k")
        assert cache.breaker.state == "closed"

    def test_write_failures_count_too(self, tmp_path, chaos_seed):
        now = [0.0]
        cache = _store(tmp_path, now)
        plan = FaultPlan([FaultRule("disk_cache.write",
                                    error=sqlite3.OperationalError,
                                    times=2)], seed=chaos_seed)
        with plan.activate():
            cache.put("a", 1)                   # dropped, failure 1
            cache.put("b", 2)                   # dropped, failure 2: open
        assert cache.breaker.state == "open"
        assert cache.writes == 0
        now[0] = 11.0
        cache.put("c", 3)                       # probe write heals
        assert cache.breaker.state == "closed"
        assert cache.get("c") == 3


class TestCorruptionAndRepair:
    def test_corrupt_file_trips_immediately(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a database")
        cache = DiskCache(path)
        assert cache.get("k") is None           # one access is enough
        assert cache.breaker.state == "open"
        assert cache.breaker.stats()["trips"] == 1

    def test_clear_repairs_and_closes(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"garbage")
        cache = DiskCache(path)
        cache.get("k")
        cache.clear()
        assert cache.breaker.state == "closed"
        cache.put("k", {"healed": True})
        assert cache.get("k") == {"healed": True}


class TestStatsSurface:
    def test_breaker_state_flows_through_tier_stats(self, tmp_path):
        tiers = CacheTiers(cache_dir=tmp_path)
        disk = tiers.stats()["disk"]
        assert disk["broken"] is False
        assert disk["breaker"]["state"] == "closed"
        tiers.disk().breaker.trip()
        disk = tiers.stats()["disk"]
        assert disk["broken"] is True
        assert disk["breaker"]["state"] == "open"
        assert disk["breaker"]["trips"] == 1
