"""Shared fixtures for the resilience (chaos) suite.

CI's chaos job runs this directory across a seed matrix
(``REPRO_CHAOS_SEED``); every plan built on the ``chaos_seed`` fixture
replays bit-for-bit under the same seed, so a red matrix cell is
reproducible locally by exporting one environment variable.
"""

import os

import pytest

import repro.mapping.cache as cache_mod
from repro.library import Library, LibraryElement
from repro.mapping import clear_mapping_caches
from repro.platform import OperationTally
from repro.symalg import Polynomial


@pytest.fixture
def chaos_seed() -> int:
    """The suite-wide fault-plan seed (CI sets REPRO_CHAOS_SEED)."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture
def isolated_caches(monkeypatch):
    """Cold in-memory caches, disk tier off, regardless of host env."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    cache_mod.DEFAULT_TIERS.configure(None)
    clear_mapping_caches()
    yield
    clear_mapping_caches()
    cache_mod.DEFAULT_TIERS.configure(follow_env=True)


def demo_library() -> Library:
    """A one-element demo library (``sq2y``: in0^2 - 2*in1), cheap
    enough that chaos tests can afford many cold computations."""
    i0 = Polynomial.variable("in0")
    i1 = Polynomial.variable("in1")
    return Library("demo", [LibraryElement(
        name="sq2y", library="IH", polynomials=(i0 ** 2 - 2 * i1,),
        input_format="q", output_format="q", accuracy=1e-9,
        cost=OperationTally(int_mul=1, int_alu=1))])
