"""The service under chaos: every request gets a well-formed answer.

The acceptance bar for the whole resilience layer, stated as tests:
with faults firing across the cache and dispatch paths the service
answers every request with 200, 429 or 503 — never a hung connection,
never a corrupt payload — and every 200 body is byte-identical to the
fault-free answer.
"""

import http.client
import json
import sqlite3
import threading
import time

from repro.errors import ServiceError
from repro.resilience import FaultPlan, FaultRule
from repro.service import (FleetSupervisor, MappingService, ServiceClient,
                           ServiceThread)

from ..service.conftest import GatedExecutor


def _raw_request(service, method: str, path: str, payload=None):
    """One request over a fresh socket, headers included in the answer.

    The ServiceClient hides headers (and retries); chaos assertions
    need the raw status line, ``Retry-After`` and the exact body bytes.
    """
    conn = http.client.HTTPConnection(service.host, service.port,
                                      timeout=30)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("ascii")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return (response.status, dict(response.getheaders()),
                response.read())
    finally:
        conn.close()


class TestChaosAcceptance:
    PAYLOADS = [
        {"block": "inv_mdctL"},
        {"block": "inv_mdctL", "platform": "DSP"},
        {"block": "SubBandSynthesis", "platform": "ARM926"},
    ]

    def test_only_clean_statuses_and_faithful_bodies(self, tmp_path,
                                                     chaos_seed):
        """Disk faults + accept sheds + dispatch delays, many requests:
        statuses stay in {200, 503} and every 200 body matches the
        fault-free wire bytes exactly."""
        plan = FaultPlan([
            FaultRule("disk_cache.read", probability=0.5,
                      error=lambda: sqlite3.OperationalError(
                          "injected: disk I/O error")),
            FaultRule("disk_cache.write", probability=0.5,
                      error=lambda: sqlite3.OperationalError(
                          "injected: database is locked")),
            FaultRule("service.accept", probability=0.2,
                      error=lambda: ServiceError(
                          503, "injected: accept shed", retry_after=1.0)),
            FaultRule("service.dispatch", probability=0.3, delay=0.02),
        ], seed=chaos_seed)
        service = MappingService(port=0, cache_dir=str(tmp_path / "cache"))
        with ServiceThread(service) as thread:
            client = ServiceClient(thread.base_url)
            client.wait_healthy()
            # Chaos first, while the caches are cold: cold lookups and
            # result writes actually touch the (faulty) disk tier.
            statuses = []
            chaos_bodies = []
            with plan.activate():
                for _round in range(4):
                    for payload in self.PAYLOADS:
                        status, body = client.request_bytes(
                            "POST", "/v1/map", payload)
                        statuses.append(status)
                        if status == 200:
                            key = json.dumps(payload, sort_keys=True)
                            chaos_bodies.append((key, body))
            # Fault-free replay for the reference bytes (warm-vs-cold
            # parity is pinned by the service suite, so warm clean
            # bytes are the canonical answer).
            clean = {}
            for payload in self.PAYLOADS:
                status, body = client.request_bytes("POST", "/v1/map",
                                                    payload)
                assert status == 200
                clean[json.dumps(payload, sort_keys=True)] = body
            for key, body in chaos_bodies:
                assert body == clean[key]
            assert set(statuses) <= {200, 503}
            assert 200 in statuses
            hits = plan.counts()["hits"]
            assert hits.get("disk_cache.write", 0) > 0
            assert hits.get("service.accept", 0) > 0

    def test_disk_corruption_degrades_to_memory_only_service(
            self, tmp_path, chaos_seed):
        """A corrupted store trips the breaker; the service keeps
        answering 200 from memory, and /v1/stats says why."""
        cache_dir = tmp_path / "cache"
        service = MappingService(port=0, cache_dir=str(cache_dir))
        with ServiceThread(service) as thread:
            client = ServiceClient(thread.base_url)
            client.wait_healthy()
            status, first = client.request_bytes(
                "POST", "/v1/map", {"block": "inv_mdctL"})
            assert status == 200
            service.session.tiers.disk().breaker.trip()
            status, again = client.request_bytes(
                "POST", "/v1/map", {"block": "inv_mdctL"})
            assert status == 200
            assert again == first
            stats = client.stats()
            assert stats["caches"]["disk"]["broken"] is True
            assert stats["caches"]["disk"]["breaker"]["state"] == "open"


class TestOverload:
    def test_admission_bound_sheds_429_with_retry_after(self):
        gate = threading.Event()
        service = MappingService(port=0, executor=GatedExecutor(gate),
                                 max_inflight=1, retry_after_hint=1.0)
        thread = ServiceThread(service)
        thread.__enter__()
        try:
            client = ServiceClient(thread.base_url)
            client.wait_healthy()
            outcome = {}

            def issue():
                outcome["reply"] = client.request_bytes(
                    "POST", "/v1/map", {"block": "inv_mdctL"})

            holder = threading.Thread(target=issue)
            holder.start()
            deadline = time.monotonic() + 30
            while service.admission.inflight < 1:
                assert time.monotonic() < deadline, "request never admitted"
                time.sleep(0.01)

            status, headers, body = _raw_request(
                service, "POST", "/v1/map", {"block": "inv_mdctL"})
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert headers["Connection"] == "close"
            assert "over capacity" in json.loads(body)["error"]

            gate.set()
            holder.join(timeout=60)
            assert outcome["reply"][0] == 200
            stats = client.stats()["service"]["admission"]
            assert stats["endpoints"]["/v1/map"] == \
                {"admitted": 1, "shed": 1}
            assert stats["max_inflight"] == 1
        finally:
            gate.set()
            thread.__exit__(None, None, None)


class TestDrain:
    def test_drain_sheds_new_work_finishes_old_then_stops(self):
        import asyncio

        gate = threading.Event()
        service = MappingService(port=0, executor=GatedExecutor(gate),
                                 retry_after_hint=2.0)
        thread = ServiceThread(service)
        thread.__enter__()
        try:
            client = ServiceClient(thread.base_url)
            client.wait_healthy()
            outcome = {}

            def issue():
                outcome["reply"] = client.request_bytes(
                    "POST", "/v1/map", {"block": "inv_mdctL"})

            requester = threading.Thread(target=issue)
            requester.start()
            deadline = time.monotonic() + 30
            while service.admission.inflight < 1:
                assert time.monotonic() < deadline, "request never admitted"
                time.sleep(0.01)

            drain_future = asyncio.run_coroutine_threadsafe(
                service.drain(grace=60), thread._loop)
            deadline = time.monotonic() + 30
            while not service.draining:
                assert time.monotonic() < deadline
                time.sleep(0.01)

            # New work during the drain: refused retryably, not hung.
            status, headers, body = _raw_request(
                service, "POST", "/v1/map", {"block": "inv_mdctL"})
            assert status == 503
            assert headers["Retry-After"] == "2"
            assert headers["Connection"] == "close"
            assert "draining" in json.loads(body)["error"]

            # The admitted request still finishes with a full answer.
            gate.set()
            requester.join(timeout=60)
            status, reply = outcome["reply"]
            assert status == 200
            assert json.loads(reply)["winner"] == "IppsMDCTInv_MP3_32s"
            drain_future.result(timeout=60)
            assert service.admission.stats()["shed"] == 1
        finally:
            gate.set()
            thread.__exit__(None, None, None)


class TestFleetChaos:
    """Chaos against the multi-process fleet (CI's ``mode: fleet``
    matrix cell; selected with ``-k fleet``).

    The ``fleet.worker`` site is armed in the *parent* before the
    supervisor forks, so every worker inherits the active plan — the
    only way a test can reach into processes it never constructs.  A
    firing rule kills the worker mid-request (``os._exit``); the
    client sees a severed connection, retries, and must end up with
    the same clean contract the single-process suite pins: statuses
    in {200, 429, 503}, every 200 byte-identical to fault-free.
    """

    PAYLOADS = [
        {"block": "inv_mdctL"},
        {"block": "inv_mdctL", "platform": "DSP"},
        {"block": "SubBandSynthesis", "platform": "ARM926"},
    ]

    def test_worker_kills_stay_inside_the_status_contract(
            self, tmp_path, chaos_seed):
        plan = FaultPlan([
            # Each worker's inherited plan copy draws its own stream;
            # times=2 bounds the kills per worker so the run always
            # converges while still exercising respawn.
            FaultRule("fleet.worker", probability=0.10, times=2,
                      error=lambda: RuntimeError("injected: worker kill")),
            FaultRule("service.dispatch", probability=0.2, delay=0.02),
        ], seed=chaos_seed)
        supervisor = FleetSupervisor(
            workers=2, port=0, cache_dir=str(tmp_path / "cache"),
            respawn_backoff=0.05, drain_grace=5.0)
        statuses, chaos_bodies = [], []
        with plan.activate():
            with supervisor:
                client = ServiceClient(
                    f"http://127.0.0.1:{supervisor.port}")
                client.wait_healthy()
                for _round in range(6):
                    for payload in self.PAYLOADS:
                        status, body = client.request_bytes(
                            "POST", "/v1/map", payload)
                        statuses.append(status)
                        if status == 200:
                            key = json.dumps(payload, sort_keys=True)
                            chaos_bodies.append((key, body))
                # Reference-byte replay on the same fleet.  The
                # nested empty plan disarms the *parent* (so workers
                # respawned from here on come up chaos-free); already
                # -running workers may spend what is left of their
                # kill budget, which the client's connection retries
                # absorb — the 200 bytes are what must not change.
                clean = {}
                with FaultPlan([], seed=chaos_seed).activate():
                    for payload in self.PAYLOADS:
                        status, body = client.request_bytes(
                            "POST", "/v1/map", payload)
                        assert status == 200
                        clean[json.dumps(payload, sort_keys=True)] = body
                for key, body in chaos_bodies:
                    assert body == clean[key]
                assert set(statuses) <= {200, 429, 503}
                assert 200 in statuses
                final = supervisor.status()
                assert all(final["alive"])

    def test_fleet_drain_refuses_new_work_cleanly(self, tmp_path):
        """SIGTERM-style stop mid-traffic: the PR-7 drain machinery
        runs per worker, and the port closes without a hung client."""
        supervisor = FleetSupervisor(
            workers=2, port=0, cache_dir=str(tmp_path / "cache"),
            drain_grace=5.0)
        supervisor.start()
        try:
            supervisor.wait_ready()
            client = ServiceClient(f"http://127.0.0.1:{supervisor.port}")
            client.wait_healthy()
            assert client.request_bytes(
                "POST", "/v1/map", {"block": "inv_mdctL"})[0] == 200
        finally:
            supervisor.stop(drain=True)
        assert supervisor.status()["alive"] == [False, False]
