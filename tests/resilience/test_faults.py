"""The fault-injection registry itself: arming, determinism, scoping."""

import time

import pytest

from repro.resilience import FAULT_SITES, FaultPlan, FaultRule, active_plan, inject


class TestFaultRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("no.such.site", error=RuntimeError)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("batch.worker", error=RuntimeError, probability=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            FaultRule("batch.worker", error=RuntimeError, delay=-1.0)

    def test_rule_must_do_something(self):
        with pytest.raises(ValueError, match="raise, delay, or both"):
            FaultRule("batch.worker")

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            FaultRule("batch.worker", error=RuntimeError, times=0)

    def test_every_compiled_site_is_armable(self):
        for site in FAULT_SITES:
            FaultRule(site, error=RuntimeError)


class TestFiring:
    def test_error_class_is_instantiated(self):
        plan = FaultPlan([FaultRule("batch.worker", error=KeyError)])
        with pytest.raises(KeyError):
            plan.fire("batch.worker")

    def test_error_instance_is_raised_as_is(self):
        sentinel = RuntimeError("exactly this one")
        plan = FaultPlan([FaultRule("batch.worker", error=sentinel)])
        with pytest.raises(RuntimeError) as excinfo:
            plan.fire("batch.worker")
        assert excinfo.value is sentinel

    def test_error_factory_is_called(self):
        plan = FaultPlan([FaultRule(
            "batch.worker", error=lambda: ValueError("built fresh"))])
        with pytest.raises(ValueError, match="built fresh"):
            plan.fire("batch.worker")

    def test_times_bounds_firing(self):
        plan = FaultPlan([FaultRule("batch.worker", error=RuntimeError,
                                    times=2)])
        for _ in range(2):
            with pytest.raises(RuntimeError):
                plan.fire("batch.worker")
        plan.fire("batch.worker")      # exhausted: passes
        assert plan.counts() == {
            "hits": {**dict.fromkeys(FAULT_SITES, 0), "batch.worker": 3},
            "fired": {**dict.fromkeys(FAULT_SITES, 0), "batch.worker": 2},
        }

    def test_after_arms_the_fault_late(self):
        plan = FaultPlan([FaultRule("batch.worker", error=RuntimeError,
                                    after=2)])
        plan.fire("batch.worker")
        plan.fire("batch.worker")
        with pytest.raises(RuntimeError):
            plan.fire("batch.worker")

    def test_first_firing_rule_wins_later_rules_stay_armed(self):
        plan = FaultPlan([
            FaultRule("batch.worker", error=ValueError, times=1),
            FaultRule("batch.worker", error=KeyError),
        ])
        with pytest.raises(ValueError):
            plan.fire("batch.worker")
        with pytest.raises(KeyError):   # rule 1 exhausted, rule 2 takes over
            plan.fire("batch.worker")

    def test_delay_sleeps(self):
        plan = FaultPlan([FaultRule("service.dispatch", delay=0.05)])
        start = time.monotonic()
        plan.fire("service.dispatch")
        assert time.monotonic() - start >= 0.04

    def test_delay_then_error(self):
        plan = FaultPlan([FaultRule("service.dispatch", delay=0.02,
                                    error=RuntimeError)])
        start = time.monotonic()
        with pytest.raises(RuntimeError):
            plan.fire("service.dispatch")
        assert time.monotonic() - start >= 0.01

    def test_unknown_site_at_fire_time_rejected(self):
        plan = FaultPlan([])
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.fire("typo.site")


class TestDeterminism:
    @staticmethod
    def _pattern(seed: int, extra_site_hits: int = 0) -> list:
        plan = FaultPlan([
            FaultRule("batch.worker", error=RuntimeError, probability=0.5),
            FaultRule("disk_cache.read", error=RuntimeError,
                      probability=0.5),
        ], seed=seed)
        pattern = []
        with plan.activate():
            for index in range(64):
                # Optionally interleave hits on the *other* site: rule
                # streams are private, so they must not perturb this one.
                for _ in range(extra_site_hits):
                    try:
                        inject("disk_cache.read")
                    except RuntimeError:
                        pass
                try:
                    inject("batch.worker")
                    pattern.append(0)
                except RuntimeError:
                    pattern.append(1)
        return pattern

    def test_same_seed_same_firing_sequence(self, chaos_seed):
        first = self._pattern(chaos_seed)
        assert first == self._pattern(chaos_seed)
        assert 0 < sum(first) < len(first)   # probabilistic, not degenerate

    def test_sites_draw_from_independent_streams(self, chaos_seed):
        assert self._pattern(chaos_seed) == self._pattern(
            chaos_seed, extra_site_hits=3)

    def test_different_seeds_differ(self):
        patterns = {tuple(self._pattern(seed)) for seed in range(8)}
        assert len(patterns) > 1


class TestActivation:
    def test_inject_without_a_plan_is_a_no_op(self):
        assert active_plan() is None
        inject("batch.worker")          # nothing raised, nothing counted

    def test_activation_is_scoped_and_nestable(self):
        outer = FaultPlan([FaultRule("batch.worker", error=ValueError)])
        inner = FaultPlan([FaultRule("batch.worker", error=KeyError)])
        with outer.activate():
            assert active_plan() is outer
            with inner.activate():
                assert active_plan() is inner
                with pytest.raises(KeyError):
                    inject("batch.worker")
            assert active_plan() is outer
            with pytest.raises(ValueError):
                inject("batch.worker")
        assert active_plan() is None

    def test_activation_restores_on_error(self):
        plan = FaultPlan([FaultRule("batch.worker", error=RuntimeError)])
        with pytest.raises(ZeroDivisionError):
            with plan.activate():
                1 / 0
        assert active_plan() is None
