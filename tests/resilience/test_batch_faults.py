"""The batch engine under worker faults: serial retry, pool respawn."""

import os

import pytest
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import repro.mapping.batch as batch_mod
from repro.mapping import BatchItem, clear_mapping_caches, run_batch
from repro.platform import Badge4
from repro.resilience import FaultPlan, FaultRule
from repro.symalg import symbols

from .conftest import demo_library

x, y = symbols("x y")
PLATFORM = Badge4()


def _items():
    return [
        BatchItem.for_target(x ** 2 - 2 * y, demo_library(), PLATFORM),
        BatchItem.for_target(x + x ** 3 * y ** 2 - 2 * x * y ** 3,
                             demo_library(), PLATFORM),
    ]


@pytest.fixture(autouse=True)
def _cold(isolated_caches):
    yield


def _baseline():
    """Fault-free results to compare every chaos run against.  Clears
    the memory tier afterwards so the chaos run starts cold and must
    actually exercise the worker pool."""
    report = run_batch(_items(), workers=1)
    names = [r.best.element_names() for r in report.results]
    clear_mapping_caches()
    return names


class TestWorkerJobFaults:
    def test_raising_workers_fall_back_serially(self, chaos_seed):
        """Every worker job raises -> every item is recomputed in the
        parent (whose serial path has no fault site), results intact."""
        expected = _baseline()
        plan = FaultPlan([FaultRule("batch.worker", error=RuntimeError)],
                         seed=chaos_seed)
        with plan.activate():
            report = run_batch(_items(), workers=2)
        assert [r.best.element_names() for r in report.results] == expected
        assert report.stats.worker_retries == report.stats.unique
        assert report.stats.serial_jobs == report.stats.unique
        assert report.stats.parallel_jobs == 0
        assert report.stats.pool_respawns == 0   # pool alive, jobs failed

    def test_dead_workers_break_the_pool_results_still_correct(
            self, chaos_seed):
        """os._exit in a worker kills the pool itself.  The engine
        respawns once (workers die again: children inherit the armed
        plan) and then degrades serially — the caller still gets every
        result, the report records the whole story."""
        expected = _baseline()
        plan = FaultPlan([FaultRule("batch.worker",
                                    error=lambda: os._exit(17))],
                         seed=chaos_seed)
        with plan.activate():
            report = run_batch(_items(), workers=2)
        assert [r.best.element_names() for r in report.results] == expected
        assert report.stats.pool_respawns == 1
        assert report.stats.serial_jobs == report.stats.unique
        assert report.stats.worker_retries == report.stats.unique


class _DeadPool:
    """A stand-in ProcessPoolExecutor whose workers are already dead."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        raise BrokenProcessPool("a child process terminated abruptly")


class _ThreadBackedPool(ThreadPoolExecutor):
    """A working 'process pool' for deterministic respawn tests: the
    packed-job protocol (pre-pickled blobs) runs identically on
    threads, without fork cost or fork-inherited fault-plan state."""

    def __init__(self, max_workers=None):
        super().__init__(max_workers=max_workers or 2)

    def __exit__(self, *exc_info):
        self.shutdown(wait=True)
        return False


class TestPoolRespawn:
    def test_first_pool_broken_respawn_succeeds(self, monkeypatch):
        pools = []

        def factory(*args, **kwargs):
            pool = (_DeadPool if not pools else _ThreadBackedPool)(
                *args, **kwargs)
            pools.append(pool)
            return pool

        monkeypatch.setattr(batch_mod, "ProcessPoolExecutor", factory)
        report = run_batch(_items(), workers=2)
        assert len(pools) == 2
        assert report.stats.pool_respawns == 1
        assert report.stats.parallel_jobs == report.stats.unique
        assert report.stats.worker_retries == 0
        assert report.results[0].best.element_names() == ["sq2y"]

    def test_twice_broken_pool_degrades_serially(self, monkeypatch):
        pools = []

        def factory(*args, **kwargs):
            pool = _DeadPool()
            pools.append(pool)
            return pool

        monkeypatch.setattr(batch_mod, "ProcessPoolExecutor", factory)
        report = run_batch(_items(), workers=2)
        assert len(pools) == 2                  # respawned exactly once
        assert report.stats.pool_respawns == 1
        assert report.stats.serial_jobs == report.stats.unique
        assert report.stats.worker_retries == report.stats.unique
        assert report.results[0].best.element_names() == ["sq2y"]

    def test_caller_owned_executor_is_never_respawned(self):
        pool = _DeadPool()
        report = run_batch(_items(), workers=2, executor=pool)
        assert report.stats.pool_respawns == 0
        assert report.stats.serial_jobs == report.stats.unique
        assert report.results[0].best.element_names() == ["sq2y"]
