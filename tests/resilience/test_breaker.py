"""The circuit breaker's state machine, on an injected clock."""

import pytest

from repro.resilience import CircuitBreaker


def _breaker(**kwargs):
    now = [0.0]
    defaults = dict(failure_threshold=3, cooldown=10.0,
                    clock=lambda: now[0])
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), now


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker, _now = _breaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_failure_run(self):
        breaker, _now = _breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"   # never 3 *consecutive*

    def test_threshold_opens(self):
        breaker, _now = _breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["trips"] == 1


class TestOpen:
    def test_refuses_until_cooldown(self):
        breaker, now = _breaker()
        breaker.trip()
        now[0] = 9.9
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.allow()
        assert breaker.state == "half_open"
        assert breaker.stats()["probes"] == 1

    def test_trip_forces_open_immediately(self):
        breaker, _now = _breaker()
        breaker.trip()
        assert breaker.state == "open"
        assert breaker.stats()["failures"] == 0   # no counting involved

    def test_restamping_an_open_breaker_is_not_a_new_trip(self):
        breaker, now = _breaker(failure_threshold=1)
        breaker.record_failure()
        now[0] = 5.0
        breaker.record_failure()       # already open: re-stamp only
        assert breaker.stats()["trips"] == 1
        now[0] = 14.9                  # cooldown restarted at t=5
        assert not breaker.allow()
        now[0] = 15.0
        assert breaker.allow()


class TestHalfOpen:
    def test_probe_success_closes(self):
        breaker, now = _breaker()
        breaker.trip()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, now = _breaker()
        breaker.trip()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()       # one failure re-opens half-open
        assert breaker.state == "open"
        assert breaker.stats()["trips"] == 2
        now[0] = 19.9
        assert not breaker.allow()
        now[0] = 20.0
        assert breaker.allow()

    def test_half_open_allows_every_caller(self):
        # No single-probe gate: a probe that never reports back must
        # not wedge the breaker shut for everyone else.
        breaker, now = _breaker()
        breaker.trip()
        now[0] = 10.0
        assert breaker.allow()
        assert breaker.allow()
        assert breaker.allow()


class TestLifecycleAndStats:
    def test_reset_closes_and_clears(self):
        breaker, _now = _breaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.stats()["failures"] == 0
        assert breaker.allow()

    def test_stats_shape(self):
        breaker, _now = _breaker()
        assert breaker.stats() == {
            "state": "closed", "failures": 0, "failure_threshold": 3,
            "cooldown": 10.0, "trips": 0, "probes": 0,
        }

    def test_repr_names_the_dependency(self):
        breaker = CircuitBreaker(name="/tmp/store.sqlite")
        assert "store.sqlite" in repr(breaker)

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=-1.0)
