"""The retry policy's backoff geometry and validation."""

import random

import pytest

from repro.resilience import DEFAULT_RETRY_POLICY, RetryPolicy


class TestBackoffSchedule:
    def test_exponential_then_capped(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, max_delay=1.0,
                             multiplier=2.0, jitter=0.0)
        assert [policy.backoff(n) for n in range(6)] == [
            0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_retry_after_is_a_floor_not_a_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=2.0, jitter=0.0)
        assert policy.backoff(0, retry_after=0.5) == 0.5
        # ... but a hint *below* the computed delay does not shrink it.
        assert policy.backoff(4, retry_after=0.5) == 1.6
        assert policy.backoff(5, retry_after=0.5) == 2.0   # cap still caps

    def test_jitter_is_bounded_and_seed_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.25)
        draws = [policy.backoff(2, random.Random(7)) for _ in range(32)]
        assert all(d == draws[0] for d in draws)      # seeded: replayable
        rng = random.Random(7)
        spread = [policy.backoff(2, rng) for _ in range(256)]
        center = 0.1 * 2.0 ** 2
        assert all(center * 0.75 <= d <= center * 1.25 for d in spread)
        assert max(spread) > min(spread)              # jitter actually jitters

    def test_no_rng_means_midpoint_schedule(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        assert policy.backoff(0) == 0.1


class TestPolicyValue:
    def test_retryable_statuses(self):
        policy = RetryPolicy()
        assert policy.retryable_status(429)
        assert policy.retryable_status(503)
        assert not policy.retryable_status(500)
        assert not policy.retryable_status(200)

    def test_default_policy_is_small_and_jittered(self):
        assert DEFAULT_RETRY_POLICY.attempts == 3
        assert DEFAULT_RETRY_POLICY.retry_statuses == (429, 503)
        assert DEFAULT_RETRY_POLICY.jitter > 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RetryPolicy().attempts = 5

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
