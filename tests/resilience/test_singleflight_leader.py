"""Single-flight under leader failure: followers get answers, not hangs.

The coalescing layer shares one computation among many waiters, which
concentrates risk: if the leader's computation dies, every follower is
riding on it.  These tests pin the contract that a dead leader produces
an *error response* at every waiter — never a wedged connection — and
that the flight is forgotten so the next request recomputes cleanly.
"""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.resilience import FaultPlan, FaultRule, inject
from repro.service.singleflight import SingleFlight


async def _drain_until(flight, predicate, rounds: int = 500):
    for _ in range(rounds):
        if predicate(flight):
            return
        await asyncio.sleep(0)
    raise AssertionError(f"never reached state; stats={flight.stats()}")


DISPATCH_FAULTS = [
    pytest.param(FaultRule("service.dispatch", error=RuntimeError, times=1),
                 RuntimeError, id="plain-exception"),
    pytest.param(FaultRule("service.dispatch",
                           error=lambda: ServiceError(500, "boom"), times=1),
                 ServiceError, id="service-error"),
]


class TestLeaderFailure:
    @pytest.mark.parametrize("rule, expected", DISPATCH_FAULTS)
    def test_every_waiter_sees_the_leaders_error(self, rule, expected,
                                                 chaos_seed):
        """An injected dispatch fault in the shared computation reaches
        all coalesced waiters, and the next run recomputes fresh."""
        async def scenario():
            flight = SingleFlight()
            gate = asyncio.Event()

            async def compute():
                await gate.wait()
                inject("service.dispatch")
                return "mapped"

            plan = FaultPlan([rule], seed=chaos_seed)
            with plan.activate():
                tasks = [asyncio.create_task(flight.run("k", compute))
                         for _ in range(5)]
                await _drain_until(flight, lambda f: f.coalesced == 4)
                gate.set()
                results = await asyncio.gather(*tasks,
                                               return_exceptions=True)
                assert all(isinstance(r, expected) for r in results)
                assert flight.in_flight == 0
                # times=1: the fault is spent, a retry succeeds.
                assert await flight.run("k", compute) == "mapped"
                counts = plan.counts()
                assert counts["fired"]["service.dispatch"] == 1
                assert counts["hits"]["service.dispatch"] == 2
        asyncio.run(scenario())

    def test_cancelled_shared_computation_yields_retryable_503(self):
        """Cancelling the shared task itself (shutdown reaping it, say)
        answers every waiter with a retryable 503 — not an escaped
        CancelledError that would sever their connections."""
        async def scenario():
            flight = SingleFlight()
            gate = asyncio.Event()

            async def compute():
                await gate.wait()
                return "never"

            waiters = [asyncio.create_task(flight.run("k", compute))
                       for _ in range(3)]
            await _drain_until(flight, lambda f: f.coalesced == 2)
            flight._inflight["k"].cancel()
            results = await asyncio.gather(*waiters, return_exceptions=True)
            assert all(isinstance(r, ServiceError) for r in results)
            assert {r.status for r in results} == {503}
            assert all(r.retry_after == 1.0 for r in results)
            assert flight.in_flight == 0
            gate.set()
            # ... and the key is free again for a fresh flight.
            assert await flight.run("k", compute) == "never"
        asyncio.run(scenario())
