"""Tests for library elements and the catalog."""

import pytest

from repro.errors import LibraryError
from repro.library import (Library, LibraryElement, formal_inputs,
                           full_library, ipp_library, reference_library)
from repro.platform import OperationTally
from repro.symalg import Polynomial


def scalar_element(name="e", library="IH", arity=1, accuracy=1e-6):
    formals = formal_inputs(arity)
    poly = Polynomial.one()
    for f in formals:
        poly = poly * Polynomial.variable(f)
    return LibraryElement(name=name, library=library, polynomials=(poly,),
                          input_format="q", output_format="q",
                          accuracy=accuracy, cost=OperationTally(int_mul=1))


class TestElement:
    def test_formal_inputs(self):
        assert formal_inputs(3) == ("in0", "in1", "in2")

    def test_arity(self):
        assert scalar_element(arity=2).arity == 2

    def test_polynomial_accessor_single(self):
        e = scalar_element()
        assert e.polynomial == Polynomial.variable("in0")

    def test_polynomial_accessor_multi_raises(self):
        e = LibraryElement(
            name="multi", library="IPP",
            polynomials=(Polynomial.variable("in0"), Polynomial.variable("in1")),
            input_format="q", output_format="q", accuracy=0,
            cost=OperationTally())
        with pytest.raises(LibraryError):
            _ = e.polynomial

    def test_output_symbols(self):
        e = scalar_element(name="foo")
        assert e.output_symbol() == "foo_out"

    def test_bad_library_tag(self):
        with pytest.raises(LibraryError):
            LibraryElement(name="x", library="ACME",
                           polynomials=(Polynomial.one(),),
                           input_format="q", output_format="q",
                           accuracy=0, cost=OperationTally())

    def test_no_polynomials_raises(self):
        with pytest.raises(LibraryError):
            LibraryElement(name="x", library="IH", polynomials=(),
                           input_format="q", output_format="q",
                           accuracy=0, cost=OperationTally())

    def test_negative_accuracy_raises(self):
        with pytest.raises(LibraryError):
            scalar_element(accuracy=-1)


class TestCatalog:
    def test_add_and_get(self):
        lib = Library("t")
        lib.add(scalar_element("a"))
        assert lib.get("a").name == "a"
        assert "a" in lib
        assert len(lib) == 1

    def test_duplicate_raises(self):
        lib = Library("t", [scalar_element("a")])
        with pytest.raises(LibraryError):
            lib.add(scalar_element("a"))

    def test_missing_raises(self):
        with pytest.raises(LibraryError):
            Library("t").get("ghost")

    def test_from_library(self):
        lib = Library("t", [scalar_element("a", "IH"),
                            scalar_element("b", "IPP")])
        assert [e.name for e in lib.from_library("IPP")] == ["b"]

    def test_signature_search(self):
        lib = Library("t", [scalar_element("a", arity=1),
                            scalar_element("b", arity=2)])
        assert [e.name for e in lib.with_signature(arity=2)] == ["b"]

    def test_union(self):
        combined = Library.union(Library("x", [scalar_element("a")]),
                                 Library("y", [scalar_element("b")]))
        assert len(combined) == 2

    def test_union_collision_raises(self):
        with pytest.raises(LibraryError):
            Library.union(Library("x", [scalar_element("a")]),
                          Library("y", [scalar_element("a")]))


class TestBuiltinLibraries:
    def test_lm_has_four_log_story_elements(self):
        """The intro's example: four log implementations across LM+IH."""
        full = full_library()
        logs = full.implementations_of("log")
        assert {"log_double", "logf_float", "fx_log_bitwise",
                "fx_log_poly"} <= {e.name for e in logs}

    def test_ipp_has_the_two_complex_elements(self):
        ipp = ipp_library()
        assert "ippsSynthPQMF_MP3_32s16s" in ipp
        assert "IppsMDCTInv_MP3_32s" in ipp

    def test_imdct_elements_have_36_outputs(self):
        ref = reference_library()
        assert ref.get("float_IMDCT").n_outputs == 36

    def test_synthesis_elements_have_64_outputs(self):
        ref = reference_library()
        assert ref.get("float_SubBandSyn").n_outputs == 64

    def test_full_library_element_count(self):
        assert len(full_library()) == 36

    def test_accuracy_ladder(self):
        """double < float < fixed accuracy loss, as characterized."""
        lib = full_library()
        assert (lib.get("log_double").accuracy
                < lib.get("logf_float").accuracy
                < lib.get("fx_log_bitwise").accuracy)


class TestElementSerialization:
    """Elements must cross process/disk boundaries (batch engine)."""

    def test_module_level_kernel_survives_pickle(self):
        import pickle
        element = full_library().get("fx_exp")
        clone = pickle.loads(pickle.dumps(element))
        assert clone.kernel is element.kernel
        assert clone.polynomials == element.polynomials

    def test_unpicklable_kernel_is_dropped_not_fatal(self):
        import pickle
        element = LibraryElement(
            name="lam", library="IH",
            polynomials=(Polynomial.variable("in0") ** 2,),
            input_format="q", output_format="q", accuracy=0.0,
            cost=OperationTally(int_mul=1), kernel=lambda v: v * v)
        clone = pickle.loads(pickle.dumps(element))
        assert clone.kernel is None
        assert clone.name == "lam"
        assert clone.polynomials == element.polynomials
        assert clone.cost.int_mul == 1

    def test_whole_library_pickles(self):
        import pickle
        lib = full_library()
        elements = pickle.loads(pickle.dumps(tuple(lib)))
        assert [e.name for e in elements] == [e.name for e in lib]

    def test_copies_keep_closure_kernels_only_pickles_shed_them(self):
        """__getstate__'s kernel-drop is a *pickle* contract; plain
        copies must keep the callable (the copy module also routes
        through __getstate__ unless copying is implemented directly)."""
        import copy
        element = LibraryElement(
            name="lam", library="IH",
            polynomials=(Polynomial.variable("in0") ** 2,),
            input_format="q", output_format="q", accuracy=0.0,
            cost=OperationTally(int_mul=1), kernel=lambda v: v * v)
        assert copy.copy(element).kernel(3) == 9
        deep = copy.deepcopy(element)
        assert deep.kernel(4) == 16
        assert deep.cost is not element.cost   # still a deep copy
        # Shared references stay shared (memo protocol respected).
        pair = copy.deepcopy({"a": element, "b": element})
        assert pair["a"] is pair["b"]
