"""Tests for the characterization harness (Table 1 machinery)."""

import pytest

from repro.library import (CharacterizationTable,
                           characterize_library, full_library)
from repro.platform import Badge4


@pytest.fixture(scope="module")
def characterized():
    return characterize_library(full_library(), Badge4())


class TestCharacterize:
    def test_every_element_priced(self, characterized):
        assert len(characterized) == len(full_library())
        for entry in characterized.values():
            assert entry.seconds_per_call > 0
            assert entry.energy_per_call_j > 0
            assert entry.cycles_per_call > 0

    def test_seconds_consistent_with_cycles(self, characterized):
        entry = characterized["float_IMDCT"]
        assert entry.seconds_per_call == pytest.approx(
            entry.cycles_per_call / 206.4e6)


class TestTable1Shape:
    """The qualitative content of the paper's Table 1."""

    def test_subband_ladder(self, characterized):
        f = characterized["float_SubBandSyn"].seconds_per_call
        q = characterized["fixed_SubBandSyn"].seconds_per_call
        i = characterized["ippsSynthPQMF_MP3_32s16s"].seconds_per_call
        assert f > q > i
        # paper: fixed 92x, IPP 479x
        assert 40 < f / q < 250
        assert 250 < f / i < 1500

    def test_imdct_ladder(self, characterized):
        f = characterized["float_IMDCT"].seconds_per_call
        q = characterized["fixed_IMDCT"].seconds_per_call
        i = characterized["IppsMDCTInv_MP3_32s"].seconds_per_call
        assert f > q > i
        # paper: fixed 27x, IPP 1898x
        assert 10 < f / q < 80
        assert 500 < f / i < 4000

    def test_fixed_subband_gains_more_than_fixed_imdct(self, characterized):
        """The asymmetry the paper measured: 92x vs 27x.

        Root cause in our model (and plausibly theirs): the in-house
        subband synthesis is algorithmically fast (Lee DCT-32) while the
        in-house IMDCT is a straight fixed-point port.
        """
        sub_gain = (characterized["float_SubBandSyn"].seconds_per_call
                    / characterized["fixed_SubBandSyn"].seconds_per_call)
        imdct_gain = (characterized["float_IMDCT"].seconds_per_call
                      / characterized["fixed_IMDCT"].seconds_per_call)
        assert sub_gain > 2 * imdct_gain

    def test_log_ladder(self, characterized):
        """The intro's four-way log trade-off."""
        d = characterized["log_double"].seconds_per_call
        f = characterized["logf_float"].seconds_per_call
        b = characterized["fx_log_bitwise"].seconds_per_call
        p = characterized["fx_log_poly"].seconds_per_call
        assert d > f > b > p

    def test_format_renders_ratio_column(self, characterized):
        table = CharacterizationTable(characterized)
        text = table.format({
            "sub": (["float_SubBandSyn", "fixed_SubBandSyn"],
                    "float_SubBandSyn")})
        assert "float_SubBandSyn" in text
        assert "Ratio" in text
