"""Tests for the pluggable processor registry."""

import pytest

from repro.errors import PlatformError
from repro.platform import (ARM7TDMI, ARM7TDMI_ENERGY, ARM926, GENERIC_DSP,
                            SA1110, Badge4, EnergyModel, OperationTally,
                            ProcessorRegistry, ProcessorSpec, get_processor,
                            platform_named, registered_processors)
from repro.platform.registry import DEFAULT_REGISTRY


class TestDefaultRegistry:
    def test_ships_at_least_four_targets(self):
        assert len(DEFAULT_REGISTRY) >= 4

    def test_sa1110_is_first_and_default(self):
        assert registered_processors()[0] == "SA-1110"
        assert get_processor("SA-1110").spec is SA1110
        # The default platform object is still the paper's target.
        assert Badge4().processor is SA1110

    def test_builtin_specs_have_distinct_cost_tables(self):
        specs = [SA1110, ARM7TDMI, ARM926, GENERIC_DSP]
        tables = {tuple(sorted(s.cycle_costs.items())) for s in specs}
        assert len(tables) == len(specs)
        libms = {tuple(sorted(s.libm_costs.items())) for s in specs}
        assert len(libms) == len(specs)

    def test_every_entry_instantiates_a_working_platform(self):
        tally = OperationTally(int_mac=10, fp_mul=3, load=5)
        tally.libm("pow", 2)
        cycles = {}
        energy = {}
        for key in registered_processors():
            platform = platform_named(key)
            cycles[key] = platform.cost_model.cycles(tally)
            energy[key] = platform.energy.energy(tally,
                                                 platform.cost_model)
            assert cycles[key] > 0
            assert energy[key] > 0
        # Distinct tables produce distinct prices for the same tally.
        assert len(set(cycles.values())) == len(cycles)
        assert len(set(energy.values())) == len(energy)

    def test_platform_named_wires_the_registered_energy_model(self):
        entry = get_processor("ARM926")
        platform = platform_named("ARM926")
        assert platform.processor is entry.spec
        assert platform.energy is entry.energy
        assert platform.energy is not Badge4().energy

    def test_unknown_key_raises_with_known_keys_listed(self):
        with pytest.raises(PlatformError, match="SA-1110"):
            platform_named("Z80")

    def test_relative_order_dsp_mac_cheapest_arm7_mul_dearest(self):
        mac = OperationTally(int_mac=1000)
        prices = {key: platform_named(key).cost_model.cycles(mac)
                  for key in ("SA-1110", "ARM7TDMI", "ARM926", "DSP")}
        assert prices["DSP"] < prices["ARM926"] < prices["SA-1110"] \
            < prices["ARM7TDMI"]


class TestCustomRegistration:
    def _spec(self, name="custom-core"):
        return ProcessorSpec(
            name=name, clock_hz=100e6, has_fpu=True,
            cycle_costs={k: 1.0 for k in
                         ("int_alu", "int_mul", "int_mac", "int_div",
                          "shift", "fp_add", "fp_mul", "fp_div", "load",
                          "store", "branch", "call")},
            libm_costs={"pow": 50.0})

    def test_register_get_platform_roundtrip(self):
        registry = ProcessorRegistry()
        registry.register("custom", self._spec(),
                          EnergyModel(core_power_max_w=0.2))
        assert "custom" in registry
        platform = registry.platform("custom")
        assert platform.processor.name == "custom-core"
        assert platform.energy.core_power_max_w == 0.2

    def test_duplicate_key_raises_unless_replace(self):
        registry = ProcessorRegistry()
        registry.register("c", self._spec())
        with pytest.raises(PlatformError, match="already registered"):
            registry.register("c", self._spec("other"))
        registry.register("c", self._spec("other"), replace=True)
        assert registry.get("c").spec.name == "other"

    def test_registration_order_is_iteration_order(self):
        registry = ProcessorRegistry()
        for key in ("b", "a", "c"):
            registry.register(key, self._spec(key))
        assert registry.names() == ["b", "a", "c"]
        assert [e.key for e in registry] == ["b", "a", "c"]

    def test_default_energy_is_the_badge_board(self):
        from repro.platform import BADGE4_ENERGY
        registry = ProcessorRegistry()
        entry = registry.register("bare", self._spec())
        assert entry.energy is BADGE4_ENERGY

    def test_empty_key_rejected(self):
        with pytest.raises(PlatformError):
            ProcessorRegistry().register("", self._spec())

    def test_resolve_mixes_keys_and_objects_consistently(self):
        resolved = DEFAULT_REGISTRY.resolve(["ARM926", Badge4()])
        assert [label for label, _ in resolved] == ["ARM926", "SA-1110"]
        resolved_all = DEFAULT_REGISTRY.resolve(None)
        assert [label for label, _ in resolved_all] == \
            registered_processors()

    def test_label_for_unregistered_spec_falls_back_to_name(self):
        platform = Badge4(processor=self._spec("one-off"))
        assert DEFAULT_REGISTRY.label_for(platform) == "one-off"

    def test_resolve_rejects_duplicate_labels(self):
        """Two boards resolving to one label would silently conflate
        their results in every label-indexed report."""
        from repro.platform import ARM926, GENERIC_DSP_ENERGY
        board_a = Badge4(processor=ARM926, energy=GENERIC_DSP_ENERGY)
        board_b = Badge4(processor=ARM926, energy=ARM7TDMI_ENERGY)
        with pytest.raises(PlatformError, match="duplicate"):
            DEFAULT_REGISTRY.resolve([board_a, board_b])
        with pytest.raises(PlatformError, match="duplicate"):
            DEFAULT_REGISTRY.resolve(["SA-1110", Badge4()])

    def test_label_for_customized_energy_never_borrows_the_key(self):
        """A registered spec on a different board prices differently,
        so it must not be reported under the registry entry's key."""
        from repro.platform import GENERIC_DSP_ENERGY
        hybrid = Badge4(energy=GENERIC_DSP_ENERGY)
        assert DEFAULT_REGISTRY.label_for(hybrid) == "StrongARM SA-1110"
        assert DEFAULT_REGISTRY.label_for(Badge4()) == "SA-1110"

    def test_registry_platforms_are_self_consistent(self):
        """A non-SA-1110 platform's ladder tops out at its own clock
        and its inventory names its own processor — no SA-1110 leakage."""
        for key in ("ARM7TDMI", "ARM926", "DSP"):
            platform = platform_named(key)
            points = platform.operating_points()
            assert points[-1].clock_hz == platform.processor.clock_hz
            assert points[-1].voltage == platform.energy.nominal_voltage
            assert platform.governor.points == points
            text = platform.describe()
            assert "StrongARM" not in text
            assert platform.processor.name in text

    def test_sa1110_platform_keeps_the_published_ladder(self):
        from repro.platform import SA1110_OPERATING_POINTS
        assert Badge4().operating_points() is SA1110_OPERATING_POINTS

    def test_energy_priced_at_the_spec_clock_not_the_board_nominal(self):
        """A registered spec paired with the fallback board model must
        burn energy at the spec's clock: same work, 300 MHz vs 206.4
        MHz nominal, means less time under static power."""
        from repro.platform import BADGE4_ENERGY, CostModel
        spec = self._spec()                      # 100 MHz, fallback board
        tally = OperationTally(int_alu=10**6)
        energy = BADGE4_ENERGY.energy(tally, CostModel(spec))
        explicit = BADGE4_ENERGY.energy(tally, CostModel(spec),
                                        clock_hz=spec.clock_hz)
        assert energy == explicit
        nominal = BADGE4_ENERGY.energy(tally, CostModel(spec),
                                       clock_hz=BADGE4_ENERGY.nominal_clock_hz)
        assert energy != nominal
