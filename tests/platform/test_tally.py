"""Tests for OperationTally."""

from hypothesis import given
from hypothesis import strategies as st

from repro.platform import OperationTally


def make_tally(**kwargs):
    t = OperationTally()
    for k, v in kwargs.items():
        setattr(t, k, v)
    return t


class TestBasics:
    def test_empty(self):
        t = OperationTally()
        assert t.is_empty()
        assert t.total_ops() == 0

    def test_merge(self):
        a = make_tally(int_alu=3, fp_mul=2)
        b = make_tally(int_alu=1, load=5)
        a.merge(b)
        assert a.int_alu == 4
        assert a.fp_mul == 2
        assert a.load == 5

    def test_merge_libm(self):
        a = OperationTally()
        a.libm("pow", 2)
        b = OperationTally()
        b.libm("pow", 3)
        b.libm("cos", 1)
        a.merge(b)
        assert a.libm_calls == {"pow": 5, "cos": 1}

    def test_libm_zero_count_ignored(self):
        t = OperationTally()
        t.libm("exp", 0)
        assert t.libm_calls == {}

    def test_scaled(self):
        t = make_tally(int_mul=2, store=1)
        t.libm("sin", 1)
        s = t.scaled(10)
        assert s.int_mul == 20
        assert s.store == 10
        assert s.libm_calls == {"sin": 10}
        # original untouched
        assert t.int_mul == 2

    def test_add_operator(self):
        a = make_tally(int_alu=1)
        b = make_tally(int_alu=2)
        c = a + b
        assert c.int_alu == 3
        assert a.int_alu == 1
        assert b.int_alu == 2

    def test_copy_independent(self):
        a = make_tally(fp_add=1)
        b = a.copy()
        b.fp_add = 99
        assert a.fp_add == 1

    def test_total_ops_counts_libm(self):
        t = make_tally(int_alu=2)
        t.libm("pow", 3)
        assert t.total_ops() == 5

    def test_breakdown(self):
        t = make_tally(int_alu=2, load=1)
        t.libm("pow", 4)
        assert t.breakdown() == {"int_alu": 2, "load": 1, "libm:pow": 4}


class TestProperties:
    @given(st.integers(0, 1000), st.integers(0, 1000), st.integers(1, 20))
    def test_scaling_distributes(self, a, b, k):
        t = make_tally(int_alu=a, fp_mul=b)
        assert t.scaled(k).total_ops() == k * t.total_ops()

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_merge_total_additive(self, a, b):
        ta = make_tally(int_mac=a)
        tb = make_tally(int_mac=b)
        assert (ta + tb).total_ops() == a + b
