"""Tests for the Badge4 platform bundle (Figure 1)."""

from repro.platform import BADGE4_COMPONENTS, Badge4


class TestInventory:
    def test_figure1_blocks_present(self):
        kinds = {c.kind for c in BADGE4_COMPONENTS}
        assert {"processor", "companion", "memory", "radio", "audio", "power"} <= kinds

    def test_three_memories(self):
        memories = [c for c in BADGE4_COMPONENTS if c.kind == "memory"]
        assert {c.name for c in memories} == {"SRAM", "SDRAM", "FLASH"}

    def test_badge4_vs_smartbadge_delta(self):
        """Badge4 = SmartBadge + new CPU + SDRAM + companion chip."""
        names = {c.name for c in BADGE4_COMPONENTS}
        assert "SDRAM" in names
        assert "SA-1111 companion chip" in names
        assert "StrongARM SA-1110" in names


class TestBundle:
    def test_models_wired(self):
        badge = Badge4()
        assert badge.cost_model.spec.name == "StrongARM SA-1110"
        assert badge.governor.points[-1].clock_hz == badge.processor.clock_hz

    def test_profiler_factory_independent(self):
        badge = Badge4()
        p1 = badge.profiler()
        p2 = badge.profiler()
        from repro.platform import OperationTally
        p1.record("f", OperationTally(int_alu=1))
        assert p2.tally("f").is_empty()

    def test_describe_mentions_all_components(self):
        text = Badge4().describe()
        for comp in BADGE4_COMPONENTS:
            assert comp.name in text
        assert "206.4 MHz" in text
        assert "no — soft float" in text
