"""Tests for the profiler and its table rendering."""

import pytest

from repro.errors import PlatformError
from repro.platform import OperationTally, Profiler


def tally(**kwargs) -> OperationTally:
    t = OperationTally()
    for k, v in kwargs.items():
        setattr(t, k, v)
    return t


class TestRecording:
    def test_accumulates(self):
        p = Profiler()
        p.record("f", tally(int_alu=10))
        p.record("f", tally(int_alu=5))
        assert p.tally("f").int_alu == 15

    def test_tally_returns_copy(self):
        p = Profiler()
        p.record("f", tally(int_alu=10))
        out = p.tally("f")
        out.int_alu = 999
        assert p.tally("f").int_alu == 10

    def test_unknown_function_empty(self):
        assert Profiler().tally("ghost").is_empty()

    def test_combined(self):
        p = Profiler()
        p.record("a", tally(int_alu=1))
        p.record("b", tally(int_mul=2))
        combined = p.combined_tally()
        assert combined.int_alu == 1
        assert combined.int_mul == 2

    def test_reset(self):
        p = Profiler()
        p.record("a", tally(int_alu=1))
        p.reset()
        with pytest.raises(PlatformError):
            p.report()


class TestReport:
    def make(self):
        p = Profiler()
        p.record("hot", tally(fp_mul=100_000))
        p.record("warm", tally(fp_mul=10_000))
        p.record("cold", tally(int_alu=100))
        return p.report()

    def test_rows_sorted_by_time(self):
        report = self.make()
        assert report.names() == ["hot", "warm", "cold"]

    def test_percentages_sum_to_100(self):
        report = self.make()
        assert sum(r.percent for r in report.rows) == pytest.approx(100.0)

    def test_total_seconds_consistent(self):
        report = self.make()
        assert report.total_seconds == pytest.approx(
            sum(r.seconds for r in report.rows))

    def test_row_lookup(self):
        report = self.make()
        assert report.row("hot").percent > 80
        with pytest.raises(KeyError):
            report.row("ghost")

    def test_energy_positive(self):
        report = self.make()
        assert all(r.energy_j > 0 for r in report.rows)

    def test_report_at_lower_clock_scales_time(self):
        p = Profiler()
        p.record("f", tally(int_alu=10_000))
        fast = p.report().total_seconds
        slow = p.report(clock_hz=103.2e6).total_seconds
        assert slow == pytest.approx(fast * 2)

    def test_format_table_shape(self):
        text = self.make().format_table(title="Original MP3 Profile", time_unit="ms")
        assert "Original MP3 Profile" in text
        assert "hot" in text
        assert "Total" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 3 + 1  # title + header + 3 rows + total

    def test_empty_profiler_raises(self):
        with pytest.raises(PlatformError):
            Profiler().report()
