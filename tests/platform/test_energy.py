"""Tests for the energy model."""

import pytest

from repro.errors import PlatformError
from repro.platform import (BADGE4_ENERGY, CostModel, EnergyModel,
                            OperationTally, SA1110)


class TestCorePower:
    def test_nominal_point(self):
        assert BADGE4_ENERGY.core_power() == pytest.approx(0.40)

    def test_quadratic_in_voltage(self):
        half_v = BADGE4_ENERGY.core_power(voltage=1.55 / 2)
        assert half_v == pytest.approx(0.40 / 4)

    def test_linear_in_frequency(self):
        half_f = BADGE4_ENERGY.core_power(clock_hz=206.4e6 / 2)
        assert half_f == pytest.approx(0.40 / 2)

    def test_bad_efficiency_raises(self):
        with pytest.raises(PlatformError):
            EnergyModel(dcdc_efficiency=0.0)


class TestEnergy:
    def setup_method(self):
        self.cm = CostModel(SA1110)

    def test_energy_scales_with_work(self):
        small = OperationTally(int_alu=10_000)
        big = OperationTally(int_alu=1_000_000)
        e_small = BADGE4_ENERGY.energy(small, self.cm)
        e_big = BADGE4_ENERGY.energy(big, self.cm)
        assert e_big == pytest.approx(100 * e_small)

    def test_memory_activity_adds_energy(self):
        compute = OperationTally(int_alu=1000)
        with_mem = OperationTally(int_alu=1000, load=500, store=500)
        assert (BADGE4_ENERGY.energy(with_mem, self.cm)
                > BADGE4_ENERGY.energy(compute, self.cm))

    def test_dcdc_inflates_energy(self):
        lossless = EnergyModel(dcdc_efficiency=1.0)
        lossy = EnergyModel(dcdc_efficiency=0.5)
        t = OperationTally(int_alu=1000)
        assert (lossy.energy(t, self.cm)
                == pytest.approx(2 * lossless.energy(t, self.cm)))

    def test_lower_voltage_and_frequency_save_energy(self):
        """The DVFS premise: same work, lower V/f, less energy.

        (Lower f alone does NOT save dynamic energy in this first-order
        model — it's the V^2 factor that pays off; static power actually
        penalizes slow execution.  Check the combined effect.)
        """
        t = OperationTally(int_alu=10_000_000)
        full = BADGE4_ENERGY.energy(t, self.cm, voltage=1.55, clock_hz=206.4e6)
        scaled = BADGE4_ENERGY.energy(t, self.cm, voltage=1.0, clock_hz=59e6)
        assert scaled < full
