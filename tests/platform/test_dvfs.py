"""Tests for the DVFS governor."""

import pytest

from repro.errors import PlatformError
from repro.platform import (BADGE4_ENERGY, SA1110_OPERATING_POINTS, CostModel,
                            DvfsGovernor, OperationTally, SA1110)


@pytest.fixture
def governor():
    return DvfsGovernor(CostModel(SA1110), BADGE4_ENERGY)


def workload(cycles: int) -> OperationTally:
    return OperationTally(int_alu=cycles)


class TestLadder:
    def test_point_count(self):
        assert len(SA1110_OPERATING_POINTS) == 11

    def test_range(self):
        assert SA1110_OPERATING_POINTS[0].clock_hz == pytest.approx(59.0e6)
        assert SA1110_OPERATING_POINTS[-1].clock_hz == pytest.approx(206.4e6)

    def test_voltage_monotone_in_frequency(self):
        volts = [p.voltage for p in SA1110_OPERATING_POINTS]
        assert volts == sorted(volts)

    def test_str(self):
        assert "MHz" in str(SA1110_OPERATING_POINTS[0])


class TestGovernor:
    def test_fast_workload_can_slow_down(self, governor):
        # 0.25 s of work at 206.4 MHz; deadline 1 s -> can run ~4x slower.
        t = workload(int(206.4e6 * 0.25))
        decision = governor.slowest_feasible(t, deadline_s=1.0)
        assert decision.meets_deadline
        assert decision.point.clock_hz < 206.4e6
        assert decision.point.clock_hz >= 206.4e6 * 0.25 * 0.99

    def test_tight_workload_stays_fast(self, governor):
        t = workload(int(206.4e6 * 0.99))
        decision = governor.slowest_feasible(t, deadline_s=1.0)
        assert decision.meets_deadline
        assert decision.point.clock_hz == pytest.approx(206.4e6)

    def test_infeasible_workload_reports_miss(self, governor):
        t = workload(int(206.4e6 * 3))
        decision = governor.slowest_feasible(t, deadline_s=1.0)
        assert not decision.meets_deadline
        assert decision.point.clock_hz == pytest.approx(206.4e6)

    def test_bad_deadline_raises(self, governor):
        with pytest.raises(PlatformError):
            governor.slowest_feasible(workload(10), deadline_s=0)

    def test_energy_saving_factor_exceeds_one_for_slack(self, governor):
        """The paper's claim: 3.5x-faster-than-real-time MP3 saves energy."""
        t = workload(int(206.4e6 / 3.5))
        factor = governor.energy_saving_factor(t, deadline_s=1.0)
        assert factor > 1.5

    def test_sweep_covers_all_points(self, governor):
        decisions = governor.sweep(workload(1000), deadline_s=1.0)
        assert len(decisions) == len(SA1110_OPERATING_POINTS)

    def test_sweep_time_monotone(self, governor):
        decisions = governor.sweep(workload(10 ** 7), deadline_s=1.0)
        times = [d.seconds for d in decisions]
        assert times == sorted(times, reverse=True)

    def test_empty_points_raise(self):
        with pytest.raises(PlatformError):
            DvfsGovernor(CostModel(SA1110), BADGE4_ENERGY, points=())
