"""Tests for the SA-1110 cost model."""

import pytest

from repro.errors import PlatformError
from repro.platform import SA1110, CostModel, OperationTally, ProcessorSpec


class TestSpec:
    def test_sa1110_identity(self):
        assert SA1110.clock_hz == pytest.approx(206.4e6)
        assert not SA1110.has_fpu

    def test_bad_clock_raises(self):
        with pytest.raises(PlatformError):
            ProcessorSpec("x", 0, True, SA1110.cycle_costs, {})

    def test_missing_cost_entries_raise(self):
        with pytest.raises(PlatformError):
            ProcessorSpec("x", 1e6, True, {"int_alu": 1}, {})


class TestCycles:
    def setup_method(self):
        self.model = CostModel(SA1110)

    def test_empty_tally_costs_nothing(self):
        assert self.model.cycles(OperationTally()) == 0

    def test_single_int_alu(self):
        t = OperationTally(int_alu=100)
        assert self.model.cycles(t) == 100

    def test_soft_float_is_two_orders_costlier(self):
        """The paper's entire premise: no FPU makes float brutal."""
        int_t = OperationTally(int_mac=1000)
        fp_t = OperationTally(fp_add=500, fp_mul=500)
        ratio = self.model.cycles(fp_t) / self.model.cycles(int_t)
        assert ratio > 30  # two orders vs MACs would be ~100; >30 is the floor

    def test_libm_pow_dominates(self):
        """pow is costlier than thousands of integer ops."""
        t = OperationTally()
        t.libm("pow", 1)
        assert self.model.cycles(t) > self.model.cycles(OperationTally(int_alu=10000))

    def test_unknown_libm_uses_default(self):
        t = OperationTally()
        t.libm("bessel_j0", 2)
        assert self.model.cycles(t) == 2 * SA1110.libm_default

    def test_cost_ordering_int_lt_fp_lt_libm(self):
        int_op = self.model.cycles(OperationTally(int_mul=1))
        fp_op = self.model.cycles(OperationTally(fp_mul=1))
        libm = CostModel(SA1110)
        t = OperationTally()
        t.libm("cos", 1)
        libm_call = libm.cycles(t)
        assert int_op < fp_op < libm_call


class TestSeconds:
    def test_seconds_at_spec_clock(self):
        model = CostModel(SA1110)
        t = OperationTally(int_alu=206_400_000)
        assert model.seconds(t) == pytest.approx(1.0)

    def test_seconds_at_scaled_clock(self):
        model = CostModel(SA1110)
        t = OperationTally(int_alu=1000)
        fast = model.seconds(t, clock_hz=206.4e6)
        slow = model.seconds(t, clock_hz=103.2e6)
        assert slow == pytest.approx(2 * fast)

    def test_bad_clock_raises(self):
        model = CostModel(SA1110)
        with pytest.raises(PlatformError):
            model.seconds(OperationTally(), clock_hz=-1)
