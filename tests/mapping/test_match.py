"""Tests for element instantiation and block matching."""

import pytest

from repro.frontend import ArrayInput, extract_block
from repro.library import LibraryElement, full_library
from repro.mapping import enumerate_instantiations, match_block
from repro.platform import OperationTally
from repro.symalg import Polynomial, symbols

x, y, z = symbols("x y z")


def element(poly, name="e", accuracy=1e-9):
    return LibraryElement(name=name, library="IH", polynomials=(poly,),
                          input_format="q", output_format="q",
                          accuracy=accuracy, cost=OperationTally(int_mul=1))


class TestInstantiation:
    def test_small_arity_permutations(self):
        e = element(Polynomial.variable("in0") ** 2
                    - 2 * Polynomial.variable("in1"))
        target = x ** 2 - 2 * y + z
        insts = enumerate_instantiations(e, target)
        bindings = {tuple(b for _f, b in i.binding) for i in insts}
        assert ("x", "y") in bindings

    def test_bound_polynomial(self):
        e = element(Polynomial.variable("in0") * Polynomial.variable("in1"))
        target = x * y
        insts = enumerate_instantiations(e, target)
        assert any(i.bound_polynomial() == x * y for i in insts)

    def test_side_relation_symbol(self):
        e = element(Polynomial.variable("in0") + 1, name="incr")
        insts = enumerate_instantiations(e, x + 1)
        assert insts[0].side_relation().name == "incr_out"

    def test_tagged_symbols_unique(self):
        from dataclasses import replace
        e = element(Polynomial.variable("in0") + 1, name="incr")
        inst = enumerate_instantiations(e, x + 1)[0]
        tagged = replace(inst, tag="2")
        assert tagged.output_symbol == "incr_out_2"
        assert inst.output_symbol == "incr_out"

    def test_constant_target_yields_nothing(self):
        e = element(Polynomial.variable("in0"))
        assert enumerate_instantiations(e, Polynomial.constant(5)) == []

    def test_limit_respected(self):
        e = element(Polynomial.variable("in0") * Polynomial.variable("in1"))
        target = x * y * z + x + y + z
        insts = enumerate_instantiations(e, target, limit=3)
        assert len(insts) <= 3


class TestLinearBinding:
    def test_large_linear_form_binds_by_coefficients(self):
        # Element: 2*in0 + 3*in1 + 5*in2 + 7*in3 (arity 4 -> coefficient path)
        poly = (2 * Polynomial.variable("in0") + 3 * Polynomial.variable("in1")
                + 5 * Polynomial.variable("in2") + 7 * Polynomial.variable("in3"))
        e = element(poly, name="lin")
        a, b, c, d = symbols("a b c d")
        target = 7 * d + 5 * c + 3 * b + 2 * a
        insts = enumerate_instantiations(e, target)
        assert len(insts) == 1
        assert insts[0].bound_polynomial() == target

    def test_coefficient_mismatch_fails(self):
        poly = (2 * Polynomial.variable("in0") + 3 * Polynomial.variable("in1")
                + 5 * Polynomial.variable("in2") + 7 * Polynomial.variable("in3"))
        e = element(poly, name="lin")
        a, b, c, d = symbols("a b c d")
        target = 7 * d + 5 * c + 3 * b + 999 * a
        assert enumerate_instantiations(e, target) == []


class TestBlockMatch:
    @pytest.fixture(scope="class")
    def imdct_block(self):
        from repro.mp3.tables import IMDCT_COS_36
        return extract_block("""
def imdct(y, c):
    out = [0] * 36
    for i in range(36):
        s = 0
        for k in range(18):
            s = s + c[i][k] * y[k]
        out[i] = s
    return out
""", [ArrayInput("y", (18,)),
            ArrayInput("c", (36, 18), values=IMDCT_COS_36.tolist())])

    def test_imdct_block_matches_library_imdcts(self, imdct_block):
        lib = full_library()
        got = match_block(lib.get("IppsMDCTInv_MP3_32s"), imdct_block)
        assert got is not None
        assert got.max_coefficient_error < 1e-9

    def test_output_count_mismatch_rejected(self, imdct_block):
        lib = full_library()
        assert match_block(lib.get("float_SubBandSyn"), imdct_block) is None

    def test_perturbed_block_rejected(self, imdct_block):
        """Coefficients off by more than tolerance must not match."""
        from repro.mp3.tables import IMDCT_COS_36
        wrong = IMDCT_COS_36 + 0.01
        block = extract_block("""
def imdct(y, c):
    out = [0] * 36
    for i in range(36):
        s = 0
        for k in range(18):
            s = s + c[i][k] * y[k]
        out[i] = s
    return out
""", [ArrayInput("y", (18,)), ArrayInput("c", (36, 18), values=wrong.tolist())])
        lib = full_library()
        assert match_block(lib.get("IppsMDCTInv_MP3_32s"), block,
                           tolerance=1e-6) is None
