"""Tests for the branch-and-bound Decompose algorithm (Table 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.library import Library, LibraryElement, full_library
from repro.mapping import (all_manipulations, decompose, map_block,
                           residual_cost, structural_hints)
from repro.platform import Badge4, OperationTally
from repro.symalg import Polynomial, symbols

x, y, z = symbols("x y z")
PLATFORM = Badge4()


def element(poly, name="e", cost_ops=1, accuracy=1e-9):
    return LibraryElement(name=name, library="IH", polynomials=(poly,),
                          input_format="q", output_format="q",
                          accuracy=accuracy,
                          cost=OperationTally(int_mul=cost_ops))


def in_vars(n):
    return [Polynomial.variable(f"in{i}") for i in range(n)]


class TestPaperExample:
    """The DATE'02-style decomposition the paper builds on."""

    def test_side_relation_mapping(self):
        i0, i1 = in_vars(2)
        lib = Library("demo", [element(i0 ** 2 - 2 * i1, "sq2y")])
        target = x + x ** 3 * y ** 2 - 2 * x * y ** 3
        result = decompose(target, lib, PLATFORM)
        assert result.mapped
        assert result.best.element_names() == ["sq2y"]
        # Residual is exactly the paper's  x + y^2*x*p.
        p = Polynomial.variable("sq2y_out")
        assert result.best.residual == x + x * y ** 2 * p

    def test_solution_cheaper_than_unmapped(self):
        i0, i1 = in_vars(2)
        lib = Library("demo", [element(i0 ** 2 - 2 * i1, "sq2y")])
        target = x + x ** 3 * y ** 2 - 2 * x * y ** 3
        result = decompose(target, lib, PLATFORM)
        assert result.best.total_cycles < residual_cost(target, PLATFORM)


class TestExactCover:
    def test_target_equal_to_element(self):
        i0, = in_vars(1)
        lib = Library("demo", [element(i0 ** 2 + i0 + 1, "q")])
        target = x ** 2 + x + 1
        result = decompose(target, lib, PLATFORM)
        assert result.mapped
        assert result.best.residual == Polynomial.variable("q_out")

    def test_mac_decomposition(self):
        """a*b + c covered by one MAC element."""
        i0, i1, i2 = in_vars(3)
        lib = Library("demo", [element(i0 * i1 + i2, "mac")])
        a, b, c = symbols("a b c")
        result = decompose(a * b + c, lib, PLATFORM)
        assert result.mapped
        assert result.best.element_names() == ["mac"]

    def test_two_step_cover(self):
        """(x+1)^2 via sq after incr: nested element use."""
        i0, = in_vars(1)
        lib = Library("demo", [element(i0 + 1, "incr", cost_ops=1),
                               element(i0 ** 2, "sq", cost_ops=1)])
        target = (x + 1) ** 2
        result = decompose(target, lib, PLATFORM, max_depth=3)
        assert result.mapped
        # Either direct expansion via sq(x) ... or incr-then-sq; both map.
        assert result.best.total_cycles < residual_cost(target, PLATFORM)


class TestBounding:
    def test_no_useful_element_returns_unmapped(self):
        i0, = in_vars(1)
        lib = Library("demo", [element(i0 ** 5, "fifth")])
        target = x + 1
        result = decompose(target, lib, PLATFORM)
        assert not result.mapped
        assert result.best.residual == target

    def test_expensive_element_pruned(self):
        """An element costlier than evaluating the target is never used."""
        i0, = in_vars(1)
        costly = LibraryElement(
            name="gold", library="IPP", polynomials=(i0 ** 2,),
            input_format="q", output_format="q", accuracy=0,
            cost=OperationTally(fp_div=100_000))
        lib = Library("demo", [costly])
        target = x ** 2
        result = decompose(target, lib, PLATFORM)
        assert not result.mapped
        assert result.pruned >= 1

    def test_accuracy_budget_excludes_sloppy_elements(self):
        i0, = in_vars(1)
        sloppy = element(i0 ** 2, "sloppy", accuracy=0.5)
        lib = Library("demo", [sloppy])
        target = x ** 2
        strict = decompose(target, lib, PLATFORM, accuracy_budget=1e-3)
        assert not strict.mapped
        loose = decompose(target, lib, PLATFORM, accuracy_budget=1.0)
        assert loose.mapped

    def test_cheapest_of_equivalent_elements_wins(self):
        """Four log-style implementations: best performance is chosen."""
        i0, = in_vars(1)
        lib = Library("demo", [
            element(i0 ** 3 + i0, "slow", cost_ops=500),
            element(i0 ** 3 + i0, "fast", cost_ops=2),
        ])
        target = x ** 3 + x
        result = decompose(target, lib, PLATFORM)
        assert result.best.element_names() == ["fast"]

    def test_node_limit_respected(self):
        i0, i1 = in_vars(2)
        lib = Library("demo", [element(i0 * i1, "mul2")])
        target = (x * y + y * z + x * z) ** 2
        result = decompose(target, lib, PLATFORM, max_nodes=10)
        assert result.nodes_explored <= 10


class TestSemanticEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(-5, 5), st.integers(-5, 5))
    def test_mapped_program_agrees_with_target(self, px, py):
        from repro.mapping import rewrite
        i0, i1 = in_vars(2)
        lib = Library("demo", [element(i0 ** 2 - 2 * i1, "sq2y")])
        target = x + x ** 3 * y ** 2 - 2 * x * y ** 3
        result = decompose(target, lib, PLATFORM)
        program = rewrite(result.best)
        env = {"x": px, "y": py}
        assert program.evaluate(env) == target.evaluate(env)


class TestCandidates:
    def test_all_manipulations_equivalent(self):
        target = (x + 1) * (x - 1) * y + y ** 2
        for form in all_manipulations(target):
            assert form.expression.to_polynomial() == target

    def test_factored_form_present_when_factorable(self):
        target = (x + 1) ** 2 * (x - 3)
        labels = {f.label for f in all_manipulations(target)}
        assert "factored" in labels

    def test_structural_hints_include_factors(self):
        target = (x ** 2 - 2 * y) * z
        hints = structural_hints(target)
        assert any(h == x ** 2 - 2 * y for h in hints)


class TestBlockMapping:
    def test_imdct_block_selects_ipp(self):
        from repro.mapping.flow import _imdct_block
        winner, matches = map_block(_imdct_block(), full_library(), PLATFORM)
        assert winner.element.name == "IppsMDCTInv_MP3_32s"
        assert {m.element.name for m in matches} == {
            "IppsMDCTInv_MP3_32s", "fixed_IMDCT", "float_IMDCT"}

    def test_imdct_block_without_ipp_selects_fixed(self):
        """Table 4's world: no IPP library yet -> in-house fixed wins."""
        from repro.library import (inhouse_library, linux_math_library,
                                   reference_library)
        from repro.library.catalog import Library as Lib
        from repro.mapping.flow import _imdct_block
        lib = Lib.union(reference_library(), linux_math_library(),
                        inhouse_library())
        winner, _ = map_block(_imdct_block(), lib, PLATFORM)
        assert winner.element.name == "fixed_IMDCT"

    def test_matrixing_block_selects_ipp_synth(self):
        from repro.mapping.flow import _matrixing_block
        winner, _ = map_block(_matrixing_block(), full_library(), PLATFORM)
        assert winner.element.name == "ippsSynthPQMF_MP3_32s16s"

    def test_no_match_returns_none(self):
        from repro.mapping.flow import _imdct_block
        empty = Library("empty")
        winner, matches = map_block(_imdct_block(), empty, PLATFORM)
        assert winner is None
        assert matches == []
